// Transport conformance suite.
//
// Every behaviour the PeerHood middleware relies on is asserted here
// against BOTH backends — the simulated medium (SimTransport) and real
// UNIX-domain sockets (SocketTransport) — via one parameterized fixture.
// If a new backend appears, adding it to the instantiation list below is
// the whole certification step.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/medium.hpp"
#include "obs/metrics.hpp"
#include "peerhood/stack.hpp"
#include "sim/simulator.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "transport/sim_transport.hpp"
#include "transport/socket_transport.hpp"

namespace ph::transport {
namespace {

// Latencies compressed so a full run (discovery + handshake + handover)
// stays well under a second of wall clock on both substrates.
net::TechProfile quick_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.inquiry_duration = sim::milliseconds(200);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(20);
  p.base_latency = sim::milliseconds(5);
  return p;
}

net::TechProfile quick_wlan() {
  net::TechProfile p = net::wlan_80211b();
  p.inquiry_duration = sim::milliseconds(100);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(10);
  p.base_latency = sim::milliseconds(2);
  return p;
}

/// One world per test: a transport plus whatever substrate objects it
/// needs alive underneath.
struct World {
  virtual ~World() = default;
  virtual Transport& transport() = 0;
};

struct SimWorld final : World {
  sim::Simulator simulator;
  net::Medium medium{simulator, sim::Rng(7)};
  SimTransport sim_transport{medium};
  Transport& transport() override { return sim_transport; }
};

struct SocketWorld final : World {
  SocketTransport socket_transport{[] {
    SocketTransportConfig config;
    // 1 virtual second per 2 wall milliseconds: the compressed protocol
    // cadences above run in tens of milliseconds of wall clock.
    config.time_scale = 500.0;
    config.seed = 7;
    return config;
  }()};
  Transport& transport() override { return socket_transport; }
};

class TransportConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "sim") {
      world_ = std::make_unique<SimWorld>();
    } else {
      world_ = std::make_unique<SocketWorld>();
    }
    transport_ = &world_->transport();
    // Arm the flight recorder on the backend's own journal: a failing
    // socket-backend test dumps a Perfetto-loadable recording exactly
    // like the sim integration suites do.
    guard_ = std::make_unique<testutil::FlightGuard>(transport_->trace());
  }

  void TearDown() override { guard_.reset(); }

  /// Pumps the substrate in small virtual-time slices until `pred` holds
  /// or `limit` virtual time elapses.
  template <typename Pred>
  bool pump_until(Pred pred, sim::Duration limit,
                  sim::Duration step = sim::milliseconds(100)) {
    Scheduler& s = transport_->scheduler();
    const sim::Time deadline = s.now() + limit;
    while (s.now() < deadline) {
      if (pred()) return true;
      s.run_until(std::min(deadline, s.now() + step));
    }
    return pred();
  }

  std::unique_ptr<World> world_;
  Transport* transport_ = nullptr;
  // Declared after world_: the guard dumps from the transport's trace, so
  // it must be destroyed first.
  std::unique_ptr<testutil::FlightGuard> guard_;
};

TEST_P(TransportConformance, ReportsBackendIdentity) {
  const std::string name = transport_->name();
  EXPECT_TRUE(name == "sim" || name == "socket");
  EXPECT_EQ(name == "sim", transport_->simulated());
}

TEST_P(TransportConformance, DatagramDelivery) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  std::vector<std::pair<DeviceId, std::string>> got;
  eb.bind(4000, [&](DeviceId src, BytesView payload) {
    got.emplace_back(src, to_text(payload));
  });
  ea.send_datagram(b, 4000, to_bytes("hello over any substrate"));
  ASSERT_TRUE(pump_until([&] { return !got.empty(); }, sim::seconds(5)));
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, a);
  EXPECT_EQ(got[0].second, "hello over any substrate");

  // Unbinding stops delivery.
  eb.unbind(4000);
  ea.send_datagram(b, 4000, to_bytes("into the void"));
  pump_until([] { return false; }, sim::seconds(1));
  EXPECT_EQ(got.size(), 1u);
}

TEST_P(TransportConformance, InquiryFindsPoweredPeers) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  const DeviceId c = transport_->add_device("c", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  transport_->add_endpoint(b, quick_bt());
  Endpoint& ec = transport_->add_endpoint(c, quick_bt());
  ec.set_powered(false);

  bool done = false;
  std::vector<DeviceId> found;
  ea.start_inquiry([&](std::vector<DeviceId> ids) {
    found = std::move(ids);
    done = true;
  });
  ASSERT_TRUE(pump_until([&] { return done; }, sim::seconds(5)));
  EXPECT_EQ(found, std::vector<DeviceId>{b});  // c is powered off, a is self
  EXPECT_GT(ea.signal_to(b), 0.0);
  EXPECT_FALSE(ec.powered());
}

TEST_P(TransportConformance, ChannelOpenExchangeClose) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  Channel server;
  std::vector<std::string> server_got;
  bool server_broke = false;
  eb.listen(5000, [&](Channel channel) {
    server = channel;
    server.on_receive([&](BytesView payload) {
      server_got.push_back(to_text(payload));
      server.send(to_bytes("ack:" + server_got.back()));
    });
    server.on_break([&] { server_broke = true; });
  });

  Channel client;
  std::vector<std::string> client_got;
  ea.connect(b, 5000, [&](Result<Channel> result) {
    ASSERT_TRUE(bool(result)) << result.error().to_string();
    client = *result;
    client.on_receive(
        [&](BytesView payload) { client_got.push_back(to_text(payload)); });
  });
  ASSERT_TRUE(pump_until([&] { return client.valid() && server.valid(); },
                         sim::seconds(5)));
  EXPECT_EQ(client.remote_node(), b);
  EXPECT_EQ(server.remote_node(), a);
  EXPECT_EQ(client.technology(), net::Technology::bluetooth);
  EXPECT_GT(client.signal(), 0.0);

  client.send(to_bytes("payload"));
  ASSERT_TRUE(pump_until([&] { return !client_got.empty(); }, sim::seconds(5)));
  EXPECT_EQ(server_got, std::vector<std::string>{"payload"});
  EXPECT_EQ(client_got, std::vector<std::string>{"ack:payload"});

  // Local close is silent locally, a break remotely.
  client.close();
  EXPECT_FALSE(client.open());
  ASSERT_TRUE(pump_until([&] { return server_broke; }, sim::seconds(5)));
}

TEST_P(TransportConformance, ChannelDeliversInOrderExactlyOnce) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  constexpr int kMessages = 64;
  std::vector<int> received;
  Channel server;
  eb.listen(5000, [&](Channel channel) {
    server = channel;
    server.on_receive([&](BytesView payload) {
      received.push_back(std::stoi(to_text(payload)));
    });
  });
  Channel client;
  ea.connect(b, 5000, [&](Result<Channel> result) {
    ASSERT_TRUE(bool(result)) << result.error().to_string();
    client = *result;
    for (int i = 0; i < kMessages; ++i) {
      client.send(to_bytes(std::to_string(i)));
    }
  });
  ASSERT_TRUE(pump_until(
      [&] { return received.size() == static_cast<std::size_t>(kMessages); },
      sim::seconds(10)));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

// A peer that sends its last messages and closes in the same turn must not
// lose the tail: every frame written before the close is delivered, in
// order, before the receiver's break fires. (The socket backend once
// dropped frames drained in the same readiness event as the EOF.)
TEST_P(TransportConformance, CloseAfterSendDeliversTailBeforeBreak) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  std::vector<std::string> server_got;
  bool server_broke = false;
  bool broke_before_tail = false;
  Channel server;
  eb.listen(5000, [&](Channel channel) {
    server = channel;
    server.on_receive(
        [&](BytesView payload) { server_got.push_back(to_text(payload)); });
    server.on_break([&] {
      server_broke = true;
      broke_before_tail = server_got.size() < 3;
    });
  });
  Channel client;
  ea.connect(b, 5000, [&](Result<Channel> result) {
    ASSERT_TRUE(bool(result)) << result.error().to_string();
    client = *result;
    client.send(to_bytes("tail-1"));
    client.send(to_bytes("tail-2"));
    client.send(to_bytes("tail-3"));
    client.close();
  });
  ASSERT_TRUE(pump_until([&] { return server_broke; }, sim::seconds(10)));
  EXPECT_FALSE(broke_before_tail);
  EXPECT_EQ(server_got,
            (std::vector<std::string>{"tail-1", "tail-2", "tail-3"}));
}

// Data the peer sends immediately after the handshake may arrive coalesced
// with the handshake reply — before the caller has even seen the Channel.
// It must wait for the receive handler, not be consumed into the void.
// (The socket backend once parsed such leftover bytes inside accept/connect
// settlement, dropping them while on_receive was still unset.)
TEST_P(TransportConformance, DataBehindHandshakeWaitsForReceiveHandler) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  Channel server;
  eb.listen(5000, [&](Channel channel) {
    server = channel;
    // Fires before the client's connect callback can run: on the socket
    // backend these bytes ride right behind the channel_accept frame.
    server.send(to_bytes("greeting"));
  });
  Channel client;
  std::vector<std::string> client_got;
  ea.connect(b, 5000, [&](Result<Channel> result) {
    ASSERT_TRUE(bool(result)) << result.error().to_string();
    client = *result;
    client.on_receive(
        [&](BytesView payload) { client_got.push_back(to_text(payload)); });
  });
  ASSERT_TRUE(pump_until([&] { return !client_got.empty(); }, sim::seconds(5)));
  EXPECT_EQ(client_got, std::vector<std::string>{"greeting"});
}

TEST_P(TransportConformance, ConnectErrors) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  transport_->add_endpoint(b, quick_bt());

  // Nobody listening on the port: connect_failed.
  bool refused = false;
  ea.connect(b, 6000, [&](Result<Channel> result) {
    ASSERT_FALSE(bool(result));
    EXPECT_EQ(result.error().code, Errc::connect_failed);
    refused = true;
  });
  ASSERT_TRUE(pump_until([&] { return refused; }, sim::seconds(5)));

  // Device that has no endpoint at all: unreachable.
  bool unreachable = false;
  ea.connect(b + 100, 6000, [&](Result<Channel> result) {
    ASSERT_FALSE(bool(result));
    EXPECT_EQ(result.error().code, Errc::device_unreachable);
    unreachable = true;
  });
  ASSERT_TRUE(pump_until([&] { return unreachable; }, sim::seconds(5)));
}

TEST_P(TransportConformance, PowerOffBreaksChannels) {
  const DeviceId a = transport_->add_device("a", nullptr);
  const DeviceId b = transport_->add_device("b", nullptr);
  Endpoint& ea = transport_->add_endpoint(a, quick_bt());
  Endpoint& eb = transport_->add_endpoint(b, quick_bt());

  Channel server;
  eb.listen(5000, [&](Channel channel) { server = channel; });
  Channel client;
  bool client_broke = false;
  ea.connect(b, 5000, [&](Result<Channel> result) {
    ASSERT_TRUE(bool(result)) << result.error().to_string();
    client = *result;
    client.on_break([&] { client_broke = true; });
  });
  ASSERT_TRUE(pump_until([&] { return client.valid() && server.valid(); },
                         sim::seconds(5)));

  eb.set_powered(false);
  ASSERT_TRUE(pump_until([&] { return client_broke; }, sim::seconds(5)));
  EXPECT_FALSE(client.open());
  EXPECT_EQ(ea.signal_to(b), 0.0);
}

// The whole middleware over both substrates: two devices discover each
// other, a session opens, the carrying radio dies on both sides, and the
// session resumes over the second radio without losing a message.
TEST_P(TransportConformance, SessionResumesAfterRadioDrop) {
  using peerhood::Connection;
  using peerhood::Stack;
  using peerhood::StackConfig;

  peerhood::DaemonConfig daemon_config;
  daemon_config.inquiry_interval = sim::seconds(1);
  daemon_config.ping_interval = sim::milliseconds(500);
  daemon_config.reply_timeout = sim::milliseconds(200);

  Stack alpha(StackConfig{}
                  .with_name("alpha")
                  .with_radios({quick_bt(), quick_wlan()})
                  .with_daemon(daemon_config)
                  .with_transport(*transport_));
  Stack beta(StackConfig{}
                 .with_name("beta")
                 .with_radios({quick_bt(), quick_wlan()})
                 .with_daemon(daemon_config)
                 .with_transport(*transport_));

  std::vector<std::string> beta_got;
  Connection beta_side;
  ASSERT_TRUE(bool(beta.library().register_service(
      "echo", {}, [&](Connection connection) {
        beta_side = connection;
        beta_side.on_message(
            [&](BytesView payload) { beta_got.push_back(to_text(payload)); });
      })));

  ASSERT_TRUE(pump_until(
      [&] { return !alpha.library().find_service("echo").empty(); },
      sim::seconds(30)));

  Connection conn;
  peerhood::ConnectOptions options;
  options.resume_retry_interval = sim::milliseconds(100);
  options.monitor_interval = sim::milliseconds(200);
  alpha.library().connect(beta.id(), "echo", options,
                          [&](Result<Connection> result) {
                            ASSERT_TRUE(bool(result))
                                << result.error().to_string();
                            conn = *result;
                          });
  ASSERT_TRUE(pump_until([&] { return conn.valid(); }, sim::seconds(10)));

  conn.send(to_bytes("before-drop"));
  ASSERT_TRUE(
      pump_until([&] { return beta_got.size() == 1; }, sim::seconds(10)));

  // Kill the radio carrying the session on BOTH devices; the session must
  // hop to the remaining technology and keep delivering.
  const net::Technology carrying = conn.current_technology();
  ASSERT_TRUE(bool(alpha.set_radio_powered(carrying, false)));
  ASSERT_TRUE(bool(beta.set_radio_powered(carrying, false)));
  conn.send(to_bytes("after-drop"));
  ASSERT_TRUE(
      pump_until([&] { return beta_got.size() == 2; }, sim::seconds(30)));
  EXPECT_GE(conn.handover_count(), 1);
  EXPECT_NE(conn.current_technology(), carrying);
  EXPECT_EQ(beta_got[0], "before-drop");
  EXPECT_EQ(beta_got[1], "after-drop");

  conn.close();
  pump_until([&] { return !beta_side.open(); }, sim::seconds(5));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformance, ::testing::Values("sim", "socket"),
    [](const auto& info) { return std::string(info.param); });

// Both backends must register the same substrate-independent `transport.*`
// metric schema — same names, same instrument kinds — so dashboards and
// the ops plane read identically whichever substrate runs underneath.
// Socket-only internals live under `transport.socket.*` and are excluded.
TEST(TransportMetricParity, BackendsRegisterSameTransportFamilies) {
  struct Schema {
    std::vector<std::string> counters;
    std::vector<std::string> gauges;
    std::vector<std::string> histograms;
  };
  const auto common_schema = [](obs::Registry& registry) {
    Schema schema;
    const auto is_common = [](const std::string& name) {
      return name.starts_with("transport.") &&
             !name.starts_with("transport.socket.");
    };
    for (const auto& [name, counter] : registry.counters()) {
      if (is_common(name)) schema.counters.push_back(name);
    }
    for (const auto& [name, gauge] : registry.gauges()) {
      if (is_common(name)) schema.gauges.push_back(name);
    }
    for (const auto& [name, histogram] : registry.histograms()) {
      if (is_common(name)) schema.histograms.push_back(name);
    }
    return schema;
  };

  SimWorld sim_world;
  SocketWorld socket_world;
  const Schema sim_schema = common_schema(sim_world.transport().registry());
  const Schema socket_schema =
      common_schema(socket_world.transport().registry());

  EXPECT_FALSE(sim_schema.counters.empty());
  EXPECT_FALSE(sim_schema.histograms.empty());
  EXPECT_EQ(sim_schema.counters, socket_schema.counters);
  EXPECT_EQ(sim_schema.gauges, socket_schema.gauges);
  EXPECT_EQ(sim_schema.histograms, socket_schema.histograms);
}

}  // namespace
}  // namespace ph::transport
