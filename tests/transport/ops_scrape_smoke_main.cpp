// ops_scrape_smoke — end-to-end acceptance for the live ops plane.
//
// Forks a real daemon process: the child assembles two PeerHood stacks
// over SocketTransport with the ops server enabled and pumps its epoll
// loop forever; the parent connects to the child's ops UNIX socket like
// any external operator would (`nc -U` semantics: one request line,
// response body, close) and scrapes /metrics, /series, /slo, /flight and
// /profile into the output directory given as argv[1]. The
// ph_ops_scrape_smoke and ph_prof_smoke ctests then lint every scrape
// with ph_obs_json_check (--expo for the exposition, --folded for the
// profile, JSON modes for the rest) — see cmake/ops_scrape_smoke.cmake
// and cmake/prof_smoke.cmake.
//
//   ops_scrape_smoke OUT_DIR
//
// The parent retries /metrics until `transport.datagrams_sent` goes
// nonzero (discovery traffic is flowing), so the lint step can demand a
// live counter instead of an empty registry.
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "peerhood/stack.hpp"
#include "transport/socket_transport.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

net::TechProfile quick_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.inquiry_duration = sim::milliseconds(200);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(20);
  p.base_latency = sim::milliseconds(5);
  return p;
}

/// The daemon half: two stacks discovering each other over real sockets,
/// telemetry sampling on, ops server listening. Never returns — the
/// parent SIGKILLs the process when it has scraped everything it needs.
[[noreturn]] void run_daemon(const std::string& socket_dir) {
  transport::SocketTransportConfig config;
  config.socket_dir = socket_dir;
  config.time_scale = 200.0;
  config.seed = 7;
  config.sample_interval_us = 20'000;
  config.ops_server = true;
  config.profiler = true;  // Mode 2 sampler feeds the /profile route
  transport::SocketTransport transport(config);
  transport.trace().set_enabled(true);
  transport.trace().set_ring_capacity(1 << 12);

  peerhood::DaemonConfig daemon_config;
  daemon_config.inquiry_interval = sim::seconds(1);
  daemon_config.ping_interval = sim::milliseconds(500);
  daemon_config.reply_timeout = sim::milliseconds(250);

  peerhood::Stack alpha(peerhood::StackConfig{}
                            .with_name("alpha")
                            .with_radios({quick_bt()})
                            .with_daemon(daemon_config)
                            .with_transport(transport));
  peerhood::Stack beta(peerhood::StackConfig{}
                           .with_name("beta")
                           .with_radios({quick_bt()})
                           .with_daemon(daemon_config)
                           .with_transport(transport));

  transport.scheduler().run_until(sim::minutes(24.0 * 60.0 * 365.0));
  std::_Exit(0);  // unreachable on any sane run
}

/// One ops request: connect, send the route line, read the body to EOF.
/// Returns false on connect/IO failure or an "err ..." body.
bool scrape(const std::string& socket_path, const std::string& route,
            std::string& body) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const std::string request = route + "\n";
  if (::write(fd, request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return false;
  }
  ::shutdown(fd, SHUT_WR);
  body.clear();
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    body.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return !body.empty() && body.rfind("err ", 0) != 0;
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  return bool(out);
}

}  // namespace

int main(int argc, char** argv) {
  PH_CHECK_MSG(argc == 2, "usage: ops_scrape_smoke OUT_DIR");
  const std::string out_dir = argv[1];

  char dir_template[] = "/tmp/ph_ops_smoke.XXXXXX";
  PH_CHECK_MSG(::mkdtemp(dir_template) != nullptr, "mkdtemp failed");
  const std::string socket_dir = dir_template;
  const std::string ops_socket = socket_dir + "/d1.ops";

  const pid_t child = ::fork();
  PH_CHECK_MSG(child >= 0, "fork failed");
  if (child == 0) run_daemon(socket_dir);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool live = false;
  std::string metrics;
  // One loop covers every startup race: socket file not yet bound, listen
  // not yet reached, discovery traffic not yet flowing.
  while (std::chrono::steady_clock::now() < deadline) {
    if (scrape(ops_socket, "/metrics", metrics) &&
        metrics.find("transport.datagrams_sent") != std::string::npos &&
        metrics.find("transport.datagrams_sent 0\n") == std::string::npos) {
      live = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  bool ok = live;
  if (!live) {
    std::fprintf(stderr,
                 "ops_scrape_smoke: daemon never served live /metrics at %s\n",
                 ops_socket.c_str());
  } else {
    ok = write_file(out_dir + "/metrics.txt", metrics) && ok;
    const struct {
      const char* route;
      const char* file;
    } routes[] = {{"/series", "/series.json"},
                  {"/slo", "/slo.json"},
                  {"/flight", "/flight.json"}};
    for (const auto& r : routes) {
      std::string body;
      // "GET /series" must work as well as the bare route (curl-ish habit).
      const std::string request =
          std::string(r.route) == "/series" ? "GET /series" : r.route;
      if (!scrape(ops_socket, request, body)) {
        std::fprintf(stderr, "ops_scrape_smoke: scrape %s failed\n", r.route);
        ok = false;
        continue;
      }
      ok = write_file(out_dir + r.file, body) && ok;
    }
    // The sampling profiler needs a few 10 ms ticks before the rings hold
    // anything; retry /profile until the folded body is non-empty so the
    // lint step can demand real samples.
    std::string profile;
    const auto prof_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < prof_deadline) {
      if (scrape(ops_socket, "/profile", profile) && !profile.empty()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (profile.empty()) {
      std::fprintf(stderr, "ops_scrape_smoke: /profile never went live\n");
      ok = false;
    } else {
      ok = write_file(out_dir + "/profile.folded", profile) && ok;
    }
    // An unknown route must answer with the machine-stable diagnostic
    // line, not hang or crash.
    std::string unknown;
    scrape(ops_socket, "/nope", unknown);
    if (unknown.rfind("err unknown-route /nope", 0) != 0) {
      std::fprintf(stderr, "ops_scrape_smoke: bad unknown-route reply '%s'\n",
                   unknown.c_str());
      ok = false;
    }
  }

  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  std::error_code ec;
  std::filesystem::remove_all(socket_dir, ec);
  std::printf("ops_scrape_smoke %s: scraped %s\n", ok ? "OK" : "FAILED",
              ops_socket.c_str());
  return ok ? 0 : 1;
}
