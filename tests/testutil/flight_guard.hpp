// Flight-recorder guard for integration tests: record the world in a
// bounded trace ring and, if the owning test has failed by the time the
// guard leaves scope, dump the recording as Chrome trace JSON so the
// failing run can be opened in Perfetto.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "net/medium.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace ph::testutil {

/// Enables ring-buffer tracing on a journal for the guard's lifetime. On
/// destruction, if the current gtest test has a failure, the ring is
/// dumped to $PH_FLIGHT_JSON or — when unset — to a file named after the
/// failing test under gtest's temp dir. Works over any trace source: pass
/// a transport's trace() for substrate-agnostic tests, or a Medium for
/// legacy sim-only suites.
class FlightGuard {
 public:
  explicit FlightGuard(obs::Trace& trace, std::size_t ring_capacity = 1 << 14)
      : trace_(trace) {
    trace_.set_enabled(true);
    trace_.set_ring_capacity(ring_capacity);
  }
  explicit FlightGuard(net::Medium& medium, std::size_t ring_capacity = 1 << 14)
      : FlightGuard(medium.trace(), ring_capacity) {}
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

  ~FlightGuard() {
    if (!::testing::Test::HasFailure()) return;
    std::string name = "integration";
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "." + info->name();
    }
    obs::dump_flight_recording(trace_, "test_failure",
                               ::testing::TempDir() + "flight_" + name +
                                   ".json");
  }

 private:
  obs::Trace& trace_;
};

}  // namespace ph::testutil
