// Flight-recorder guard for integration tests: record the world in a
// bounded trace ring and, if the owning test has failed by the time the
// guard leaves scope, dump the recording as Chrome trace JSON so the
// failing run can be opened in Perfetto.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "net/medium.hpp"
#include "obs/export.hpp"

namespace ph::testutil {

/// Enables ring-buffer tracing on `medium`'s journal for the guard's
/// lifetime. On destruction, if the current gtest test has a failure, the
/// ring is dumped to $PH_FLIGHT_JSON or — when unset — to a file named
/// after the failing test under gtest's temp dir.
class FlightGuard {
 public:
  explicit FlightGuard(net::Medium& medium, std::size_t ring_capacity = 1 << 14)
      : medium_(medium) {
    medium_.trace().set_enabled(true);
    medium_.trace().set_ring_capacity(ring_capacity);
  }
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

  ~FlightGuard() {
    if (!::testing::Test::HasFailure()) return;
    std::string name = "integration";
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info != nullptr) {
      name = std::string(info->test_suite_name()) + "." + info->name();
    }
    obs::dump_flight_recording(medium_.trace(), "test_failure",
                               ::testing::TempDir() + "flight_" + name +
                                   ".json");
  }

 private:
  net::Medium& medium_;
};

}  // namespace ph::testutil
