// Shared helpers for simulation-driven tests.
#pragma once

#include <functional>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ph::testutil {

/// Advances virtual time in `step` slices until `pred()` holds or `limit`
/// elapses. Returns the final pred() value. This is the test idiom for
/// "wait until discovery/connection/... completes".
template <typename Pred>
bool run_until(sim::Simulator& simulator, Pred pred, sim::Duration limit,
               sim::Duration step = sim::milliseconds(100)) {
  const sim::Time deadline = simulator.now() + limit;
  while (simulator.now() < deadline) {
    if (pred()) return true;
    const sim::Time next = std::min<sim::Time>(deadline, simulator.now() + step);
    simulator.run_until(next);
  }
  return pred();
}

}  // namespace ph::testutil
