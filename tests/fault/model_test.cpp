#include "fault/model.hpp"

#include <gtest/gtest.h>

#include "fault/schedule.hpp"

namespace ph::fault {
namespace {

TEST(GilbertElliottTest, GoodStateKeepsBaseLoss) {
  GilbertElliottParams params;
  params.p_enter_bad = 0.0;  // never leaves good
  params.loss_bad = 0.9;
  GilbertElliott chain(params);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(chain.advance(0.03, rng), 0.03);
  }
  EXPECT_FALSE(chain.in_bad_state());
  EXPECT_EQ(chain.transitions_to_bad(), 0u);
}

TEST(GilbertElliottTest, CertainEntryRaisesLossToBadState) {
  GilbertElliottParams params;
  params.p_enter_bad = 1.0;
  params.p_exit_bad = 0.0;  // sticks
  params.loss_bad = 0.75;
  GilbertElliott chain(params);
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(chain.advance(0.03, rng), 0.75);
  EXPECT_TRUE(chain.in_bad_state());
  EXPECT_EQ(chain.transitions_to_bad(), 1u);
  EXPECT_DOUBLE_EQ(chain.advance(0.03, rng), 0.75);
  EXPECT_EQ(chain.transitions_to_bad(), 1u);  // still the same burst
}

TEST(GilbertElliottTest, BadStateNeverLowersBaseLoss) {
  GilbertElliottParams params;
  params.p_enter_bad = 1.0;
  params.p_exit_bad = 0.0;
  params.loss_bad = 0.1;
  GilbertElliott chain(params);
  sim::Rng rng(7);
  // Layered loss is max(base, state): a "bad" state below the tech's own
  // steady-state loss must not make the channel better.
  EXPECT_DOUBLE_EQ(chain.advance(0.4, rng), 0.4);
}

TEST(GilbertElliottTest, SameSeedSameTrajectory) {
  GilbertElliottParams params;  // defaults: stochastic both ways
  GilbertElliott x(params), y(params);
  sim::Rng rng_x(42), rng_y(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_DOUBLE_EQ(x.advance(0.03, rng_x), y.advance(0.03, rng_y));
    ASSERT_EQ(x.in_bad_state(), y.in_bad_state());
  }
  EXPECT_EQ(x.transitions_to_bad(), y.transitions_to_bad());
  EXPECT_GT(x.transitions_to_bad(), 0u);  // defaults do burst eventually
}

TEST(RandomScheduleTest, SameSeedSameSchedule) {
  RandomScheduleParams params;
  params.nodes = {1, 2, 3};
  params.technologies = {net::Technology::bluetooth, net::Technology::wlan};
  sim::Rng rng_x(9), rng_y(9);
  const Schedule x = random_schedule(rng_x, params);
  const Schedule y = random_schedule(rng_y, params);
  ASSERT_EQ(x.size(), y.size());
  ASSERT_EQ(x.bursts.size(), y.bursts.size());
  for (std::size_t i = 0; i < x.bursts.size(); ++i) {
    EXPECT_EQ(x.bursts[i].start, y.bursts[i].start);
    EXPECT_EQ(x.bursts[i].duration, y.bursts[i].duration);
    EXPECT_EQ(x.bursts[i].tech, y.bursts[i].tech);
  }
  for (std::size_t i = 0; i < x.blackouts.size(); ++i) {
    EXPECT_EQ(x.blackouts[i].node, y.blackouts[i].node);
    EXPECT_EQ(x.blackouts[i].start, y.blackouts[i].start);
  }
}

TEST(RandomScheduleTest, EveryWindowEndsInsideTheHorizon) {
  RandomScheduleParams params;
  params.horizon = sim::minutes(5);
  params.nodes = {1, 2};
  params.bursts = 10;
  params.outages = 10;
  params.latency_spikes = 10;
  params.signal_ramps = 10;
  params.blackouts = 10;
  sim::Rng rng(17);
  const Schedule schedule = random_schedule(rng, params);
  EXPECT_EQ(schedule.size(), 50u);
  for (const BurstLoss& b : schedule.bursts) {
    EXPECT_LE(b.start + b.duration, params.horizon);
  }
  for (const RadioOutage& o : schedule.outages) {
    EXPECT_LE(o.start + o.duration, params.horizon);
  }
  for (const LatencySpike& s : schedule.latency_spikes) {
    EXPECT_LE(s.start + s.duration, params.horizon);
  }
  for (const SignalRamp& r : schedule.signal_ramps) {
    EXPECT_LE(r.start + r.ramp + r.hold + r.recover, params.horizon);
  }
  for (const Blackout& b : schedule.blackouts) {
    EXPECT_LE(b.start + b.duration, params.horizon);
  }
}

}  // namespace
}  // namespace ph::fault
