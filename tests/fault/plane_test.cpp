// FaultPlane integration: every fault type actually bites the stack it
// targets, and the whole plane is deterministic — same seed, same faults,
// same metrics.
#include "net/medium.hpp"
#include "fault/plane.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::fault {
namespace {

using testutil::run_until;

net::TechProfile clean_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class PlaneTest : public ::testing::Test {
 protected:
  PlaneTest() : medium_(simulator_, sim::Rng(11)), plane_(medium_, sim::Rng(12)) {}

  net::NodeId add_node(const std::string& name, sim::Vec2 at,
                       net::TechProfile profile) {
    const net::NodeId id =
        medium_.add_node(name, std::make_unique<sim::StaticMobility>(at));
    medium_.add_adapter(id, profile);
    return id;
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  FaultPlane plane_;
};

TEST_F(PlaneTest, InstallsAndUninstallsItself) {
  EXPECT_EQ(medium_.fault_injector(), &plane_);
  {
    // A nested plane takes over, then hands back on destruction... no —
    // destruction clears only if it is still the installed injector.
    FaultPlane other(medium_, sim::Rng(13));
    EXPECT_EQ(medium_.fault_injector(), &other);
  }
  EXPECT_EQ(medium_.fault_injector(), nullptr);
}

TEST_F(PlaneTest, BurstWindowRaisesRetransmissionsThenEnds) {
  net::TechProfile bt = clean_bt();  // zero steady-state loss
  const net::NodeId a = add_node("a", {0, 0}, bt);
  const net::NodeId b = add_node("b", {2, 0}, bt);
  net::Link client, server;
  medium_.adapter(b, net::Technology::bluetooth)
      ->listen(5, [&](net::Link link) { server = link; });
  medium_.adapter(a, net::Technology::bluetooth)
      ->connect(b, 5, [&](Result<net::Link> link) {
        ASSERT_TRUE(link.ok());
        client = *link;
      });
  simulator_.run_until(sim::seconds(2));
  ASSERT_TRUE(client.valid());

  int received = 0;
  server.on_receive([&](BytesView) { ++received; });
  for (int i = 0; i < 50; ++i) client.send(to_bytes("x"));
  simulator_.run_until(sim::seconds(10));
  EXPECT_EQ(received, 50);
  const std::uint64_t clean_retx = medium_.stats().counter("retransmissions");
  EXPECT_EQ(clean_retx, 0u);  // lossless profile, no injector activity

  GilbertElliottParams model;
  model.p_enter_bad = 1.0;  // burst from the first frame
  model.p_exit_bad = 0.0;
  model.loss_bad = 0.5;
  plane_.begin_burst(net::Technology::bluetooth, model, sim::seconds(30));
  EXPECT_TRUE(plane_.burst_active(net::Technology::bluetooth));
  for (int i = 0; i < 50; ++i) client.send(to_bytes("y"));
  simulator_.run_until(sim::seconds(25));
  EXPECT_EQ(received, 100);  // link ARQ still delivers everything
  EXPECT_GT(medium_.stats().counter("retransmissions"), clean_retx);

  simulator_.run_until(sim::seconds(45));  // window over
  EXPECT_FALSE(plane_.burst_active(net::Technology::bluetooth));
  const obs::Snapshot stats = plane_.stats();
  EXPECT_EQ(stats.counter("bursts_started"), 1u);
  EXPECT_EQ(stats.counter("bursts_ended"), 1u);
  EXPECT_GE(stats.counter("burst_transitions_to_bad"), 1u);
}

TEST_F(PlaneTest, LatencySpikeDelaysDelivery) {
  const net::NodeId a = add_node("a", {0, 0}, clean_bt());
  const net::NodeId b = add_node("b", {2, 0}, clean_bt());
  net::Link client, server;
  medium_.adapter(b, net::Technology::bluetooth)
      ->listen(5, [&](net::Link link) { server = link; });
  medium_.adapter(a, net::Technology::bluetooth)
      ->connect(b, 5, [&](Result<net::Link> link) { client = *link; });
  simulator_.run_until(sim::seconds(2));
  ASSERT_TRUE(client.valid());

  sim::Time received_at = 0;
  server.on_receive([&](BytesView) { received_at = simulator_.now(); });

  sim::Time sent_at = simulator_.now();
  client.send(to_bytes("ping"));
  simulator_.run_until(simulator_.now() + sim::seconds(5));
  ASSERT_GT(received_at, sim::Time{0});
  const sim::Duration baseline = received_at - sent_at;

  plane_.begin_latency_spike(net::Technology::bluetooth,
                             sim::milliseconds(300), sim::seconds(20));
  received_at = 0;
  sent_at = simulator_.now();
  client.send(to_bytes("ping"));
  simulator_.run_until(simulator_.now() + sim::seconds(5));
  ASSERT_GT(received_at, sim::Time{0});
  EXPECT_GE(received_at - sent_at, baseline + sim::milliseconds(300));
  EXPECT_EQ(plane_.stats().counter("latency_spikes"), 1u);
}

TEST_F(PlaneTest, SignalRampFadesHoldsAndRecovers) {
  const net::NodeId a = add_node("a", {0, 0}, clean_bt());
  const net::NodeId b = add_node("b", {2, 0}, clean_bt());
  const net::TechProfile bt = clean_bt();
  const double healthy = medium_.signal(a, b, bt);
  ASSERT_GT(healthy, 0.9);  // 2 m apart, 10 m range

  SignalRamp ramp;
  ramp.node = b;
  ramp.start = sim::seconds(10);
  ramp.ramp = sim::seconds(4);
  ramp.hold = sim::seconds(10);
  ramp.recover = sim::seconds(4);
  ramp.floor = 0.0;
  plane_.begin_signal_ramp(ramp);

  simulator_.run_until(sim::seconds(12));  // halfway down the fade
  const double fading = medium_.signal(a, b, bt);
  EXPECT_LT(fading, healthy);
  EXPECT_GT(fading, 0.0);
  simulator_.run_until(sim::seconds(18));  // mid-hold
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bt), 0.0);
  simulator_.run_until(sim::seconds(40));  // fully recovered
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bt), healthy);
  EXPECT_EQ(plane_.stats().counter("signal_ramps"), 1u);
}

// The acceptance scenario: radios flap one at a time under a scheduled
// fault plan while a seamless session streams — the session hands over to
// the surviving radio and the receiver sees every message exactly once.
TEST(PlaneSessionTest, FlapDuringTransferHandsOverWithoutLoss) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(21));
  FaultPlane plane(medium, sim::Rng(22));

  net::TechProfile bt = clean_bt();
  net::TechProfile wlan = net::wlan_80211b();
  wlan.frame_loss = 0.0;

  peerhood::StackConfig config;
  config.radios = {bt, wlan};
  config.device_name = "a";
  peerhood::Stack a(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                    config);
  config.device_name = "b";
  peerhood::Stack b(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}),
                    config);

  std::vector<int> received;
  std::shared_ptr<peerhood::Connection> server;
  ASSERT_TRUE(b.library()
                  .register_service("Sink", {},
                                    [&](peerhood::Connection connection) {
                                      server =
                                          std::make_shared<peerhood::Connection>(
                                              std::move(connection));
                                      server->on_message([&](BytesView data) {
                                        received.push_back(
                                            std::stoi(to_text(data)));
                                      });
                                    })
                  .ok());
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        auto device = a.daemon().device(b.id());
        return device.ok() && device->find_service("Sink") != nullptr;
      },
      sim::minutes(1)));

  peerhood::ConnectOptions options;
  options.resume_deadline = sim::seconds(30);
  peerhood::Connection client;
  a.library().connect(b.id(), "Sink", options,
                      [&](Result<peerhood::Connection> result) {
                        ASSERT_TRUE(result.ok());
                        client = *result;
                      });
  ASSERT_TRUE(
      run_until(simulator, [&] { return client.valid(); }, sim::seconds(10)));

  constexpr int kMessages = 30;
  int sent = 0;
  const sim::Time stream_start = simulator.now();
  std::function<void()> pump = [&] {
    if (sent >= kMessages || !client.open()) return;
    client.send(to_bytes(std::to_string(sent++)));
    simulator.schedule(sim::seconds(1), pump);
  };
  pump();

  // Alternate outages on b's two radios, one at a time — whichever link
  // the session lives on goes down at some point, so it must hand over.
  Schedule schedule;
  const sim::Time base = simulator.now();
  for (int i = 0; i < 4; ++i) {
    RadioOutage outage;
    outage.node = b.id();
    outage.tech = (i % 2 == 0) ? net::Technology::bluetooth
                               : net::Technology::wlan;
    outage.start = base + sim::seconds(4) + sim::seconds(6) * i;
    outage.duration = sim::seconds(4);
    schedule.outages.push_back(outage);
  }
  plane.load(schedule);

  simulator.run_until(stream_start + sim::minutes(2));

  EXPECT_TRUE(client.open());
  EXPECT_GE(client.handover_count(), 1);
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], static_cast<int>(i)) << "loss or duplication";
  }
  const obs::Snapshot stats = plane.stats();
  EXPECT_EQ(stats.counter("outages_started"), 4u);
  EXPECT_EQ(stats.counter("outages_ended"), 4u);
}

// A fading radio triggers a proactive handover before the link dies: the
// session notices the weak signal and moves to the healthier radio.
TEST(PlaneSessionTest, SignalRampDrivesProactiveHandover) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(31));
  FaultPlane plane(medium, sim::Rng(32));

  net::TechProfile bt = clean_bt();
  net::TechProfile wlan = net::wlan_80211b();
  wlan.frame_loss = 0.0;

  // Start with WLAN off so the session is pinned to the (soon weak)
  // Bluetooth link; 9 m is near BT's 10 m edge, so signal is already low.
  peerhood::StackConfig config;
  config.radios = {bt, wlan};
  config.device_name = "a";
  peerhood::Stack a(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                    config);
  config.device_name = "b";
  peerhood::Stack b(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{9, 0}),
                    config);
  (void)a.set_radio_powered(net::Technology::wlan, false);
  (void)b.set_radio_powered(net::Technology::wlan, false);

  std::shared_ptr<peerhood::Connection> server;
  ASSERT_TRUE(b.library()
                  .register_service("Sink", {},
                                    [&](peerhood::Connection connection) {
                                      server =
                                          std::make_shared<peerhood::Connection>(
                                              std::move(connection));
                                    })
                  .ok());
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        auto device = a.daemon().device(b.id());
        return device.ok() && device->find_service("Sink") != nullptr;
      },
      sim::minutes(1)));

  peerhood::Connection client;
  a.library().connect(b.id(), "Sink", {},
                      [&](Result<peerhood::Connection> result) {
                        ASSERT_TRUE(result.ok());
                        client = *result;
                      });
  ASSERT_TRUE(
      run_until(simulator, [&] { return client.valid(); }, sim::seconds(10)));
  ASSERT_EQ(client.handover_count(), 0);

  // Both WLAN radios come back; then b starts fading. The per-node factor
  // hits every technology, but BT at 9/10 m has so little margin that it
  // drops below the weak-signal threshold while WLAN stays clearly better.
  (void)a.set_radio_powered(net::Technology::wlan, true);
  (void)b.set_radio_powered(net::Technology::wlan, true);
  SignalRamp ramp;
  ramp.node = b.id();
  ramp.start = simulator.now() + sim::seconds(2);
  ramp.ramp = sim::seconds(5);
  ramp.hold = sim::seconds(20);
  ramp.recover = sim::seconds(5);
  ramp.floor = 0.5;
  plane.begin_signal_ramp(ramp);

  ASSERT_TRUE(run_until(
      simulator, [&] { return client.handover_count() >= 1; },
      sim::minutes(1)));
  EXPECT_TRUE(client.open());
}

// Blackout: the daemon cold-restarts, its neighbour table dies with it
// (disappear events carry GoneCause::blackout), and re-discovery rebuilds
// the neighbourhood afterwards.
TEST(PlaneSessionTest, BlackoutRestartsDaemonAndRebuildsNeighbourhood) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(41));
  FaultPlane plane(medium, sim::Rng(42));

  peerhood::StackConfig config;
  config.radios = {clean_bt()};
  config.device_name = "a";
  peerhood::Stack a(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                    config);
  config.device_name = "b";
  peerhood::Stack b(medium,
                    std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}),
                    config);
  plane.set_device_hooks(b.id(), {.shutdown = [&] { b.blackout(); },
                                  .restart = [&] { b.restart(); }});

  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        return a.daemon().device(b.id()).ok() &&
               b.daemon().device(a.id()).ok();
      },
      sim::minutes(1)));

  // b's own view: the blackout wipes its table with cause=blackout.
  std::vector<peerhood::GoneCause> b_causes;
  b.daemon().monitor_all([&](const peerhood::NeighbourEvent& event) {
    if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) {
      b_causes.push_back(event.cause);
    }
  });
  // a's view: b goes silent and is evicted by missed pings.
  bool a_lost_b = false;
  a.daemon().monitor_all([&](const peerhood::NeighbourEvent& event) {
    if (event.kind == peerhood::NeighbourEvent::Kind::disappeared &&
        event.device.id == b.id()) {
      a_lost_b = true;
    }
  });

  plane.begin_blackout(b.id(), sim::seconds(30));
  EXPECT_FALSE(b.daemon().running());
  ASSERT_TRUE(run_until(simulator, [&] { return a_lost_b; }, sim::minutes(1)));

  // The wipe notification fires at cold boot — a dead daemon cannot speak.
  ASSERT_TRUE(run_until(
      simulator, [&] { return !b_causes.empty(); }, sim::minutes(1)));
  ASSERT_EQ(b_causes.size(), 1u);
  EXPECT_EQ(b_causes[0], peerhood::GoneCause::blackout);

  // After the restart both sides re-discover each other from scratch.
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        return b.daemon().running() && a.daemon().device(b.id()).ok() &&
               b.daemon().device(a.id()).ok();
      },
      sim::minutes(3)));
  const obs::Snapshot stats = plane.stats();
  EXPECT_EQ(stats.counter("blackouts_started"), 1u);
  EXPECT_EQ(stats.counter("blackouts_ended"), 1u);
}

// The determinism guarantee behind bench/chaos_soak: identical seeds and
// schedule yield identical fault.* and peerhood.* metric snapshots.
TEST(PlaneDeterminismTest, SameSeedSameMetrics) {
  struct RunResult {
    obs::Snapshot fault;
    obs::Snapshot peerhood;
  };
  const auto run_world = [](std::uint64_t seed) -> RunResult {
    sim::Simulator simulator;
    net::Medium medium(simulator, sim::Rng(seed));
    FaultPlane plane(medium, sim::Rng(seed ^ 0xFA17));

    net::TechProfile bt = net::bluetooth_2_0();
    bt.inquiry_detect_prob = 1.0;
    peerhood::StackConfig config;
    config.radios = {bt, net::wlan_80211b()};
    std::vector<std::unique_ptr<peerhood::Stack>> stacks;
    std::vector<net::NodeId> nodes;
    for (int i = 0; i < 3; ++i) {
      config.device_name = "dev" + std::to_string(i);
      stacks.push_back(std::make_unique<peerhood::Stack>(
          medium,
          std::make_unique<sim::StaticMobility>(
              sim::Vec2{static_cast<double>(2 * i), 0}),
          config));
      nodes.push_back(stacks.back()->id());
    }
    for (auto& stack : stacks) {
      peerhood::Stack* s = stack.get();
      plane.set_device_hooks(s->id(), {.shutdown = [s] { s->blackout(); },
                                       .restart = [s] { s->restart(); }});
    }

    RandomScheduleParams params;
    params.horizon = sim::minutes(4);
    params.nodes = nodes;
    params.technologies = {net::Technology::bluetooth, net::Technology::wlan};
    sim::Rng schedule_rng(seed + 1);
    plane.load(random_schedule(schedule_rng, params));

    simulator.run_until(sim::minutes(4));
    return {medium.registry().snapshot("fault."),
            medium.registry().snapshot("peerhood.")};
  };

  const RunResult first = run_world(77);
  const RunResult second = run_world(77);
  EXPECT_EQ(first.fault, second.fault);
  EXPECT_EQ(first.peerhood, second.peerhood);
  // Sanity: the schedule actually did something in both runs.
  EXPECT_FALSE(first.fault.empty());
  EXPECT_GT(first.peerhood.counter("daemon.d1.inquiries_started"), 0u);

  const RunResult other = run_world(78);
  EXPECT_NE(first.fault, other.fault);  // different seed, different story
}

}  // namespace
}  // namespace ph::fault
