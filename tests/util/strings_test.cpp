#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace ph {
namespace {

TEST(ToLowerTest, LowersAscii) { EXPECT_EQ(to_lower("FooTBAll"), "football"); }

TEST(ToLowerTest, LeavesNonLetters) {
  EXPECT_EQ(to_lower("A1-b2 C3"), "a1-b2 c3");
}

TEST(ToLowerTest, EmptyString) { EXPECT_EQ(to_lower(""), ""); }

TEST(TrimTest, TrimsBothEnds) { EXPECT_EQ(trim("  hi  "), "hi"); }

TEST(TrimTest, TrimsTabsAndNewlines) { EXPECT_EQ(trim("\t\nhi\r\n"), "hi"); }

TEST(TrimTest, AllWhitespaceBecomesEmpty) { EXPECT_EQ(trim("   \t "), ""); }

TEST(TrimTest, NoWhitespaceUnchanged) { EXPECT_EQ(trim("abc"), "abc"); }

TEST(SplitTest, SplitsOnSeparator) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(SplitTest, TrailingSeparatorYieldsEmpty) {
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(JoinTest, SingleElement) { EXPECT_EQ(join({"a"}, ","), "a"); }

TEST(JoinTest, EmptyVector) { EXPECT_EQ(join({}, ","), ""); }

TEST(JoinSplitTest, RoundTrip) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(split(join(parts, "|"), '|'), parts);
}

TEST(NormalizeInterestTest, LowercasesAndTrims) {
  EXPECT_EQ(normalize_interest("  Football "), "football");
}

TEST(NormalizeInterestTest, SqueezesInnerWhitespace) {
  EXPECT_EQ(normalize_interest("England   Football"), "england football");
}

TEST(NormalizeInterestTest, TabsCountAsWhitespace) {
  EXPECT_EQ(normalize_interest("rock\t\tmusic"), "rock music");
}

TEST(NormalizeInterestTest, EmptyStaysEmpty) {
  EXPECT_EQ(normalize_interest("   "), "");
}

TEST(NormalizeInterestTest, Idempotent) {
  const std::string once = normalize_interest(" Ice  Hockey ");
  EXPECT_EQ(normalize_interest(once), once);
}

}  // namespace
}  // namespace ph
