#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ph {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink([this](std::string_view line) {
      lines_.emplace_back(line);
    });
    Logger::instance().set_level(LogLevel::trace);
  }

  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(LogLevel::warn);
    Logger::instance().set_clock(nullptr);
  }

  std::vector<std::string> lines_;
};

TEST_F(LogTest, WritesFormattedLine) {
  PH_LOG(info, "test") << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("INFO"), std::string::npos);
  EXPECT_NE(lines_[0].find("[test]"), std::string::npos);
  EXPECT_NE(lines_[0].find("hello 42"), std::string::npos);
}

TEST_F(LogTest, LevelFiltersLowSeverity) {
  Logger::instance().set_level(LogLevel::warn);
  PH_LOG(debug, "test") << "invisible";
  PH_LOG(warn, "test") << "visible";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("visible"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::off);
  PH_LOG(error, "test") << "nope";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LogTest, ClockPrefixesVirtualTime) {
  Logger::instance().set_clock([] { return std::uint64_t{2'500'000}; });
  PH_LOG(info, "test") << "stamped";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("2.500000"), std::string::npos);
}

TEST_F(LogTest, NoClockShowsDash) {
  PH_LOG(info, "test") << "unstamped";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("-"), std::string::npos);
}

TEST_F(LogTest, DisabledLevelDoesNotEvaluateStream) {
  Logger::instance().set_level(LogLevel::error);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 1;
  };
  PH_LOG(debug, "test") << count();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace ph
