#include "util/arena.hpp"

#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ph::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena;
  void* a = arena.allocate(16);
  void* b = arena.allocate(16);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::max_align_t),
            0u);
  void* c = arena.allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Writes to one allocation must not clobber another.
  std::memset(a, 0xAA, 16);
  std::memset(b, 0xBB, 16);
  EXPECT_EQ(static_cast<unsigned char*>(a)[15], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xBB);
}

TEST(Arena, GrowsBeyondOneChunkAndOversizedRequestsWork) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(64);
    std::memset(p, i, 64);
  }
  EXPECT_GT(arena.chunk_count(), 1u);
  // A request larger than the chunk size gets its own chunk.
  void* big = arena.allocate(16 * 1024);
  std::memset(big, 0xCC, 16 * 1024);
}

TEST(Arena, ResetKeepsChunksAndReusesMemory) {
  Arena arena(1024);
  for (int i = 0; i < 50; ++i) arena.allocate(64);
  const std::size_t chunks = arena.chunk_count();
  EXPECT_EQ(arena.epoch(), 0u);
  arena.reset();
  EXPECT_EQ(arena.epoch(), 1u);
  EXPECT_EQ(arena.chunk_count(), chunks) << "reset must keep the chunks";
  // The next epoch's allocations fit in the recycled chunks — no growth.
  for (int i = 0; i < 50; ++i) arena.allocate(64);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, AllocateArrayDefaultConstructs) {
  Arena arena;
  int* values = arena.allocate_array<int>(256);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(values[i], 0);
  std::iota(values, values + 256, 0);
  EXPECT_EQ(values[255], 255);
}

TEST(BufferPool, RecyclesBuffersAfterRelease) {
  BufferPool pool;
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  {
    PooledBuffer buf = pool.acquire(payload, sizeof payload);
    EXPECT_EQ(buf.size(), sizeof payload);
    EXPECT_EQ(buf.data()[4], 5);
    EXPECT_EQ(pool.fresh(), 1u);
  }
  EXPECT_EQ(pool.idle(), 1u);  // returned to the free list
  {
    PooledBuffer buf = pool.acquire(payload, 3);
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(pool.reused(), 1u) << "second acquire must reuse the buffer";
    EXPECT_EQ(pool.fresh(), 1u);
  }
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(BufferPool, WarmPoolStopsAllocatingFreshBuffers) {
  BufferPool pool;
  std::vector<std::uint8_t> payload(512, 0x5A);
  // Warm with 4 concurrent buffers.
  {
    std::vector<PooledBuffer> in_flight;
    for (int i = 0; i < 4; ++i) {
      in_flight.push_back(pool.acquire(payload.data(), payload.size()));
    }
  }
  const std::uint64_t fresh_after_warm = pool.fresh();
  for (int round = 0; round < 100; ++round) {
    PooledBuffer a = pool.acquire(payload.data(), payload.size());
    PooledBuffer b = pool.acquire(payload.data(), payload.size());
    EXPECT_EQ(a.data()[0], 0x5A);
    EXPECT_EQ(b.data()[511], 0x5A);
  }
  EXPECT_EQ(pool.fresh(), fresh_after_warm)
      << "steady-state acquire/release must not create new buffers";
}

TEST(BufferPool, HandleSurvivesPoolDestruction) {
  // Delivery closures can outlive the Medium (and thus its pool): the
  // handle must then free its storage instead of touching the dead pool.
  PooledBuffer orphan;
  {
    BufferPool pool;
    const std::uint8_t payload[] = {9, 8, 7};
    orphan = pool.acquire(payload, sizeof payload);
  }
  EXPECT_EQ(orphan.size(), 3u);
  EXPECT_EQ(orphan.data()[0], 9);
  // Destruction of `orphan` after the pool died must be clean (ASan-checked
  // in the sanitize preset).
}

TEST(BufferPool, MovedFromHandleIsEmpty) {
  BufferPool pool;
  const std::uint8_t payload[] = {1, 2};
  PooledBuffer a = pool.acquire(payload, sizeof payload);
  PooledBuffer b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  b = pool.acquire(payload, 1);  // move-assign over a full handle releases it
  EXPECT_EQ(b.size(), 1u);
  EXPECT_GE(pool.idle() + 1, 1u);
}

}  // namespace
}  // namespace ph::util
