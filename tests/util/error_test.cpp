#include "util/error.hpp"

#include <gtest/gtest.h>

namespace ph {
namespace {

TEST(ErrcTest, EveryCodeHasAName) {
  // A new Errc without a to_string entry would return "unknown".
  for (int code = 0; code <= static_cast<int>(Errc::state_error); ++code) {
    EXPECT_NE(to_string(static_cast<Errc>(code)), "unknown")
        << "code " << code << " is missing a name";
  }
}

TEST(ErrcTest, NamesAreStable) {
  EXPECT_EQ(to_string(Errc::ok), "ok");
  EXPECT_EQ(to_string(Errc::device_unreachable), "device_unreachable");
  EXPECT_EQ(to_string(Errc::no_such_member), "no_such_member");
  EXPECT_EQ(to_string(Errc::not_trusted), "not_trusted");
  EXPECT_EQ(to_string(Errc::timeout), "timeout");
}

TEST(ErrorTest, ToStringWithoutMessage) {
  EXPECT_EQ(Error(Errc::timeout).to_string(), "timeout");
}

TEST(ErrorTest, ToStringWithMessage) {
  EXPECT_EQ(Error(Errc::timeout, "rpc").to_string(), "timeout: rpc");
}

TEST(ErrorTest, DefaultIsOk) {
  Error e;
  EXPECT_EQ(e.code, Errc::ok);
  EXPECT_TRUE(e.message.empty());
}

}  // namespace
}  // namespace ph
