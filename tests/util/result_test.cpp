#include "util/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ph {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error{Errc::invalid_argument, "must be positive"};
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Error{Errc::timeout, "too slow"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::timeout);
  EXPECT_EQ(r.error().message, "too slow");
}

TEST(ResultTest, ImplicitFromErrc) {
  Result<int> r = Errc::unknown_device;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::unknown_device);
}

TEST(ResultTest, ValueOrReturnsValue) {
  EXPECT_EQ(parse_positive(7).value_or(-1), 7);
}

TEST(ResultTest, ValueOrReturnsFallback) {
  EXPECT_EQ(parse_positive(-3).value_or(-1), -1);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MapTransformsValue) {
  auto doubled = parse_positive(21).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 42);
}

TEST(ResultTest, MapForwardsError) {
  auto doubled = parse_positive(0).map([](int v) { return v * 2; });
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.error().code, Errc::invalid_argument);
}

TEST(ResultTest, MapCanChangeType) {
  auto text = parse_positive(5).map([](int v) { return std::to_string(v); });
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "5");
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> taken = std::move(r).value();
  EXPECT_EQ(*taken, 9);
}

TEST(ResultVoidTest, DefaultIsOk) {
  Result<void> r = ok();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.error().code, Errc::ok);
}

TEST(ResultVoidTest, CarriesError) {
  Result<void> r = Error{Errc::not_trusted, "no"};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::not_trusted);
}

TEST(ResultVoidTest, FromBareErrc) {
  Result<void> r = Errc::auth_failed;
  EXPECT_FALSE(r.ok());
}

TEST(ResultTest, AccessingValueOfErrorThrows) {
  Result<int> r = Errc::timeout;
  EXPECT_THROW((void)r.value(), std::bad_variant_access);
}

TEST(ResultTest, ErrorEqualityIgnoresMessage) {
  EXPECT_EQ(Error(Errc::timeout, "a"), Error(Errc::timeout, "b"));
  EXPECT_FALSE(Error(Errc::timeout) == Error(Errc::connection_lost));
}

}  // namespace
}  // namespace ph
