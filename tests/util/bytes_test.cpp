#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace ph {
namespace {

TEST(BytesTest, ToBytesCopiesText) {
  Bytes b = to_bytes("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(BytesTest, ToTextRoundTrips) {
  EXPECT_EQ(to_text(to_bytes("hello world")), "hello world");
}

TEST(BytesTest, EmptyRoundTrip) {
  EXPECT_EQ(to_text(to_bytes("")), "");
}

TEST(BytesTest, BinaryBytesSurviveToText) {
  Bytes b{0x00, 0xff, 0x7f};
  std::string s = to_text(b);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(static_cast<unsigned char>(s[1]), 0xff);
}

TEST(HexDumpTest, FormatsBytes) {
  Bytes b{0x0a, 0x1f, 0x00};
  EXPECT_EQ(hex_dump(b), "0a 1f 00");
}

TEST(HexDumpTest, EmptyInput) { EXPECT_EQ(hex_dump(Bytes{}), ""); }

TEST(HexDumpTest, TruncatesWithEllipsis) {
  Bytes b(100, 0xab);
  std::string dump = hex_dump(b, 4);
  EXPECT_EQ(dump, "ab ab ab ab ...");
}

TEST(HexDumpTest, ExactLimitNoEllipsis) {
  Bytes b(4, 0x01);
  EXPECT_EQ(hex_dump(b, 4), "01 01 01 01");
}

}  // namespace
}  // namespace ph
