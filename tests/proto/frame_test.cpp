#include "proto/frame.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ph::proto {
namespace {

TEST(FrameTest, RoundTripsEveryKind) {
  const FrameKind kinds[] = {FrameKind::datagram, FrameKind::channel_open,
                             FrameKind::channel_accept,
                             FrameKind::channel_reject,
                             FrameKind::channel_data};
  for (FrameKind kind : kinds) {
    const Bytes payload = to_bytes("payload for " + std::string(to_string(kind)));
    const Bytes wire = encode_frame(kind, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

    auto decoded = decode_frame(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
    EXPECT_EQ(decoded->kind, kind);
    EXPECT_EQ(decoded->version, kFrameVersion);
    EXPECT_EQ(to_text(decoded->payload), to_text(payload));
  }
}

TEST(FrameTest, RoundTripsEmptyPayload) {
  const Bytes wire = encode_frame(FrameKind::channel_data, {});
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  auto decoded = decode_frame(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameTest, HeaderLayoutIsLittleEndianMagicVersionKind) {
  const Bytes wire = encode_frame(FrameKind::datagram, to_bytes("x"));
  ASSERT_GE(wire.size(), kFrameHeaderSize);
  EXPECT_EQ(wire[0], 0x48);  // 'H' — low byte of 0x5048
  EXPECT_EQ(wire[1], 0x50);  // 'P'
  EXPECT_EQ(wire[2], kFrameVersion);
  EXPECT_EQ(wire[3], static_cast<std::uint8_t>(FrameKind::datagram));
}

TEST(FrameTest, RejectsBadMagic) {
  Bytes wire = encode_frame(FrameKind::datagram, to_bytes("x"));
  wire[0] ^= 0xFF;
  auto decoded = decode_frame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::protocol_error);
}

TEST(FrameTest, RejectsFutureVersion) {
  Bytes wire = encode_frame(FrameKind::datagram, to_bytes("x"));
  wire[2] = kFrameVersion + 1;
  auto decoded = decode_frame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::protocol_error);
}

TEST(FrameTest, RejectsUnknownKind) {
  Bytes wire = encode_frame(FrameKind::datagram, to_bytes("x"));
  wire[3] = 0xEE;
  auto decoded = decode_frame(wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::protocol_error);
}

TEST(FrameTest, RejectsTruncatedHeader) {
  const Bytes wire = encode_frame(FrameKind::datagram, to_bytes("x"));
  for (std::size_t len = 0; len < kFrameHeaderSize; ++len) {
    auto decoded = decode_frame(BytesView(wire.data(), len));
    ASSERT_FALSE(decoded.ok()) << "accepted a " << len << "-byte frame";
    EXPECT_EQ(decoded.error().code, Errc::protocol_error);
  }
}

}  // namespace
}  // namespace ph::proto
