#include "proto/messages.hpp"

#include <gtest/gtest.h>

namespace ph::proto {
namespace {

ProfileData sample_profile() {
  ProfileData p;
  p.member_id = "alice";
  p.display_name = "Alice A.";
  p.age = 24;
  p.about = "studies networks";
  p.interests = {"football", "movies"};
  p.trusted_friends = {"bob"};
  p.comments = {{"bob", "nice profile!", 123456}};
  p.visitors = {"bob", "carol"};
  return p;
}

TEST(RequestCodecTest, MinimalRoundTrip) {
  Request request;
  request.op = Opcode::ps_get_online_member_list;
  request.requester = "alice";
  auto decoded = decode_request(encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
}

TEST(RequestCodecTest, FullRoundTrip) {
  Request request;
  request.op = Opcode::ps_msg;
  request.requester = "alice";
  request.member_id = "bob";
  request.argument = "unused";
  request.mail = {"bob", "alice", "hi", "see you at the café", 42};
  auto decoded = decode_request(encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
}

class AllOpcodesTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(AllOpcodesTest, RequestRoundTripsForEveryOpcode) {
  Request request;
  request.op = GetParam();
  request.requester = "r";
  request.member_id = "m";
  request.argument = "a";
  auto decoded = decode_request(encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, GetParam());
}

TEST_P(AllOpcodesTest, ResponseRoundTripsForEveryOpcode) {
  Response response;
  response.op = GetParam();
  response.status = Status::ok;
  response.names = {"x", "y"};
  auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, GetParam());
  EXPECT_EQ(decoded->names, response.names);
}

TEST_P(AllOpcodesTest, OpcodeHasWireName) {
  EXPECT_NE(to_string(GetParam()), "PS_UNKNOWN");
}

INSTANTIATE_TEST_SUITE_P(
    Table6, AllOpcodesTest,
    ::testing::Values(
        Opcode::ps_get_online_member_list, Opcode::ps_get_interest_list,
        Opcode::ps_get_interested_member_list, Opcode::ps_get_profile,
        Opcode::ps_add_profile_comment, Opcode::ps_check_member_id,
        Opcode::ps_msg, Opcode::ps_get_shared_content,
        Opcode::ps_get_trusted_friends, Opcode::ps_check_trusted,
        Opcode::ps_get_content));

TEST(ResponseCodecTest, ProfilePayloadRoundTrip) {
  Response response;
  response.op = Opcode::ps_get_profile;
  response.profile = sample_profile();
  auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->profile, response.profile);
}

TEST(ResponseCodecTest, SharedItemsRoundTrip) {
  Response response;
  response.op = Opcode::ps_get_shared_content;
  response.items = {{"song.mp3", 4'000'000}, {"notes.txt", 1234}};
  auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->items, response.items);
}

TEST(ResponseCodecTest, ContentBytesRoundTrip) {
  Response response;
  response.op = Opcode::ps_get_content;
  response.content = Bytes(1000, 0x5a);
  auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->content, response.content);
}

class AllStatusesTest : public ::testing::TestWithParam<Status> {};

TEST_P(AllStatusesTest, StatusRoundTrips) {
  Response response;
  response.status = GetParam();
  auto decoded = decode_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->status, GetParam());
}

TEST_P(AllStatusesTest, StatusHasWireName) {
  EXPECT_NE(to_string(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(ThesisStatuses, AllStatusesTest,
                         ::testing::Values(Status::ok, Status::no_members_yet,
                                           Status::not_trusted_yet,
                                           Status::successfully_written,
                                           Status::unsuccessful));

TEST(StatusNamesTest, MatchThesisWireStrings) {
  EXPECT_EQ(to_string(Status::no_members_yet), "NO_MEMBERS_YET");
  EXPECT_EQ(to_string(Status::not_trusted_yet), "NOT_TRUSTED_YET");
  EXPECT_EQ(to_string(Status::successfully_written), "SUCCESSFULLY_WRITTEN");
  EXPECT_EQ(to_string(Status::unsuccessful), "UNSUCCESSFULL");
}

TEST(OpcodeNamesTest, MatchThesisTable6) {
  EXPECT_EQ(to_string(Opcode::ps_get_online_member_list),
            "PS_GETONLINEMEMBERLIST");
  EXPECT_EQ(to_string(Opcode::ps_get_interest_list), "PS_GETINTERESTLIST");
  EXPECT_EQ(to_string(Opcode::ps_get_interested_member_list),
            "PS_GETINTERESTEDMEMBERLIST");
  EXPECT_EQ(to_string(Opcode::ps_get_profile), "PS_GETPROFILE");
  EXPECT_EQ(to_string(Opcode::ps_add_profile_comment), "PS_ADDPROFILECOMMENT");
  EXPECT_EQ(to_string(Opcode::ps_check_member_id), "PS_CHECKMEMBERID");
  EXPECT_EQ(to_string(Opcode::ps_msg), "PS_MSG");
  EXPECT_EQ(to_string(Opcode::ps_get_shared_content), "PS_SHAREDCONTENT");
}

TEST(DecodeFailureTest, EmptyRequestRejected) {
  EXPECT_FALSE(decode_request(BytesView{}).ok());
}

TEST(DecodeFailureTest, UnknownOpcodeRejected) {
  Bytes data = encode(Request{});
  data[0] = 200;  // out-of-range opcode
  auto decoded = decode_request(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::protocol_error);
}

TEST(DecodeFailureTest, ZeroOpcodeRejected) {
  Bytes data = encode(Request{});
  data[0] = 0;
  EXPECT_FALSE(decode_request(data).ok());
}

TEST(DecodeFailureTest, TruncatedRequestRejected) {
  Bytes data = encode(Request{proto::Opcode::ps_get_profile, "alice", "bob",
                              "", {}});
  data.resize(data.size() / 2);
  EXPECT_FALSE(decode_request(data).ok());
}

TEST(DecodeFailureTest, TruncatedResponseRejected) {
  Response response;
  response.profile = sample_profile();
  Bytes data = encode(response);
  data.resize(data.size() - 3);
  EXPECT_FALSE(decode_response(data).ok());
}

TEST(DecodeFailureTest, UnknownStatusRejected) {
  Bytes data = encode(Response{});
  data[1] = 99;
  EXPECT_FALSE(decode_response(data).ok());
}

TEST(DecodeFailureTest, HostileCommentCountRejected) {
  // Craft a response whose comment count is absurd relative to the
  // remaining bytes.
  Response response;
  response.profile = sample_profile();
  Bytes data = encode(response);
  // Find nothing fancy: just truncating to a prefix long enough to reach
  // the comment count but not the comments exercises the guard indirectly.
  data.resize(data.size() - 1);
  EXPECT_FALSE(decode_response(data).ok());
}

}  // namespace
}  // namespace ph::proto
