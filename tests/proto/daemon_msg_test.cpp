#include "proto/daemon.hpp"

#include <gtest/gtest.h>

namespace ph::proto {
namespace {

TEST(DaemonMessageTest, PingRoundTrip) {
  DaemonMessage m;
  m.op = DaemonOp::ping;
  m.token = 77;
  m.device_name = "laptop";
  auto decoded = decode_daemon_message(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(DaemonMessageTest, ServiceReplyRoundTrip) {
  DaemonMessage m;
  m.op = DaemonOp::service_reply;
  m.token = 3;
  m.device_name = "desktop-pc1";
  m.services = {{"PeerHoodCommunity", 1000, {{"type", "social"}}},
                {"FitnessSystem", 1001, {}}};
  auto decoded = decode_daemon_message(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(DaemonMessageTest, EmptyServiceListRoundTrip) {
  DaemonMessage m;
  m.op = DaemonOp::service_query;
  auto decoded = decode_daemon_message(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->services.empty());
}

class DaemonOpsTest : public ::testing::TestWithParam<DaemonOp> {};

TEST_P(DaemonOpsTest, EveryOpRoundTrips) {
  DaemonMessage m;
  m.op = GetParam();
  m.token = 1;
  auto decoded = decode_daemon_message(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->op, GetParam());
}

TEST_P(DaemonOpsTest, EveryOpHasName) {
  EXPECT_NE(to_string(GetParam()), "?");
}

INSTANTIATE_TEST_SUITE_P(AllOps, DaemonOpsTest,
                         ::testing::Values(DaemonOp::service_query,
                                           DaemonOp::service_reply,
                                           DaemonOp::ping, DaemonOp::pong));

TEST(DaemonMessageTest, ManyAttributesRoundTrip) {
  DaemonMessage m;
  m.op = DaemonOp::service_reply;
  ServiceInfoData s;
  s.name = "svc";
  s.port = 42;
  for (int i = 0; i < 20; ++i) {
    s.attributes["key" + std::to_string(i)] = "value" + std::to_string(i);
  }
  m.services.push_back(s);
  auto decoded = decode_daemon_message(encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->services[0].attributes.size(), 20u);
}

TEST(DaemonMessageTest, UnknownOpRejected) {
  Bytes data = encode(DaemonMessage{});
  data[0] = 99;
  auto decoded = decode_daemon_message(data);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::protocol_error);
}

TEST(DaemonMessageTest, TruncatedMessageRejected) {
  DaemonMessage m;
  m.op = DaemonOp::service_reply;
  m.services = {{"svc", 1, {{"a", "b"}}}};
  Bytes data = encode(m);
  data.resize(data.size() - 2);
  EXPECT_FALSE(decode_daemon_message(data).ok());
}

TEST(DaemonMessageTest, EmptyInputRejected) {
  EXPECT_FALSE(decode_daemon_message(BytesView{}).ok());
}

}  // namespace
}  // namespace ph::proto
