#include "proto/codec.hpp"

#include <gtest/gtest.h>

namespace ph::proto {
namespace {

TEST(CodecTest, U8RoundTrip) {
  Writer w;
  w.u8(0xab);
  Reader r(w.data());
  auto v = r.u8();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xab);
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecTest, U16RoundTrip) {
  Writer w;
  w.u16(0xbeef);
  Reader r(w.data());
  EXPECT_EQ(r.u16().value(), 0xbeef);
}

TEST(CodecTest, U32RoundTrip) {
  Writer w;
  w.u32(0xdeadbeef);
  Reader r(w.data());
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
}

TEST(CodecTest, U64RoundTrip) {
  Writer w;
  w.u64(0x0123456789abcdefULL);
  Reader r(w.data());
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
}

TEST(CodecTest, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.data().size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(CodecTest, StringRoundTrip) {
  Writer w;
  w.str("PeerHood");
  Reader r(w.data());
  EXPECT_EQ(r.str().value(), "PeerHood");
}

TEST(CodecTest, EmptyStringRoundTrip) {
  Writer w;
  w.str("");
  Reader r(w.data());
  EXPECT_EQ(r.str().value(), "");
}

TEST(CodecTest, StringWithEmbeddedNull) {
  Writer w;
  w.str(std::string("a\0b", 3));
  Reader r(w.data());
  EXPECT_EQ(r.str().value(), std::string("a\0b", 3));
}

TEST(CodecTest, BytesRoundTrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3, 255});
  Reader r(w.data());
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3, 255}));
}

TEST(CodecTest, StrListRoundTrip) {
  Writer w;
  w.str_list({"a", "bb", "", "dddd"});
  Reader r(w.data());
  EXPECT_EQ(r.str_list().value(),
            (std::vector<std::string>{"a", "bb", "", "dddd"}));
}

TEST(CodecTest, EmptyStrList) {
  Writer w;
  w.str_list({});
  Reader r(w.data());
  EXPECT_TRUE(r.str_list().value().empty());
}

TEST(CodecTest, MixedSequenceRoundTrip) {
  Writer w;
  w.u8(7);
  w.str("x");
  w.u64(99);
  w.str_list({"p", "q"});
  Reader r(w.data());
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.str().value(), "x");
  EXPECT_EQ(r.u64().value(), 99u);
  EXPECT_EQ(r.str_list().value(), (std::vector<std::string>{"p", "q"}));
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecTest, TruncatedIntFails) {
  Bytes data{0x01, 0x02};
  Reader r(data);
  auto v = r.u32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, Errc::protocol_error);
}

TEST(CodecTest, TruncatedStringFails) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, none do
  Reader r(w.data());
  EXPECT_FALSE(r.str().ok());
}

TEST(CodecTest, EmptyInputFailsAllReads) {
  Reader r(BytesView{});
  EXPECT_FALSE(r.u8().ok());
  Reader r2(BytesView{});
  EXPECT_FALSE(r2.str().ok());
}

TEST(CodecTest, HostileListCountRejected) {
  Writer w;
  w.u32(0xffffffff);  // list claims 4 billion entries
  Reader r(w.data());
  auto v = r.str_list();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, Errc::protocol_error);
}

TEST(CodecTest, RemainingCountsDown) {
  Writer w;
  w.u32(5);
  w.u8(1);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 5u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 1u);
  (void)r.u8();
  EXPECT_TRUE(r.exhausted());
}

TEST(CodecTest, TakeMovesBuffer) {
  Writer w;
  w.str("data");
  Bytes taken = std::move(w).take();
  EXPECT_EQ(taken.size(), 8u);  // 4-byte length + 4 chars
}

}  // namespace
}  // namespace ph::proto
