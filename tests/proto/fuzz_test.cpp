// Decoder robustness: randomized mutations and random byte soup must never
// crash, hang or read out of bounds — every outcome is either a valid
// decode or a clean protocol_error.
#include <gtest/gtest.h>

#include "proto/daemon.hpp"
#include "proto/messages.hpp"
#include "sim/rng.hpp"
#include "sns/protocol.hpp"

namespace ph::proto {
namespace {

Bytes sample_request_bytes() {
  Request request;
  request.op = Opcode::ps_get_profile;
  request.requester = "alice";
  request.member_id = "bob";
  request.argument = "argument text";
  request.mail = {"bob", "alice", "subject", "body", 42};
  return encode(request);
}

Bytes sample_response_bytes() {
  Response response;
  response.op = Opcode::ps_get_shared_content;
  response.names = {"one", "two"};
  response.profile.member_id = "bob";
  response.profile.interests = {"a", "b", "c"};
  response.profile.comments = {{"x", "y", 1}};
  response.items = {{"f", 10}};
  response.content = Bytes(64, 0x7e);
  return encode(response);
}

Bytes sample_daemon_bytes() {
  DaemonMessage message;
  message.op = DaemonOp::service_reply;
  message.device_name = "dev";
  message.services = {{"PeerHoodCommunity", 1000, {{"k", "v"}}}};
  return encode(message);
}

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, MutatedRequestsNeverCrash) {
  sim::Rng rng(GetParam());
  const Bytes original = sample_request_bytes();
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = original;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.uniform_int(0, mutated.size()));
    auto decoded = decode_request(mutated);  // must not crash
    if (decoded.ok()) {
      // Whatever decoded must re-encode without crashing either.
      (void)encode(*decoded);
    }
  }
}

TEST_P(FuzzTest, MutatedResponsesNeverCrash) {
  sim::Rng rng(GetParam() * 3 + 1);
  const Bytes original = sample_response_bytes();
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = original;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 7));
    for (int i = 0; i < flips; ++i) {
      mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
          static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    if (rng.chance(0.3)) mutated.resize(rng.uniform_int(0, mutated.size()));
    auto decoded = decode_response(mutated);
    if (decoded.ok()) (void)encode(*decoded);
  }
}

TEST_P(FuzzTest, MutatedDaemonMessagesNeverCrash) {
  sim::Rng rng(GetParam() * 7 + 5);
  const Bytes original = sample_daemon_bytes();
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = original;
    mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
        static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    if (rng.chance(0.3)) mutated.resize(rng.uniform_int(0, mutated.size()));
    auto decoded = decode_daemon_message(mutated);
    if (decoded.ok()) (void)encode(*decoded);
  }
}

TEST_P(FuzzTest, MutatedSnsPagesNeverCrash) {
  sim::Rng rng(GetParam() * 19 + 3);
  sns::PageResponse response;
  response.kind = sns::PageKind::member_list;
  response.names = {"dave", "emma"};
  response.body = Bytes(256, 'x');
  const Bytes original = sns::encode(response);
  for (int round = 0; round < 500; ++round) {
    Bytes mutated = original;
    mutated[rng.uniform_int(0, mutated.size() - 1)] ^=
        static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    if (rng.chance(0.3)) mutated.resize(rng.uniform_int(0, mutated.size()));
    auto decoded = sns::decode_page_response(mutated);
    if (decoded.ok()) (void)sns::encode(*decoded);
  }
}

TEST_P(FuzzTest, RandomByteSoupNeverCrashes) {
  sim::Rng rng(GetParam() * 13 + 11);
  for (int round = 0; round < 300; ++round) {
    Bytes soup(rng.uniform_int(0, 300));
    for (auto& byte : soup) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_request(soup);
    (void)decode_response(soup);
    (void)decode_daemon_message(soup);
    (void)sns::decode_page_request(soup);
    (void)sns::decode_page_response(soup);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ph::proto
