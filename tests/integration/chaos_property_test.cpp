// Chaos properties: under randomized radio outages and frame loss, the
// session layer must never duplicate, reorder or corrupt messages — the
// receiver sees an exact in-order prefix (or all) of what was sent, and a
// surviving session always ends up delivering everything.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "peerhood/stack.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

class ChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosTest, ExactlyOnceInOrderUnderRadioFlaps) {
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  testutil::FlightGuard flight(medium);  // dump the trace ring on failure
  sim::Rng chaos(seed ^ 0xC4405EED);

  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  bt.frame_loss = 0.05;  // lossy world
  net::TechProfile wlan = net::wlan_80211b();
  wlan.frame_loss = 0.05;

  StackConfig config;
  config.radios = {bt, wlan};
  config.device_name = "a";
  Stack a(medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
          config);
  config.device_name = "b";
  Stack b(medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}),
          config);

  std::vector<int> received;
  std::shared_ptr<Connection> server;
  ASSERT_TRUE(b.library()
                  .register_service("Chaos", {},
                                    [&](Connection connection) {
                                      // Resumed-as-new sessions reuse the
                                      // same sink.
                                      server = std::make_shared<Connection>(
                                          std::move(connection));
                                      server->on_message([&](BytesView data) {
                                        received.push_back(
                                            std::stoi(to_text(data)));
                                      });
                                    })
                  .ok());
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        auto device = a.daemon().device(b.id());
        return device.ok() && device->find_service("Chaos") != nullptr;
      },
      sim::minutes(1)));

  ConnectOptions options;
  options.resume_deadline = sim::seconds(30);
  Connection client;
  a.library().connect(b.id(), "Chaos", options,
                      [&](Result<Connection> result) {
                        ASSERT_TRUE(result.ok());
                        client = *result;
                      });
  ASSERT_TRUE(run_until(simulator, [&] { return client.valid(); },
                        sim::seconds(10)));

  // Stream 60 messages over a minute while radios flap randomly. Radios
  // are never both down longer than the resume deadline.
  constexpr int kMessages = 60;
  int sent = 0;
  std::function<void()> pump_messages = [&] {
    if (sent >= kMessages || !client.open()) return;
    client.send(to_bytes(std::to_string(sent++)));
    simulator.schedule(sim::seconds(1), pump_messages);
  };
  pump_messages();

  std::function<void()> flap = [&] {
    if (simulator.now() > sim::minutes(1.2)) return;
    // Pick a radio on either side, toggle it off for 1-4 s.
    Stack& victim = chaos.chance(0.5) ? a : b;
    const net::Technology tech = chaos.chance(0.5) ? net::Technology::bluetooth
                                                   : net::Technology::wlan;
    victim.set_radio_powered(tech, false);
    const sim::Duration outage = sim::seconds(chaos.uniform(1.0, 4.0));
    simulator.schedule(outage, [&victim, tech] {
      victim.set_radio_powered(tech, true);
    });
    simulator.schedule(outage + sim::seconds(chaos.uniform(1.0, 3.0)), flap);
  };
  simulator.schedule(sim::seconds(3), flap);

  // Let everything play out (messages end ~60 s; give recovery time).
  simulator.run_until(sim::minutes(3));

  // Property 1: no duplicates, no reordering — received is exactly
  // 0,1,2,...,k for some k.
  for (std::size_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], static_cast<int>(i))
        << "seed " << seed << ": reordered or duplicated delivery";
  }
  // Property 2: a session that survived delivered everything that was sent.
  if (client.open()) {
    EXPECT_EQ(received.size(), static_cast<std::size_t>(sent))
        << "seed " << seed << ": open session lost messages";
    EXPECT_EQ(sent, kMessages);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ph::peerhood
