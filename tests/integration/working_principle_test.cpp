// Figure 7 — "Working Principle of Reference Implementation":
//   server registers the service and gets neighbourhood info; the remote
//   client connects, information is exchanged, and the connection is
//   terminated successfully on request.
// This test replays that exact lifecycle and asserts each milestone in
// order.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "community/app.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

TEST(WorkingPrincipleTest, FullLifecycle) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(20));
  testutil::FlightGuard flight(medium);  // dump the trace ring on failure

  peerhood::StackConfig config;
  config.radios = {deterministic_bt()};
  config.device_name = "server-ptd";
  peerhood::Stack server_stack(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config);
  config.device_name = "client-ptd";
  peerhood::Stack client_stack(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config);

  // Milestone 1 — the server registers "PeerHoodCommunity" into its PHD
  // (Figure 8's pRegisterService).
  ProfileStore server_store;
  SemanticDictionary server_dict;
  Account* alice = *server_store.create_account("alice", "pw");
  alice->add_interest("football");
  (void)server_store.login("alice", "pw");
  CommunityServer server(server_stack.library(), server_store, server_dict);
  ASSERT_TRUE(server.start().ok());
  ASSERT_EQ(server_stack.daemon().local_services().size(), 1u);
  EXPECT_EQ(server_stack.daemon().local_services()[0].name, "PeerHoodCommunity");

  // Milestone 2 — the client's PHD gets the neighbourhood information:
  // device found, service discovered.
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        return !client_stack.library().find_service(kServiceName).empty();
      },
      sim::seconds(20)));
  auto found = client_stack.library().find_service(kServiceName);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].first.id, server_stack.id());

  // Milestone 3 — the remote client connects to the server through the
  // registered service (Figure 9's pConnect).
  peerhood::Connection connection;
  client_stack.library().connect(
      server_stack.id(), std::string(kServiceName), {},
      [&](Result<peerhood::Connection> result) {
        ASSERT_TRUE(result.ok()) << result.error().to_string();
        connection = *result;
      });
  ASSERT_TRUE(run_until(
      simulator, [&] { return connection.valid(); }, sim::seconds(5)));
  EXPECT_TRUE(connection.open());

  // Milestone 4 — information exchange: a real PS_GETINTERESTLIST request
  // travels to the server and the interest list comes back.
  proto::Response response;
  bool answered = false;
  connection.on_message([&](BytesView data) {
    auto decoded = proto::decode_response(data);
    ASSERT_TRUE(decoded.ok());
    response = *decoded;
    answered = true;
  });
  proto::Request request;
  request.op = proto::Opcode::ps_get_interest_list;
  request.requester = "bob";
  connection.send(proto::encode(request));
  ASSERT_TRUE(run_until(simulator, [&] { return answered; }, sim::seconds(5)));
  EXPECT_EQ(response.status, proto::Status::ok);
  EXPECT_EQ(response.names, (std::vector<std::string>{"football"}));
  EXPECT_EQ(server.stats().counter("requests_handled"), 1u);
  EXPECT_EQ(server.stats().counter("sessions_accepted"), 1u);

  // Milestone 5 — the connection is terminated successfully on request.
  connection.close();
  EXPECT_FALSE(connection.open());
  simulator.run_until(simulator.now() + sim::seconds(1));
  SUCCEED();
}

TEST(WorkingPrincipleTest, EveryDeviceRunsBothClientAndServer) {
  // "Every PTD must contain the application server and server must run
  // continuously" — two full apps, each side queries the other.
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(21));
  peerhood::StackConfig config;
  config.radios = {deterministic_bt()};
  config.device_name = "a-ptd";
  peerhood::Stack stack_a(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config);
  config.device_name = "b-ptd";
  peerhood::Stack stack_b(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config);
  CommunityApp app_a(stack_a);
  CommunityApp app_b(stack_b);
  ASSERT_TRUE(app_a.create_account("alice", "pw").ok());
  ASSERT_TRUE(app_b.create_account("bob", "pw").ok());
  ASSERT_TRUE(app_a.login("alice", "pw").ok());
  ASSERT_TRUE(app_b.login("bob", "pw").ok());

  std::vector<std::string> a_sees, b_sees;
  bool a_done = false, b_done = false;
  ASSERT_TRUE(run_until(
      simulator,
      [&] {
        return !stack_a.library().find_service(kServiceName).empty() &&
               !stack_b.library().find_service(kServiceName).empty();
      },
      sim::seconds(30)));
  app_a.client().get_online_members([&](Result<std::vector<std::string>> r) {
    a_sees = *r;
    a_done = true;
  });
  app_b.client().get_online_members([&](Result<std::vector<std::string>> r) {
    b_sees = *r;
    b_done = true;
  });
  ASSERT_TRUE(run_until(
      simulator, [&] { return a_done && b_done; }, sim::seconds(20)));
  EXPECT_EQ(a_sees, (std::vector<std::string>{"bob"}));
  EXPECT_EQ(b_sees, (std::vector<std::string>{"alice"}));
}

}  // namespace
}  // namespace ph::community
