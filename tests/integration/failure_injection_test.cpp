// Failure injection: lossy radios, mid-operation outages and hostile
// neighbour behaviour must degrade gracefully, never corrupt state.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "community/app.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

struct Device {
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<CommunityApp> app;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : medium_(simulator_, sim::Rng(31)) {}

  Device& make_device(const std::string& member, sim::Vec2 pos,
                      std::vector<std::string> interests,
                      net::TechProfile radio) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {radio};
    device->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<CommunityApp>(*device->stack);
    Account* account = *device->app->create_account(member, "pw");
    for (const auto& interest : interests) account->add_interest(interest);
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    devices_.push_back(std::move(device));
    return *devices_.back();
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  testutil::FlightGuard flight_{medium_};  // dump the trace ring on failure
  std::vector<std::unique_ptr<Device>> devices_;
};

TEST_F(FailureInjectionTest, DiscoveryCompletesOnVeryLossyRadio) {
  // 20% frame loss: service queries time out and are retried by the
  // daemon; discovery must still converge.
  net::TechProfile lossy = net::bluetooth_2_0();
  lossy.frame_loss = 0.20;
  lossy.inquiry_detect_prob = 0.9;
  Device& alice = make_device("alice", {0, 0}, {"x"}, lossy);
  make_device("bob", {3, 0}, {"x"}, lossy);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto group = alice.app->groups().group("x");
        return group.ok() && group->formed();
      },
      sim::minutes(3)));
}

TEST_F(FailureInjectionTest, MessagesSurviveLossyLinks) {
  net::TechProfile lossy = net::bluetooth_2_0();
  lossy.frame_loss = 0.15;
  lossy.inquiry_detect_prob = 1.0;
  Device& alice = make_device("alice", {0, 0}, {}, lossy);
  Device& bob = make_device("bob", {3, 0}, {}, lossy);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return !alice.stack->library().find_service(kServiceName).empty();
      },
      sim::minutes(1)));
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    bool done = false;
    alice.app->client().send_message("bob", "s" + std::to_string(i), "body",
                                     [&](Result<void> result) {
                                       if (result.ok()) ++delivered;
                                       done = true;
                                     });
    ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
  }
  // L2CAP-style retransmission makes the links reliable: every message
  // that got a session through lands exactly once.
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(bob.app->active()->inbox().size(), 10u);
}

TEST_F(FailureInjectionTest, RpcAgainstDeadPeerFailsCleanly) {
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  Device& alice = make_device("alice", {0, 0}, {}, bt);
  Device& bob = make_device("bob", {3, 0}, {}, bt);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return !alice.stack->library().find_service(kServiceName).empty();
      },
      sim::minutes(1)));
  bob.stack->set_radio_powered(net::Technology::bluetooth, false);
  Error error;
  bool done = false;
  alice.app->client().view_profile("bob", [&](Result<proto::ProfileData> r) {
    ASSERT_FALSE(r.ok());
    error = r.error();
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
  // The fan-out skipped the dead device, so the member simply wasn't found.
  EXPECT_EQ(error.code, Errc::no_such_member);
}

TEST_F(FailureInjectionTest, PeerDyingMidFanoutDoesNotHangTheOperation) {
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  Device& alice = make_device("alice", {0, 0}, {}, bt);
  Device& bob = make_device("bob", {3, 0}, {}, bt);
  Device& carol = make_device("carol", {0, 3}, {}, bt);
  (void)carol;
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return alice.stack->library().find_service(kServiceName).size() == 2;
      },
      sim::minutes(1)));
  // Kill bob right as the fan-out starts: his RPC must fail (timeout or
  // connect failure) while carol's succeeds.
  std::vector<std::string> members;
  bool done = false;
  alice.app->client().get_online_members(
      [&](Result<std::vector<std::string>> result) {
        members = *result;
        done = true;
      });
  bob.stack->set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
  EXPECT_EQ(members, (std::vector<std::string>{"carol"}));
}

TEST_F(FailureInjectionTest, MalformedDatagramsAreIgnoredByDaemon) {
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  Device& alice = make_device("alice", {0, 0}, {}, bt);
  // A hostile node floods the daemon control port with garbage.
  net::NodeId attacker = medium_.add_node(
      "attacker", std::make_unique<sim::StaticMobility>(sim::Vec2{1, 1}));
  net::Adapter& radio = medium_.add_adapter(attacker, bt);
  for (int i = 0; i < 50; ++i) {
    radio.send_datagram(alice.stack->id(), net::kDaemonPort,
                        Bytes{0xde, 0xad, 0xbe, 0xef});
  }
  simulator_.run_until(sim::seconds(5));
  // The daemon survives and keeps functioning.
  EXPECT_TRUE(alice.stack->daemon().running());
  EXPECT_TRUE(alice.app->server().running());
}

TEST_F(FailureInjectionTest, MalformedSessionPayloadDropsOnlyThatRequest) {
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  bt.frame_loss = 0.0;
  Device& alice = make_device("alice", {0, 0}, {}, bt);
  Device& bob = make_device("bob", {3, 0}, {}, bt);
  (void)bob;
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return !alice.stack->library().find_service(kServiceName).empty();
      },
      sim::minutes(1)));
  // Connect to bob's community server and send a garbage request through a
  // real session.
  peerhood::Connection connection;
  alice.stack->library().connect(
      bob.stack->id(), std::string(kServiceName), {},
      [&](Result<peerhood::Connection> result) {
        ASSERT_TRUE(result.ok());
        connection = *result;
      });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return connection.valid(); }, sim::seconds(10)));
  connection.send(Bytes{0xff, 0xff, 0xff});
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  EXPECT_EQ(bob.app->server().stats().counter("bad_requests"), 1u);
  // The same session still serves a valid request afterwards.
  proto::Request ok_request;
  ok_request.op = proto::Opcode::ps_get_online_member_list;
  ok_request.requester = "alice";
  bool answered = false;
  connection.on_message([&](BytesView data) {
    auto response = proto::decode_response(data);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->names, (std::vector<std::string>{"bob"}));
    answered = true;
  });
  connection.send(proto::encode(ok_request));
  ASSERT_TRUE(run_until(simulator_, [&] { return answered; }, sim::seconds(10)));
}

TEST_F(FailureInjectionTest, ChunkedTransferSurvivesMidTransferHandover) {
  // The point of chunked transfers: a handover retransmits at most one
  // chunk, and the download still arrives byte-exact.
  auto make_dual = [&](const std::string& member, sim::Vec2 pos) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    net::TechProfile bt = net::bluetooth_2_0();
    bt.inquiry_detect_prob = 1.0;
    bt.frame_loss = 0.0;
    net::TechProfile wlan = net::wlan_80211b();
    wlan.frame_loss = 0.0;
    config.radios = {bt, wlan};
    device->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<CommunityApp>(*device->stack);
    Account* account = *device->app->create_account(member, "pw");
    (void)account;
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    devices_.push_back(std::move(device));
    return devices_.back().get();
  };
  Device* alice = make_dual("alice", {0, 0});
  Device* bob = make_dual("bob", {3, 0});
  alice->app->active()->add_trusted("bob");
  Bytes original(400'000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i * 13);
  }
  alice->app->active()->share_file("movie.bin", original);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return !bob->stack->library().find_service(kServiceName).empty();
      },
      sim::minutes(1)));
  Bytes downloaded;
  bool done = false;
  bob->app->client().fetch_content_chunked(
      "alice", "movie.bin", 32'768, nullptr, [&](Result<Bytes> result) {
        ASSERT_TRUE(result.ok()) << result.error().to_string();
        downloaded = std::move(*result);
        done = true;
      });
  // Let a few chunks flow (WLAN moves 400 kB in ~0.4 s), then kill the
  // radio carrying the session mid-stream.
  simulator_.run_until(simulator_.now() + sim::milliseconds(150));
  EXPECT_FALSE(done);
  alice->stack->set_radio_powered(net::Technology::wlan, false);
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(3)));
  EXPECT_EQ(downloaded, original);
}

TEST_F(FailureInjectionTest, DaemonRecoversAfterOwnRadioBlip) {
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  Device& alice = make_device("alice", {0, 0}, {"x"}, bt);
  make_device("bob", {3, 0}, {"x"}, bt);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto group = alice.app->groups().group("x");
        return group.ok() && group->formed();
      },
      sim::minutes(1)));
  // Alice's own radio goes down for 20 s.
  alice.stack->set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return !alice.app->groups().group("x")->formed(); },
      sim::minutes(1)));
  alice.stack->set_radio_powered(net::Technology::bluetooth, true);
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto group = alice.app->groups().group("x");
        return group.ok() && group->formed();
      },
      sim::minutes(3)));
}

}  // namespace
}  // namespace ph::community
