// Soak: two simulated hours of campus life. No crashes, no unbounded
// growth, and the core invariants hold at every checkpoint.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "community/app.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

TEST(SoakTest, TwoSimulatedHoursOfCampusLife) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(2008));
  testutil::FlightGuard flight(medium);  // dump the trace ring on failure
  sim::Rng mobility(42);

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<CommunityApp> app;
  };
  std::vector<std::unique_ptr<Device>> devices;
  const std::vector<std::string> topics = {"music", "films", "chess",
                                           "running"};
  for (int i = 0; i < 10; ++i) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = "d" + std::to_string(i);
    net::TechProfile bt = net::bluetooth_2_0();
    config.radios = {bt};
    sim::RandomWaypoint::Config walk;
    walk.area_min = {0, 0};
    walk.area_max = {40, 40};
    walk.pause = sim::seconds(30);  // people sit around, then move
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::RandomWaypoint>(walk, mobility.fork()),
        config);
    device->app = std::make_unique<CommunityApp>(*device->stack);
    auto account = device->app->create_account("m" + std::to_string(i), "pw");
    ASSERT_TRUE(account.ok());
    (*account)->add_interest(topics[i % topics.size()]);
    (*account)->add_interest(topics[(i + 1) % topics.size()]);
    ASSERT_TRUE(device->app->login("m" + std::to_string(i), "pw").ok());
    devices.push_back(std::move(device));
  }

  // Period background traffic: every 90 s someone messages someone.
  std::uint64_t attempted = 0, delivered = 0;
  std::function<void()> chatter = [&] {
    if (simulator.now() > sim::minutes(115)) return;
    const std::size_t from = mobility.uniform_int(0, devices.size() - 1);
    std::size_t to = mobility.uniform_int(0, devices.size() - 1);
    if (to == from) to = (to + 1) % devices.size();
    ++attempted;
    devices[from]->app->send_message(
        "m" + std::to_string(to), "ping", "soak traffic",
        [&delivered](Result<void> result) {
          if (result) ++delivered;
        });
    simulator.schedule(sim::seconds(90), chatter);
  };
  simulator.schedule(sim::seconds(30), chatter);

  std::size_t previous_queue = 0;
  for (int checkpoint = 1; checkpoint <= 24; ++checkpoint) {
    simulator.run_for(sim::minutes(5));
    // Invariant 1: the event queue stays bounded (no timer leaks). Allow
    // generous slack for in-flight traffic.
    const std::size_t queue = simulator.queue_size();
    EXPECT_LT(queue, 2000u) << "checkpoint " << checkpoint;
    previous_queue = queue;
    // Invariant 2: every group on every device contains its owner, and
    // every remote member maps to a live neighbour entry.
    for (const auto& device : devices) {
      for (const Group& group : device->app->groups().groups()) {
        EXPECT_TRUE(
            group.members.contains(device->app->active()->member_id()));
      }
    }
  }
  (void)previous_queue;

  // Two hours of churn later the system is still fully functional: a
  // message between two devices parked next to each other goes through.
  medium.set_mobility(devices[0]->stack->id(),
                      std::make_unique<sim::StaticMobility>(sim::Vec2{5, 5}));
  medium.set_mobility(devices[1]->stack->id(),
                      std::make_unique<sim::StaticMobility>(sim::Vec2{7, 5}));
  bool final_ok = false;
  // Wait for them to (re)discover each other, then message.
  ASSERT_TRUE(testutil::run_until(
      simulator,
      [&] {
        return devices[0]->stack->daemon().device(devices[1]->stack->id()).ok();
      },
      sim::minutes(2)));
  devices[0]->app->send_message("m1", "final", "still alive?",
                                [&](Result<void> result) {
                                  final_ok = result.ok();
                                });
  ASSERT_TRUE(testutil::run_until(
      simulator, [&] { return final_ok; }, sim::minutes(1)));

  // Sanity on the background chatter: most attempts between random,
  // often out-of-range pairs can fail, but some must have landed.
  EXPECT_GT(attempted, 60u);
  EXPECT_GT(delivered, 0u);
}

TEST(SoakTest, CommunityOverInfrastructureWlan) {
  // The whole community stack also runs over infrastructure-mode WLAN
  // (thesis §2.4.2): two stations across a hall, linked by the hall's AP.
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(31337));
  testutil::FlightGuard flight(medium);  // dump the trace ring on failure
  medium.add_access_point("hall-ap", {75, 0}, 100.0);

  net::TechProfile wlan = net::wlan_80211b_infrastructure();
  wlan.frame_loss = 0.0;

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<CommunityApp> app;
  };
  auto make_device = [&](const std::string& member, sim::Vec2 pos) {
    Device device;
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {wlan};
    device.stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(pos), config);
    device.app = std::make_unique<CommunityApp>(*device.stack);
    auto account = device.app->create_account(member, "pw");
    EXPECT_TRUE(account.ok());
    (*account)->add_interest("jazz");
    EXPECT_TRUE(device.app->login(member, "pw").ok());
    return device;
  };
  // 150 m apart: unreachable ad-hoc, fine through the AP.
  Device alice = make_device("alice", {0, 0});
  Device bob = make_device("bob", {150, 0});

  ASSERT_TRUE(testutil::run_until(
      simulator,
      [&] {
        auto group = alice.app->groups().group("jazz");
        return group.ok() && group->formed();
      },
      sim::seconds(30)));
  bool delivered = false;
  alice.app->send_message("bob", "hi", "across the hall",
                          [&](Result<void> result) {
                            EXPECT_TRUE(result.ok());
                            delivered = true;
                          });
  ASSERT_TRUE(testutil::run_until(
      simulator, [&] { return delivered; }, sim::seconds(30)));
  EXPECT_EQ(bob.app->active()->inbox().size(), 1u);
}

}  // namespace
}  // namespace ph::community
