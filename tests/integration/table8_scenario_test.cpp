// Table 8 — the thesis' headline comparison, asserted as *shape*:
//   * PeerHood group search is dominated by one Bluetooth inquiry (~11 s)
//   * PeerHood join time is exactly zero (dynamic group discovery)
//   * every SNS column total is well above the PeerHood total
//   * the N95 is slower than the N810 on the same site
// Absolute SNS numbers are calibrated, not asserted precisely; see
// EXPERIMENTS.md for the measured-vs-paper table.
#include "eval/table8.hpp"

#include <gtest/gtest.h>

namespace ph::eval {
namespace {

class Table8Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fb_n810_ = new Table8Cell(run_sns_column(sns::facebook(), sns::nokia_n810(), 1));
    fb_n95_ = new Table8Cell(run_sns_column(sns::facebook(), sns::nokia_n95(), 2));
    hi5_n810_ = new Table8Cell(run_sns_column(sns::hi5(), sns::nokia_n810(), 3));
    hi5_n95_ = new Table8Cell(run_sns_column(sns::hi5(), sns::nokia_n95(), 4));
    peerhood_ = new Table8Cell(run_peerhood_column(5));
  }

  static void TearDownTestSuite() {
    delete fb_n810_;
    delete fb_n95_;
    delete hi5_n810_;
    delete hi5_n95_;
    delete peerhood_;
  }

  static Table8Cell* fb_n810_;
  static Table8Cell* fb_n95_;
  static Table8Cell* hi5_n810_;
  static Table8Cell* hi5_n95_;
  static Table8Cell* peerhood_;
};

Table8Cell* Table8Test::fb_n810_ = nullptr;
Table8Cell* Table8Test::fb_n95_ = nullptr;
Table8Cell* Table8Test::hi5_n810_ = nullptr;
Table8Cell* Table8Test::hi5_n95_ = nullptr;
Table8Cell* Table8Test::peerhood_ = nullptr;

TEST_F(Table8Test, PeerHoodSearchIsInquiryDominated) {
  // The thesis measured 11 s; one Bluetooth inquiry alone is 10.24 s.
  EXPECT_GE(peerhood_->search_s, 10.24);
  EXPECT_LE(peerhood_->search_s, 16.0);
}

TEST_F(Table8Test, PeerHoodJoinTimeIsZero) {
  // "0 Seconds (Already in the Group)".
  EXPECT_DOUBLE_EQ(peerhood_->join_s, 0.0);
}

TEST_F(Table8Test, SnsJoinTimesAreNonZero) {
  EXPECT_GT(fb_n810_->join_s, 5.0);
  EXPECT_GT(fb_n95_->join_s, 5.0);
  EXPECT_GT(hi5_n810_->join_s, 5.0);
  EXPECT_GT(hi5_n95_->join_s, 5.0);
}

TEST_F(Table8Test, PeerHoodTotalBeatsEverySnsColumn) {
  // Paper: 45 s vs 94/157/120/181 s.
  EXPECT_LT(peerhood_->total_s(), fb_n810_->total_s());
  EXPECT_LT(peerhood_->total_s(), fb_n95_->total_s());
  EXPECT_LT(peerhood_->total_s(), hi5_n810_->total_s());
  EXPECT_LT(peerhood_->total_s(), hi5_n95_->total_s());
  // ...and by at least a factor of ~2, like the thesis.
  EXPECT_LT(peerhood_->total_s() * 1.8, fb_n810_->total_s());
}

TEST_F(Table8Test, PeerHoodTotalInThesisBand) {
  // Paper: 45 seconds.
  EXPECT_GT(peerhood_->total_s(), 30.0);
  EXPECT_LT(peerhood_->total_s(), 60.0);
}

TEST_F(Table8Test, SnsTotalsInThesisBand) {
  // Paper range: 94-181 s across the four SNS columns.
  for (const Table8Cell* cell : {fb_n810_, fb_n95_, hi5_n810_, hi5_n95_}) {
    EXPECT_GT(cell->total_s(), 60.0) << cell->network_type << " / "
                                     << cell->accessed_through;
    EXPECT_LT(cell->total_s(), 220.0) << cell->network_type << " / "
                                      << cell->accessed_through;
  }
}

TEST_F(Table8Test, N95SlowerThanN810OnBothSites) {
  EXPECT_GT(fb_n95_->total_s(), fb_n810_->total_s());
  EXPECT_GT(hi5_n95_->total_s(), hi5_n810_->total_s());
}

TEST_F(Table8Test, SearchIsTheDominantSnsTask) {
  for (const Table8Cell* cell : {fb_n810_, fb_n95_, hi5_n810_, hi5_n95_}) {
    EXPECT_GT(cell->search_s, cell->member_list_s);
    EXPECT_GT(cell->search_s, cell->profile_s);
    EXPECT_GT(cell->search_s, cell->join_s);
  }
}

TEST_F(Table8Test, Hi5ProfileSlowerThanFacebookProfile) {
  // Thesis: 27 vs 11 s (N810), 40 vs 27 s (N95).
  EXPECT_GT(hi5_n810_->profile_s, fb_n810_->profile_s);
  EXPECT_GT(hi5_n95_->profile_s, fb_n95_->profile_s);
}

TEST_F(Table8Test, DeterministicForSameSeed) {
  Table8Cell again = run_peerhood_column(5);
  EXPECT_DOUBLE_EQ(again.search_s, peerhood_->search_s);
  EXPECT_DOUBLE_EQ(again.total_s(), peerhood_->total_s());
}

}  // namespace
}  // namespace ph::eval
