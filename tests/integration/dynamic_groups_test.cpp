// Figures 2 & 5 — dynamic groups around a central user, under mobility.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "community/app.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

struct Device {
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<CommunityApp> app;
};

class DynamicGroupsTest : public ::testing::Test {
 protected:
  DynamicGroupsTest() : medium_(simulator_, sim::Rng(23)) {}

  Device& make_device(const std::string& member, std::vector<std::string> interests,
                      std::unique_ptr<sim::MobilityModel> mobility) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {deterministic_bt()};
    device->stack = std::make_unique<peerhood::Stack>(medium_,
                                                      std::move(mobility),
                                                      config);
    AppConfig app_config;
    app_config.peer_refresh_interval = sim::seconds(15);
    device->app = std::make_unique<CommunityApp>(*device->stack, app_config);
    Account* account = *device->app->create_account(member, "pw");
    for (const auto& interest : interests) account->add_interest(interest);
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    devices_.push_back(std::move(device));
    return *devices_.back();
  }

  Device& make_static(const std::string& member,
                      std::vector<std::string> interests, sim::Vec2 pos) {
    return make_device(member, std::move(interests),
                       std::make_unique<sim::StaticMobility>(pos));
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  testutil::FlightGuard flight_{medium_};  // dump the trace ring on failure
  std::vector<std::unique_ptr<Device>> devices_;
};

TEST_F(DynamicGroupsTest, Figure2ThreeInterestGroupsAroundCentralUser) {
  // The central device holds three distinct interests; neighbours match
  // one each. Three dynamic groups must form, one per interest.
  Device& centre = make_static("centre", {"music", "sports", "books"}, {0, 0});
  make_static("m1", {"music"}, {2, 0});
  make_static("m2", {"music", "books"}, {0, 2});
  make_static("s1", {"sports"}, {-2, 0});
  make_static("b1", {"books"}, {0, -2});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto music = centre.app->groups().group("music");
        auto sports = centre.app->groups().group("sports");
        auto books = centre.app->groups().group("books");
        return music.ok() && music->members.size() == 3 && sports.ok() &&
               sports->members.size() == 2 && books.ok() &&
               books->members.size() == 3;
      },
      sim::minutes(1)));
  EXPECT_EQ(centre.app->groups().group("music")->members,
            (std::set<std::string>{"centre", "m1", "m2"}));
  EXPECT_EQ(centre.app->groups().group("sports")->members,
            (std::set<std::string>{"centre", "s1"}));
  EXPECT_EQ(centre.app->groups().group("books")->members,
            (std::set<std::string>{"centre", "b1", "m2"}));
}

TEST_F(DynamicGroupsTest, Figure5GroupsTrackArrivalsAndDepartures) {
  // A neighbour walks through the central user's radio range: the group
  // forms while they are close and dissolves after they leave, entirely
  // driven by PeerHood monitoring.
  Device& centre = make_static("centre", {"football"}, {0, 0});
  make_device("walker", {"football"},
              std::make_unique<sim::WaypointMobility>(
                  std::vector<sim::WaypointMobility::Waypoint>{
                      {sim::seconds(0), {3, 0}},
                      {sim::seconds(25), {3, 0}},
                      {sim::seconds(40), {100, 0}}}));
  int formed_events = 0, dissolved_events = 0;
  // Install group callbacks once the engine exists (post-login).
  GroupCallbacks callbacks;
  callbacks.on_group_formed = [&](const Group&) { ++formed_events; };
  callbacks.on_group_dissolved = [&](const std::string&) { ++dissolved_events; };
  centre.app->groups().set_callbacks(std::move(callbacks));

  ASSERT_TRUE(run_until(
      simulator_, [&] { return formed_events == 1; }, sim::seconds(30)));
  EXPECT_TRUE(centre.app->groups().group("football")->formed());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return dissolved_events == 1; }, sim::minutes(2)));
  EXPECT_FALSE(centre.app->groups().group("football")->formed());
}

TEST_F(DynamicGroupsTest, CrowdChurnKeepsGroupsConsistent) {
  // Random-waypoint crowd in a 25x25 m square around a static centre:
  // after any amount of churn, the centre's groups contain exactly the
  // neighbours it currently knows about that share the interest.
  Device& centre = make_static("centre", {"coffee"}, {12.5, 12.5});
  sim::Rng mobility_rng(99);
  for (int i = 0; i < 6; ++i) {
    sim::RandomWaypoint::Config config;
    config.area_min = {0, 0};
    config.area_max = {25, 25};
    config.speed_min_mps = 0.5;
    config.speed_max_mps = 1.5;
    const bool likes_coffee = i % 2 == 0;
    make_device("p" + std::to_string(i),
                likes_coffee ? std::vector<std::string>{"coffee"}
                             : std::vector<std::string>{"tea"},
                std::make_unique<sim::RandomWaypoint>(config,
                                                      mobility_rng.fork()));
  }
  // Let the crowd mill around for five simulated minutes, checking the
  // invariant at every 20 s checkpoint.
  for (int checkpoint = 0; checkpoint < 15; ++checkpoint) {
    simulator_.run_for(sim::seconds(20));
    auto group = centre.app->groups().group("coffee");
    ASSERT_TRUE(group.ok());
    for (const std::string& member : group->members) {
      if (member == "centre") continue;
      // Every remote member must be a coffee drinker (p0, p2, p4).
      const int index = std::stoi(member.substr(1));
      EXPECT_EQ(index % 2, 0) << member << " should not be in the group";
    }
  }
}

TEST_F(DynamicGroupsTest, TwoSidedViewsAgreeOnSharedGroup) {
  Device& alice = make_static("alice", {"jazz"}, {0, 0});
  Device& bob = make_static("bob", {"jazz"}, {4, 0});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto ga = alice.app->groups().group("jazz");
        auto gb = bob.app->groups().group("jazz");
        return ga.ok() && gb.ok() && ga->formed() && gb->formed();
      },
      sim::minutes(1)));
  EXPECT_EQ(alice.app->groups().group("jazz")->members,
            bob.app->groups().group("jazz")->members);
}

TEST_F(DynamicGroupsTest, LateArrivalJoinsExistingGroup) {
  Device& alice = make_static("alice", {"running"}, {0, 0});
  make_static("bob", {"running"}, {3, 0});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return alice.app->groups().group("running")->formed(); },
      sim::seconds(30)));
  // Carol arrives later (device powered on at t=40 s, simulated by
  // creating her then).
  simulator_.run_until(sim::seconds(40));
  make_static("carol", {"running"}, {0, 3});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return alice.app->groups().group("running")->members.size() == 3;
      },
      sim::minutes(1)));
  EXPECT_EQ(alice.app->groups().group("running")->members,
            (std::set<std::string>{"alice", "bob", "carol"}));
}

}  // namespace
}  // namespace ph::community
