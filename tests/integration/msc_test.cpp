// Message-sequence tests for Figures 11-17: each MSC's exact exchange,
// including the thesis' NO_MEMBERS_YET / NOT_TRUSTED_YET /
// SUCCESSFULLY_WRITTEN side answers, observed at the wire level through
// raw fan-outs against a real three-device Bluetooth neighbourhood.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "community/app.hpp"
#include "tests/testutil/flight_guard.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class MscTest : public ::testing::Test {
 protected:
  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<CommunityApp> app;
  };

  MscTest() : medium_(simulator_, sim::Rng(22)) {
    me_ = make_device("me", {0, 0}, {"football"});
    alice_ = make_device("alice", {3, 0}, {"football", "movies"});
    bob_ = make_device("bob", {0, 3}, {"chess"});
    // Wait until 'me' can see both community servers.
    EXPECT_TRUE(run_until(
        simulator_,
        [&] {
          return me_->stack->library().find_service(kServiceName).size() == 2;
        },
        sim::seconds(30)));
  }

  std::unique_ptr<Device> make_device(const std::string& member, sim::Vec2 pos,
                                      std::vector<std::string> interests) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {deterministic_bt()};
    device->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<CommunityApp>(*device->stack);
    Account* account = *device->app->create_account(member, "pw");
    for (const auto& interest : interests) account->add_interest(interest);
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    return device;
  }

  /// Raw fan-out capturing every per-device response (MSC side answers).
  std::vector<CommunityClient::FanoutEntry> fanout(proto::Request request) {
    std::vector<CommunityClient::FanoutEntry> entries;
    bool done = false;
    me_->app->client().fanout(std::move(request),
                              [&](std::vector<CommunityClient::FanoutEntry> r) {
                                entries = std::move(r);
                                done = true;
                              });
    EXPECT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
    return entries;
  }

  const proto::Response& response_from(
      const std::vector<CommunityClient::FanoutEntry>& entries,
      peerhood::DeviceId device) {
    for (const auto& entry : entries) {
      if (entry.device == device) return entry.response;
    }
    static proto::Response missing;
    ADD_FAILURE() << "no response from device " << device;
    return missing;
  }

  proto::Request request(proto::Opcode op) {
    proto::Request r;
    r.op = op;
    r.requester = "me";
    return r;
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  testutil::FlightGuard flight_{medium_};  // dump the trace ring on failure
  std::unique_ptr<Device> me_, alice_, bob_;
};

TEST_F(MscTest, Figure11GetMemberList) {
  // Client sends PS_GETONLINEMEMBERLIST to all connected servers
  // simultaneously and receives the member names.
  auto entries = fanout(request(proto::Opcode::ps_get_online_member_list));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(response_from(entries, alice_->stack->id()).names,
            (std::vector<std::string>{"alice"}));
  EXPECT_EQ(response_from(entries, bob_->stack->id()).names,
            (std::vector<std::string>{"bob"}));
}

TEST_F(MscTest, Figure12GetInterestsList) {
  auto entries = fanout(request(proto::Opcode::ps_get_interest_list));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(response_from(entries, alice_->stack->id()).names,
            (std::vector<std::string>{"football", "movies"}));
  EXPECT_EQ(response_from(entries, bob_->stack->id()).names,
            (std::vector<std::string>{"chess"}));
}

TEST_F(MscTest, Figure13ViewMemberProfile) {
  // The desired server answers with the profile and records the visitor;
  // all other servers answer NO_MEMBERS_YET.
  auto r = request(proto::Opcode::ps_get_profile);
  r.member_id = "alice";
  auto entries = fanout(r);
  ASSERT_EQ(entries.size(), 2u);
  const auto& from_alice = response_from(entries, alice_->stack->id());
  EXPECT_EQ(from_alice.status, proto::Status::ok);
  EXPECT_EQ(from_alice.profile.member_id, "alice");
  EXPECT_EQ(from_alice.profile.interests,
            (std::vector<std::string>{"football", "movies"}));
  EXPECT_EQ(response_from(entries, bob_->stack->id()).status,
            proto::Status::no_members_yet);
  // Visitor recorded on alice's device only.
  EXPECT_EQ(alice_->app->active()->profile().visitors,
            (std::vector<std::string>{"me"}));
  EXPECT_TRUE(bob_->app->active()->profile().visitors.empty());
}

TEST_F(MscTest, Figure14PutProfileComment) {
  auto r = request(proto::Opcode::ps_add_profile_comment);
  r.member_id = "alice";
  r.argument = "nice interests!";
  auto entries = fanout(r);
  EXPECT_EQ(response_from(entries, alice_->stack->id()).status,
            proto::Status::ok);
  EXPECT_EQ(response_from(entries, bob_->stack->id()).status,
            proto::Status::no_members_yet);
  ASSERT_EQ(alice_->app->active()->profile().comments.size(), 1u);
  EXPECT_EQ(alice_->app->active()->profile().comments[0].text,
            "nice interests!");
  EXPECT_TRUE(bob_->app->active()->profile().comments.empty());
}

TEST_F(MscTest, Figure15ViewMembersTrustedFriends) {
  alice_->app->active()->add_trusted("carol");
  alice_->app->active()->add_trusted("dave");
  auto r = request(proto::Opcode::ps_get_trusted_friends);
  r.member_id = "alice";
  auto entries = fanout(r);
  EXPECT_EQ(response_from(entries, alice_->stack->id()).names,
            (std::vector<std::string>{"carol", "dave"}));
  EXPECT_EQ(response_from(entries, bob_->stack->id()).status,
            proto::Status::no_members_yet);
}

TEST_F(MscTest, Figure16ViewSharedContentNotTrustedPath) {
  // First phase: PS_CHECKTRUSTED answers NOT_TRUSTED_YET for strangers.
  alice_->app->active()->share_file("secret.txt", Bytes(10, 1));
  auto check = request(proto::Opcode::ps_check_trusted);
  check.member_id = "alice";
  auto entries = fanout(check);
  EXPECT_EQ(response_from(entries, alice_->stack->id()).status,
            proto::Status::not_trusted_yet);
}

TEST_F(MscTest, Figure16ViewSharedContentTrustedPath) {
  // Trusted: PS_CHECKTRUSTED is OK, then PS_GETSHAREDCONTENT lists items.
  alice_->app->active()->add_trusted("me");
  alice_->app->active()->share_file("mix.mp3", Bytes(999, 1));
  auto check = request(proto::Opcode::ps_check_trusted);
  check.member_id = "alice";
  auto check_entries = fanout(check);
  EXPECT_EQ(response_from(check_entries, alice_->stack->id()).status,
            proto::Status::ok);
  auto list = request(proto::Opcode::ps_get_shared_content);
  list.member_id = "alice";
  auto list_entries = fanout(list);
  const auto& items = response_from(list_entries, alice_->stack->id()).items;
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].name, "mix.mp3");
  EXPECT_EQ(items[0].size_bytes, 999u);
}

TEST_F(MscTest, Figure17SendMessage) {
  // PS_MSG with receiver, sender, subject and message; the receiving side
  // writes the mail into the inbox and answers SUCCESSFULLY_WRITTEN.
  bool done = false;
  me_->app->client().send_message("bob", "hello", "chess tonight?",
                                  [&](Result<void> result) {
                                    EXPECT_TRUE(result.ok());
                                    done = true;
                                  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  ASSERT_EQ(bob_->app->active()->inbox().size(), 1u);
  const proto::MailData& mail = bob_->app->active()->inbox()[0];
  EXPECT_EQ(mail.sender, "me");
  EXPECT_EQ(mail.receiver, "bob");
  EXPECT_EQ(mail.subject, "hello");
  EXPECT_EQ(mail.body, "chess tonight?");
  EXPECT_TRUE(alice_->app->active()->inbox().empty());
}

TEST_F(MscTest, Figure17UnsuccessfulWhenMailUnwritable) {
  // An empty mail cannot be written: the server answers UNSUCCESSFULL.
  auto r = request(proto::Opcode::ps_msg);
  r.mail.receiver = "bob";
  r.mail.sender = "me";
  auto entries = fanout(r);
  EXPECT_EQ(response_from(entries, bob_->stack->id()).status,
            proto::Status::unsuccessful);
}

}  // namespace
}  // namespace ph::community
