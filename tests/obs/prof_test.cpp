// ph::obs::prof — attribution, merge and folded-profile unit tests.
//
// Covers the properties the profiling plane's gates rely on: tag plumbing
// through the kernel (TagScope override + causal inheritance), the
// deterministic Mode 1 counters and their delta-publish semantics, the
// associative/commutative cross-shard merges (EventProfiler::merge_from
// and merge_folded, empty-shard edge case included), the strict folded
// parser, the slow-event watchdog, and the Mode 2 sampler's ring +
// retired-thread lifecycle.
#include "obs/prof.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace ph::obs::prof {
namespace {

TEST(ProfCenters, NamesAreStableAndTotal) {
  EXPECT_STREQ(center_name(Center::unattributed), "unattributed");
  EXPECT_STREQ(center_name(Center::net_delivery), "net.delivery");
  EXPECT_STREQ(center_name(Center::peerhood_ping), "peerhood.ping");
  EXPECT_STREQ(center_name(Center::transport_idle), "transport.idle");
  // Out-of-range tags fold to unattributed instead of reading junk.
  EXPECT_STREQ(center_name(static_cast<std::uint8_t>(250)), "unattributed");
  for (std::size_t i = 0; i < kCenterCount; ++i) {
    EXPECT_STRNE(center_name(static_cast<Center>(i)), "") << i;
  }
}

TEST(ProfTagScope, InnermostScopeWinsAndRestores) {
  EXPECT_EQ(effective_tag(0), 0);
  {
    const TagScope outer(Center::net_delivery);
    EXPECT_EQ(effective_tag(0),
              static_cast<std::uint8_t>(Center::net_delivery));
    {
      const TagScope inner(Center::peerhood_ping);
      EXPECT_EQ(effective_tag(0),
                static_cast<std::uint8_t>(Center::peerhood_ping));
    }
    EXPECT_EQ(effective_tag(0),
              static_cast<std::uint8_t>(Center::net_delivery));
  }
  // No pending scope: the inherited (currently-executing) tag rules.
  EXPECT_EQ(effective_tag(static_cast<std::uint8_t>(Center::sns_task)),
            static_cast<std::uint8_t>(Center::sns_task));
}

TEST(ProfSimulator, AttributesTagsAndInheritsCausally) {
  sim::Simulator simulator;
  EventProfiler prof;
  simulator.set_profiler(&prof);

  int root_runs = 0;
  int child_runs = 0;
  int override_runs = 0;
  {
    const TagScope tag(Center::peerhood_discovery);
    simulator.schedule(sim::milliseconds(1), [&] {
      ++root_runs;
      // No TagScope here: the child inherits the executing event's tag.
      simulator.schedule(sim::milliseconds(1), [&] { ++child_runs; });
      // An explicit scope overrides inheritance for this schedule only.
      const TagScope rpc(Center::community_rpc);
      simulator.schedule(sim::milliseconds(2), [&] { ++override_runs; });
    });
  }
  // Scheduled outside any scope or event: unattributed.
  simulator.schedule(sim::milliseconds(3), [] {});

  simulator.run_until(sim::milliseconds(10));
  EXPECT_EQ(root_runs, 1);
  EXPECT_EQ(child_runs, 1);
  EXPECT_EQ(override_runs, 1);
  EXPECT_EQ(prof.cost(Center::peerhood_discovery).events, 2u);  // root+child
  EXPECT_EQ(prof.cost(Center::community_rpc).events, 1u);
  EXPECT_EQ(prof.cost(Center::unattributed).events, 1u);
  EXPECT_EQ(prof.events_total(), 4u);
  // The wall plane stayed off: dispatches were counted, never timed.
  EXPECT_EQ(prof.cost(Center::peerhood_discovery).wall_count, 0u);
}

TEST(ProfEventProfiler, MergeIsAssociativeAndOrderIndependent) {
  EventProfiler a;
  EventProfiler b;
  EventProfiler empty;  // the empty-shard edge case
  a.enable_wall(true);
  b.enable_wall(true);
  for (int i = 0; i < 3; ++i) {
    a.count(static_cast<std::uint8_t>(Center::world_scan));
  }
  a.observe_wall(static_cast<std::uint8_t>(Center::world_scan), 7);
  for (int i = 0; i < 5; ++i) {
    b.count(static_cast<std::uint8_t>(Center::world_scan));
    b.count(static_cast<std::uint8_t>(Center::world_frame));
  }
  b.observe_wall(static_cast<std::uint8_t>(Center::world_scan), 2);
  b.observe_wall(static_cast<std::uint8_t>(Center::world_frame), 90);

  EventProfiler ab;
  ab.merge_from(a);
  ab.merge_from(b);
  ab.merge_from(empty);
  EventProfiler ba;
  ba.merge_from(empty);
  ba.merge_from(b);
  ba.merge_from(a);

  for (const EventProfiler* merged : {&ab, &ba}) {
    EXPECT_EQ(merged->cost(Center::world_scan).events, 8u);
    EXPECT_EQ(merged->cost(Center::world_frame).events, 5u);
    EXPECT_EQ(merged->cost(Center::world_scan).wall_us, 9u);
    EXPECT_EQ(merged->cost(Center::world_scan).min_us, 2u);
    EXPECT_EQ(merged->cost(Center::world_scan).max_us, 7u);
    EXPECT_EQ(merged->events_total(), 13u);
  }
  // Merging an empty shard is the identity.
  EXPECT_EQ(empty.events_total(), 0u);
}

TEST(ProfEventProfiler, PublishEventsIsDeltaBasedAndSkipsIdleCenters) {
  Registry registry;
  EventProfiler prof;
  prof.count(static_cast<std::uint8_t>(Center::net_delivery));
  prof.count(static_cast<std::uint8_t>(Center::net_delivery));
  prof.publish_events(registry);
  EXPECT_EQ(registry.counter("prof.net.delivery.events").value(), 2u);

  // Re-publishing with no new dispatches must not double-count.
  prof.publish_events(registry);
  EXPECT_EQ(registry.counter("prof.net.delivery.events").value(), 2u);

  prof.count(static_cast<std::uint8_t>(Center::net_delivery));
  prof.publish_events(registry);
  EXPECT_EQ(registry.counter("prof.net.delivery.events").value(), 3u);

  // Centers that never dispatched stay out of the registry entirely.
  const auto snap = registry.snapshot("prof.");
  EXPECT_EQ(snap.counters().size(), 1u);
  EXPECT_EQ(snap.counters().count("sns.task.events"), 0u);
}

TEST(ProfEventProfiler, SlowEventWatchdogFiresAtBudget) {
  EventProfiler prof;
  prof.enable_wall(true);
  prof.set_slow_budget_us(100);
  Center slow_center = Center::unattributed;
  std::uint64_t slow_us = 0;
  prof.set_on_slow([&](Center c, std::uint64_t us) {
    slow_center = c;
    slow_us = us;
  });

  prof.observe_wall(static_cast<std::uint8_t>(Center::community_rpc), 99);
  EXPECT_EQ(prof.slow_events(), 0u);
  prof.observe_wall(static_cast<std::uint8_t>(Center::community_rpc), 100);
  EXPECT_EQ(prof.slow_events(), 1u);
  EXPECT_EQ(slow_center, Center::community_rpc);
  EXPECT_EQ(slow_us, 100u);
}

TEST(ProfFolded, ParseRendersRoundTrip) {
  const std::string text =
      "loop;transport.idle 41\n"
      "loop;transport.io 7\n"
      "\n"
      "loop;transport.io 3\n";  // duplicate stacks accumulate
  const auto parsed = parse_folded(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  const FoldedProfile& profile = parsed.value();
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_EQ(profile.at("loop;transport.idle"), 41u);
  EXPECT_EQ(profile.at("loop;transport.io"), 10u);
  // Canonical render: map order, one line each — re-parses to itself.
  const std::string rendered = render_folded(profile);
  EXPECT_EQ(rendered, "loop;transport.idle 41\nloop;transport.io 10\n");
  const auto again = parse_folded(rendered);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), profile);
}

TEST(ProfFolded, ParseRejectsMalformedLines) {
  EXPECT_FALSE(parse_folded("no-count-here\n").ok());
  EXPECT_FALSE(parse_folded("stack notanumber\n").ok());
  EXPECT_FALSE(parse_folded("stack 0\n").ok());       // zero samples
  EXPECT_FALSE(parse_folded(" 12\n").ok());           // empty stack
  EXPECT_FALSE(parse_folded("stack 12 \n").ok());     // trailing space
  EXPECT_TRUE(parse_folded("").ok());                 // empty is empty
  EXPECT_TRUE(parse_folded("\n\n").ok());
}

TEST(ProfFolded, MergeIsAssociativeAndCommutative) {
  const auto a = parse_folded("main;a 1\nmain;b 2\n").value();
  const auto b = parse_folded("main;b 3\nworker;c 4\n").value();
  const auto c = parse_folded("worker;c 5\n").value();
  const FoldedProfile empty;

  FoldedProfile left;  // (a + b) + c, plus an empty shard
  merge_folded(left, a);
  merge_folded(left, b);
  merge_folded(left, c);
  merge_folded(left, empty);
  FoldedProfile right;  // c + (b + a)
  merge_folded(right, c);
  merge_folded(right, b);
  merge_folded(right, a);

  EXPECT_EQ(left, right);
  EXPECT_EQ(render_folded(left), "main;a 1\nmain;b 5\nworker;c 9\n");
}

TEST(ProfWallProfiler, SamplesScopesAndRetainsRetiredThreads) {
  WallProfilerConfig config;
  config.ring_capacity = 64;
  WallProfiler profiler(config);
  EXPECT_EQ(profiler.threads_registered(), 0u);
  EXPECT_TRUE(profiler.folded().empty());  // empty-fleet edge case

  profiler.register_thread("main");
  EXPECT_EQ(profiler.threads_registered(), 1u);

  profiler.sample_once();  // no scopes: bare thread-name stack
  {
    const Scope outer(Center::parallel_window);
    profiler.sample_once();
    {
      const Scope inner(Center::parallel_merge);
      profiler.sample_once();
    }
    profiler.sample_once();
  }
  EXPECT_EQ(profiler.samples_taken(), 4u);

  const FoldedProfile live = profiler.folded();
  EXPECT_EQ(live.at("main"), 1u);
  EXPECT_EQ(live.at("main;parallel.window"), 2u);
  EXPECT_EQ(live.at("main;parallel.window;parallel.merge"), 1u);

  // Unregistering folds the ring into the retired aggregate: readouts
  // after the thread is gone still carry its samples.
  profiler.unregister_thread();
  EXPECT_EQ(profiler.threads_registered(), 0u);
  EXPECT_EQ(profiler.folded(), live);
  // Unregistered threads are no longer sampled.
  profiler.sample_once();
  EXPECT_EQ(profiler.folded(), live);
}

}  // namespace
}  // namespace ph::obs::prof
