// ph::obs::Registry — instrument semantics, percentile math, merging and
// the name/kind collision contract.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace ph::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry registry;
  Counter& c = registry.counter("net.medium.datagrams_sent");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, SameNameReturnsSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("peerhood.daemon.d1.pings_sent");
  a.inc(3);
  Counter& b = registry.counter("peerhood.daemon.d1.pings_sent");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Gauge, SetAndAdd) {
  Registry registry;
  Gauge& g = registry.gauge("sim.kernel.events_per_sec");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Registry, FindReturnsNullForAbsentNames) {
  Registry registry;
  registry.counter("a");
  EXPECT_NE(registry.find_counter("a"), nullptr);
  EXPECT_EQ(registry.find_counter("b"), nullptr);
  EXPECT_EQ(registry.find_gauge("a"), nullptr);
  EXPECT_EQ(registry.find_histogram("a"), nullptr);
}

TEST(RegistryDeathTest, NameKindCollisionAborts) {
  Registry registry;
  registry.counter("community.groups.joins");
  EXPECT_DEATH(registry.gauge("community.groups.joins"), "PH_CHECK");
  EXPECT_DEATH(registry.histogram("community.groups.joins"), "PH_CHECK");
}

TEST(Histogram, EmptyHistogramReadsZero) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  h.observe(5000.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5555.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5555.0 / 4.0);
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);  // overflow
}

TEST(Histogram, QuantilesOnKnownUniformDistribution) {
  // 100 samples 1..100 over unit-wide buckets: the interpolated quantile
  // must land within one bucket width of the exact order statistic.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(static_cast<double>(i));
  Histogram h(bounds);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 50.0, 1.0);
  EXPECT_NEAR(h.p95(), 95.0, 1.0);
  EXPECT_NEAR(h.p99(), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 1.0);
  // Quantiles are clamped to the observed range.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileClampedToObservedRange) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(42.0);
  h.observe(42.0);
  // All mass in one bucket: every quantile is the single observed value.
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a({10.0, 100.0});
  Histogram b({10.0, 100.0});
  a.observe(5.0);
  b.observe(50.0);
  b.observe(500.0);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 500.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);
  EXPECT_EQ(a.bucket_counts()[1], 1u);
  EXPECT_EQ(a.bucket_counts()[2], 1u);
}

TEST(Registry, MergeFromCombinesAllKinds) {
  Registry a;
  Registry b;
  a.counter("shared").inc(1);
  b.counter("shared").inc(2);
  b.counter("only_b").inc(7);
  b.gauge("depth").set(3.0);
  b.histogram("lat", {1.0, 2.0}).observe(1.5);

  a.merge_from(b);
  EXPECT_EQ(a.counter("shared").value(), 3u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("depth").value(), 3.0);
  const Histogram* lat = a.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 1u);
  // b is untouched.
  EXPECT_EQ(b.counter("shared").value(), 2u);
}

TEST(Snapshot, PrefixScopesAndStripsNames) {
  Registry registry;
  registry.counter("net.medium.frames").inc(4);
  registry.counter("net.medium.drops").inc(1);
  registry.counter("peerhood.pings").inc(9);
  registry.gauge("net.medium.load").set(0.5);
  registry.histogram("net.medium.lat_us", {10.0, 100.0}).observe(42.0);

  const Snapshot net = registry.snapshot("net.medium.");
  EXPECT_EQ(net.prefix(), "net.medium.");
  EXPECT_FALSE(net.empty());
  EXPECT_EQ(net.counter("frames"), 4u);
  EXPECT_EQ(net.counter("drops"), 1u);
  EXPECT_EQ(net.counter("pings"), 0u);  // other prefix, absent => 0
  EXPECT_DOUBLE_EQ(net.gauge("load"), 0.5);
  const Histogram* lat = net.histogram("lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 1u);
  EXPECT_EQ(net.histogram("nope"), nullptr);
  EXPECT_EQ(net.counters().size(), 2u);

  const Snapshot all = registry.snapshot();
  EXPECT_EQ(all.counter("peerhood.pings"), 9u);
  EXPECT_EQ(all.counters().size(), 3u);
}

TEST(Snapshot, EqualityComparesContentNotPrefix) {
  Registry x;
  Registry y;
  x.counter("a.frames").inc(2);
  y.counter("b.frames").inc(2);
  // Same content under different prefixes: equal views.
  EXPECT_EQ(x.snapshot("a."), y.snapshot("b."));

  y.counter("b.frames").inc();
  EXPECT_NE(x.snapshot("a."), y.snapshot("b."));

  Registry z;
  z.counter("a.frames").inc(2);
  z.histogram("a.lat", {1.0}).observe(0.5);
  EXPECT_NE(x.snapshot("a."), z.snapshot("a."));
  x.histogram("a.lat", {1.0}).observe(0.5);
  EXPECT_EQ(x.snapshot("a."), z.snapshot("a."));
  z.histogram("a.lat", {1.0}).observe(0.7);
  EXPECT_NE(x.snapshot("a."), z.snapshot("a."));
}

TEST(Merge, MissingInstrumentsCreatedInTarget) {
  // Instruments only the source has must appear in the target with the
  // source's values — a fresh aggregate merges a whole world in.
  Registry source;
  source.counter("net.frames").inc(5);
  source.gauge("net.depth").set(2.5);
  source.histogram("net.lat", {1.0, 2.0}).observe(1.5);
  Registry target;
  target.merge_from(source);
  EXPECT_EQ(target.counter("net.frames").value(), 5u);
  EXPECT_DOUBLE_EQ(target.gauge("net.depth").value(), 2.5);
  EXPECT_EQ(target.histogram("net.lat", {1.0, 2.0}).count(), 1u);
  EXPECT_DOUBLE_EQ(target.histogram("net.lat", {1.0, 2.0}).sum(), 1.5);
}

TEST(Merge, TargetOnlyInstrumentsSurviveUntouched) {
  Registry source;
  source.counter("a.n").inc(1);
  Registry target;
  target.counter("b.n").inc(7);
  target.histogram("b.lat", {1.0}).observe(0.5);
  target.merge_from(source);
  EXPECT_EQ(target.counter("a.n").value(), 1u);
  EXPECT_EQ(target.counter("b.n").value(), 7u);
  EXPECT_EQ(target.histogram("b.lat", {1.0}).count(), 1u);
}

TEST(Merge, EmptySourceIsANoOp) {
  Registry target;
  target.counter("a.n").inc(3);
  target.histogram("a.lat", {1.0}).observe(0.25);
  const Snapshot before = target.snapshot("a.");
  Registry empty;
  target.merge_from(empty);
  EXPECT_EQ(target.snapshot("a."), before);
}

TEST(Merge, HistogramMinMaxAcrossEmptySides) {
  // Merging into an empty histogram adopts the source extremes; merging an
  // empty source must not clobber them with zeroes.
  Registry source;
  source.histogram("h", {10.0}).observe(3.0);
  source.histogram("h", {10.0}).observe(8.0);
  Registry target;
  target.histogram("h", {10.0}).merge_from(source.histogram("h", {10.0}));
  EXPECT_DOUBLE_EQ(target.histogram("h", {10.0}).min(), 3.0);
  EXPECT_DOUBLE_EQ(target.histogram("h", {10.0}).max(), 8.0);
  Histogram empty({10.0});
  target.histogram("h", {10.0}).merge_from(empty);
  EXPECT_DOUBLE_EQ(target.histogram("h", {10.0}).min(), 3.0);
  EXPECT_DOUBLE_EQ(target.histogram("h", {10.0}).max(), 8.0);
  EXPECT_EQ(target.histogram("h", {10.0}).count(), 2u);
}

TEST(MergeDeathTest, MismatchedBoundsAbort) {
  // Same name, different buckets: the sums would be meaningless, so the
  // merge refuses loudly rather than guessing.
  Registry source;
  source.histogram("h.lat", {1.0, 2.0}).observe(0.5);
  Registry target;
  target.histogram("h.lat", {5.0}).observe(0.5);
  EXPECT_DEATH(target.merge_from(source), "PH_CHECK");
}

TEST(Snapshot, IsAPointInTimeCopy) {
  Registry registry;
  registry.counter("x.n").inc();
  const Snapshot before = registry.snapshot("x.");
  registry.counter("x.n").inc(10);
  EXPECT_EQ(before.counter("n"), 1u);  // unchanged by later activity
  EXPECT_EQ(registry.snapshot("x.").counter("n"), 11u);
}

TEST(DefaultBounds, AreStrictlyIncreasing) {
  for (const std::vector<double>* bounds :
       {&default_latency_bounds_us(), &operation_bounds_s()}) {
    ASSERT_FALSE(bounds->empty());
    for (std::size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

}  // namespace
}  // namespace ph::obs
