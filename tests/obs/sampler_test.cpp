#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include "eval/scenarios.hpp"
#include "net/medium.hpp"
#include "sim/simulator.hpp"

namespace ph::obs {
namespace {

constexpr TimePoint kTick = 100'000;  // 100 ms in µs

// --- TimeSeries ring --------------------------------------------------------

TEST(TimeSeriesTest, KeepsPointsOldestFirst) {
  TimeSeries series(SeriesKind::gauge, 8);
  series.push(10, 1.0);
  series.push(20, 2.0);
  series.push(30, 3.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.at(0).at, 10u);
  EXPECT_EQ(series.at(2).value, 3.0);
  EXPECT_EQ(series.back().at, 30u);
  EXPECT_EQ(series.evicted(), 0u);
}

TEST(TimeSeriesTest, EvictsOldestAtCapacity) {
  TimeSeries series(SeriesKind::gauge, 4);
  for (int i = 0; i < 6; ++i) {
    series.push(static_cast<TimePoint>(i * 10), i);
  }
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.total_points(), 6u);
  EXPECT_EQ(series.evicted(), 2u);
  // Oldest surviving point is the third pushed.
  EXPECT_EQ(series.at(0).at, 20u);
  EXPECT_EQ(series.back().at, 50u);
}

// --- quantile over a bucket diff -------------------------------------------

TEST(QuantileFromBucketDeltaTest, ZeroTotalIsZero) {
  EXPECT_EQ(quantile_from_bucket_delta({10, 20}, {0, 0, 0}, 0, 0.5), 0.0);
}

TEST(QuantileFromBucketDeltaTest, InterpolatesInsideFirstBucket) {
  // All 4 observations in (0, 10]: the median interpolates to the middle.
  const double p50 = quantile_from_bucket_delta({10, 20}, {4, 0, 0}, 4, 0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 10.0);
}

TEST(QuantileFromBucketDeltaTest, PicksTheRightBucket) {
  // 1 observation in (0,10], 9 in (10,20]: p95 lands in the second bucket.
  const double p95 =
      quantile_from_bucket_delta({10, 20}, {1, 9, 0}, 10, 0.95);
  EXPECT_GT(p95, 10.0);
  EXPECT_LE(p95, 20.0);
}

TEST(QuantileFromBucketDeltaTest, OverflowBucketClampsToLastBound) {
  EXPECT_EQ(quantile_from_bucket_delta({10, 20}, {0, 0, 5}, 5, 0.99), 20.0);
}

// --- Sampler ----------------------------------------------------------------

TEST(SamplerTest, CounterBecomesRateSeries) {
  Registry registry;
  Counter& c = registry.counter("layer.hits");
  Sampler sampler(registry);

  c.inc(5);
  sampler.sample(kTick);  // first interval: fallback elapsed = interval_us
  c.inc(10);
  sampler.sample(2 * kTick);

  const TimeSeries* rate = sampler.find("layer.hits.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->kind(), SeriesKind::counter_rate);
  ASSERT_EQ(rate->size(), 2u);
  EXPECT_DOUBLE_EQ(rate->at(0).value, 50.0);   // 5 events / 0.1 s
  EXPECT_DOUBLE_EQ(rate->at(1).value, 100.0);  // 10 events / 0.1 s
}

TEST(SamplerTest, QuietIntervalYieldsZeroRate) {
  Registry registry;
  registry.counter("layer.hits").inc(3);
  Sampler sampler(registry);
  sampler.sample(kTick);
  sampler.sample(2 * kTick);  // nothing happened in between
  const TimeSeries* rate = sampler.find("layer.hits.rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->back().value, 0.0);
}

TEST(SamplerTest, GaugeSamplesLastValue) {
  Registry registry;
  Gauge& g = registry.gauge("layer.depth");
  Sampler sampler(registry);
  g.set(2.5);
  sampler.sample(kTick);
  g.set(7.0);
  sampler.sample(2 * kTick);
  const TimeSeries* series = sampler.find("layer.depth");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->size(), 2u);
  EXPECT_DOUBLE_EQ(series->at(0).value, 2.5);
  EXPECT_DOUBLE_EQ(series->at(1).value, 7.0);
}

TEST(SamplerTest, HistogramDiffQuantilesOnlyWhenIntervalSawSamples) {
  Registry registry;
  Histogram& h = registry.histogram("layer.latency_us");
  Sampler sampler(registry);

  h.observe(50.0);
  h.observe(50.0);
  sampler.sample(kTick);
  sampler.sample(2 * kTick);  // empty interval
  h.observe(2e6);
  sampler.sample(3 * kTick);

  const TimeSeries* rate = sampler.find("layer.latency_us.rate");
  const TimeSeries* p95 = sampler.find("layer.latency_us.p95");
  ASSERT_NE(rate, nullptr);
  ASSERT_NE(p95, nullptr);
  // The rate series has a point per sample; the quantile series skips the
  // empty interval.
  EXPECT_EQ(rate->size(), 3u);
  EXPECT_DOUBLE_EQ(rate->at(1).value, 0.0);
  ASSERT_EQ(p95->size(), 2u);
  EXPECT_LE(p95->at(0).value, 100.0);   // both samples in a low bucket
  EXPECT_GT(p95->at(1).value, 100.0);   // only the 2 s observation
}

TEST(SamplerTest, PerIntervalQuantilesForgetOldIntervals) {
  // A registry-level Histogram quantile is cumulative; the sampler's
  // per-interval p50 must reflect only the newest interval's observations.
  Registry registry;
  Histogram& h = registry.histogram("layer.latency_us");
  Sampler sampler(registry);
  for (int i = 0; i < 100; ++i) h.observe(50.0);
  sampler.sample(kTick);
  h.observe(2e6);
  sampler.sample(2 * kTick);
  const TimeSeries* p50 = sampler.find("layer.latency_us.p50");
  ASSERT_NE(p50, nullptr);
  ASSERT_EQ(p50->size(), 2u);
  // Interval 2 held exactly one 2 s observation, so its p50 is in the 2 s
  // bucket even though 100 fast ones came before.
  EXPECT_GT(p50->back().value, 1e6);
}

TEST(SamplerTest, LateRegisteredMetricsJoinOnNextScrape) {
  Registry registry;
  registry.counter("early").inc(1);
  Sampler sampler(registry);
  sampler.sample(kTick);
  EXPECT_EQ(sampler.find("late.rate"), nullptr);

  registry.counter("late").inc(4);
  sampler.sample(2 * kTick);
  const TimeSeries* late = sampler.find("late.rate");
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->size(), 1u);
  EXPECT_EQ(sampler.allocations(), sampler.series().size());
}

TEST(SamplerTest, DisabledSamplerDoesNothing) {
  Registry registry;
  registry.counter("x").inc(1);
  Sampler sampler(registry);
  sampler.set_enabled(false);
  sampler.sample(kTick);
  EXPECT_EQ(sampler.samples_taken(), 0u);
  EXPECT_TRUE(sampler.series().empty());
  EXPECT_EQ(sampler.allocations(), 0u);
}

TEST(SamplerTest, RepeatedTimestampIsIgnored) {
  Registry registry;
  registry.counter("x").inc(1);
  Sampler sampler(registry);
  sampler.sample(kTick);
  sampler.sample(kTick);
  EXPECT_EQ(sampler.samples_taken(), 1u);
}

// The O(series) allocation guarantee over a real scenario: sampling the
// ComLab testbed world at 100 ms for 30 virtual seconds allocates exactly
// one ring per series — steady-state scrapes allocate nothing.
TEST(SamplerTest, AllocationsStayOrderSeriesOverScenario) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(42));
  auto devices = eval::comlab_room(medium, /*autostart=*/true);

  Sampler sampler(medium.registry(),
                  {.interval_us = kTick, .capacity = 512});
  simulator.schedule_periodic(kTick, [&] { sampler.sample(simulator.now()); });
  simulator.run_until(sim::seconds(30));

  EXPECT_EQ(sampler.samples_taken(), 300u);
  EXPECT_GT(sampler.series().size(), 20u);  // the world is instrumented
  EXPECT_EQ(sampler.allocations(), sampler.series().size());
  // Sanity: a real health series both exists and moved.
  bool saw_nonempty_daemon_series = false;
  for (const auto& [name, series] : sampler.series()) {
    if (name.find("peerhood.daemon.") != std::string::npos &&
        !series.empty()) {
      saw_nonempty_daemon_series = true;
    }
  }
  EXPECT_TRUE(saw_nonempty_daemon_series);
}

}  // namespace
}  // namespace ph::obs
