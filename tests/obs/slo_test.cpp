#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/sampler.hpp"

namespace ph::obs {
namespace {

constexpr TimePoint kTick = 100'000;  // 100 ms in µs

struct SloFixture : ::testing::Test {
  Registry registry;
  Sampler sampler{registry};
  Trace trace;
  SloEngine slo{sampler, registry, &trace};

  SloFixture() { trace.set_enabled(true); }

  /// One scrape + evaluation at `at`, with the gauge set first.
  void step(Gauge& gauge, double value, TimePoint at) {
    gauge.set(value);
    sampler.sample(at);
    slo.evaluate(at);
  }
};

TEST_F(SloFixture, BreachAndRecoveryDriveCountersGaugeAndWindows) {
  Gauge& g = registry.gauge("layer.depth");
  slo.add_rule({.name = "deep",
                .series = "layer.depth",
                .aggregate = SloAggregate::last,
                .comparison = SloComparison::above,
                .threshold = 5.0});

  step(g, 3.0, kTick);
  EXPECT_FALSE(slo.breached("deep"));
  EXPECT_EQ(slo.total_breaches(), 0u);

  step(g, 7.0, 2 * kTick);
  EXPECT_TRUE(slo.breached("deep"));
  EXPECT_EQ(slo.total_breaches(), 1u);
  EXPECT_EQ(registry.counter("obs.slo.deep.breaches").value(), 1u);
  EXPECT_EQ(registry.gauge("obs.slo.deep.breached").value(), 1.0);
  ASSERT_EQ(slo.windows().size(), 1u);
  EXPECT_TRUE(slo.windows()[0].open);
  EXPECT_EQ(slo.windows()[0].start, 2 * kTick);

  // Still unhealthy: same window extends, no second breach counted.
  step(g, 9.0, 3 * kTick);
  EXPECT_EQ(slo.total_breaches(), 1u);
  ASSERT_EQ(slo.windows().size(), 1u);
  EXPECT_EQ(slo.windows()[0].end, 3 * kTick);

  step(g, 2.0, 4 * kTick);
  EXPECT_FALSE(slo.breached("deep"));
  EXPECT_EQ(registry.gauge("obs.slo.deep.breached").value(), 0.0);
  ASSERT_EQ(slo.windows().size(), 1u);
  EXPECT_FALSE(slo.windows()[0].open);
  EXPECT_EQ(slo.windows()[0].end, 4 * kTick);
  // Recovery does not increment the breach counter.
  EXPECT_EQ(registry.counter("obs.slo.deep.breaches").value(), 1u);
}

TEST_F(SloFixture, BelowComparison) {
  Gauge& g = registry.gauge("groups.formed");
  slo.add_rule({.name = "unformed",
                .series = "groups.formed",
                .aggregate = SloAggregate::last,
                .comparison = SloComparison::below,
                .threshold = 1.0});
  step(g, 1.0, kTick);
  EXPECT_FALSE(slo.breached("unformed"));
  step(g, 0.0, 2 * kTick);
  EXPECT_TRUE(slo.breached("unformed"));
}

TEST_F(SloFixture, MeanOverWindow) {
  Gauge& g = registry.gauge("x");
  slo.add_rule({.name = "hot",
                .series = "x",
                .aggregate = SloAggregate::mean,
                .comparison = SloComparison::above,
                .threshold = 4.0,
                .window_us = 3 * kTick,
                .min_points = 2});
  step(g, 0.0, kTick);
  step(g, 10.0, 2 * kTick);  // mean 5 > 4 with 2 in-window points
  EXPECT_TRUE(slo.breached("hot"));
}

TEST_F(SloFixture, MaxOverWindowHoldsUntilSpikeLeavesWindow) {
  Gauge& g = registry.gauge("x");
  slo.add_rule({.name = "spiky",
                .series = "x",
                .aggregate = SloAggregate::max,
                .comparison = SloComparison::above,
                .threshold = 5.0,
                .window_us = 2 * kTick});
  step(g, 9.0, kTick);
  EXPECT_TRUE(slo.breached("spiky"));
  // Points with at >= now - window participate: at t=300 ms the t=100 ms
  // spike still counts; by t=400 ms it has left the window and the rule
  // recovers.
  step(g, 0.0, 3 * kTick);
  EXPECT_TRUE(slo.breached("spiky"));
  step(g, 0.0, 4 * kTick);
  EXPECT_FALSE(slo.breached("spiky"));
}

TEST_F(SloFixture, MinPointsAbstains) {
  Gauge& g = registry.gauge("x");
  slo.add_rule({.name = "patient",
                .series = "x",
                .aggregate = SloAggregate::mean,
                .comparison = SloComparison::above,
                .threshold = 1.0,
                .window_us = 10 * kTick,
                .min_points = 3});
  step(g, 100.0, kTick);
  EXPECT_FALSE(slo.breached("patient"));  // 1 point < min_points
  step(g, 100.0, 2 * kTick);
  EXPECT_FALSE(slo.breached("patient"));  // 2 points
  step(g, 100.0, 3 * kTick);
  EXPECT_TRUE(slo.breached("patient"));
}

TEST_F(SloFixture, MissingSeriesAbstains) {
  slo.add_rule({.name = "ghost",
                .series = "does.not.exist",
                .aggregate = SloAggregate::last,
                .comparison = SloComparison::above,
                .threshold = 0.0});
  sampler.sample(kTick);
  slo.evaluate(kTick);
  EXPECT_FALSE(slo.breached("ghost"));
  EXPECT_EQ(slo.total_breaches(), 0u);
}

TEST_F(SloFixture, OnBreachHandlerAndTraceEventsFire) {
  Gauge& g = registry.gauge("x");
  std::vector<std::string> fired;
  slo.set_on_breach([&](const SloRule& rule, TimePoint at, double value) {
    fired.push_back(rule.name);
    EXPECT_EQ(at, 2 * kTick);
    EXPECT_DOUBLE_EQ(value, 7.0);
  });
  slo.add_rule({.name = "deep",
                .series = "x",
                .aggregate = SloAggregate::last,
                .comparison = SloComparison::above,
                .threshold = 5.0});
  step(g, 1.0, kTick);
  step(g, 7.0, 2 * kTick);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "deep");

  bool saw_breach_event = false;
  for (const auto& event : trace.events()) {
    if (event.name == "obs.slo.breach") saw_breach_event = true;
  }
  EXPECT_TRUE(saw_breach_event);
}

TEST_F(SloFixture, TwoRulesTrackIndependentWindows) {
  Gauge& a = registry.gauge("a");
  Gauge& b = registry.gauge("b");
  slo.add_rule({.name = "rule_a",
                .series = "a",
                .comparison = SloComparison::above,
                .threshold = 1.0});
  slo.add_rule({.name = "rule_b",
                .series = "b",
                .comparison = SloComparison::above,
                .threshold = 1.0});
  a.set(5.0);
  b.set(0.0);
  sampler.sample(kTick);
  slo.evaluate(kTick);
  a.set(0.0);
  b.set(5.0);
  sampler.sample(2 * kTick);
  slo.evaluate(2 * kTick);
  EXPECT_FALSE(slo.breached("rule_a"));
  EXPECT_TRUE(slo.breached("rule_b"));
  ASSERT_EQ(slo.windows().size(), 2u);
  EXPECT_EQ(slo.windows()[0].rule, "rule_a");
  EXPECT_FALSE(slo.windows()[0].open);
  EXPECT_EQ(slo.windows()[1].rule, "rule_b");
  EXPECT_TRUE(slo.windows()[1].open);
}

}  // namespace
}  // namespace ph::obs
