// OpsServer protocol tests over a real UNIX socket.
//
// Pins the one-line wire contract an external operator scripts against:
// known routes serve their body, a route whose source is absent answers
// `err unavailable <route>`, and anything else answers
// `err unknown-route <name>` — single machine-stable lines, never a hang
// or a crash. The client half is a raw AF_UNIX socket, exercised
// single-threaded: connect + write ride the listen backlog, then one
// handle_readable() call accepts and serves.
#include "obs/ops_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/prof.hpp"

namespace ph::obs {
namespace {

class OpsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char dir_template[] = "/tmp/ph_ops_server_test.XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// One request round: connect, send the route line, let the server
  /// accept + serve, read the body to EOF.
  static std::string request(OpsServer& server, const std::string& route) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  server.socket_path().c_str());
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::string line = route + "\n";
    EXPECT_EQ(::write(fd, line.data(), line.size()),
              static_cast<ssize_t>(line.size()));
    ::shutdown(fd, SHUT_WR);
    server.handle_readable();
    std::string body;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      body.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return body;
  }

  std::string dir_;
};

TEST_F(OpsServerTest, UnknownRouteAnswersMachineStableLine) {
  Registry registry;
  OpsSources sources;
  sources.registry = &registry;
  OpsServer server({dir_ + "/test.ops"}, sources);
  ASSERT_TRUE(server.start().ok());

  EXPECT_EQ(request(server, "/nope"), "err unknown-route /nope\n");
  // The curl-ish "GET <route>" form reaches the same diagnostic.
  EXPECT_EQ(request(server, "GET /definitely-not-a-route"),
            "err unknown-route /definitely-not-a-route\n");
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST_F(OpsServerTest, AbsentSourcesAnswerUnavailable) {
  // A server wired with nothing at all: every known route must still
  // answer — with the unavailable line, not a crash on a null source.
  OpsServer server({dir_ + "/bare.ops"}, OpsSources{});
  ASSERT_TRUE(server.start().ok());

  EXPECT_EQ(request(server, "/metrics"), "err unavailable /metrics\n");
  EXPECT_EQ(request(server, "/profile"), "err unavailable /profile\n");
  EXPECT_EQ(request(server, "/flight"), "err unavailable /flight\n");
}

TEST_F(OpsServerTest, ProfileServesFoldedOutput) {
  prof::WallProfiler profiler;
  profiler.register_thread("loop");
  {
    const prof::Scope span(prof::Center::transport_io);
    profiler.sample_once();
    profiler.sample_once();
  }
  {
    const prof::Scope span(prof::Center::transport_idle);
    profiler.sample_once();
  }

  OpsSources sources;
  sources.profiler = &profiler;
  OpsServer server({dir_ + "/prof.ops"}, sources);
  ASSERT_TRUE(server.start().ok());

  const std::string body = request(server, "/profile");
  const auto parsed = prof::parse_folded(body);
  ASSERT_TRUE(parsed.ok()) << body;
  EXPECT_EQ(parsed.value().at("loop;transport.io"), 2u);
  EXPECT_EQ(parsed.value().at("loop;transport.idle"), 1u);
  profiler.unregister_thread();
}

}  // namespace
}  // namespace ph::obs
