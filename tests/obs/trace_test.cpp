// ph::obs::Trace — span-tree mechanics, virtual-time ordering, the
// disabled-by-default contract, and a round-trip of the exporter's JSON
// through the bundled reader.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ph::obs {
namespace {

TEST(Trace, DisabledByDefaultAndCheap) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.begin_span("op", 10), 0u);
  trace.end_span(0, 20);  // must be a harmless no-op
  trace.add_event("ev", 30);
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, SpanRecordsFields) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId id = trace.begin_span("community.rpc", 100, 7, "ps_msg");
  ASSERT_NE(id, 0u);
  trace.end_span(id, 250);

  const Span* span = trace.find_span(id);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->name, "community.rpc");
  EXPECT_EQ(span->kind, "ps_msg");
  EXPECT_EQ(span->device, 7u);
  EXPECT_EQ(span->start, 100u);
  EXPECT_EQ(span->end, 250u);
  EXPECT_TRUE(span->closed);
}

TEST(Trace, ScopeParentsNestedSpans) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId outer = trace.begin_span("outer", 0);
  SpanId inner = 0;
  SpanId sibling = 0;
  {
    Trace::Scope scope(trace, outer);
    inner = trace.begin_span("inner", 10);
    {
      Trace::Scope nested(trace, inner);
      EXPECT_EQ(trace.current_context(), inner);
    }
    EXPECT_EQ(trace.current_context(), outer);
  }
  sibling = trace.begin_span("sibling", 20);

  EXPECT_EQ(trace.find_span(inner)->parent, outer);
  EXPECT_EQ(trace.find_span(sibling)->parent, 0u);  // context popped
  EXPECT_EQ(trace.find_span(outer)->parent, 0u);
}

TEST(Trace, ParentFixedAtBeginNotAtCompletion) {
  // The async pattern all instrumented layers use: begin under a scope,
  // finish much later with no context on the stack.
  Trace trace;
  trace.set_enabled(true);
  const SpanId rpc = trace.begin_span("community.rpc", 0);
  SpanId frame = 0;
  {
    Trace::Scope scope(trace, rpc);
    frame = trace.begin_span("net.link.send", 5);
  }
  trace.end_span(rpc, 100);
  trace.end_span(frame, 300);  // completes after its parent closed

  const Span* child = trace.find_span(frame);
  EXPECT_EQ(child->parent, rpc);
  EXPECT_GE(child->start, trace.find_span(rpc)->start);
}

TEST(Trace, EventsAttachToCurrentContext) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId op = trace.begin_span("op", 0);
  {
    Trace::Scope scope(trace, op);
    trace.add_event("sns.page", 42, 3, "group_page");
  }
  trace.add_event("orphan", 50);

  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].span, op);
  EXPECT_EQ(trace.events()[0].at, 42u);
  EXPECT_EQ(trace.events()[0].device, 3u);
  EXPECT_EQ(trace.events()[0].kind, "group_page");
  EXPECT_EQ(trace.events()[1].span, 0u);
}

TEST(Trace, ScopeWithZeroIdPushesNothing) {
  Trace trace;  // disabled: begin_span returns 0
  const SpanId none = trace.begin_span("op", 0);
  Trace::Scope scope(trace, none);
  EXPECT_EQ(trace.current_context(), 0u);
}

TEST(Trace, CapacityDropsNewRecordsAndCounts) {
  Trace trace;
  trace.set_enabled(true);
  trace.set_capacity(2);
  const SpanId a = trace.begin_span("a", 1);
  const SpanId b = trace.begin_span("b", 2);
  const SpanId c = trace.begin_span("c", 3);  // over capacity
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_EQ(c, 0u);
  trace.add_event("e1", 4);
  trace.add_event("e2", 5);
  trace.add_event("e3", 6);  // over capacity
  EXPECT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.dropped(), 2u);
}

TEST(Trace, BeginSpanUnderUsesExplicitParent) {
  // The wire-header path: the receive side knows the sender's span id and
  // parents under it even though that span was never on this context stack.
  Trace trace;
  trace.set_enabled(true);
  const SpanId remote = trace.begin_span("community.rpc", 0, 1);
  const SpanId local = trace.begin_span_under(remote, "community.server.handle",
                                              40, 2, "ps_msg");
  EXPECT_EQ(trace.find_span(local)->parent, remote);
  EXPECT_EQ(trace.find_span(local)->device, 2u);
}

TEST(Trace, BeginSpanUnderZeroFallsBackToContext) {
  // trace_parent == 0 means "untraced sender": fall back to whatever the
  // delivering frame pushed, exactly like begin_span.
  Trace trace;
  trace.set_enabled(true);
  const SpanId flight = trace.begin_span("net.datagram", 0);
  Trace::Scope scope(trace, flight);
  const SpanId handled = trace.begin_span_under(0, "handle", 10);
  EXPECT_EQ(trace.find_span(handled)->parent, flight);
}

TEST(Trace, RingModeEvictsOldestKeepsIdsStable) {
  Trace trace;
  trace.set_enabled(true);
  trace.set_ring_capacity(2);
  std::vector<SpanId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(trace.begin_span("s" + std::to_string(i), i));
  }
  // Ids stay monotonic across evictions — no reuse.
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
  // The ring holds at least the newest `capacity` spans (amortised
  // eviction may leave up to 2x briefly) and evicted some prefix.
  EXPECT_GE(trace.evicted(), 1u);
  EXPECT_LE(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans().size() + trace.evicted(), 5u);
  // The newest span is always present; an evicted id resolves to nothing
  // and closing it is a harmless no-op.
  EXPECT_NE(trace.find_span(ids.back()), nullptr);
  EXPECT_EQ(trace.find_span(ids.front()), nullptr);
  trace.end_span(ids.front(), 99);
  // Ring mode never counts as "dropped": the journal stayed bounded by
  // design, not by overflow.
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(Trace, RingSurvivorsKeepWorking) {
  Trace trace;
  trace.set_enabled(true);
  trace.set_ring_capacity(3);
  std::vector<SpanId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(trace.begin_span("s", i));
  }
  const SpanId last = ids.back();
  trace.end_span(last, 500);
  EXPECT_TRUE(trace.find_span(last)->closed);
  EXPECT_EQ(trace.find_span(last)->end, 500u);
}

TEST(Trace, DroppedCounterMirror) {
  Registry registry;
  Counter& dropped = registry.counter("obs.trace.dropped");
  Trace trace;
  trace.set_enabled(true);
  trace.set_capacity(1);
  trace.set_dropped_counter(&dropped);
  trace.begin_span("kept", 1);
  trace.begin_span("dropped", 2);       // spans at capacity
  trace.add_event("kept_event", 3);
  trace.add_event("dropped_event", 4);  // events at capacity
  EXPECT_EQ(trace.dropped(), 2u);
  EXPECT_EQ(dropped.value(), 2u);
}

TEST(Trace, ClearResetsJournal) {
  Trace trace;
  trace.set_enabled(true);
  trace.begin_span("a", 1);
  trace.add_event("e", 2);
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
  EXPECT_TRUE(trace.events().empty());
  EXPECT_NE(trace.begin_span("b", 3), 0u);
}

TEST(Export, JsonRoundTripsThroughReader) {
  Registry registry;
  registry.counter("net.medium.datagrams_sent").inc(3);
  registry.gauge("depth").set(1.5);
  registry.histogram("rpc_us", {10.0, 100.0}).observe(42.0);

  Trace trace;
  trace.set_enabled(true);
  const SpanId rpc = trace.begin_span("community.rpc", 100, 2, "ps_msg");
  {
    Trace::Scope scope(trace, rpc);
    const SpanId frame = trace.begin_span("net.link.send", 110, 2);
    trace.end_span(frame, 150);
    trace.add_event("sns.page", 120, 1, "profile_page");
  }
  trace.end_span(rpc, 200);

  std::string error;
  json::Value root;
  ASSERT_TRUE(json::parse(to_json(registry, &trace), root, &error)) << error;

  const json::Value* counters = root.get("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_object());
  const json::Value* sent = counters->get("net.medium.datagrams_sent");
  ASSERT_TRUE(sent != nullptr && sent->is_number());
  EXPECT_DOUBLE_EQ(sent->number, 3.0);

  const json::Value* histograms = root.get("histograms");
  ASSERT_TRUE(histograms != nullptr && histograms->is_object());
  const json::Value* rpc_us = histograms->get("rpc_us");
  ASSERT_TRUE(rpc_us != nullptr && rpc_us->is_object());
  EXPECT_DOUBLE_EQ(rpc_us->get("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(rpc_us->get("p95")->number, 42.0);
  ASSERT_TRUE(rpc_us->get("buckets")->is_array());
  EXPECT_EQ(rpc_us->get("buckets")->array->size(), 3u);

  const json::Value* spans = root.get("spans");
  ASSERT_TRUE(spans != nullptr && spans->is_array());
  ASSERT_EQ(spans->array->size(), 2u);
  const json::Value& first = (*spans->array)[0];
  EXPECT_EQ(first.get("name")->string, "community.rpc");
  EXPECT_EQ(first.get("kind")->string, "ps_msg");
  EXPECT_DOUBLE_EQ(first.get("start_us")->number, 100.0);
  EXPECT_DOUBLE_EQ(first.get("end_us")->number, 200.0);
  const json::Value& second = (*spans->array)[1];
  EXPECT_DOUBLE_EQ(second.get("parent")->number,
                   first.get("id")->number);

  const json::Value* events = root.get("events");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->array->size(), 1u);
  EXPECT_EQ((*events->array)[0].get("name")->string, "sns.page");

  // Without a trace, the journal keys are absent entirely.
  json::Value no_trace;
  ASSERT_TRUE(json::parse(to_json(registry), no_trace, &error)) << error;
  EXPECT_EQ(no_trace.get("spans"), nullptr);
  EXPECT_EQ(no_trace.get("events"), nullptr);
}

TEST(Export, CsvHasOneFieldPerRow) {
  Registry registry;
  registry.counter("c").inc(2);
  const std::string csv = to_csv(registry);
  EXPECT_NE(csv.find("counter,c,value,2"), std::string::npos) << csv;
}

TEST(Export, ChromeTraceShape) {
  Trace trace;
  trace.set_enabled(true);
  // A cross-device pair: the rpc on device 1, its handling on device 2.
  const SpanId rpc = trace.begin_span("community.rpc", 100, 1, "ps_msg");
  const SpanId handle =
      trace.begin_span_under(rpc, "community.server.handle", 140, 2);
  trace.end_span(handle, 180);
  trace.end_span(rpc, 200);
  const SpanId open = trace.begin_span("peerhood.session.resume", 210, 1);
  (void)open;  // left open: must surface as a "B" begin event
  trace.add_event("community.group.formed", 220, 2, "football");

  std::string error;
  json::Value root;
  ASSERT_TRUE(json::parse(
      to_chrome_trace(trace, {{1, "alice"}, {2, "bob"}}), root, &error))
      << error;
  const json::Value* events = root.get("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());

  int metadata = 0, complete = 0, begin = 0, instant = 0;
  int flow_start = 0, flow_finish = 0;
  bool named_alice = false;
  for (const json::Value& event : *events->array) {
    const std::string& ph = event.get("ph")->string;
    if (ph == "M") {
      ++metadata;
      const json::Value* args = event.get("args");
      if (args != nullptr && args->get("name")->string == "alice") {
        named_alice = true;
      }
    } else if (ph == "X") {
      ++complete;
      EXPECT_TRUE(event.get("dur")->is_number());
    } else if (ph == "B") {
      ++begin;
    } else if (ph == "i") {
      ++instant;
    } else if (ph == "s") {
      ++flow_start;
    } else if (ph == "f") {
      ++flow_finish;
    }
  }
  EXPECT_EQ(metadata, 3);  // one track per device + the clock_domain tag
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(begin, 1);
  EXPECT_EQ(instant, 1);
  // Exactly one causal hop crosses devices: one flow-arrow pair.
  EXPECT_EQ(flow_start, 1);
  EXPECT_EQ(flow_finish, 1);
  EXPECT_TRUE(named_alice);
}

TEST(Export, FlightRecordingFallbackPathAndReason) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId span = trace.begin_span("fault.blackout", 10, 3, "fault");
  trace.end_span(span, 20);

  // No env var, no fallback: a no-op by design.
  ::unsetenv("PH_FLIGHT_JSON");
  EXPECT_FALSE(dump_flight_recording(trace, "blackout"));

  const std::string path =
      ::testing::TempDir() + "/ph_flight_recorder_test.json";
  ASSERT_TRUE(dump_flight_recording(trace, "blackout", path));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  json::Value root;
  std::string error;
  ASSERT_TRUE(json::parse(buffer.str(), root, &error)) << error;
  const json::Value* other = root.get("otherData");
  ASSERT_TRUE(other != nullptr && other->is_object());
  EXPECT_EQ(other->get("reason")->string, "blackout");
  ASSERT_TRUE(root.get("traceEvents")->is_array());
}

}  // namespace
}  // namespace ph::obs
