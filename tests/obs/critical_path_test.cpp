// ph::obs critical-path analyzer — span classification, the sweep-line's
// exactness and priority rules, and the tree-scoped variant.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

namespace ph::obs {
namespace {

Span make_span(std::string name, TimePoint start, TimePoint end) {
  Span span;
  span.name = std::move(name);
  span.start = start;
  span.end = end;
  span.closed = true;
  return span;
}

TEST(Classify, NamesMapToPhases) {
  EXPECT_EQ(classify(make_span("net.inquiry", 0, 1)), Phase::inquiry);
  EXPECT_EQ(classify(make_span("peerhood.inquiry", 0, 1)), Phase::inquiry);
  EXPECT_EQ(classify(make_span("net.link.open", 0, 1)), Phase::handshake);
  EXPECT_EQ(classify(make_span("peerhood.session.accept", 0, 1)),
            Phase::handshake);
  EXPECT_EQ(classify(make_span("peerhood.session.resume", 0, 1)),
            Phase::handshake);
  EXPECT_EQ(classify(make_span("net.datagram", 0, 1)), Phase::transfer);
  EXPECT_EQ(classify(make_span("net.link.send", 0, 1)), Phase::transfer);
  EXPECT_EQ(classify(make_span("peerhood.backoff.wait", 0, 1)),
            Phase::backoff);
  EXPECT_EQ(classify(make_span("community.backoff.wait", 0, 1)),
            Phase::backoff);
  EXPECT_EQ(classify(make_span("net.tx_queue", 0, 1)), Phase::queueing);
  EXPECT_EQ(classify(make_span("community.queue.wait", 0, 1)),
            Phase::queueing);
  // Containers carry no phase of their own.
  EXPECT_EQ(classify(make_span("community.rpc", 0, 1)), std::nullopt);
  EXPECT_EQ(classify(make_span("eval.table8.search", 0, 1)), std::nullopt);
  EXPECT_EQ(classify(make_span("fault.blackout", 0, 1)), std::nullopt);
}

TEST(AttributeWindow, PhasesSumExactlyToWindow) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId inquiry = trace.begin_span("net.inquiry", 100);
  trace.end_span(inquiry, 300);
  const SpanId frame = trace.begin_span("net.link.send", 350);
  trace.end_span(frame, 400);

  const Attribution a = attribute_window(trace, 100, 500);
  EXPECT_EQ(a.window_us, 400u);
  EXPECT_EQ(a.of(Phase::inquiry), 200u);
  EXPECT_EQ(a.of(Phase::transfer), 50u);
  EXPECT_EQ(a.of(Phase::processing), 150u);  // residual, exact
  std::uint64_t sum = 0;
  for (const std::uint64_t us : a.phase_us) sum += us;
  EXPECT_EQ(sum, a.window_us);
}

TEST(AttributeWindow, OverlapChargesHigherPriorityOnce) {
  // A frame in flight during an inquiry window: the overlap is transfer,
  // never double-counted.
  Trace trace;
  trace.set_enabled(true);
  const SpanId inquiry = trace.begin_span("net.inquiry", 0);
  trace.end_span(inquiry, 100);
  const SpanId frame = trace.begin_span("net.link.send", 40);
  trace.end_span(frame, 60);

  const Attribution a = attribute_window(trace, 0, 100);
  EXPECT_EQ(a.of(Phase::inquiry), 80u);
  EXPECT_EQ(a.of(Phase::transfer), 20u);
  EXPECT_EQ(a.of(Phase::processing), 0u);
}

TEST(AttributeWindow, SpansClippedToWindow) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId frame = trace.begin_span("net.link.send", 0);
  trace.end_span(frame, 1000);

  const Attribution a = attribute_window(trace, 400, 600);
  EXPECT_EQ(a.window_us, 200u);
  EXPECT_EQ(a.of(Phase::transfer), 200u);
}

TEST(AttributeWindow, OpenAndOutsideSpansIgnored) {
  Trace trace;
  trace.set_enabled(true);
  trace.begin_span("net.inquiry", 10);  // never closed
  const SpanId outside = trace.begin_span("net.link.send", 500);
  trace.end_span(outside, 600);

  const Attribution a = attribute_window(trace, 0, 100);
  EXPECT_EQ(a.of(Phase::inquiry), 0u);
  EXPECT_EQ(a.of(Phase::transfer), 0u);
  EXPECT_EQ(a.of(Phase::processing), 100u);
}

TEST(AttributeTree, OnlyDescendantsCount) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId rpc = trace.begin_span("community.rpc", 0);
  SpanId inside = 0;
  {
    Trace::Scope scope(trace, rpc);
    inside = trace.begin_span("net.link.send", 10);
  }
  trace.end_span(inside, 30);
  // A concurrent, unrelated frame: inside the interval, outside the tree.
  const SpanId unrelated = trace.begin_span("net.link.send", 40);
  trace.end_span(unrelated, 90);
  trace.end_span(rpc, 100);

  const Attribution tree = attribute_tree(trace, rpc);
  EXPECT_EQ(tree.window_us, 100u);
  EXPECT_EQ(tree.of(Phase::transfer), 20u);
  EXPECT_EQ(tree.of(Phase::processing), 80u);

  // The window variant sees both frames.
  const Attribution window = attribute_window(trace, 0, 100);
  EXPECT_EQ(window.of(Phase::transfer), 70u);
}

TEST(AttributeTree, UnknownOrOpenRootIsEmpty) {
  Trace trace;
  trace.set_enabled(true);
  const SpanId open = trace.begin_span("community.rpc", 0);
  EXPECT_EQ(attribute_tree(trace, open).window_us, 0u);
  EXPECT_EQ(attribute_tree(trace, 12345).window_us, 0u);
}

TEST(Attribution, AddAccumulates) {
  Attribution total;
  Attribution a;
  a.window_us = 100;
  a.phase_us[static_cast<std::size_t>(Phase::transfer)] = 60;
  a.phase_us[static_cast<std::size_t>(Phase::processing)] = 40;
  total.add(a);
  total.add(a);
  EXPECT_EQ(total.window_us, 200u);
  EXPECT_EQ(total.of(Phase::transfer), 120u);
  EXPECT_DOUBLE_EQ(total.fraction(Phase::transfer), 0.6);
}

TEST(Attribution, FormatTableListsEveryPhase) {
  Attribution a;
  a.window_us = 2'000'000;
  a.phase_us[static_cast<std::size_t>(Phase::inquiry)] = 1'500'000;
  a.phase_us[static_cast<std::size_t>(Phase::processing)] = 500'000;
  const std::string table = format_attribution_table({{"discovery", a}});
  EXPECT_NE(table.find("operation"), std::string::npos);
  EXPECT_NE(table.find("discovery"), std::string::npos);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    EXPECT_NE(table.find(to_string(static_cast<Phase>(i))),
              std::string::npos)
        << to_string(static_cast<Phase>(i));
  }
  EXPECT_NE(table.find("1.500"), std::string::npos) << table;
}

}  // namespace
}  // namespace ph::obs
