// The obs::Clock seam (obs/clock.hpp): wall vs. virtual time sources and
// the clockful Sampler path built on them.
#include "obs/clock.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace ph::obs {
namespace {

TEST(WallClock, IsMonotonicAndAnchoredAtConstruction) {
  WallClock clock;
  const TimePoint first = clock.now();
  TimePoint last = first;
  for (int i = 0; i < 1000; ++i) {
    const TimePoint now = clock.now();
    EXPECT_GE(now, last);
    last = now;
  }
  // Anchored at construction: readings start near zero, not at a machine
  // epoch (a fresh clock must not report hours of uptime).
  EXPECT_LT(first, 60ull * 1'000'000ull);
  EXPECT_STREQ(clock.domain(), "wall");
}

TEST(FnClock, WrapsAnyMicrosecondSource) {
  TimePoint fake = 100;
  FnClock clock([&] { return fake; });
  EXPECT_EQ(clock.now(), 100u);
  fake = 250;
  EXPECT_EQ(clock.now(), 250u);
  EXPECT_STREQ(clock.domain(), "virtual");
  FnClock wall_tagged([&] { return fake; }, "wall");
  EXPECT_STREQ(wall_tagged.domain(), "wall");
}

// The clockful path must be byte-equivalent to explicit stamping: two
// samplers over one registry, one fed stamps by hand and one reading the
// same instants through a FnClock, end with identical series.
TEST(SamplerClock, ClockfulSamplingMatchesExplicitStamps) {
  Registry registry;
  Counter& ops = registry.counter("t.ops");

  TimePoint now = 0;
  FnClock clock([&] { return now; });
  SamplerConfig config;
  config.interval_us = 1000;
  Sampler by_clock(registry, clock, config);
  Sampler by_stamp(registry, config);
  EXPECT_EQ(by_clock.clock(), &clock);
  EXPECT_EQ(by_stamp.clock(), nullptr);

  for (int i = 1; i <= 5; ++i) {
    ops.inc(static_cast<std::uint64_t>(i));
    now = static_cast<TimePoint>(i) * 1000;
    by_clock.sample();
    by_stamp.sample(now);
  }

  ASSERT_EQ(by_clock.samples_taken(), by_stamp.samples_taken());
  EXPECT_EQ(by_clock.last_sample_at(), by_stamp.last_sample_at());
  const TimeSeries* a = by_clock.find("t.ops.rate");
  const TimeSeries* b = by_stamp.find("t.ops.rate");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->at(i).at, b->at(i).at);
    EXPECT_EQ(a->at(i).value, b->at(i).value);
  }
}

}  // namespace
}  // namespace ph::obs
