// Exposition round-trip and fleet-merge semantics (obs/expo.hpp).
#include "obs/expo.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace ph::obs {
namespace {

TEST(ExpoName, LintsTheDottedLowercaseGrammar) {
  EXPECT_TRUE(valid_metric_name("transport.datagrams_sent"));
  EXPECT_TRUE(valid_metric_name("a.b_c.d9"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("Transport.count"));
  EXPECT_FALSE(valid_metric_name("has space"));
  EXPECT_FALSE(valid_metric_name("curly{brace}"));
}

TEST(ExpoRender, RoundTripsEveryInstrumentKind) {
  Registry registry;
  registry.counter("net.frames").inc(42);
  registry.gauge("net.depth").set(2.5);
  Histogram& h = registry.histogram("net.latency_us");
  h.observe(15.0);
  h.observe(90.0);
  h.observe(90.0);

  const std::string text = to_exposition(registry);
  EXPECT_NE(text.find("# TYPE net.frames counter\nnet.frames 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE net.depth gauge\nnet.depth 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("net.latency_us.count 3\n"), std::string::npos);
  // Per-bucket counts, not Prometheus-cumulative: the two 90 µs samples
  // land in the le="100" bucket and the overflow bucket stays 0.
  EXPECT_NE(text.find(".bucket{le=\"100\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find(".bucket{le=\"+Inf\"} 0\n"), std::string::npos);

  auto parsed = parse_exposition(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const ExpoDoc& doc = parsed.value();
  EXPECT_EQ(doc.counters.at("net.frames"), 42u);
  EXPECT_DOUBLE_EQ(doc.gauges.at("net.depth"), 2.5);
  const ExpoDoc::Hist& hist = doc.histograms.at("net.latency_us");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.sum, h.sum());
  EXPECT_EQ(hist.bucket_counts.size(), hist.bounds.size() + 1);

  // Render → parse → render must be a fixed point: the text form is the
  // interchange format, so it cannot drift through a scrape/merge cycle.
  const std::string rendered = render_exposition(doc);
  auto reparsed = parse_exposition(rendered);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(render_exposition(reparsed.value()), rendered);
}

TEST(ExpoParse, RejectsMalformedDocuments) {
  // Sample without a TYPE declaration.
  EXPECT_FALSE(parse_exposition("orphan 1\n").ok());
  // Duplicate TYPE.
  EXPECT_FALSE(parse_exposition("# TYPE a counter\n# TYPE a counter\na 1\n")
                   .ok());
  // Illegal name.
  EXPECT_FALSE(parse_exposition("# TYPE BAD counter\nBAD 1\n").ok());
  // Histogram sample with an unknown field suffix.
  EXPECT_FALSE(
      parse_exposition("# TYPE h histogram\nh.count 1\nh.median 3\n").ok());
  // Non-numeric value.
  EXPECT_FALSE(parse_exposition("# TYPE a counter\na banana\n").ok());
}

TEST(ExpoMerge, CountersAddGaugesSumBucketsAdd) {
  Registry a;
  a.counter("fleet.ops").inc(10);
  a.gauge("fleet.queue_bytes").set(100.0);
  Histogram& ha = a.histogram("fleet.rtt_us");
  ha.observe(20.0);

  Registry b;
  b.counter("fleet.ops").inc(5);
  b.counter("fleet.only_b").inc(1);
  b.gauge("fleet.queue_bytes").set(50.0);
  Histogram& hb = b.histogram("fleet.rtt_us");
  hb.observe(20.0);
  hb.observe(5000.0);

  auto da = parse_exposition(to_exposition(a));
  auto db = parse_exposition(to_exposition(b));
  ASSERT_TRUE(da.ok() && db.ok());
  ExpoDoc merged = da.value();
  ASSERT_TRUE(merge_expositions(merged, db.value()).ok());

  EXPECT_EQ(merged.counters.at("fleet.ops"), 15u);
  EXPECT_EQ(merged.counters.at("fleet.only_b"), 1u);
  // Fleet reading of a depth gauge: the members' sum, not last-wins.
  EXPECT_DOUBLE_EQ(merged.gauges.at("fleet.queue_bytes"), 150.0);
  const ExpoDoc::Hist& hist = merged.histograms.at("fleet.rtt_us");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_DOUBLE_EQ(hist.sum, 5040.0);

  // The re-render recomputes quantiles from merged buckets: with 2 of 3
  // samples in the low bucket, p50 must sit at the low bucket's bound,
  // not at an average of the inputs' p50 readouts.
  auto reparsed = parse_exposition(render_exposition(merged));
  ASSERT_TRUE(reparsed.ok());
  const ExpoDoc::Hist& rendered = reparsed.value().histograms.at("fleet.rtt_us");
  EXPECT_LT(rendered.p50, 100.0);
  EXPECT_GE(rendered.p99, 1000.0);
}

TEST(ExpoMerge, MismatchedHistogramBoundsFail) {
  ExpoDoc a;
  a.histograms["h"].bounds = {1.0, 2.0};
  a.histograms["h"].bucket_counts = {0, 0, 0};
  ExpoDoc b;
  b.histograms["h"].bounds = {1.0, 3.0};
  b.histograms["h"].bucket_counts = {0, 0, 0};
  EXPECT_FALSE(merge_expositions(a, b).ok());
}

}  // namespace
}  // namespace ph::obs
