// End-to-end trace: follow one social operation through the layers and
// assert the span tree is causally ordered in virtual time.
//
// Community path (the thesis' reference application): a ComLab-room world
// runs cold-start discovery and one member-list RPC with tracing on. The
// journal must show peerhood.inquiry → peerhood.service_query →
// net.datagram parent chains and community.rpc → net.* children, with
// every child starting no earlier than its parent (parents are fixed at
// begin time — causal order, not completion order).
//
// SNS path: a browser task against the simulated site must leave
// sns.page events and net.datagram spans in the same journal.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "net/medium.hpp"
#include "eval/scenarios.hpp"
#include "obs/trace.hpp"
#include "sns/browser.hpp"
#include "sns/server.hpp"

namespace ph {
namespace {

using obs::Span;
using obs::SpanId;

std::map<SpanId, const Span*> index_spans(const obs::Trace& trace) {
  std::map<SpanId, const Span*> by_id;
  for (const Span& span : trace.spans()) by_id[span.id] = &span;
  return by_id;
}

// Walks the parent chain of `span` looking for an ancestor named `name`.
const Span* ancestor_named(const std::map<SpanId, const Span*>& by_id,
                           const Span& span, const std::string& name) {
  for (SpanId parent = span.parent; parent != 0;) {
    auto it = by_id.find(parent);
    if (it == by_id.end()) return nullptr;
    if (it->second->name == name) return it->second;
    parent = it->second->parent;
  }
  return nullptr;
}

void assert_causal_order(const obs::Trace& trace) {
  const auto by_id = index_spans(trace);
  for (const Span& span : trace.spans()) {
    if (span.closed) {
      EXPECT_GE(span.end, span.start) << span.name << " #" << span.id;
    }
    if (span.parent != 0) {
      auto it = by_id.find(span.parent);
      ASSERT_NE(it, by_id.end()) << span.name << " has unknown parent";
      EXPECT_GE(span.start, it->second->start)
          << span.name << " #" << span.id << " starts before its parent "
          << it->second->name << " #" << span.parent;
    }
  }
}

TEST(E2ETrace, CommunityOperationSpansNestAcrossLayers) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(7));
  medium.trace().set_enabled(true);

  std::vector<eval::ScenarioDevice> devices =
      eval::comlab_room(medium, /*autostart=*/false);
  eval::ScenarioDevice& self = devices[0];
  for (eval::ScenarioDevice& device : devices) (void)device.stack->daemon().start();

  // Cold-start discovery until the Football group has formed.
  while (true) {
    auto group = self.app->groups().group("football");
    if (group.ok() && group->formed()) break;
    simulator.run_for(sim::milliseconds(250));
    ASSERT_LT(simulator.now(), sim::minutes(5)) << "discovery never completed";
  }

  // One social operation: the Figure 11 member-list fan-out.
  bool done = false;
  self.app->client().get_online_members(
      [&](Result<std::vector<std::string>> members) {
        ASSERT_TRUE(members.ok());
        EXPECT_EQ(members->size(), 2u);
        done = true;
      });
  while (!done) simulator.run_for(sim::milliseconds(100));

  const obs::Trace& trace = medium.trace();
  EXPECT_EQ(trace.dropped(), 0u);
  assert_causal_order(trace);

  const auto by_id = index_spans(trace);
  int inquiry_net_children = 0;     // peerhood.inquiry → net.inquiry
  int query_datagrams = 0;          // peerhood.service_query → net.datagram
  int rpc_spans = 0;
  int rpc_net_children = 0;         // community.rpc → net.*
  for (const Span& span : trace.spans()) {
    if (span.name == "community.rpc") ++rpc_spans;
    if (span.parent == 0) continue;
    const Span& parent = *by_id.at(span.parent);
    if (span.name == "net.inquiry" && parent.name == "peerhood.inquiry") {
      ++inquiry_net_children;
    }
    if (span.name == "net.datagram" &&
        parent.name == "peerhood.service_query") {
      ++query_datagrams;
    }
    if (parent.name == "community.rpc" && span.name.rfind("net.", 0) == 0) {
      ++rpc_net_children;
    }
  }
  EXPECT_GT(inquiry_net_children, 0);
  EXPECT_GT(query_datagrams, 0);
  EXPECT_GT(rpc_spans, 0);
  EXPECT_GT(rpc_net_children, 0);

  // The service-query datagrams must trace back to an inquiry: the full
  // peerhood.inquiry → peerhood.service_query → net.datagram chain.
  int full_chains = 0;
  for (const Span& span : trace.spans()) {
    if (span.name != "net.datagram" || span.parent == 0) continue;
    if (by_id.at(span.parent)->name != "peerhood.service_query") continue;
    if (ancestor_named(by_id, span, "peerhood.inquiry") != nullptr) {
      ++full_chains;
    }
  }
  EXPECT_GT(full_chains, 0);

  // Cross-device parenting: the member-list fan-out is served on the OTHER
  // devices, and each server-side handling span must join the caller's
  // tree — a community.server.handle span on a foreign device with a
  // community.rpc ancestor recorded on the caller's device.
  const net::NodeId caller = self.stack->daemon().self();
  int cross_device_handles = 0;
  for (const Span& span : trace.spans()) {
    if (span.name != "community.server.handle") continue;
    if (span.device == caller) continue;
    const Span* rpc = ancestor_named(by_id, span, "community.rpc");
    if (rpc != nullptr && rpc->device == caller) ++cross_device_handles;
  }
  EXPECT_GT(cross_device_handles, 0)
      << "server handling spans did not join the caller's tree";
}

TEST(E2ETrace, SnsBrowserTaskLeavesPageEventsAndNetSpans) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(11));
  medium.trace().set_enabled(true);

  sns::SnsServer server(medium, sns::facebook());
  server.add_group("England Football");
  server.add_member("England Football", "dave");
  sns::BrowserClient browser(medium, sns::nokia_n810(), server.node(),
                             "tester");

  bool done = false;
  browser.search_group("football",
                       [&](Result<sns::BrowserClient::TaskResult> result) {
                         ASSERT_TRUE(result.ok());
                         done = true;
                       });
  while (!done) simulator.run_for(sim::seconds(1));

  const obs::Trace& trace = medium.trace();
  assert_causal_order(trace);

  int page_events = 0;
  for (const obs::TraceEvent& event : trace.events()) {
    if (event.name == "sns.page") {
      ++page_events;
      EXPECT_EQ(event.device, server.node());
    }
  }
  EXPECT_GT(page_events, 0);

  // The browser talks to the site over a GPRS session: link opens and
  // frame sends must be in the journal.
  int link_opens = 0;
  int link_sends = 0;
  for (const Span& span : trace.spans()) {
    if (span.name == "net.link.open") ++link_opens;
    if (span.name == "net.link.send") ++link_sends;
  }
  EXPECT_GT(link_opens, 0);
  EXPECT_GT(link_sends, 0);
}

}  // namespace
}  // namespace ph
