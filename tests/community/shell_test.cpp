// Shell tests — the Figure 10 terminal UI, driven exactly as a user would.
#include "net/medium.hpp"
#include "community/shell.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include <memory>

#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class ShellTest : public ::testing::Test {
 protected:
  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<CommunityApp> app;
    std::unique_ptr<Shell> shell;
  };

  ShellTest() : medium_(simulator_, sim::Rng(60)) {
    me_ = make_device("me-ptd", {0, 0});
    peer_ = make_device("alice-ptd", {3, 0});
    // Peer alice is logged in with interests and content.
    EXPECT_NE(peer_->shell->execute("create alice pw").find("created"),
              std::string::npos);
    EXPECT_NE(peer_->shell->execute("login alice pw").find("welcome"),
              std::string::npos);
    (void)peer_->shell->execute("interest add football");
    (void)peer_->shell->execute("share mixtape.mp3 5000");
  }

  std::unique_ptr<Device> make_device(const std::string& name, sim::Vec2 pos) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = name;
    config.radios = {deterministic_bt()};
    device->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<CommunityApp>(*device->stack);
    device->shell = std::make_unique<Shell>(*device->app);
    return device;
  }

  /// Logs 'me' in and waits for the neighbourhood.
  void login_me() {
    ASSERT_NE(me_->shell->execute("create me pw").find("created"),
              std::string::npos);
    ASSERT_NE(me_->shell->execute("login me pw").find("welcome"),
              std::string::npos);
    ASSERT_TRUE(run_until(
        simulator_,
        [&] {
          return !me_->stack->library().find_service(kServiceName).empty();
        },
        sim::seconds(30)));
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::unique_ptr<Device> me_, peer_;
};

TEST_F(ShellTest, MenuShowsLoginState) {
  EXPECT_NE(me_->shell->execute("menu").find("not logged in"), std::string::npos);
  login_me();
  EXPECT_NE(me_->shell->execute("menu").find("logged in as: me"),
            std::string::npos);
}

TEST_F(ShellTest, UnknownCommandSuggestsHelp) {
  EXPECT_NE(me_->shell->execute("frobnicate").find("unknown command"),
            std::string::npos);
}

TEST_F(ShellTest, HelpListsEveryCommand) {
  const std::string help = me_->shell->execute("help");
  for (const char* command :
       {"create", "login", "profile", "interests", "members", "group",
        "comment", "msg", "inbox", "trust", "shared", "fetch", "teach"}) {
    EXPECT_NE(help.find(command), std::string::npos) << command;
  }
}

TEST_F(ShellTest, CommandsRequireLogin) {
  for (const char* command : {"members", "interests", "inbox", "profile",
                              "group list", "shared"}) {
    EXPECT_NE(me_->shell->execute(command).find("not logged in"),
              std::string::npos)
        << command;
  }
}

TEST_F(ShellTest, BadCredentialsRejected) {
  (void)me_->shell->execute("create me pw");
  EXPECT_NE(me_->shell->execute("login me wrong").find("auth_failed"),
            std::string::npos);
}

TEST_F(ShellTest, ProfileEditingScreens) {
  login_me();
  (void)me_->shell->execute("set name Me Myself");
  (void)me_->shell->execute("set age 27");
  (void)me_->shell->execute("set about studying at LUT");
  const std::string screen = me_->shell->execute("profile");
  EXPECT_NE(screen.find("name : Me Myself"), std::string::npos);
  EXPECT_NE(screen.find("age  : 27"), std::string::npos);
  EXPECT_NE(screen.find("about: studying at LUT"), std::string::npos);
}

TEST_F(ShellTest, InterestManagement) {
  login_me();
  (void)me_->shell->execute("interest add football");
  (void)me_->shell->execute("interest add jazz");
  std::string screen = me_->shell->execute("interests");
  EXPECT_NE(screen.find("football"), std::string::npos);
  EXPECT_NE(screen.find("jazz"), std::string::npos);
  (void)me_->shell->execute("interest remove jazz");
  screen = me_->shell->execute("interests");
  EXPECT_EQ(screen.find("jazz"), std::string::npos);
}

TEST_F(ShellTest, MembersScreenFindsPeer) {
  login_me();
  const std::string screen = me_->shell->execute("members");
  EXPECT_NE(screen.find("alice"), std::string::npos);
}

TEST_F(ShellTest, RemoteProfileScreen) {
  login_me();
  const std::string screen = me_->shell->execute("profile alice");
  EXPECT_NE(screen.find("profile: alice"), std::string::npos);
  EXPECT_NE(screen.find("football"), std::string::npos);
}

TEST_F(ShellTest, GroupScreensAfterDiscovery) {
  login_me();
  (void)me_->shell->execute("interest add football");
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto group = me_->app->groups().group("football");
        return group.ok() && group->formed();
      },
      sim::minutes(1)));
  const std::string list = me_->shell->execute("group list");
  EXPECT_NE(list.find("football [2 member(s)]"), std::string::npos);
  const std::string members = me_->shell->execute("group members football");
  EXPECT_NE(members.find("alice"), std::string::npos);
  EXPECT_NE(members.find("me"), std::string::npos);
}

TEST_F(ShellTest, ManualGroupJoinLeave) {
  login_me();
  EXPECT_NE(me_->shell->execute("group join sailing").find("joined"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("group list").find("sailing"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("group leave sailing").find("left"),
            std::string::npos);
  EXPECT_EQ(me_->shell->execute("group list").find("sailing"),
            std::string::npos);
}

TEST_F(ShellTest, MessageRoundTripThroughShells) {
  login_me();
  EXPECT_NE(
      me_->shell->execute("msg alice lunch? | see you at 12 by the kiosk")
          .find("delivered"),
      std::string::npos);
  const std::string inbox = peer_->shell->execute("inbox");
  EXPECT_NE(inbox.find("from me: [lunch?] see you at 12 by the kiosk"),
            std::string::npos);
  // ...and the sender's own sent folder records it (Table 7: "view sent
  // messages").
  const std::string sent = me_->shell->execute("sent");
  EXPECT_NE(sent.find("to alice: [lunch?] see you at 12 by the kiosk"),
            std::string::npos);
}

TEST_F(ShellTest, CommentAppearsOnPeerProfile) {
  login_me();
  (void)me_->shell->execute("comment alice great mixtape!");
  const std::string profile = peer_->shell->execute("profile");
  EXPECT_NE(profile.find("[me] great mixtape!"), std::string::npos);
}

TEST_F(ShellTest, SharedContentTrustFlow) {
  login_me();
  // Untrusted: the thesis' NOT_TRUSTED_YET screen.
  EXPECT_NE(me_->shell->execute("shared alice").find("NOT_TRUSTED_YET"),
            std::string::npos);
  // alice trusts me; the listing works.
  (void)peer_->shell->execute("trust add me");
  const std::string listing = me_->shell->execute("shared alice");
  EXPECT_NE(listing.find("mixtape.mp3 (5000 bytes)"), std::string::npos);
  // ...and the download too.
  EXPECT_NE(me_->shell->execute("fetch alice mixtape.mp3")
                .find("downloaded 'mixtape.mp3' (5000 bytes)"),
            std::string::npos);
}

TEST_F(ShellTest, TrustListScreens) {
  login_me();
  (void)peer_->shell->execute("trust add me");
  (void)peer_->shell->execute("trust add someone-else");
  const std::string remote = me_->shell->execute("trust list alice");
  EXPECT_NE(remote.find("me"), std::string::npos);
  EXPECT_NE(remote.find("someone-else"), std::string::npos);
}

TEST_F(ShellTest, TeachMergesGroups) {
  login_me();
  (void)me_->shell->execute("interest add soccer");
  simulator_.run_for(sim::seconds(5));
  // alice has "football": no group match yet.
  EXPECT_EQ(me_->shell->execute("group members soccer").find("alice"),
            std::string::npos);
  (void)me_->shell->execute("teach soccer = football");
  const std::string members = me_->shell->execute("group members soccer");
  EXPECT_NE(members.find("alice"), std::string::npos);
}

TEST_F(ShellTest, DevicesAndServicesScreens) {
  login_me();
  const std::string devices = me_->shell->execute("devices");
  EXPECT_NE(devices.find("alice-ptd"), std::string::npos);
  EXPECT_NE(devices.find("bluetooth"), std::string::npos);
  const std::string services = me_->shell->execute("services");
  EXPECT_NE(services.find("PeerHoodCommunity @ alice-ptd"), std::string::npos);
  EXPECT_NE(services.find("PeerHoodCommunity @ (this device)"),
            std::string::npos);
}

TEST_F(ShellTest, InboxDeleteCommand) {
  login_me();
  (void)peer_->shell->execute("msg me one | first body");
  (void)peer_->shell->execute("msg me two | second body");
  std::string inbox = me_->shell->execute("inbox");
  EXPECT_NE(inbox.find("1. from alice: [one]"), std::string::npos);
  EXPECT_NE(inbox.find("2. from alice: [two]"), std::string::npos);
  EXPECT_NE(me_->shell->execute("inbox delete 1").find("deleted"),
            std::string::npos);
  inbox = me_->shell->execute("inbox");
  EXPECT_EQ(inbox.find("[one]"), std::string::npos);
  EXPECT_NE(inbox.find("1. from alice: [two]"), std::string::npos);
  EXPECT_NE(me_->shell->execute("inbox delete 9").find("error"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("inbox garbage").find("usage"),
            std::string::npos);
}

TEST_F(ShellTest, SaveAndLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/shell_store_test.bin";
  login_me();
  (void)me_->shell->execute("interest add football");
  EXPECT_NE(me_->shell->execute("save " + path).find("accounts saved"),
            std::string::npos);
  // Load logs the user out and restores the stored accounts.
  EXPECT_NE(me_->shell->execute("load " + path).find("please log in"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("whoami").find("not logged in"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("login me pw").find("welcome"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("interests").find("football"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ShellTest, LoadFromMissingFileReportsError) {
  EXPECT_NE(me_->shell->execute("load /no/such/file.bin").find("error"),
            std::string::npos);
}

TEST_F(ShellTest, EmptyAndCommentLinesIgnored) {
  EXPECT_EQ(me_->shell->execute(""), "");
  EXPECT_EQ(me_->shell->execute("   "), "");
  EXPECT_EQ(me_->shell->execute("# a script comment"), "");
}

TEST_F(ShellTest, UsageMessagesOnBadArguments) {
  login_me();
  EXPECT_NE(me_->shell->execute("msg alice no-bar-here").find("usage:"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("set age not-a-number").find("error"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("share file.bin NaN").find("error"),
            std::string::npos);
  EXPECT_NE(me_->shell->execute("teach a b").find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace ph::community
