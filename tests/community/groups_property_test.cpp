// Randomized equivalence property for the group engine: after ANY sequence
// of peer arrivals, updates, departures, interest edits, manual joins and
// dictionary teachings, the incremental engine's state must equal a fresh
// engine fed only the final facts.
#include <gtest/gtest.h>

#include "community/groups.hpp"
#include "sim/rng.hpp"

namespace ph::community {
namespace {

std::string interest_name(std::uint64_t i) {
  return "topic" + std::to_string(i);
}

class GroupEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupEquivalenceTest, IncrementalMatchesFromScratch) {
  sim::Rng rng(GetParam());
  SemanticDictionary dictionary;
  GroupEngine incremental("self", dictionary);

  // Ground truth the random walk maintains.
  std::vector<std::string> local_interests;
  std::map<std::string, std::vector<std::string>> live_peers;
  std::set<std::string> manual_joins;

  auto random_interests = [&] {
    std::vector<std::string> out;
    const int count = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < count; ++i) {
      out.push_back(interest_name(rng.uniform_int(0, 9)));
    }
    return out;
  };

  local_interests = random_interests();
  incremental.set_local_interests(local_interests);

  for (int step = 0; step < 300; ++step) {
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // peer appears or updates
        const std::string peer = "peer" + std::to_string(rng.uniform_int(0, 7));
        live_peers[peer] = random_interests();
        incremental.on_peer(peer, live_peers[peer]);
        break;
      }
      case 1: {  // peer departs
        if (live_peers.empty()) break;
        auto victim = live_peers.begin();
        std::advance(victim, rng.uniform_int(0, live_peers.size() - 1));
        incremental.remove_peer(victim->first);
        live_peers.erase(victim);
        break;
      }
      case 2: {  // local interest edit
        local_interests = random_interests();
        incremental.set_local_interests(local_interests);
        break;
      }
      case 3: {  // manual join
        const std::string interest = interest_name(rng.uniform_int(0, 9));
        manual_joins.insert(interest);
        incremental.manual_join(interest);
        break;
      }
      case 4: {  // manual leave
        if (manual_joins.empty()) break;
        auto victim = manual_joins.begin();
        std::advance(victim, rng.uniform_int(0, manual_joins.size() - 1));
        (void)incremental.manual_leave(*victim);
        manual_joins.erase(victim);
        break;
      }
      case 5: {  // teach a synonym
        dictionary.teach(interest_name(rng.uniform_int(0, 9)),
                         interest_name(rng.uniform_int(0, 9)));
        incremental.rebuild();
        break;
      }
    }
  }

  // Build the reference engine from the final facts only.
  GroupEngine reference("self", dictionary);
  reference.set_local_interests(local_interests);
  for (const std::string& interest : manual_joins) {
    reference.manual_join(interest);
  }
  for (const auto& [peer, interests] : live_peers) {
    reference.on_peer(peer, interests);
  }

  const auto lhs = incremental.groups();
  const auto rhs = reference.groups();
  ASSERT_EQ(lhs.size(), rhs.size()) << "seed " << GetParam();
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].interest, rhs[i].interest) << "seed " << GetParam();
    EXPECT_EQ(lhs[i].members, rhs[i].members)
        << "seed " << GetParam() << " group " << lhs[i].interest;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupEquivalenceTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace ph::community
