// CommunityClient tests: the fan-out MSC operations (Figures 11-17) against
// real servers over the simulated Bluetooth neighbourhood.
#include "net/medium.hpp"
#include "community/client.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "community/server.hpp"
#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

/// One remote device running a logged-in PeerHoodCommunity server.
struct Peer {
  std::unique_ptr<peerhood::Stack> stack;
  ProfileStore store;
  SemanticDictionary dictionary;
  std::unique_ptr<CommunityServer> server;

  Account& account() { return *store.active(); }
};

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : medium_(simulator_, sim::Rng(11)) {
    peerhood::StackConfig config;
    config.device_name = "self-device";
    config.radios = {deterministic_bt()};
    self_ = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
        config);
    client_ = std::make_unique<CommunityClient>(self_->library(), "me");
  }

  Peer& add_peer(const std::string& member, sim::Vec2 pos,
                 std::vector<std::string> interests) {
    auto peer = std::make_unique<Peer>();
    peerhood::StackConfig config;
    config.device_name = member + "-device";
    config.radios = {deterministic_bt()};
    peer->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    Account* account = *peer->store.create_account(member, "pw");
    for (const auto& interest : interests) account->add_interest(interest);
    (void)peer->store.login(member, "pw");
    peer->server = std::make_unique<CommunityServer>(
        peer->stack->library(), peer->store, peer->dictionary);
    EXPECT_TRUE(peer->server->start().ok());
    peers_.push_back(std::move(peer));
    return *peers_.back();
  }

  /// Waits until the client's daemon knows every peer's community service.
  void await_neighbourhood() {
    ASSERT_TRUE(run_until(
        simulator_,
        [&] {
          return self_->library().find_service(kServiceName).size() ==
                 peers_.size();
        },
        sim::seconds(30)));
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::unique_ptr<peerhood::Stack> self_;
  std::unique_ptr<CommunityClient> client_;
  std::vector<std::unique_ptr<Peer>> peers_;
};

TEST_F(ClientTest, GetOnlineMembersUnionsAllDevices) {
  add_peer("alice", {3, 0}, {});
  add_peer("bob", {0, 3}, {});
  await_neighbourhood();
  std::vector<std::string> members;
  bool done = false;
  client_->get_online_members([&](Result<std::vector<std::string>> result) {
    ASSERT_TRUE(result.ok());
    members = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(members, (std::vector<std::string>{"alice", "bob"}));
}

TEST_F(ClientTest, GetInterestListDeduplicates) {
  // Figure 12: interests are stored "if it doesn't exist already".
  add_peer("alice", {3, 0}, {"football", "movies"});
  add_peer("bob", {0, 3}, {"football", "chess"});
  await_neighbourhood();
  std::vector<std::string> interests;
  bool done = false;
  client_->get_interest_list([&](Result<std::vector<std::string>> result) {
    interests = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(interests,
            (std::vector<std::string>{"chess", "football", "movies"}));
}

TEST_F(ClientTest, GetInterestedMembersFindsMatchingPeers) {
  add_peer("alice", {3, 0}, {"football"});
  add_peer("bob", {0, 3}, {"chess"});
  await_neighbourhood();
  std::vector<std::string> members;
  bool done = false;
  client_->get_interested_members(
      "football", [&](Result<std::vector<std::string>> result) {
        members = *result;
        done = true;
      });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(members, (std::vector<std::string>{"alice"}));
}

TEST_F(ClientTest, ViewProfileFindsHostingDevice) {
  Peer& alice = add_peer("alice", {3, 0}, {"football"});
  alice.account().profile().display_name = "Alice A.";
  add_peer("bob", {0, 3}, {});
  await_neighbourhood();
  proto::ProfileData profile;
  bool done = false;
  client_->view_profile("alice", [&](Result<proto::ProfileData> result) {
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    profile = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(profile.member_id, "alice");
  EXPECT_EQ(profile.display_name, "Alice A.");
  // Figure 13: the visit was recorded on alice's device.
  EXPECT_EQ(alice.account().profile().visitors,
            (std::vector<std::string>{"me"}));
}

TEST_F(ClientTest, ViewProfileOfUnknownMemberFails) {
  add_peer("alice", {3, 0}, {});
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->view_profile("zoe", [&](Result<proto::ProfileData> result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(error.code, Errc::no_such_member);
}

TEST_F(ClientTest, PutProfileCommentWritesRemotely) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  add_peer("bob", {0, 3}, {});
  await_neighbourhood();
  bool done = false;
  client_->put_profile_comment("alice", "hello from me",
                               [&](Result<void> result) {
                                 EXPECT_TRUE(result.ok());
                                 done = true;
                               });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  ASSERT_EQ(alice.account().profile().comments.size(), 1u);
  EXPECT_EQ(alice.account().profile().comments[0].author, "me");
  EXPECT_EQ(alice.account().profile().comments[0].text, "hello from me");
}

TEST_F(ClientTest, ViewTrustedFriends) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("bob");
  alice.account().add_trusted("carol");
  await_neighbourhood();
  std::vector<std::string> friends;
  bool done = false;
  client_->view_trusted_friends("alice",
                                [&](Result<std::vector<std::string>> result) {
                                  friends = *result;
                                  done = true;
                                });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_EQ(friends, (std::vector<std::string>{"bob", "carol"}));
}

TEST_F(ClientTest, ViewSharedContentRequiresTrust) {
  // Figure 16: NOT_TRUSTED_YET for strangers.
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().share_file("notes.txt", Bytes(50, 1));
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->view_shared_content(
      "alice", [&](Result<std::vector<proto::SharedItemData>> result) {
        ASSERT_FALSE(result.ok());
        error = result.error();
        done = true;
      });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(error.code, Errc::not_trusted);
}

TEST_F(ClientTest, ViewSharedContentListsForTrusted) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  alice.account().share_file("notes.txt", Bytes(50, 1));
  alice.account().share_file("pic.jpg", Bytes(5000, 2));
  await_neighbourhood();
  std::vector<proto::SharedItemData> items;
  bool done = false;
  client_->view_shared_content(
      "alice", [&](Result<std::vector<proto::SharedItemData>> result) {
        ASSERT_TRUE(result.ok()) << result.error().to_string();
        items = *result;
        done = true;
      });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].name, "notes.txt");
  EXPECT_EQ(items[1].name, "pic.jpg");
}

TEST_F(ClientTest, SendMessageLandsInReceiverInbox) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  add_peer("bob", {0, 3}, {});
  await_neighbourhood();
  bool done = false;
  client_->send_message("alice", "hi", "see you at the lab",
                        [&](Result<void> result) {
                          EXPECT_TRUE(result.ok());
                          done = true;
                        });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  ASSERT_EQ(alice.account().inbox().size(), 1u);
  EXPECT_EQ(alice.account().inbox()[0].sender, "me");
  EXPECT_EQ(alice.account().inbox()[0].body, "see you at the lab");
}

TEST_F(ClientTest, SendMessageToUnknownMemberFails) {
  add_peer("alice", {3, 0}, {});
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->send_message("ghost", "s", "b", [&](Result<void> result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(error.code, Errc::no_such_member);
}

TEST_F(ClientTest, FetchContentDownloadsBytes) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  Bytes original(40'000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i);
  }
  alice.account().share_file("data.bin", original);
  await_neighbourhood();
  Bytes downloaded;
  bool done = false;
  client_->fetch_content("alice", "data.bin", [&](Result<Bytes> result) {
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    downloaded = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(downloaded, original);
}

TEST_F(ClientTest, FetchContentDeniedWithoutTrust) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().share_file("data.bin", Bytes(10, 0));
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->fetch_content("alice", "data.bin", [&](Result<Bytes> result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(error.code, Errc::not_trusted);
}

TEST_F(ClientTest, FetchMissingContentFails) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->fetch_content("alice", "ghost.bin", [&](Result<Bytes> result) {
    ASSERT_FALSE(result.ok());
    error = result.error();
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(error.code, Errc::content_not_found);
}

TEST_F(ClientTest, ChunkedFetchDeliversExactBytesWithProgress) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  Bytes original(120'000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::uint8_t>(i * 7);
  }
  alice.account().share_file("big.bin", original);
  await_neighbourhood();
  Bytes downloaded;
  std::vector<std::uint64_t> progress_points;
  bool done = false;
  client_->fetch_content_chunked(
      "alice", "big.bin", 16'384,
      [&](std::uint64_t received, std::uint64_t total) {
        progress_points.push_back(received);
        EXPECT_EQ(total, original.size());
      },
      [&](Result<Bytes> result) {
        ASSERT_TRUE(result.ok()) << result.error().to_string();
        downloaded = *result;
        done = true;
      });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(2)));
  EXPECT_EQ(downloaded, original);
  // ceil(120000 / 16384) = 8 chunks, monotone progress ending at the total.
  ASSERT_EQ(progress_points.size(), 8u);
  EXPECT_TRUE(std::is_sorted(progress_points.begin(), progress_points.end()));
  EXPECT_EQ(progress_points.back(), original.size());
}

TEST_F(ClientTest, ChunkedFetchDeniedWithoutTrust) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().share_file("big.bin", Bytes(1000, 1));
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->fetch_content_chunked("alice", "big.bin", 4096, nullptr,
                                 [&](Result<Bytes> result) {
                                   ASSERT_FALSE(result.ok());
                                   error = result.error();
                                   done = true;
                                 });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
  EXPECT_EQ(error.code, Errc::not_trusted);
}

TEST_F(ClientTest, ChunkedFetchOfMissingFileFails) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  await_neighbourhood();
  Error error;
  bool done = false;
  client_->fetch_content_chunked("alice", "ghost.bin", 4096, nullptr,
                                 [&](Result<Bytes> result) {
                                   ASSERT_FALSE(result.ok());
                                   error = result.error();
                                   done = true;
                                 });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
  EXPECT_EQ(error.code, Errc::content_not_found);
}

TEST_F(ClientTest, ChunkedFetchOfEmptyFileSucceeds) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  alice.account().add_trusted("me");
  alice.account().share_file("empty.bin", Bytes{});
  await_neighbourhood();
  bool done = false;
  client_->fetch_content_chunked("alice", "empty.bin", 4096, nullptr,
                                 [&](Result<Bytes> result) {
                                   ASSERT_TRUE(result.ok());
                                   EXPECT_TRUE(result->empty());
                                   done = true;
                                 });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(1)));
}

TEST_F(ClientTest, ChunkedFetchRejectsZeroChunkSize) {
  bool done = false;
  client_->fetch_content_chunked("alice", "x", 0, nullptr,
                                 [&](Result<Bytes> result) {
                                   ASSERT_FALSE(result.ok());
                                   EXPECT_EQ(result.error().code,
                                             Errc::invalid_argument);
                                   done = true;
                                 });
  EXPECT_TRUE(done);  // synchronous rejection
}

TEST_F(ClientTest, ResolveMemberCachesLocation) {
  add_peer("alice", {3, 0}, {});
  await_neighbourhood();
  bool first = false, second = false;
  client_->resolve_member("alice", [&](Result<peerhood::DeviceId> result) {
    EXPECT_TRUE(result.ok());
    first = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return first; }, sim::seconds(20)));
  const auto rpcs_after_first = client_->stats().counter("rpcs_sent");
  client_->resolve_member("alice", [&](Result<peerhood::DeviceId> result) {
    EXPECT_TRUE(result.ok());
    second = true;
  });
  EXPECT_TRUE(second);  // cache answers synchronously
  EXPECT_EQ(client_->stats().counter("rpcs_sent"), rpcs_after_first);
  EXPECT_EQ(client_->stats().counter("cache_hits"), 1u);
}

TEST_F(ClientTest, FanoutWithNoNeighboursCompletesEmpty) {
  bool done = false;
  client_->get_online_members([&](Result<std::vector<std::string>> result) {
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->empty());
    done = true;
  });
  simulator_.run_until(sim::seconds(1));
  EXPECT_TRUE(done);
}

TEST_F(ClientTest, FanoutSkipsUnreachablePeer) {
  Peer& alice = add_peer("alice", {3, 0}, {});
  Peer& bob = add_peer("bob", {0, 3}, {});
  await_neighbourhood();
  (void)alice;
  // bob's radio dies after discovery but before the query.
  bob.stack->set_radio_powered(net::Technology::bluetooth, false);
  std::vector<std::string> members;
  bool done = false;
  client_->get_online_members([&](Result<std::vector<std::string>> result) {
    members = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(30)));
  EXPECT_EQ(members, (std::vector<std::string>{"alice"}));
}

TEST_F(ClientTest, LoggedOutPeerAnswersWithNothing) {
  Peer& alice = add_peer("alice", {3, 0}, {"football"});
  await_neighbourhood();
  alice.store.logout();
  std::vector<std::string> members{"sentinel"};
  bool done = false;
  client_->get_online_members([&](Result<std::vector<std::string>> result) {
    members = *result;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::seconds(20)));
  EXPECT_TRUE(members.empty());
}

}  // namespace
}  // namespace ph::community
