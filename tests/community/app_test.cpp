// CommunityApp tests: login lifecycle and PeerHood-driven dynamic group
// discovery (Figure 5) end to end on simulated Bluetooth.
#include "net/medium.hpp"
#include "community/app.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "tests/testutil/sim_helpers.hpp"

namespace ph::community {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

struct Device {
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<CommunityApp> app;
};

class AppTest : public ::testing::Test {
 protected:
  AppTest() : medium_(simulator_, sim::Rng(12)) {}

  Device& make_device(const std::string& member, sim::Vec2 pos,
                      std::vector<std::string> interests,
                      std::unique_ptr<sim::MobilityModel> mobility = nullptr) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {deterministic_bt()};
    if (!mobility) mobility = std::make_unique<sim::StaticMobility>(pos);
    device->stack = std::make_unique<peerhood::Stack>(medium_,
                                                      std::move(mobility),
                                                      config);
    AppConfig app_config;
    app_config.peer_refresh_interval = sim::seconds(10);
    device->app = std::make_unique<CommunityApp>(*device->stack, app_config);
    EXPECT_TRUE(device->app->create_account(member, "pw").ok());
    Account* account = device->app->profiles().find(member);
    for (const auto& interest : interests) account->add_interest(interest);
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    devices_.push_back(std::move(device));
    return *devices_.back();
  }

  bool group_formed(Device& device, const std::string& interest) {
    auto group = device.app->groups().group(interest);
    return group.ok() && group->formed();
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Device>> devices_;
};

TEST_F(AppTest, LoginRequiresAccount) {
  Device& d = make_device("alice", {0, 0}, {});
  EXPECT_FALSE(d.app->login("nobody", "pw").ok());
  EXPECT_FALSE(d.app->login("alice", "wrong").ok());
}

TEST_F(AppTest, ActionsRequireLogin) {
  Device& d = make_device("alice", {0, 0}, {});
  d.app->logout();
  EXPECT_FALSE(d.app->add_interest("x").ok());
  EXPECT_FALSE(d.app->add_trusted("bob").ok());
  EXPECT_FALSE(d.app->share_file("f", {}).ok());
  EXPECT_FALSE(d.app->join_group("x").ok());
  EXPECT_FALSE(d.app->logged_in());
}

TEST_F(AppTest, ServerRunsFromConstruction) {
  Device& d = make_device("alice", {0, 0}, {});
  EXPECT_TRUE(d.app->server().running());
  auto services = d.stack->daemon().local_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].name, "PeerHoodCommunity");
}

TEST_F(AppTest, MatchingInterestsFormGroupDynamically) {
  Device& alice = make_device("alice", {0, 0}, {"football", "movies"});
  Device& bob = make_device("bob", {3, 0}, {"football", "chess"});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return group_formed(alice, "football") && group_formed(bob, "football");
      },
      sim::seconds(30)));
  EXPECT_EQ(alice.app->groups().group("football")->members,
            (std::set<std::string>{"alice", "bob"}));
  // Non-shared interests never form groups.
  EXPECT_FALSE(group_formed(alice, "movies"));
  EXPECT_FALSE(group_formed(bob, "chess"));
}

TEST_F(AppTest, ThreeWayNeighbourhoodFormsPerInterestGroups) {
  Device& alice = make_device("alice", {0, 0}, {"music", "football", "art"});
  make_device("bob", {3, 0}, {"music", "football"});
  make_device("carol", {0, 3}, {"music", "art"});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return alice.app->groups().formed_groups().size() == 3; },
      sim::seconds(40)));
  EXPECT_EQ(alice.app->groups().group("music")->members,
            (std::set<std::string>{"alice", "bob", "carol"}));
  EXPECT_EQ(alice.app->groups().group("football")->members,
            (std::set<std::string>{"alice", "bob"}));
  EXPECT_EQ(alice.app->groups().group("art")->members,
            (std::set<std::string>{"alice", "carol"}));
}

TEST_F(AppTest, DepartingPeerIsEvictedFromGroups) {
  Device& alice = make_device("alice", {0, 0}, {"football"});
  make_device("bob", {2, 0}, {"football"},
              std::make_unique<sim::WaypointMobility>(
                  std::vector<sim::WaypointMobility::Waypoint>{
                      {sim::seconds(0), {2, 0}},
                      {sim::seconds(20), {2, 0}},
                      {sim::seconds(30), {80, 0}}}));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(20)));
  // Bob walks away; PeerHood monitoring evicts him.
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !group_formed(alice, "football"); },
      sim::minutes(2)));
  EXPECT_EQ(alice.app->stats().counter("peers_gone"), 1u);
  EXPECT_EQ(alice.app->member_on(devices_[1]->stack->id()), "");
}

TEST_F(AppTest, AddInterestAfterLoginReevaluatesGroups) {
  Device& alice = make_device("alice", {0, 0}, {"movies"});
  make_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return alice.app->stats().counter("peers_probed") > 0; },
      sim::seconds(30)));
  simulator_.run_until(simulator_.now() + sim::seconds(5));
  EXPECT_FALSE(group_formed(alice, "football"));
  ASSERT_TRUE(alice.app->add_interest("football").ok());
  EXPECT_TRUE(group_formed(alice, "football"));
}

TEST_F(AppTest, RemoteInterestEditVisibleAfterRefresh) {
  Device& alice = make_device("alice", {0, 0}, {"football"});
  Device& bob = make_device("bob", {3, 0}, {"chess"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return alice.app->stats().counter("peers_probed") > 0; },
      sim::seconds(30)));
  EXPECT_FALSE(group_formed(alice, "football"));
  // Bob picks up football; alice's periodic re-probe (10 s) spots it.
  ASSERT_TRUE(bob.app->add_interest("football").ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
}

TEST_F(AppTest, TeachSynonymMergesLiveGroups) {
  // The thesis' "biking vs cycling" fragmentation, then the taught fix.
  Device& alice = make_device("alice", {0, 0}, {"biking"});
  make_device("bob", {3, 0}, {"cycling"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return alice.app->stats().counter("peers_probed") > 0; },
      sim::seconds(30)));
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  EXPECT_FALSE(group_formed(alice, "biking"));  // fragmented
  ASSERT_TRUE(alice.app->teach_synonym("biking", "cycling").ok());
  EXPECT_TRUE(group_formed(alice, "biking"));
  EXPECT_EQ(alice.app->groups().group("cycling")->members,
            (std::set<std::string>{"alice", "bob"}));
}

TEST_F(AppTest, ManualJoinAndLeave) {
  Device& alice = make_device("alice", {0, 0}, {"movies"});
  make_device("bob", {3, 0}, {"chess"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return alice.app->stats().counter("peers_probed") > 0; },
      sim::seconds(30)));
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  ASSERT_TRUE(alice.app->join_group("chess").ok());
  EXPECT_TRUE(group_formed(alice, "chess"));
  ASSERT_TRUE(alice.app->leave_group("chess").ok());
  EXPECT_FALSE(alice.app->groups().group("chess").ok());
}

TEST_F(AppTest, MemberOnMapsDeviceToMember) {
  Device& alice = make_device("alice", {0, 0}, {"x"});
  Device& bob = make_device("bob", {3, 0}, {"x"});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return alice.app->member_on(bob.stack->id()) == "bob"; },
      sim::seconds(30)));
}

TEST_F(AppTest, LogoutStopsGroupTracking) {
  Device& alice = make_device("alice", {0, 0}, {"football"});
  make_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  alice.app->logout();
  EXPECT_FALSE(alice.app->logged_in());
  // The neighbourhood keeps moving; no crash, no stale probing.
  simulator_.run_until(simulator_.now() + sim::seconds(30));
  EXPECT_EQ(alice.app->member_on(devices_[1]->stack->id()), "");
}

TEST_F(AppTest, ReloginRestoresGroups) {
  Device& alice = make_device("alice", {0, 0}, {"football"});
  make_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  alice.app->logout();
  ASSERT_TRUE(alice.app->login("alice", "pw").ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
}

TEST_F(AppTest, SecondProfileSwitchesIdentity) {
  Device& alice = make_device("alice", {0, 0}, {"football"});
  Device& bob = make_device("bob", {3, 0}, {"football", "opera"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  // Alice's device has a second profile with different interests.
  ASSERT_TRUE(alice.app->create_account("alice-work", "pw2").ok());
  alice.app->profiles().find("alice-work")->add_interest("opera");
  ASSERT_TRUE(alice.app->login("alice-work", "pw2").ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "opera"); },
      sim::seconds(40)));
  EXPECT_FALSE(group_formed(alice, "football"));
  // Bob eventually sees the new identity too (his next probe refresh).
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto group = bob.app->groups().group("opera");
        return group.ok() && group->members.contains("alice-work");
      },
      sim::minutes(1)));
}

class AttributeModeTest : public AppTest {
 protected:
  Device& make_advertising_device(const std::string& member, sim::Vec2 pos,
                                  std::vector<std::string> interests) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {deterministic_bt()};
    device->stack = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config);
    AppConfig app_config;
    app_config.advertise_interests = true;
    device->app = std::make_unique<CommunityApp>(*device->stack, app_config);
    Account* account = *device->app->create_account(member, "pw");
    for (const auto& interest : interests) account->add_interest(interest);
    EXPECT_TRUE(device->app->login(member, "pw").ok());
    devices_.push_back(std::move(device));
    return *devices_.back();
  }
};

TEST_F(AttributeModeTest, GroupsFormWithoutProbeRpcs) {
  Device& alice = make_advertising_device("alice", {0, 0}, {"football"});
  make_advertising_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  // No probe traffic: group discovery came from service attributes.
  EXPECT_EQ(alice.app->client().stats().counter("rpcs_sent"), 0u);
  EXPECT_EQ(alice.app->member_on(devices_[1]->stack->id()), "bob");
}

TEST_F(AttributeModeTest, RemoteInterestEditPropagatesViaServiceRefresh) {
  Device& alice = make_advertising_device("alice", {0, 0}, {"football"});
  Device& bob = make_advertising_device("bob", {3, 0}, {"chess"});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return alice.app->member_on(bob.stack->id()) == "bob"; },
      sim::seconds(30)));
  EXPECT_FALSE(group_formed(alice, "football"));
  ASSERT_TRUE(bob.app->add_interest("football").ok());
  // The next daemon service refresh (inquiry cycle) carries the change.
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::minutes(1)));
}

TEST_F(AttributeModeTest, AdvertisingPeerWithPlainPeerStillWorks) {
  // Mixed deployment: the plain (thesis-mode) device probes; the
  // advertising device falls back to probing the plain one.
  Device& advertising = make_advertising_device("adv", {0, 0}, {"x"});
  Device& plain = make_device("plain", {3, 0}, {"x"});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return group_formed(advertising, "x") && group_formed(plain, "x");
      },
      sim::minutes(1)));
  // The advertising side had to fall back to RPC probing for the plain
  // peer (whose advertisement carries no attributes).
  EXPECT_GT(advertising.app->client().stats().counter("rpcs_sent"), 0u);
}

TEST_F(AttributeModeTest, LogoutClearsAdvertisedMember) {
  Device& alice = make_advertising_device("alice", {0, 0}, {"football"});
  Device& bob = make_advertising_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  bob.app->logout();
  auto services = bob.stack->daemon().local_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].attributes.count("member"), 0u);
}

TEST_F(AppTest, RebootSurvivesViaPersistence) {
  // A device powers down (state saved), "reboots" as a fresh app and
  // restores its accounts: login works and dynamic groups re-form.
  const std::string path = ::testing::TempDir() + "/app_reboot_test.bin";
  Device& alice = make_device("alice", {0, 0}, {"football"});
  make_device("bob", {3, 0}, {"football"});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::seconds(30)));
  ASSERT_TRUE(alice.app->add_trusted("bob").ok());
  ASSERT_TRUE(alice.app->share_file("notes.txt", to_bytes("hello")).ok());
  ASSERT_TRUE(alice.app->save_accounts(path).ok());

  // Reboot: a brand-new app on the same stack, empty until load. Destroy
  // the old app first so the new one can register the community service.
  alice.app.reset();
  alice.app = std::make_unique<CommunityApp>(*alice.stack);
  EXPECT_FALSE(alice.app->login("alice", "pw").ok());  // nothing on disk yet
  ASSERT_TRUE(alice.app->load_accounts(path).ok());
  ASSERT_TRUE(alice.app->login("alice", "pw").ok());
  EXPECT_TRUE(alice.app->active()->trusts("bob"));
  EXPECT_EQ(alice.app->active()->shared_items().size(), 1u);
  ASSERT_TRUE(run_until(
      simulator_, [&] { return group_formed(alice, "football"); },
      sim::minutes(1)));
  std::remove(path.c_str());
}

TEST_F(AppTest, LoadAccountsLogsOutFirst) {
  const std::string path = ::testing::TempDir() + "/app_load_test.bin";
  Device& alice = make_device("alice", {0, 0}, {"football"});
  ASSERT_TRUE(alice.app->save_accounts(path).ok());
  EXPECT_TRUE(alice.app->logged_in());
  ASSERT_TRUE(alice.app->load_accounts(path).ok());
  EXPECT_FALSE(alice.app->logged_in());
  std::remove(path.c_str());
}

TEST_F(AppTest, TrustAndShareConvenienceMethods) {
  Device& alice = make_device("alice", {0, 0}, {});
  ASSERT_TRUE(alice.app->add_trusted("bob").ok());
  EXPECT_TRUE(alice.app->active()->trusts("bob"));
  ASSERT_TRUE(alice.app->share_file("f.txt", to_bytes("hello")).ok());
  EXPECT_EQ(alice.app->active()->shared_items().size(), 1u);
  ASSERT_TRUE(alice.app->unshare_file("f.txt").ok());
  ASSERT_TRUE(alice.app->remove_trusted("bob").ok());
  EXPECT_FALSE(alice.app->active()->trusts("bob"));
}

}  // namespace
}  // namespace ph::community
