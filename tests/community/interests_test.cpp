#include "community/interests.hpp"

#include <gtest/gtest.h>

namespace ph::community {
namespace {

TEST(SemanticDictionaryTest, UnknownTermCanonicalizesToItself) {
  SemanticDictionary dict;
  EXPECT_EQ(dict.canonical("football"), "football");
}

TEST(SemanticDictionaryTest, CanonicalNormalizes) {
  SemanticDictionary dict;
  EXPECT_EQ(dict.canonical("  FootBall "), "football");
  EXPECT_EQ(dict.canonical("England   Football"), "england football");
}

TEST(SemanticDictionaryTest, TeachMergesTwoTerms) {
  // The thesis' motivating example: biking and cycling mean the same.
  SemanticDictionary dict;
  dict.teach("biking", "cycling");
  EXPECT_TRUE(dict.same("biking", "cycling"));
  EXPECT_EQ(dict.canonical("biking"), dict.canonical("cycling"));
}

TEST(SemanticDictionaryTest, CanonicalIsSmallestMember) {
  SemanticDictionary dict;
  dict.teach("cycling", "biking");
  EXPECT_EQ(dict.canonical("cycling"), "biking");  // 'b' < 'c'
}

TEST(SemanticDictionaryTest, CanonicalIndependentOfTeachingOrder) {
  SemanticDictionary forward, backward;
  forward.teach("biking", "cycling");
  forward.teach("cycling", "bicycling");
  backward.teach("bicycling", "cycling");
  backward.teach("cycling", "biking");
  EXPECT_EQ(forward.canonical("cycling"), backward.canonical("cycling"));
  EXPECT_EQ(forward.canonical("biking"), "bicycling");
}

TEST(SemanticDictionaryTest, TransitiveClasses) {
  SemanticDictionary dict;
  dict.teach("a1", "b1");
  dict.teach("b1", "c1");
  dict.teach("c1", "d1");
  EXPECT_TRUE(dict.same("a1", "d1"));
}

TEST(SemanticDictionaryTest, MergingTwoClasses) {
  SemanticDictionary dict;
  dict.teach("x1", "x2");
  dict.teach("y1", "y2");
  EXPECT_FALSE(dict.same("x1", "y1"));
  dict.teach("x2", "y2");
  EXPECT_TRUE(dict.same("x1", "y1"));
  EXPECT_EQ(dict.canonical("y2"), "x1");
}

TEST(SemanticDictionaryTest, SeparateClassesStaySeparate) {
  SemanticDictionary dict;
  dict.teach("biking", "cycling");
  dict.teach("football", "soccer");
  EXPECT_FALSE(dict.same("biking", "football"));
}

TEST(SemanticDictionaryTest, TeachIsCaseInsensitive) {
  SemanticDictionary dict;
  dict.teach("Biking", "CYCLING");
  EXPECT_TRUE(dict.same("biking", "cycling"));
}

TEST(SemanticDictionaryTest, RedundantTeachDoesNotCount) {
  SemanticDictionary dict;
  dict.teach("a", "b");
  dict.teach("b", "a");
  dict.teach("a", "b");
  EXPECT_EQ(dict.merge_count(), 1u);
}

TEST(SemanticDictionaryTest, SelfTeachIsNoop) {
  SemanticDictionary dict;
  dict.teach("a", "a");
  EXPECT_EQ(dict.merge_count(), 0u);
  EXPECT_EQ(dict.canonical("a"), "a");
}

TEST(SemanticDictionaryTest, EmptyTermsIgnored) {
  SemanticDictionary dict;
  dict.teach("", "cycling");
  dict.teach("   ", "cycling");
  EXPECT_EQ(dict.merge_count(), 0u);
  EXPECT_EQ(dict.canonical("cycling"), "cycling");
}

TEST(SemanticDictionaryTest, SynonymsListsWholeClass) {
  SemanticDictionary dict;
  dict.teach("biking", "cycling");
  dict.teach("cycling", "bicycling");
  auto synonyms = dict.synonyms("biking");
  EXPECT_EQ(synonyms,
            (std::vector<std::string>{"bicycling", "biking", "cycling"}));
}

TEST(SemanticDictionaryTest, SynonymsOfUnknownTermIsItself) {
  SemanticDictionary dict;
  EXPECT_EQ(dict.synonyms("Skiing"), (std::vector<std::string>{"skiing"}));
}

TEST(SemanticDictionaryTest, SameHandlesWhitespaceVariants) {
  SemanticDictionary dict;
  EXPECT_TRUE(dict.same("ice  hockey", " Ice Hockey"));
}

TEST(SemanticDictionaryTest, LargeChainStaysConsistent) {
  SemanticDictionary dict;
  for (int i = 1; i < 100; ++i) {
    dict.teach("term" + std::to_string(i - 1), "term" + std::to_string(i));
  }
  EXPECT_EQ(dict.merge_count(), 99u);
  EXPECT_TRUE(dict.same("term0", "term99"));
  EXPECT_EQ(dict.synonyms("term50").size(), 100u);
}

}  // namespace
}  // namespace ph::community
