#include "community/profile.hpp"

#include <gtest/gtest.h>

namespace ph::community {
namespace {

TEST(AccountTest, ConstructionSetsIdentity) {
  Account account("alice", "pw");
  EXPECT_EQ(account.member_id(), "alice");
  EXPECT_EQ(account.profile().display_name, "alice");
  EXPECT_TRUE(account.check_password("pw"));
  EXPECT_FALSE(account.check_password("wrong"));
}

TEST(AccountTest, SetPassword) {
  Account account("alice", "pw");
  account.set_password("new");
  EXPECT_TRUE(account.check_password("new"));
  EXPECT_FALSE(account.check_password("pw"));
}

TEST(AccountTest, AddInterestDeduplicatesExactStrings) {
  Account account("alice", "pw");
  account.add_interest("football");
  account.add_interest("football");
  account.add_interest("movies");
  EXPECT_EQ(account.profile().interests,
            (std::vector<std::string>{"football", "movies"}));
}

TEST(AccountTest, RemoveInterest) {
  Account account("alice", "pw");
  account.add_interest("football");
  EXPECT_TRUE(account.remove_interest("football").ok());
  EXPECT_TRUE(account.profile().interests.empty());
}

TEST(AccountTest, RemoveMissingInterestFails) {
  Account account("alice", "pw");
  auto result = account.remove_interest("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::invalid_argument);
}

TEST(AccountTest, TrustLifecycle) {
  Account account("alice", "pw");
  EXPECT_FALSE(account.trusts("bob"));
  account.add_trusted("bob");
  EXPECT_TRUE(account.trusts("bob"));
  EXPECT_TRUE(account.remove_trusted("bob").ok());
  EXPECT_FALSE(account.trusts("bob"));
}

TEST(AccountTest, TrustIgnoresDuplicatesAndSelf) {
  Account account("alice", "pw");
  account.add_trusted("bob");
  account.add_trusted("bob");
  account.add_trusted("alice");  // cannot trust yourself
  EXPECT_EQ(account.profile().trusted_friends,
            (std::vector<std::string>{"bob"}));
}

TEST(AccountTest, RemoveUntrustedFails) {
  Account account("alice", "pw");
  EXPECT_FALSE(account.remove_trusted("bob").ok());
}

TEST(AccountTest, CommentsAccumulate) {
  Account account("alice", "pw");
  account.add_comment({"bob", "hi", 1});
  account.add_comment({"carol", "hello", 2});
  ASSERT_EQ(account.profile().comments.size(), 2u);
  EXPECT_EQ(account.profile().comments[0].author, "bob");
  EXPECT_EQ(account.profile().comments[1].text, "hello");
}

TEST(AccountTest, VisitorsRecordedOnceAndNeverSelf) {
  Account account("alice", "pw");
  account.record_visitor("bob");
  account.record_visitor("bob");
  account.record_visitor("alice");
  account.record_visitor("");
  EXPECT_EQ(account.profile().visitors, (std::vector<std::string>{"bob"}));
}

TEST(AccountTest, MailFolders) {
  Account account("alice", "pw");
  account.deliver_mail({"alice", "bob", "subject", "body", 5});
  account.record_sent({"carol", "alice", "out", "text", 6});
  ASSERT_EQ(account.inbox().size(), 1u);
  EXPECT_EQ(account.inbox()[0].sender, "bob");
  ASSERT_EQ(account.sent().size(), 1u);
  EXPECT_EQ(account.sent()[0].receiver, "carol");
}

TEST(AccountTest, DeleteMailByNumber) {
  Account account("alice", "pw");
  account.deliver_mail({"alice", "bob", "first", "1", 0});
  account.deliver_mail({"alice", "carol", "second", "2", 0});
  account.deliver_mail({"alice", "dave", "third", "3", 0});
  ASSERT_TRUE(account.delete_mail(2).ok());
  ASSERT_EQ(account.inbox().size(), 2u);
  EXPECT_EQ(account.inbox()[0].subject, "first");
  EXPECT_EQ(account.inbox()[1].subject, "third");
}

TEST(AccountTest, DeleteMailRejectsBadNumbers) {
  Account account("alice", "pw");
  account.deliver_mail({"alice", "bob", "only", "1", 0});
  EXPECT_FALSE(account.delete_mail(0).ok());
  EXPECT_FALSE(account.delete_mail(2).ok());
  EXPECT_EQ(account.inbox().size(), 1u);
}

TEST(AccountTest, SharedFilesRoundTrip) {
  Account account("alice", "pw");
  account.share_file("song.mp3", Bytes(100, 1));
  auto content = account.shared_file("song.mp3");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 100u);
}

TEST(AccountTest, SharedItemsListNamesAndSizes) {
  Account account("alice", "pw");
  account.share_file("a.txt", Bytes(10, 0));
  account.share_file("b.bin", Bytes(20, 0));
  auto items = account.shared_items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].name, "a.txt");
  EXPECT_EQ(items[0].size_bytes, 10u);
  EXPECT_EQ(items[1].size_bytes, 20u);
}

TEST(AccountTest, UnshareRemovesFile) {
  Account account("alice", "pw");
  account.share_file("a.txt", Bytes(10, 0));
  EXPECT_TRUE(account.unshare_file("a.txt").ok());
  EXPECT_FALSE(account.shared_file("a.txt").ok());
  EXPECT_FALSE(account.unshare_file("a.txt").ok());
}

TEST(AccountTest, MissingSharedFileReturnsContentNotFound) {
  Account account("alice", "pw");
  auto content = account.shared_file("nope");
  ASSERT_FALSE(content.ok());
  EXPECT_EQ(content.error().code, Errc::content_not_found);
}

TEST(AccountTest, ReShareReplacesContent) {
  Account account("alice", "pw");
  account.share_file("a.txt", Bytes(10, 0));
  account.share_file("a.txt", Bytes(30, 1));
  EXPECT_EQ(account.shared_file("a.txt")->size(), 30u);
}

TEST(ProfileStoreTest, CreateAndFind) {
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "pw").ok());
  EXPECT_NE(store.find("alice"), nullptr);
  EXPECT_EQ(store.find("bob"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ProfileStoreTest, DuplicateCreateFails) {
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "pw").ok());
  auto dup = store.create_account("alice", "other");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::state_error);
}

TEST(ProfileStoreTest, EmptyMemberIdRejected) {
  ProfileStore store;
  EXPECT_FALSE(store.create_account("", "pw").ok());
}

TEST(ProfileStoreTest, LoginValidatesCredentials) {
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "pw").ok());
  EXPECT_FALSE(store.login("alice", "wrong").ok());
  EXPECT_FALSE(store.login("nobody", "pw").ok());
  EXPECT_EQ(store.active(), nullptr);
  auto login = store.login("alice", "pw");
  ASSERT_TRUE(login.ok());
  EXPECT_EQ(store.active(), *login);
}

TEST(ProfileStoreTest, MultipleProfilesOneActive) {
  // Table 7: "Support for Multiple Profiles" — one device, many accounts,
  // a single logged-in user at a time.
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "a").ok());
  ASSERT_TRUE(store.create_account("work-alice", "b").ok());
  ASSERT_TRUE(store.login("alice", "a").ok());
  EXPECT_EQ(store.active()->member_id(), "alice");
  ASSERT_TRUE(store.login("work-alice", "b").ok());
  EXPECT_EQ(store.active()->member_id(), "work-alice");
  EXPECT_EQ(store.member_ids(),
            (std::vector<std::string>{"alice", "work-alice"}));
}

TEST(ProfileStoreTest, LogoutClearsActive) {
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "pw").ok());
  ASSERT_TRUE(store.login("alice", "pw").ok());
  store.logout();
  EXPECT_EQ(store.active(), nullptr);
}

TEST(ProfileStoreTest, FailedLoginKeepsPreviousSession) {
  ProfileStore store;
  ASSERT_TRUE(store.create_account("alice", "pw").ok());
  ASSERT_TRUE(store.login("alice", "pw").ok());
  EXPECT_FALSE(store.login("alice", "wrong").ok());
  ASSERT_NE(store.active(), nullptr);
  EXPECT_EQ(store.active()->member_id(), "alice");
}

}  // namespace
}  // namespace ph::community
