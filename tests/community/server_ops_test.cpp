// CommunityServer::handle — pure dispatch tests covering every row of the
// thesis' Table 6 plus the MSC-only operations (Figures 11-17).
#include "net/medium.hpp"
#include "community/server.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "peerhood/stack.hpp"

namespace ph::community {
namespace {

class ServerOpsTest : public ::testing::Test {
 protected:
  ServerOpsTest() : medium_(simulator_, sim::Rng(10)) {
    peerhood::StackConfig config;
    config.device_name = "host";
    stack_ = std::make_unique<peerhood::Stack>(
        medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
        config);
    server_ = std::make_unique<CommunityServer>(stack_->library(), store_,
                                                dictionary_);
    // A populated, logged-in account named "alice".
    Account* alice = *store_.create_account("alice", "pw");
    alice->profile().display_name = "Alice";
    alice->profile().age = 24;
    alice->add_interest("football");
    alice->add_interest("movies");
    alice->add_trusted("bob");
    alice->share_file("song.mp3", Bytes(1000, 7));
    (void)store_.login("alice", "pw");
  }

  proto::Request request(proto::Opcode op, const std::string& requester = "bob") {
    proto::Request r;
    r.op = op;
    r.requester = requester;
    return r;
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::unique_ptr<peerhood::Stack> stack_;
  ProfileStore store_;
  SemanticDictionary dictionary_;
  std::unique_ptr<CommunityServer> server_;
};

TEST_F(ServerOpsTest, GetOnlineMemberListReturnsActiveMember) {
  auto response = server_->handle(request(proto::Opcode::ps_get_online_member_list));
  EXPECT_EQ(response.status, proto::Status::ok);
  EXPECT_EQ(response.names, (std::vector<std::string>{"alice"}));
}

TEST_F(ServerOpsTest, GetOnlineMemberListEmptyWhenLoggedOut) {
  store_.logout();
  auto response = server_->handle(request(proto::Opcode::ps_get_online_member_list));
  EXPECT_EQ(response.status, proto::Status::ok);
  EXPECT_TRUE(response.names.empty());
}

TEST_F(ServerOpsTest, GetInterestListReturnsInterests) {
  auto response = server_->handle(request(proto::Opcode::ps_get_interest_list));
  EXPECT_EQ(response.names, (std::vector<std::string>{"football", "movies"}));
}

TEST_F(ServerOpsTest, GetInterestedMemberListMatches) {
  auto r = request(proto::Opcode::ps_get_interested_member_list);
  r.argument = "football";
  auto response = server_->handle(r);
  EXPECT_EQ(response.names, (std::vector<std::string>{"alice"}));
}

TEST_F(ServerOpsTest, GetInterestedMemberListNoMatch) {
  auto r = request(proto::Opcode::ps_get_interested_member_list);
  r.argument = "chess";
  EXPECT_TRUE(server_->handle(r).names.empty());
}

TEST_F(ServerOpsTest, GetInterestedMemberListUsesSemantics) {
  dictionary_.teach("football", "soccer");
  auto r = request(proto::Opcode::ps_get_interested_member_list);
  r.argument = "Soccer";
  auto response = server_->handle(r);
  EXPECT_EQ(response.names, (std::vector<std::string>{"alice"}));
}

TEST_F(ServerOpsTest, GetProfileReturnsFullProfile) {
  auto r = request(proto::Opcode::ps_get_profile);
  r.member_id = "alice";
  auto response = server_->handle(r);
  ASSERT_EQ(response.status, proto::Status::ok);
  EXPECT_EQ(response.profile.member_id, "alice");
  EXPECT_EQ(response.profile.display_name, "Alice");
  EXPECT_EQ(response.profile.age, 24u);
  EXPECT_EQ(response.profile.interests,
            (std::vector<std::string>{"football", "movies"}));
  EXPECT_EQ(response.profile.trusted_friends, (std::vector<std::string>{"bob"}));
}

TEST_F(ServerOpsTest, GetProfileRecordsVisitor) {
  // Figure 13: "The remote server writes the name of the requesting client
  // as the profile visitor."
  auto r = request(proto::Opcode::ps_get_profile, "carol");
  r.member_id = "alice";
  (void)server_->handle(r);
  EXPECT_EQ(store_.find("alice")->profile().visitors,
            (std::vector<std::string>{"carol"}));
}

TEST_F(ServerOpsTest, GetProfileForWrongMemberIsNoMembersYet) {
  auto r = request(proto::Opcode::ps_get_profile);
  r.member_id = "zoe";
  EXPECT_EQ(server_->handle(r).status, proto::Status::no_members_yet);
}

TEST_F(ServerOpsTest, GetProfileWhenLoggedOutIsNoMembersYet) {
  store_.logout();
  auto r = request(proto::Opcode::ps_get_profile);
  r.member_id = "alice";
  EXPECT_EQ(server_->handle(r).status, proto::Status::no_members_yet);
}

TEST_F(ServerOpsTest, AddProfileCommentAppends) {
  auto r = request(proto::Opcode::ps_add_profile_comment, "carol");
  r.member_id = "alice";
  r.argument = "great taste in music!";
  EXPECT_EQ(server_->handle(r).status, proto::Status::ok);
  const auto& comments = store_.find("alice")->profile().comments;
  ASSERT_EQ(comments.size(), 1u);
  EXPECT_EQ(comments[0].author, "carol");
  EXPECT_EQ(comments[0].text, "great taste in music!");
}

TEST_F(ServerOpsTest, AddEmptyCommentIsUnsuccessful) {
  auto r = request(proto::Opcode::ps_add_profile_comment);
  r.member_id = "alice";
  EXPECT_EQ(server_->handle(r).status, proto::Status::unsuccessful);
}

TEST_F(ServerOpsTest, AddCommentWrongMemberIsNoMembersYet) {
  auto r = request(proto::Opcode::ps_add_profile_comment);
  r.member_id = "zoe";
  r.argument = "hello?";
  EXPECT_EQ(server_->handle(r).status, proto::Status::no_members_yet);
}

TEST_F(ServerOpsTest, CheckMemberIdSuccessAndFailure) {
  auto hit = request(proto::Opcode::ps_check_member_id);
  hit.member_id = "alice";
  EXPECT_EQ(server_->handle(hit).status, proto::Status::ok);
  auto miss = request(proto::Opcode::ps_check_member_id);
  miss.member_id = "zoe";
  EXPECT_EQ(server_->handle(miss).status, proto::Status::no_members_yet);
}

TEST_F(ServerOpsTest, MsgDeliveredToInbox) {
  auto r = request(proto::Opcode::ps_msg);
  r.mail = {"alice", "bob", "hi", "lunch at noon?", 0};
  EXPECT_EQ(server_->handle(r).status, proto::Status::successfully_written);
  const auto& inbox = store_.find("alice")->inbox();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].sender, "bob");
  EXPECT_EQ(inbox[0].subject, "hi");
  EXPECT_EQ(inbox[0].body, "lunch at noon?");
}

TEST_F(ServerOpsTest, MsgToWrongReceiverIsNoMembersYet) {
  auto r = request(proto::Opcode::ps_msg);
  r.mail = {"zoe", "bob", "hi", "text", 0};
  EXPECT_EQ(server_->handle(r).status, proto::Status::no_members_yet);
}

TEST_F(ServerOpsTest, EmptyMsgIsUnsuccessful) {
  // Figure 17: UNSUCCESSFULL when the mail cannot be written.
  auto r = request(proto::Opcode::ps_msg);
  r.mail = {"alice", "bob", "", "", 0};
  EXPECT_EQ(server_->handle(r).status, proto::Status::unsuccessful);
}

TEST_F(ServerOpsTest, MsgStampedWithVirtualTime) {
  simulator_.run_until(sim::seconds(42));
  auto r = request(proto::Opcode::ps_msg);
  r.mail = {"alice", "bob", "s", "b", 0};
  (void)server_->handle(r);
  EXPECT_EQ(store_.find("alice")->inbox()[0].sent_at_us, sim::seconds(42));
}

TEST_F(ServerOpsTest, SharedContentForTrustedRequester) {
  auto r = request(proto::Opcode::ps_get_shared_content, "bob");
  r.member_id = "alice";
  auto response = server_->handle(r);
  ASSERT_EQ(response.status, proto::Status::ok);
  ASSERT_EQ(response.items.size(), 1u);
  EXPECT_EQ(response.items[0].name, "song.mp3");
  EXPECT_EQ(response.items[0].size_bytes, 1000u);
}

TEST_F(ServerOpsTest, SharedContentForStrangerIsNotTrustedYet) {
  auto r = request(proto::Opcode::ps_get_shared_content, "mallory");
  r.member_id = "alice";
  EXPECT_EQ(server_->handle(r).status, proto::Status::not_trusted_yet);
}

TEST_F(ServerOpsTest, GetTrustedFriendsList) {
  auto r = request(proto::Opcode::ps_get_trusted_friends);
  r.member_id = "alice";
  auto response = server_->handle(r);
  EXPECT_EQ(response.status, proto::Status::ok);
  EXPECT_EQ(response.names, (std::vector<std::string>{"bob"}));
}

TEST_F(ServerOpsTest, CheckTrustedMirrorsTrustList) {
  auto trusted = request(proto::Opcode::ps_check_trusted, "bob");
  trusted.member_id = "alice";
  EXPECT_EQ(server_->handle(trusted).status, proto::Status::ok);
  auto stranger = request(proto::Opcode::ps_check_trusted, "mallory");
  stranger.member_id = "alice";
  EXPECT_EQ(server_->handle(stranger).status, proto::Status::not_trusted_yet);
}

TEST_F(ServerOpsTest, GetContentDeliversBytesToTrusted) {
  auto r = request(proto::Opcode::ps_get_content, "bob");
  r.member_id = "alice";
  r.argument = "song.mp3";
  auto response = server_->handle(r);
  ASSERT_EQ(response.status, proto::Status::ok);
  EXPECT_EQ(response.content, Bytes(1000, 7));
}

TEST_F(ServerOpsTest, GetContentDeniedToStranger) {
  auto r = request(proto::Opcode::ps_get_content, "mallory");
  r.member_id = "alice";
  r.argument = "song.mp3";
  EXPECT_EQ(server_->handle(r).status, proto::Status::not_trusted_yet);
}

TEST_F(ServerOpsTest, GetMissingContentIsUnsuccessful) {
  auto r = request(proto::Opcode::ps_get_content, "bob");
  r.member_id = "alice";
  r.argument = "ghost.file";
  EXPECT_EQ(server_->handle(r).status, proto::Status::unsuccessful);
}

TEST_F(ServerOpsTest, ResponsesEchoOpcode) {
  for (auto op : {proto::Opcode::ps_get_online_member_list,
                  proto::Opcode::ps_get_profile, proto::Opcode::ps_msg,
                  proto::Opcode::ps_get_content}) {
    EXPECT_EQ(server_->handle(request(op)).op, op);
  }
}

TEST_F(ServerOpsTest, StatsCountRequests) {
  (void)server_->handle(request(proto::Opcode::ps_get_interest_list));
  (void)server_->handle(request(proto::Opcode::ps_get_interest_list));
  EXPECT_EQ(server_->stats().counter("requests_handled"), 2u);
}

TEST_F(ServerOpsTest, StartRegistersServiceInDaemon) {
  ASSERT_TRUE(server_->start().ok());
  auto services = stack_->daemon().local_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].name, "PeerHoodCommunity");
  EXPECT_TRUE(server_->running());
  server_->stop();
  EXPECT_TRUE(stack_->daemon().local_services().empty());
}

TEST_F(ServerOpsTest, DoubleStartIsIdempotent) {
  ASSERT_TRUE(server_->start().ok());
  EXPECT_TRUE(server_->start().ok());
  EXPECT_EQ(stack_->daemon().local_services().size(), 1u);
}

}  // namespace
}  // namespace ph::community
