// GroupEngine unit tests — the Figure 6 dynamic group discovery algorithm.
#include "community/groups.hpp"

#include <gtest/gtest.h>

namespace ph::community {
namespace {

class GroupEngineTest : public ::testing::Test {
 protected:
  GroupEngineTest() : engine_("alice", dictionary_) {
    engine_.set_callbacks(
        {[this](const Group& group) { formed_.push_back(group.interest); },
         [this](const std::string& interest) { dissolved_.push_back(interest); },
         [this](const std::string& interest, const std::string& member) {
           joins_.emplace_back(interest, member);
         },
         [this](const std::string& interest, const std::string& member) {
           leaves_.emplace_back(interest, member);
         }});
  }

  SemanticDictionary dictionary_;
  GroupEngine engine_;
  std::vector<std::string> formed_, dissolved_;
  std::vector<std::pair<std::string, std::string>> joins_, leaves_;
};

TEST_F(GroupEngineTest, LocalInterestsCreateUnformedGroups) {
  engine_.set_local_interests({"football", "movies"});
  auto groups = engine_.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].interest, "football");
  EXPECT_FALSE(groups[0].formed());
  EXPECT_EQ(groups[0].members, (std::set<std::string>{"alice"}));
  EXPECT_TRUE(formed_.empty());
}

TEST_F(GroupEngineTest, MatchingPeerFormsGroup) {
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"football", "chess"});
  auto group = engine_.group("football");
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->formed());
  EXPECT_EQ(group->members, (std::set<std::string>{"alice", "bob"}));
  EXPECT_EQ(formed_, (std::vector<std::string>{"football"}));
  EXPECT_EQ(joins_, (std::vector<std::pair<std::string, std::string>>{
                        {"football", "bob"}}));
}

TEST_F(GroupEngineTest, NonMatchingPeerJoinsNothing) {
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"chess"});
  EXPECT_FALSE(engine_.group("football")->formed());
  EXPECT_TRUE(engine_.formed_groups().empty());
}

TEST_F(GroupEngineTest, PeerInterestsNotSharedWithLocalCreateNoGroups) {
  // Figure 6 compares only the ACTIVE user's interests; bob's chess group
  // does not appear on alice's device.
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"chess"});
  EXPECT_FALSE(engine_.group("chess").ok());
}

TEST_F(GroupEngineTest, ThreeInterestsThreeGroups) {
  // Figure 2: three closed boundaries — one dynamic group per interest.
  engine_.set_local_interests({"music", "football", "movies"});
  engine_.on_peer("bob", {"music"});
  engine_.on_peer("carol", {"football"});
  engine_.on_peer("dave", {"movies", "music"});
  auto formed = engine_.formed_groups();
  ASSERT_EQ(formed.size(), 3u);
  EXPECT_EQ(engine_.group("music")->members,
            (std::set<std::string>{"alice", "bob", "dave"}));
  EXPECT_EQ(engine_.group("football")->members,
            (std::set<std::string>{"alice", "carol"}));
  EXPECT_EQ(engine_.group("movies")->members,
            (std::set<std::string>{"alice", "dave"}));
}

TEST_F(GroupEngineTest, PeerLeavingDissolvesGroup) {
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"football"});
  engine_.remove_peer("bob");
  EXPECT_EQ(dissolved_, (std::vector<std::string>{"football"}));
  EXPECT_FALSE(engine_.group("football")->formed());
  EXPECT_EQ(leaves_, (std::vector<std::pair<std::string, std::string>>{
                         {"football", "bob"}}));
}

TEST_F(GroupEngineTest, GroupSurvivesWhileOneRemoteMemberRemains) {
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"football"});
  engine_.on_peer("carol", {"football"});
  engine_.remove_peer("bob");
  EXPECT_TRUE(engine_.group("football")->formed());
  EXPECT_TRUE(dissolved_.empty());
  engine_.remove_peer("carol");
  EXPECT_EQ(dissolved_, (std::vector<std::string>{"football"}));
}

TEST_F(GroupEngineTest, RemovingUnknownPeerIsNoop) {
  engine_.set_local_interests({"football"});
  engine_.remove_peer("ghost");
  EXPECT_TRUE(leaves_.empty());
}

TEST_F(GroupEngineTest, PeerUpdateCanJoinAndLeave) {
  engine_.set_local_interests({"football", "movies"});
  engine_.on_peer("bob", {"football"});
  // Bob edits his profile: drops football, picks up movies.
  engine_.on_peer("bob", {"movies"});
  EXPECT_FALSE(engine_.group("football")->formed());
  EXPECT_TRUE(engine_.group("movies")->formed());
}

TEST_F(GroupEngineTest, DuplicatePeerUpdateIsIdempotent) {
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"football"});
  engine_.on_peer("bob", {"football"});
  EXPECT_EQ(formed_, (std::vector<std::string>{"football"}));
  EXPECT_EQ(joins_.size(), 1u);
}

TEST_F(GroupEngineTest, InterestMatchingIsCaseAndSpaceInsensitive) {
  engine_.set_local_interests({"England Football"});
  engine_.on_peer("bob", {"england   FOOTBALL"});
  auto group = engine_.group("england football");
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->formed());
  // Both raw spellings are remembered as labels.
  EXPECT_TRUE(group->labels.contains("England Football"));
  EXPECT_TRUE(group->labels.contains("england   FOOTBALL"));
}

TEST_F(GroupEngineTest, WithoutSemanticsSynonymsFragment) {
  // The thesis' documented limitation: biking vs cycling makes two groups.
  engine_.set_local_interests({"biking", "cycling"});
  engine_.on_peer("bob", {"biking"});
  engine_.on_peer("carol", {"cycling"});
  EXPECT_EQ(engine_.formed_groups().size(), 2u);
  EXPECT_EQ(engine_.group("biking")->members,
            (std::set<std::string>{"alice", "bob"}));
  EXPECT_EQ(engine_.group("cycling")->members,
            (std::set<std::string>{"alice", "carol"}));
}

TEST_F(GroupEngineTest, TaughtSynonymsMergeGroups) {
  engine_.set_local_interests({"biking", "cycling"});
  engine_.on_peer("bob", {"biking"});
  engine_.on_peer("carol", {"cycling"});
  dictionary_.teach("biking", "cycling");
  engine_.rebuild();
  auto formed = engine_.formed_groups();
  ASSERT_EQ(formed.size(), 1u);
  EXPECT_EQ(formed[0].interest, "biking");
  EXPECT_EQ(formed[0].members,
            (std::set<std::string>{"alice", "bob", "carol"}));
}

TEST_F(GroupEngineTest, SynonymTaughtBeforePeersAlsoMatches) {
  dictionary_.teach("biking", "cycling");
  engine_.set_local_interests({"cycling"});
  engine_.on_peer("bob", {"biking"});
  ASSERT_EQ(engine_.formed_groups().size(), 1u);
  EXPECT_EQ(engine_.formed_groups()[0].interest, "biking");
}

TEST_F(GroupEngineTest, LocalInterestRemovalDropsGroup) {
  engine_.set_local_interests({"football", "movies"});
  engine_.on_peer("bob", {"football"});
  engine_.set_local_interests({"movies"});
  EXPECT_FALSE(engine_.group("football").ok());
  EXPECT_EQ(dissolved_, (std::vector<std::string>{"football"}));
}

TEST_F(GroupEngineTest, ManualJoinTracksForeignInterest) {
  // Table 7 "Join/Leave Manually": alice joins chess without having the
  // interest herself.
  engine_.set_local_interests({"football"});
  engine_.on_peer("bob", {"chess"});
  engine_.manual_join("chess");
  auto group = engine_.group("chess");
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->formed());
  EXPECT_EQ(group->members, (std::set<std::string>{"alice", "bob"}));
}

TEST_F(GroupEngineTest, ManualLeaveDropsManualGroup) {
  engine_.set_local_interests({"football"});
  engine_.manual_join("chess");
  ASSERT_TRUE(engine_.group("chess").ok());
  EXPECT_TRUE(engine_.manual_leave("chess").ok());
  EXPECT_FALSE(engine_.group("chess").ok());
}

TEST_F(GroupEngineTest, ManualLeaveOfUnjoinedGroupFails) {
  auto result = engine_.manual_leave("chess");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::no_such_group);
}

TEST_F(GroupEngineTest, ManualLeaveKeepsGroupBackedByLocalInterest) {
  engine_.set_local_interests({"chess"});
  engine_.manual_join("chess");
  EXPECT_TRUE(engine_.manual_leave("chess").ok());
  // Still tracked: alice genuinely holds the interest.
  EXPECT_TRUE(engine_.group("chess").ok());
}

TEST_F(GroupEngineTest, StatsCountComparisons) {
  engine_.set_local_interests({"a", "b", "c"});
  engine_.on_peer("bob", {"x", "y"});
  // 3 groups x 2 peer interests.
  EXPECT_EQ(engine_.stats().counter("comparisons"), 6u);
}

TEST_F(GroupEngineTest, StatsCountLifecycleEvents) {
  engine_.set_local_interests({"a"});
  engine_.on_peer("bob", {"a"});
  engine_.on_peer("carol", {"a"});
  engine_.remove_peer("bob");
  engine_.remove_peer("carol");
  const obs::Snapshot stats = engine_.stats();
  EXPECT_EQ(stats.counter("groups_formed"), 1u);
  EXPECT_EQ(stats.counter("groups_dissolved"), 1u);
  EXPECT_EQ(stats.counter("member_joins"), 2u);
  EXPECT_EQ(stats.counter("member_leaves"), 2u);
}

TEST_F(GroupEngineTest, SelfPeerIgnored) {
  engine_.set_local_interests({"a"});
  engine_.on_peer("alice", {"a"});
  EXPECT_FALSE(engine_.group("a")->formed());
}

TEST_F(GroupEngineTest, TrackedInterestsAreCanonical) {
  dictionary_.teach("biking", "cycling");
  engine_.set_local_interests({"Cycling", "Football"});
  EXPECT_EQ(engine_.tracked_interests(),
            (std::vector<std::string>{"biking", "football"}));
}

TEST_F(GroupEngineTest, RescanMatchesEventDrivenResult) {
  // The batch Figure 6 algorithm and the incremental path must agree.
  GroupEngine batch("alice", dictionary_);
  engine_.set_local_interests({"a", "b"});
  batch.set_local_interests({"a", "b"});
  engine_.on_peer("bob", {"a"});
  engine_.on_peer("carol", {"b", "a"});
  batch.on_peer("bob", {"a"});
  batch.on_peer("carol", {"b", "a"});
  batch.rescan();
  auto lhs = engine_.groups();
  auto rhs = batch.groups();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].interest, rhs[i].interest);
    EXPECT_EQ(lhs[i].members, rhs[i].members);
  }
}

TEST_F(GroupEngineTest, MembersOfUnknownInterestIsEmpty) {
  EXPECT_TRUE(engine_.members_of("nothing").empty());
}

TEST_F(GroupEngineTest, ChurnStormEvictionRejoinConverges) {
  // A fault-plane churn storm: the same peers are evicted (blackout wipes
  // the neighbour table) and rejoin (re-discovery) over and over. The
  // engine must converge to the same formed groups every round and the
  // lifecycle counters must add up exactly.
  engine_.set_local_interests({"a", "b"});
  constexpr int kRounds = 25;
  constexpr int kPeers = 8;
  for (int round = 0; round < kRounds; ++round) {
    for (int p = 0; p < kPeers; ++p) {
      engine_.on_peer("peer" + std::to_string(p),
                      {p % 2 == 0 ? "a" : "b"});
    }
    EXPECT_TRUE(engine_.group("a")->formed());
    EXPECT_TRUE(engine_.group("b")->formed());
    if (round == kRounds - 1) break;  // stay populated after the storm
    for (int p = 0; p < kPeers; ++p) {
      engine_.remove_peer("peer" + std::to_string(p));
    }
    EXPECT_FALSE(engine_.group("a")->formed());
    EXPECT_FALSE(engine_.group("b")->formed());
  }
  EXPECT_EQ(engine_.group("a")->members.size(), 1u + kPeers / 2);
  EXPECT_EQ(engine_.group("b")->members.size(), 1u + kPeers / 2);

  const obs::Snapshot stats = engine_.stats();
  EXPECT_EQ(stats.counter("member_joins"),
            static_cast<std::uint64_t>(kRounds * kPeers));
  EXPECT_EQ(stats.counter("member_leaves"),
            static_cast<std::uint64_t>((kRounds - 1) * kPeers));
  // Both groups form every round; they dissolve every round but the last.
  EXPECT_EQ(stats.counter("groups_formed"),
            static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_EQ(stats.counter("groups_dissolved"),
            static_cast<std::uint64_t>(2 * (kRounds - 1)));
}

// Property sweep: churn with N peers always keeps the local member in every
// group and never double-counts members.
class GroupChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupChurnTest, InvariantsHoldUnderChurn) {
  SemanticDictionary dictionary;
  GroupEngine engine("self", dictionary);
  engine.set_local_interests({"i0", "i1", "i2"});
  const int peers = GetParam();
  // Wave 1: every peer joins with a rotating subset.
  for (int p = 0; p < peers; ++p) {
    engine.on_peer("peer" + std::to_string(p),
                   {"i" + std::to_string(p % 3), "other"});
  }
  // Wave 2: every second peer leaves.
  for (int p = 0; p < peers; p += 2) {
    engine.remove_peer("peer" + std::to_string(p));
  }
  for (const Group& group : engine.groups()) {
    EXPECT_TRUE(group.members.contains("self"));
    for (const std::string& member : group.members) {
      if (member == "self") continue;
      // Only odd peers with the matching interest remain.
      const int index = std::stoi(member.substr(4));
      EXPECT_EQ(index % 2, 1);
      EXPECT_EQ("i" + std::to_string(index % 3), group.interest);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnSizes, GroupChurnTest,
                         ::testing::Values(1, 2, 5, 10, 50, 200));

}  // namespace
}  // namespace ph::community
