#include "community/persistence.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace ph::community {
namespace {

ProfileStore populated_store() {
  ProfileStore store;
  Account* alice = *store.create_account("alice", "pw1");
  alice->profile().display_name = "Alice A.";
  alice->profile().age = 24;
  alice->profile().about = "networks researcher";
  alice->add_interest("football");
  alice->add_interest("jazz");
  alice->add_trusted("bob");
  alice->add_comment({"bob", "hi alice!", 123});
  alice->record_visitor("bob");
  alice->deliver_mail({"alice", "bob", "subject", "body text", 456});
  alice->record_sent({"bob", "alice", "re", "reply", 789});
  alice->share_file("song.mp3", Bytes(1000, 0xAB));
  alice->share_file("doc.pdf", Bytes(20, 0xCD));

  Account* work = *store.create_account("alice-work", "pw2");
  work->add_interest("meetings");
  return store;
}

TEST(PersistenceTest, RoundTripPreservesAccounts) {
  ProfileStore original = populated_store();
  auto restored = deserialize(serialize(original));
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored->member_ids(), original.member_ids());
  const Account* alice = restored->find("alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(alice->profile(), original.find("alice")->profile());
}

TEST(PersistenceTest, PasswordsSurvive) {
  auto restored = deserialize(serialize(populated_store()));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->find("alice")->check_password("pw1"));
  EXPECT_FALSE(restored->find("alice")->check_password("pw2"));
  EXPECT_TRUE(restored->find("alice-work")->check_password("pw2"));
}

TEST(PersistenceTest, MailFoldersSurvive) {
  auto restored = deserialize(serialize(populated_store()));
  ASSERT_TRUE(restored.ok());
  const Account* alice = restored->find("alice");
  ASSERT_EQ(alice->inbox().size(), 1u);
  EXPECT_EQ(alice->inbox()[0].body, "body text");
  EXPECT_EQ(alice->inbox()[0].sent_at_us, 456u);
  ASSERT_EQ(alice->sent().size(), 1u);
  EXPECT_EQ(alice->sent()[0].receiver, "bob");
}

TEST(PersistenceTest, SharedFileBytesSurvive) {
  auto restored = deserialize(serialize(populated_store()));
  ASSERT_TRUE(restored.ok());
  const Account* alice = restored->find("alice");
  auto song = alice->shared_file("song.mp3");
  ASSERT_TRUE(song.ok());
  EXPECT_EQ(*song, Bytes(1000, 0xAB));
  EXPECT_EQ(alice->shared_items().size(), 2u);
}

TEST(PersistenceTest, ActiveLoginNotPersisted) {
  ProfileStore original = populated_store();
  ASSERT_TRUE(original.login("alice", "pw1").ok());
  auto restored = deserialize(serialize(original));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->active(), nullptr);
}

TEST(PersistenceTest, EmptyStoreRoundTrips) {
  ProfileStore empty;
  auto restored = deserialize(serialize(empty));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 0u);
}

TEST(PersistenceTest, GarbageRejected) {
  Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto restored = deserialize(garbage);
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, Errc::protocol_error);
}

TEST(PersistenceTest, TruncatedBlobRejected) {
  Bytes blob = serialize(populated_store());
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(deserialize(blob).ok());
}

TEST(PersistenceTest, WrongMagicRejected) {
  Bytes blob = serialize(populated_store());
  blob[0] ^= 0xff;
  auto restored = deserialize(blob);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.error().message.find("not a PeerHood"), std::string::npos);
}

TEST(PersistenceTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/phc_store_test.bin";
  ASSERT_TRUE(save_to_file(populated_store(), path).ok());
  auto restored = load_from_file(path);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored->member_ids(),
            (std::vector<std::string>{"alice", "alice-work"}));
  std::remove(path.c_str());
}

TEST(PersistenceTest, MissingFileFailsCleanly) {
  auto restored = load_from_file("/nonexistent/dir/store.bin");
  ASSERT_FALSE(restored.ok());
  EXPECT_EQ(restored.error().code, Errc::state_error);
}

TEST(PersistenceTest, RestoredStoreIsFullyFunctional) {
  auto restored = deserialize(serialize(populated_store()));
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored->login("alice", "pw1").ok());
  restored->active()->add_interest("new hobby");
  EXPECT_EQ(restored->active()->profile().interests.back(), "new hobby");
  // Second-generation round trip keeps the new state.
  auto again = deserialize(serialize(*restored));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->find("alice")->profile().interests.back(), "new hobby");
}

}  // namespace
}  // namespace ph::community
