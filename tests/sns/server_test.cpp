#include "net/medium.hpp"
#include "sns/server.hpp"

#include <gtest/gtest.h>

#include "sns/protocol.hpp"

namespace ph::sns {
namespace {

class SnsServerTest : public ::testing::Test {
 protected:
  SnsServerTest() : medium_(simulator_, sim::Rng(13)), server_(medium_, facebook()) {
    server_.add_group("England Football");
    server_.add_group("Finland Hockey");
    server_.add_member("England Football", "dave");
    server_.add_member("England Football", "emma");
    server_.add_profile("dave", "football fan from Leeds");
  }

  PageRequest request(PageKind kind, const std::string& query = "",
                      const std::string& member = "user") {
    return PageRequest{kind, query, member, "", 1000};
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  SnsServer server_;
};

TEST_F(SnsServerTest, HomePageHasSiteWeight) {
  auto response = server_.handle(request(PageKind::home));
  EXPECT_EQ(response.status, PageStatus::ok);
  EXPECT_EQ(response.body.size(), facebook().home_page_bytes);
}

TEST_F(SnsServerTest, WeightPermilleScalesBody) {
  auto request_heavy = request(PageKind::home);
  request_heavy.weight_permille = 1600;
  auto response = server_.handle(request_heavy);
  EXPECT_EQ(response.body.size(), facebook().home_page_bytes * 1600 / 1000);
}

TEST_F(SnsServerTest, SearchFindsGroupsCaseInsensitively) {
  auto response = server_.handle(request(PageKind::search, "football"));
  EXPECT_EQ(response.status, PageStatus::ok);
  EXPECT_EQ(response.names, (std::vector<std::string>{"England Football"}));
}

TEST_F(SnsServerTest, SearchSubstringMatchesMultiple) {
  server_.add_group("Football Tactics");
  auto response = server_.handle(request(PageKind::search, "foot"));
  EXPECT_EQ(response.names.size(), 2u);
}

TEST_F(SnsServerTest, SearchMissReturnsNotFound) {
  auto response = server_.handle(request(PageKind::search, "curling"));
  EXPECT_EQ(response.status, PageStatus::not_found);
  EXPECT_TRUE(response.names.empty());
}

TEST_F(SnsServerTest, GroupPageChecksExistence) {
  EXPECT_EQ(server_.handle(request(PageKind::group, "England Football")).status,
            PageStatus::ok);
  EXPECT_EQ(server_.handle(request(PageKind::group, "Nope")).status,
            PageStatus::not_found);
}

TEST_F(SnsServerTest, JoinAddsMember) {
  auto response = server_.handle(request(PageKind::join, "England Football", "newbie"));
  EXPECT_EQ(response.status, PageStatus::ok);
  auto members = server_.members_of("England Football");
  EXPECT_EQ(members, (std::vector<std::string>{"dave", "emma", "newbie"}));
  EXPECT_EQ(server_.stats().counter("joins"), 1u);
}

TEST_F(SnsServerTest, JoinUnknownGroupFails) {
  EXPECT_EQ(server_.handle(request(PageKind::join, "Nope", "x")).status,
            PageStatus::not_found);
}

TEST_F(SnsServerTest, JoinWithoutMemberNameFails) {
  EXPECT_EQ(server_.handle(request(PageKind::join, "England Football", "")).status,
            PageStatus::not_found);
}

TEST_F(SnsServerTest, MemberListReturnsMembers) {
  auto response = server_.handle(request(PageKind::member_list, "England Football"));
  EXPECT_EQ(response.names, (std::vector<std::string>{"dave", "emma"}));
  EXPECT_EQ(response.body.size(), facebook().member_list_page_bytes);
}

TEST_F(SnsServerTest, ProfilePageReturnsAbout) {
  auto response = server_.handle(request(PageKind::profile, "dave"));
  EXPECT_EQ(response.status, PageStatus::ok);
  EXPECT_EQ(response.names,
            (std::vector<std::string>{"football fan from Leeds"}));
}

TEST_F(SnsServerTest, ProfileOfUnknownMemberNotFound) {
  EXPECT_EQ(server_.handle(request(PageKind::profile, "nobody")).status,
            PageStatus::not_found);
}

TEST_F(SnsServerTest, ComposePageIsLight) {
  auto response = server_.handle(request(PageKind::compose));
  EXPECT_EQ(response.status, PageStatus::ok);
  EXPECT_EQ(response.body.size(), facebook().compose_page_bytes);
}

TEST_F(SnsServerTest, SendMessageLandsInInbox) {
  PageRequest r{PageKind::send_message, "dave", "tester", "see you at 5", 1000};
  EXPECT_EQ(server_.handle(r).status, PageStatus::ok);
  EXPECT_EQ(server_.inbox_of("dave"),
            (std::vector<std::string>{"tester: see you at 5"}));
}

TEST_F(SnsServerTest, SendMessageToUnknownMemberNotFound) {
  PageRequest r{PageKind::send_message, "nobody", "tester", "hi", 1000};
  EXPECT_EQ(server_.handle(r).status, PageStatus::not_found);
}

TEST_F(SnsServerTest, PostCommentShowsOnProfile) {
  PageRequest r{PageKind::post_comment, "dave", "tester", "great fan!", 1000};
  EXPECT_EQ(server_.handle(r).status, PageStatus::ok);
  EXPECT_EQ(server_.comments_on("dave"),
            (std::vector<std::string>{"tester: great fan!"}));
  auto profile = server_.handle(request(PageKind::profile, "dave"));
  ASSERT_EQ(profile.names.size(), 2u);
  EXPECT_EQ(profile.names[1], "tester: great fan!");
}

TEST_F(SnsServerTest, InboxPageListsMessages) {
  (void)server_.handle(
      PageRequest{PageKind::send_message, "dave", "emma", "first", 1000});
  (void)server_.handle(
      PageRequest{PageKind::send_message, "dave", "emma", "second", 1000});
  PageRequest r{PageKind::inbox, "", "dave", "", 1000};
  auto response = server_.handle(r);
  EXPECT_EQ(response.names,
            (std::vector<std::string>{"emma: first", "emma: second"}));
  EXPECT_EQ(response.body.size(), facebook().inbox_page_bytes);
}

TEST_F(SnsServerTest, EmptyInboxIsOkAndEmpty) {
  PageRequest r{PageKind::inbox, "", "emma", "", 1000};
  auto response = server_.handle(r);
  EXPECT_EQ(response.status, PageStatus::ok);
  EXPECT_TRUE(response.names.empty());
}

TEST_F(SnsServerTest, StatsAccumulateBytes) {
  (void)server_.handle(request(PageKind::home));
  (void)server_.handle(request(PageKind::profile, "dave"));
  EXPECT_EQ(server_.stats().counter("pages_served"), 2u);
  EXPECT_EQ(server_.stats().counter("bytes_served"),
            facebook().home_page_bytes + facebook().profile_page_bytes);
}

TEST(SnsProtocolTest, PageRequestRoundTrip) {
  PageRequest request{PageKind::search, "query", "member", "hello", 1600};
  auto decoded = decode_page_request(encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, request);
}

TEST(SnsProtocolTest, PageResponseRoundTrip) {
  PageResponse response;
  response.kind = PageKind::member_list;
  response.status = PageStatus::ok;
  response.names = {"a", "b"};
  response.body = Bytes(500, 'x');
  auto decoded = decode_page_response(encode(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, response);
}

TEST(SnsProtocolTest, BadKindRejected) {
  Bytes data = encode(PageRequest{});
  data[0] = 99;
  EXPECT_FALSE(decode_page_request(data).ok());
}

TEST(SnsProtocolTest, TruncatedResponseRejected) {
  PageResponse response;
  response.body = Bytes(100, 'x');
  Bytes data = encode(response);
  data.resize(20);
  EXPECT_FALSE(decode_page_response(data).ok());
}

TEST(SiteProfileTest, PresetsDiffer) {
  EXPECT_EQ(facebook().name, "Facebook");
  EXPECT_EQ(hi5().name, "HI5");
  // Hi5's profile pages were heavier in the thesis' measurements
  // (27-40 s vs 11-27 s on the same devices).
  EXPECT_GT(hi5().profile_page_bytes, facebook().profile_page_bytes);
}

TEST(DeviceClassTest, N95IsSlowerThanN810) {
  EXPECT_GT(nokia_n95().render_us_per_byte, nokia_n810().render_us_per_byte);
  EXPECT_GT(nokia_n95().page_weight_factor, nokia_n810().page_weight_factor);
}

}  // namespace
}  // namespace ph::sns
