// BrowserClient task tests: the four Table 8 tasks over simulated GPRS.
#include "net/medium.hpp"
#include "sns/browser.hpp"

#include <gtest/gtest.h>

#include "tests/testutil/sim_helpers.hpp"

namespace ph::sns {
namespace {

using testutil::run_until;

class BrowserTest : public ::testing::Test {
 protected:
  BrowserTest()
      : medium_(simulator_, sim::Rng(14)), server_(medium_, facebook()) {
    server_.add_group("England Football");
    server_.add_member("England Football", "dave");
    server_.add_member("England Football", "emma");
    server_.add_profile("dave", "football fan");
  }

  BrowserClient make_browser(DeviceClass device) {
    return BrowserClient(medium_, device, server_.node(), "tester");
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  SnsServer server_;
};

TEST_F(BrowserTest, SearchFindsGroupAndTakesTensOfSeconds) {
  BrowserClient browser = make_browser(nokia_n810());
  Result<BrowserClient::TaskResult> outcome = Error{Errc::timeout};
  browser.search_group("football", [&](Result<BrowserClient::TaskResult> r) {
    outcome = std::move(r);
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return outcome.ok(); }, sim::minutes(5)));
  EXPECT_EQ(outcome->names, (std::vector<std::string>{"England Football"}));
  // Two heavyweight pages over GPRS plus typing: tens of seconds, like the
  // thesis' 50-75 s band — and certainly nothing like Bluetooth-local time.
  EXPECT_GT(outcome->elapsed, sim::seconds(20));
  EXPECT_LT(outcome->elapsed, sim::seconds(120));
}

TEST_F(BrowserTest, JoinAddsMembershipServerSide) {
  BrowserClient browser = make_browser(nokia_n810());
  bool done = false;
  browser.join_group("England Football",
                     [&](Result<BrowserClient::TaskResult> r) {
                       ASSERT_TRUE(r.ok());
                       EXPECT_GT(r->elapsed, sim::seconds(5));
                       done = true;
                     });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
  auto members = server_.members_of("England Football");
  EXPECT_NE(std::find(members.begin(), members.end(), "tester"), members.end());
}

TEST_F(BrowserTest, MemberListReturnsNames) {
  BrowserClient browser = make_browser(nokia_n810());
  std::vector<std::string> names;
  bool done = false;
  browser.view_member_list("England Football",
                           [&](Result<BrowserClient::TaskResult> r) {
                             ASSERT_TRUE(r.ok());
                             names = r->names;
                             done = true;
                           });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
  EXPECT_EQ(names, (std::vector<std::string>{"dave", "emma"}));
}

TEST_F(BrowserTest, ProfileViewCompletes) {
  BrowserClient browser = make_browser(nokia_n810());
  bool done = false;
  browser.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->names, (std::vector<std::string>{"football fan"}));
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
}

TEST_F(BrowserTest, N95IsSlowerThanN810OnIdenticalTask) {
  // Table 8's device effect: every task is slower on the N95.
  BrowserClient n810 = make_browser(nokia_n810());
  BrowserClient n95 = make_browser(nokia_n95());
  sim::Duration t810 = 0, t95 = 0;
  n810.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    t810 = r->elapsed;
  });
  n95.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    t95 = r->elapsed;
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return t810 > 0 && t95 > 0; }, sim::minutes(5)));
  EXPECT_GT(t95, t810);
}

TEST_F(BrowserTest, SearchSlowerThanSinglePageTasks) {
  // Table 8's task ordering on every SNS column: search (home + results +
  // typing) dominates member-list and profile views.
  BrowserClient browser = make_browser(nokia_n810());
  sim::Duration search = 0, list = 0, profile = 0;
  browser.search_group("football", [&](Result<BrowserClient::TaskResult> r) {
    search = r->elapsed;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return search > 0; }, sim::minutes(5)));
  browser.view_member_list("England Football",
                           [&](Result<BrowserClient::TaskResult> r) {
                             list = r->elapsed;
                           });
  ASSERT_TRUE(run_until(simulator_, [&] { return list > 0; }, sim::minutes(5)));
  browser.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    profile = r->elapsed;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return profile > 0; }, sim::minutes(5)));
  EXPECT_GT(search, list);
  EXPECT_GT(search, profile);
}

TEST_F(BrowserTest, SendMessageTaskDeliversToServerInbox) {
  server_.add_profile("emma", "also a fan");
  BrowserClient browser = make_browser(nokia_n810());
  bool done = false;
  browser.send_message("emma", "hello from the road",
                       [&](Result<BrowserClient::TaskResult> r) {
                         ASSERT_TRUE(r.ok());
                         // Compose page + typing + POST over GPRS.
                         EXPECT_GT(r->elapsed, sim::seconds(5));
                         done = true;
                       });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
  EXPECT_EQ(server_.inbox_of("emma"),
            (std::vector<std::string>{"tester: hello from the road"}));
}

TEST_F(BrowserTest, PostCommentTaskWritesToProfile) {
  BrowserClient browser = make_browser(nokia_n810());
  bool done = false;
  browser.post_comment("dave", "met you at the match!",
                       [&](Result<BrowserClient::TaskResult> r) {
                         ASSERT_TRUE(r.ok());
                         done = true;
                       });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
  EXPECT_EQ(server_.comments_on("dave"),
            (std::vector<std::string>{"tester: met you at the match!"}));
}

TEST_F(BrowserTest, ReadInboxShowsDeliveredMail) {
  server_.add_profile("tester", "the measurer");
  (void)server_.handle(
      PageRequest{PageKind::send_message, "tester", "dave", "welcome!", 1000});
  BrowserClient browser = make_browser(nokia_n810());
  std::vector<std::string> inbox;
  bool done = false;
  browser.read_inbox([&](Result<BrowserClient::TaskResult> r) {
    ASSERT_TRUE(r.ok());
    inbox = r->names;
    done = true;
  });
  ASSERT_TRUE(run_until(simulator_, [&] { return done; }, sim::minutes(5)));
  EXPECT_EQ(inbox, (std::vector<std::string>{"dave: welcome!"}));
}

TEST_F(BrowserTest, HeavierSiteProfileTakesLonger) {
  SnsServer hi5_server(medium_, hi5());
  hi5_server.add_group("England Football");
  hi5_server.add_profile("dave", "fan");
  BrowserClient fb = make_browser(nokia_n810());
  BrowserClient h5(medium_, nokia_n810(), hi5_server.node(), "tester");
  sim::Duration t_fb = 0, t_h5 = 0;
  fb.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    t_fb = r->elapsed;
  });
  h5.view_profile("dave", [&](Result<BrowserClient::TaskResult> r) {
    t_h5 = r->elapsed;
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return t_fb > 0 && t_h5 > 0; }, sim::minutes(5)));
  // Hi5 profile pages are heavier -> slower (thesis: 27 s vs 11 s on N810).
  EXPECT_GT(t_h5, t_fb);
}

}  // namespace
}  // namespace ph::sns
