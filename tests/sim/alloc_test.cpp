// Zero-allocation property of the simulator kernel's steady state.
//
// Interposes global operator new/delete to count heap allocations, then
// drives a warmed-up Simulator through hundreds of thousands of events —
// self-rescheduling chains across all wheel slots, schedule/cancel churn,
// periodic tasks — and asserts the allocation counter does not move.
// This is the property the whole event-kernel design (timer wheel + SBO
// EventFn + FlatIdSet + slot-vector reuse) exists to provide; a regression
// in any of those layers (a closure growing past the inline buffer, a
// vector losing its capacity, a set re-hashing per op) fails this test.
//
// Lives in its own binary: the interposer is process-global and must not
// contaminate unrelated tests.

#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "obs/prof.hpp"
#include "sim/simulator.hpp"

namespace {
std::size_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_new_calls;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ph::sim {
namespace {

/// A self-rescheduling event chain with a fixed period; the closure
/// captures 24 bytes, comfortably inside EventFn's inline buffer.
void arm_chain(Simulator& simulator, Duration period, std::uint64_t* fired) {
  simulator.schedule(period, [&simulator, period, fired] {
    ++*fired;
    arm_chain(simulator, period, fired);
  });
}

TEST(SimulatorAllocation, SteadyStateSchedulesWithoutHeapAllocation) {
  Simulator simulator;  // timer wheel (the default)
  std::uint64_t fired = 0;

  // Chain periods are powers of two, phase-locked to the wheel's 2^18 us
  // level-1 window: every slot's occupancy pattern then repeats exactly
  // each level-2 revolution (2^26 us ≈ 67 s), so each slot vector's
  // high-water capacity is provably reached during warm-up and the
  // steady-state assertion below is deterministic. (Co-prime periods
  // drift against the windows and keep finding new worst-case slot
  // alignments — new capacity growths — for the lcm of all periods.)
  // 2^21 parks at level 1, 2^27 at level 2; short chains cross window
  // boundaries and exercise transient level-1 parking plus cascades.
  for (Duration period : {1'024u, 2'048u, 4'096u, 16'384u, 65'536u,
                          2'097'152u, 134'217'728u}) {
    arm_chain(simulator, period, &fired);
  }
  // Schedule/cancel churn, one level-1 window ahead: exercises
  // note_cancelled and the compaction path on every slot in turn.
  std::uint64_t cancel_victims = 0;
  simulator.schedule_periodic(Duration{4'096}, [&simulator,
                                                &cancel_victims] {
    const EventId doomed = simulator.schedule(
        Duration{262'144}, [&cancel_victims] { ++cancel_victims; });
    simulator.cancel(doomed);
  });

  // Warm-up: two full level-2 revolutions plus slack, covering the 2^27
  // chain's first parking and every slot the churn walks.
  simulator.run_until(seconds(170.0));
  ASSERT_GT(fired, 1'000u);

  const std::uint64_t fired_before = fired;
  const std::size_t allocations_before = g_new_calls;
  simulator.run_until(seconds(180.0));
  const std::size_t allocations_after = g_new_calls;
  const std::uint64_t events = fired - fired_before;

  ASSERT_GT(events, 10'000u);
  EXPECT_EQ(allocations_after, allocations_before)
      << "steady-state kernel made "
      << (allocations_after - allocations_before) << " heap allocations over "
      << events << " events";
  EXPECT_EQ(cancel_victims, 0u);
  EXPECT_EQ(simulator.queue_name(), std::string("timer_wheel"));
}

TEST(SimulatorAllocation, ProfAttributionHotPathAllocatesNothing) {
  // Mode 1 attribution rides the dispatch loop: count() plus, with the
  // wall plane armed, two clock reads and observe_wall()'s bucket math.
  // None of it may allocate — the profiler would otherwise disqualify
  // itself from the always-on default the overhead budget promises.
  Simulator simulator;
  obs::prof::EventProfiler prof;
  prof.enable_wall(true);
  simulator.set_profiler(&prof);

  std::uint64_t fired = 0;
  {
    const obs::prof::TagScope tag(obs::prof::Center::peerhood_ping);
    for (Duration period : {1'024u, 4'096u, 65'536u}) {
      arm_chain(simulator, period, &fired);
    }
  }
  simulator.run_until(seconds(2.0));
  ASSERT_GT(fired, 1'000u);
  ASSERT_GT(prof.cost(obs::prof::Center::peerhood_ping).events, 1'000u);

  const std::uint64_t fired_before = fired;
  const std::size_t allocations_before = g_new_calls;
  simulator.run_until(seconds(6.0));
  const std::size_t allocations_after = g_new_calls;

  ASSERT_GT(fired - fired_before, 4'000u);
  EXPECT_EQ(allocations_after, allocations_before)
      << "profiled steady state made "
      << (allocations_after - allocations_before) << " heap allocations";
  // The causal chain kept its root tag the whole run.
  EXPECT_EQ(prof.cost(obs::prof::Center::peerhood_ping).events, fired);
  EXPECT_GT(prof.cost(obs::prof::Center::peerhood_ping).wall_count, 0u);
}

TEST(SimulatorAllocation, ProfSamplerRingWritesAllocateNothing) {
  // Mode 2's per-thread rings are sized at registration; sample_once()
  // afterwards only writes fixed Sample slots — through ring wrap-around.
  obs::prof::WallProfilerConfig config;
  config.ring_capacity = 512;
  obs::prof::WallProfiler profiler(config);
  profiler.register_thread("main");

  const obs::prof::Scope outer(obs::prof::Center::transport_io);
  const std::size_t allocations_before = g_new_calls;
  for (int i = 0; i < 2'000; ++i) {  // ~4x the ring: exercises the wrap
    const obs::prof::Scope inner(obs::prof::Center::transport_telemetry);
    profiler.sample_once();
  }
  const std::size_t allocations_after = g_new_calls;

  EXPECT_EQ(allocations_after, allocations_before)
      << "sampler ring writes made "
      << (allocations_after - allocations_before) << " heap allocations";
  EXPECT_EQ(profiler.samples_taken(), 2'000u);
  profiler.unregister_thread();
  // The folded readout (cold path, allocation expected) still sees the
  // retired thread: the ring keeps the newest `ring_capacity` samples,
  // all of them under the two scopes held above.
  const obs::prof::FoldedProfile folded = profiler.folded();
  ASSERT_EQ(folded.size(), 1u);
  const auto& [stack, count] = *folded.begin();
  EXPECT_EQ(stack, "main;transport.io;transport.telemetry");
  EXPECT_EQ(count, config.ring_capacity);
}

TEST(SimulatorAllocation, BinaryHeapBaselineStillBounded) {
  // The reference heap queue is not zero-allocation (push_heap grows the
  // vector), but once warm its steady state should also stop allocating —
  // EventFn's SBO applies to both queues.
  Simulator simulator(Simulator::QueueImpl::binary_heap);
  std::uint64_t fired = 0;
  for (Duration period : {900u, 2'100u, 6'300u}) {
    arm_chain(simulator, period, &fired);
  }
  simulator.run_until(seconds(1.0));
  const std::size_t allocations_before = g_new_calls;
  simulator.run_until(seconds(6.0));
  EXPECT_EQ(g_new_calls, allocations_before);
}

}  // namespace
}  // namespace ph::sim
