// Zero-allocation property of the simulator kernel's steady state.
//
// Interposes global operator new/delete to count heap allocations, then
// drives a warmed-up Simulator through hundreds of thousands of events —
// self-rescheduling chains across all wheel slots, schedule/cancel churn,
// periodic tasks — and asserts the allocation counter does not move.
// This is the property the whole event-kernel design (timer wheel + SBO
// EventFn + FlatIdSet + slot-vector reuse) exists to provide; a regression
// in any of those layers (a closure growing past the inline buffer, a
// vector losing its capacity, a set re-hashing per op) fails this test.
//
// Lives in its own binary: the interposer is process-global and must not
// contaminate unrelated tests.

#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace {
std::size_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_new_calls;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ph::sim {
namespace {

/// A self-rescheduling event chain with a fixed period; the closure
/// captures 24 bytes, comfortably inside EventFn's inline buffer.
void arm_chain(Simulator& simulator, Duration period, std::uint64_t* fired) {
  simulator.schedule(period, [&simulator, period, fired] {
    ++*fired;
    arm_chain(simulator, period, fired);
  });
}

TEST(SimulatorAllocation, SteadyStateSchedulesWithoutHeapAllocation) {
  Simulator simulator;  // timer wheel (the default)
  std::uint64_t fired = 0;

  // Chain periods are powers of two, phase-locked to the wheel's 2^18 us
  // level-1 window: every slot's occupancy pattern then repeats exactly
  // each level-2 revolution (2^26 us ≈ 67 s), so each slot vector's
  // high-water capacity is provably reached during warm-up and the
  // steady-state assertion below is deterministic. (Co-prime periods
  // drift against the windows and keep finding new worst-case slot
  // alignments — new capacity growths — for the lcm of all periods.)
  // 2^21 parks at level 1, 2^27 at level 2; short chains cross window
  // boundaries and exercise transient level-1 parking plus cascades.
  for (Duration period : {1'024u, 2'048u, 4'096u, 16'384u, 65'536u,
                          2'097'152u, 134'217'728u}) {
    arm_chain(simulator, period, &fired);
  }
  // Schedule/cancel churn, one level-1 window ahead: exercises
  // note_cancelled and the compaction path on every slot in turn.
  std::uint64_t cancel_victims = 0;
  simulator.schedule_periodic(Duration{4'096}, [&simulator,
                                                &cancel_victims] {
    const EventId doomed = simulator.schedule(
        Duration{262'144}, [&cancel_victims] { ++cancel_victims; });
    simulator.cancel(doomed);
  });

  // Warm-up: two full level-2 revolutions plus slack, covering the 2^27
  // chain's first parking and every slot the churn walks.
  simulator.run_until(seconds(170.0));
  ASSERT_GT(fired, 1'000u);

  const std::uint64_t fired_before = fired;
  const std::size_t allocations_before = g_new_calls;
  simulator.run_until(seconds(180.0));
  const std::size_t allocations_after = g_new_calls;
  const std::uint64_t events = fired - fired_before;

  ASSERT_GT(events, 10'000u);
  EXPECT_EQ(allocations_after, allocations_before)
      << "steady-state kernel made "
      << (allocations_after - allocations_before) << " heap allocations over "
      << events << " events";
  EXPECT_EQ(cancel_victims, 0u);
  EXPECT_EQ(simulator.queue_name(), std::string("timer_wheel"));
}

TEST(SimulatorAllocation, BinaryHeapBaselineStillBounded) {
  // The reference heap queue is not zero-allocation (push_heap grows the
  // vector), but once warm its steady state should also stop allocating —
  // EventFn's SBO applies to both queues.
  Simulator simulator(Simulator::QueueImpl::binary_heap);
  std::uint64_t fired = 0;
  for (Duration period : {900u, 2'100u, 6'300u}) {
    arm_chain(simulator, period, &fired);
  }
  simulator.run_until(seconds(1.0));
  const std::size_t allocations_before = g_new_calls;
  simulator.run_until(seconds(6.0));
  EXPECT_EQ(g_new_calls, allocations_before);
}

}  // namespace
}  // namespace ph::sim
