#include "sim/backoff.hpp"

#include <gtest/gtest.h>

namespace ph::sim {
namespace {

TEST(BackoffTest, GrowsGeometricallyWithoutJitter) {
  Backoff backoff{seconds(1), 2.0, seconds(60), 0.0};
  Rng rng(1);
  EXPECT_EQ(backoff.delay(0, rng), seconds(1));
  EXPECT_EQ(backoff.delay(1, rng), seconds(2));
  EXPECT_EQ(backoff.delay(2, rng), seconds(4));
  EXPECT_EQ(backoff.delay(3, rng), seconds(8));
}

TEST(BackoffTest, CapsAtTheCeiling) {
  Backoff backoff{seconds(1), 2.0, seconds(8), 0.0};
  Rng rng(1);
  EXPECT_EQ(backoff.delay(3, rng), seconds(8));
  EXPECT_EQ(backoff.delay(10, rng), seconds(8));
  EXPECT_EQ(backoff.delay(60, rng), seconds(8));  // no overflow blowup
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  Backoff backoff{seconds(10), 2.0, minutes(5), 0.1};
  Rng rng_x(42), rng_y(42);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const Duration x = backoff.delay(attempt, rng_x);
    const Duration y = backoff.delay(attempt, rng_y);
    EXPECT_EQ(x, y) << "same seed must give the same jitter";
    Backoff plain = backoff;
    plain.jitter = 0.0;
    Rng unused(0);
    const double nominal = static_cast<double>(plain.delay(attempt, unused));
    EXPECT_GE(static_cast<double>(x), nominal * 0.9 - 1.0);
    EXPECT_LE(static_cast<double>(x), nominal * 1.1 + 1.0);
  }
}

TEST(BackoffTest, NeverReturnsZero) {
  Backoff backoff{0, 2.0, seconds(1), 0.5};
  Rng rng(3);
  for (int attempt = 0; attempt < 10; ++attempt) {
    EXPECT_GE(backoff.delay(attempt, rng), Duration{1});
  }
}

}  // namespace
}  // namespace ph::sim
