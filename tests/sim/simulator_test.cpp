#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ph::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0u);
}

TEST(SimulatorTest, RunsEventAtScheduledTime) {
  Simulator simulator;
  Time fired_at = 0;
  simulator.schedule(seconds(2), [&] { fired_at = simulator.now(); });
  simulator.run_until(seconds(10));
  EXPECT_EQ(fired_at, seconds(2));
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator simulator;
  simulator.run_until(seconds(5));
  EXPECT_EQ(simulator.now(), seconds(5));
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule(seconds(3), [&] { order.push_back(3); });
  simulator.schedule(seconds(1), [&] { order.push_back(1); });
  simulator.schedule(seconds(2), [&] { order.push_back(2); });
  simulator.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EqualTimesRunFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulator.schedule(seconds(1), [&order, i] { order.push_back(i); });
  }
  simulator.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsScheduledInsideEventsRun) {
  Simulator simulator;
  bool inner_ran = false;
  simulator.schedule(seconds(1), [&] {
    simulator.schedule(seconds(1), [&] { inner_ran = true; });
  });
  simulator.run_until(seconds(3));
  EXPECT_TRUE(inner_ran);
  EXPECT_EQ(simulator.now(), seconds(3));
}

TEST(SimulatorTest, RunUntilStopsBeforeLaterEvents) {
  Simulator simulator;
  bool late_ran = false;
  simulator.schedule(seconds(10), [&] { late_ran = true; });
  simulator.run_until(seconds(5));
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(simulator.now(), seconds(5));
  simulator.run_until(seconds(10));  // boundary events execute
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator simulator;
  bool ran = false;
  EventId id = simulator.schedule(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(simulator.cancel(id));
  simulator.run_all();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterRunReturnsFalse) {
  Simulator simulator;
  EventId id = simulator.schedule(seconds(1), [] {});
  simulator.run_all();
  EXPECT_FALSE(simulator.cancel(id));
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator simulator;
  EXPECT_FALSE(simulator.cancel(123456));
}

TEST(SimulatorTest, PendingTracksLifecycle) {
  Simulator simulator;
  EventId id = simulator.schedule(seconds(1), [] {});
  EXPECT_TRUE(simulator.pending(id));
  simulator.run_all();
  EXPECT_FALSE(simulator.pending(id));
}

TEST(SimulatorTest, ScheduleAtInThePastClampsToNow) {
  Simulator simulator;
  simulator.run_until(seconds(5));
  Time fired_at = 0;
  simulator.schedule_at(seconds(1), [&] { fired_at = simulator.now(); });
  simulator.run_all();
  EXPECT_EQ(fired_at, seconds(5));
}

TEST(SimulatorTest, QueueSizeReflectsPendingEvents) {
  Simulator simulator;
  EXPECT_EQ(simulator.queue_size(), 0u);
  simulator.schedule(seconds(1), [] {});
  simulator.schedule(seconds(2), [] {});
  EXPECT_EQ(simulator.queue_size(), 2u);
  simulator.run_all();
  EXPECT_EQ(simulator.queue_size(), 0u);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator simulator;
  for (int i = 0; i < 7; ++i) simulator.schedule(seconds(i), [] {});
  simulator.run_all();
  EXPECT_EQ(simulator.events_executed(), 7u);
}

TEST(SimulatorTest, CancellingOwnSiblingInsideEvent) {
  Simulator simulator;
  bool second_ran = false;
  EventId second = 0;
  simulator.schedule(seconds(1), [&] { simulator.cancel(second); });
  second = simulator.schedule(seconds(2), [&] { second_ran = true; });
  simulator.run_all();
  EXPECT_FALSE(second_ran);
}

TEST(SimulatorTest, ZeroDelayRunsAtCurrentTime) {
  Simulator simulator;
  simulator.run_until(seconds(3));
  Time fired_at = 0;
  simulator.schedule(0, [&] { fired_at = simulator.now(); });
  simulator.run_all();
  EXPECT_EQ(fired_at, seconds(3));
}

TEST(SimulatorTest, ManyEventsStressOrder) {
  Simulator simulator;
  Time last = 0;
  bool monotonic = true;
  for (int i = 1000; i > 0; --i) {
    simulator.schedule(milliseconds(i), [&, i] {
      if (simulator.now() < last) monotonic = false;
      last = simulator.now();
      (void)i;
    });
  }
  simulator.run_all();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(simulator.events_executed(), 1000u);
}

TEST(SimulatorTest, PeriodicTaskFiresAtFixedCadence) {
  Simulator simulator;
  std::vector<Time> fired;
  const TaskId id = simulator.schedule_periodic(
      seconds(2), [&] { fired.push_back(simulator.now()); });
  EXPECT_TRUE(simulator.periodic_pending(id));
  simulator.run_until(seconds(7));
  EXPECT_EQ(fired, (std::vector<Time>{seconds(2), seconds(4), seconds(6)}));
  EXPECT_TRUE(simulator.periodic_pending(id));
}

TEST(SimulatorTest, CancelPeriodicStopsFutureFirings) {
  Simulator simulator;
  int fired = 0;
  const TaskId id = simulator.schedule_periodic(seconds(1), [&] { ++fired; });
  simulator.run_until(seconds(3));
  EXPECT_TRUE(simulator.cancel_periodic(id));
  EXPECT_FALSE(simulator.periodic_pending(id));
  EXPECT_FALSE(simulator.cancel_periodic(id));  // already gone
  simulator.run_until(seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(SimulatorTest, PeriodicTaskMayCancelItself) {
  Simulator simulator;
  int fired = 0;
  TaskId id = 0;
  id = simulator.schedule_periodic(seconds(1), [&] {
    if (++fired == 2) simulator.cancel_periodic(id);
  });
  simulator.run_until(seconds(10));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(simulator.periodic_pending(id));
}

TEST(SimulatorTest, TwoPeriodicTasksInterleave) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_periodic(seconds(2), [&] { order.push_back(2); });
  simulator.schedule_periodic(seconds(3), [&] { order.push_back(3); });
  simulator.run_until(seconds(6));
  // Firings at 2,3,4,6,6; the t=6 tie is FIFO — the 3 s task re-armed
  // first (at t=3), so it runs first.
  EXPECT_EQ(order, (std::vector<int>{2, 3, 2, 3, 2}));
}

}  // namespace
}  // namespace ph::sim
