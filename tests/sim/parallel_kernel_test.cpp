// ShardedKernel invariants: windowed execution, cross-shard merge order,
// lookahead clamping, and the determinism contract — thread count must not
// change anything observable except wall-clock stats.
#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace ph::sim {
namespace {

TEST(ShardedKernel, ClampsThreadsToShards) {
  ShardedKernel kernel({/*shards=*/2, /*threads=*/16, milliseconds(30)});
  EXPECT_EQ(kernel.shards(), 2u);
  EXPECT_EQ(kernel.threads(), 2u);
}

TEST(ShardedKernel, RunsLocalEventsLikeASimulator) {
  ShardedKernel kernel({2, 1, milliseconds(30)});
  std::vector<Time> fired;
  kernel.shard(0).schedule_at(milliseconds(5),
                              [&fired, &kernel] {
                                fired.push_back(kernel.shard(0).now());
                              });
  kernel.shard(0).schedule_at(milliseconds(95),
                              [&fired, &kernel] {
                                fired.push_back(kernel.shard(0).now());
                              });
  kernel.run_until(milliseconds(100));
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], milliseconds(5));
  EXPECT_EQ(fired[1], milliseconds(95));
  EXPECT_EQ(kernel.window_start(), milliseconds(100));
  EXPECT_GE(kernel.windows_run(), 4u);  // 100ms / 30ms lookahead
}

TEST(ShardedKernel, CrossShardPostDeliversAtRequestedTime) {
  ShardedKernel kernel({2, 2, milliseconds(30)});
  std::vector<Time> fired;
  // Shard 0 event at t=1ms posts to shard 1 at t=40ms (>= lookahead away).
  kernel.shard(0).schedule_at(milliseconds(1), [&] {
    kernel.post(0, 1, milliseconds(40), [&fired, &kernel] {
      fired.push_back(kernel.shard(1).now());
    });
  });
  kernel.run_until(milliseconds(100));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], milliseconds(40));
  EXPECT_EQ(kernel.shard_stats(0).cross_sent, 1u);
  EXPECT_EQ(kernel.shard_stats(0).cross_clamped, 0u);
  EXPECT_EQ(kernel.shard_stats(1).cross_received, 1u);
}

TEST(ShardedKernel, LookaheadViolationClampsToWindowBoundary) {
  ShardedKernel kernel({2, 1, milliseconds(30)});
  std::vector<Time> fired;
  // A post 1ms out violates the 30ms lookahead: it must fire at the next
  // window boundary, not at the requested time, and be counted.
  kernel.shard(0).schedule_at(milliseconds(1), [&] {
    kernel.post(0, 1, milliseconds(2), [&fired, &kernel] {
      fired.push_back(kernel.shard(1).now());
    });
  });
  kernel.run_until(milliseconds(100));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], milliseconds(30));
  EXPECT_EQ(kernel.shard_stats(0).cross_clamped, 1u);
}

TEST(ShardedKernel, ForEachShardVisitsEveryShardOnce) {
  ShardedKernel kernel({8, 3, milliseconds(30)});
  std::vector<int> visits(8, 0);
  kernel.for_each_shard([&visits](unsigned s) { visits[s]++; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ShardedKernel, CancelledLiveSumsPerShardQueues) {
  ShardedKernel kernel({2, 1, milliseconds(30)});
  const auto id0 = kernel.shard(0).schedule_at(seconds(1.0), [] {});
  const auto id1 = kernel.shard(1).schedule_at(seconds(1.0), [] {});
  kernel.shard(0).cancel(id0);
  kernel.shard(1).cancel(id1);
  EXPECT_EQ(kernel.cancelled_live_total(),
            kernel.shard_stats(0).cancelled_live +
                kernel.shard_stats(1).cancelled_live);
  EXPECT_EQ(kernel.cancelled_live_total(), 2u);
}

TEST(ShardedKernel, BarrierHookSeesMonotonicWindowStarts) {
  ShardedKernel kernel({4, 2, milliseconds(30)});
  std::vector<Time> barriers;
  kernel.set_barrier_hook([&barriers](Time t) { barriers.push_back(t); });
  kernel.run_until(milliseconds(100));
  ASSERT_FALSE(barriers.empty());
  for (std::size_t i = 1; i < barriers.size(); ++i) {
    EXPECT_LT(barriers[i - 1], barriers[i]);
  }
  EXPECT_EQ(barriers.back(), milliseconds(100));
}

// The determinism contract, exercised wholesale: a randomized workload of
// self-rescheduling events that ping-pong across shards, run at several
// thread counts; the full execution log (shard, virtual time, tag) must be
// identical. The log is recorded per shard (phase A is parallel) and
// compared shard-by-shard.
struct LogEntry {
  unsigned shard;
  Time when;
  std::uint64_t tag;
  bool operator==(const LogEntry& other) const {
    return shard == other.shard && when == other.when && tag == other.tag;
  }
};

class Workload {
 public:
  Workload(unsigned shards, unsigned threads, std::uint64_t seed)
      : kernel_({shards, threads, milliseconds(30)}), logs_(shards) {
    SmallRng seeder(seed);
    for (unsigned s = 0; s < shards; ++s) {
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t tag = seeder.next_u64();
        spawn(s, milliseconds(1 + (tag % 25)), tag);
      }
    }
  }

  void run() { kernel_.run_until(seconds(2.0)); }

  const std::vector<std::vector<LogEntry>>& logs() const { return logs_; }
  std::uint64_t events() const { return kernel_.events_executed(); }

 private:
  void spawn(unsigned s, Time when, std::uint64_t tag) {
    kernel_.shard(s).schedule_at(when, [this, s, tag] { fire(s, tag); });
  }

  void fire(unsigned s, std::uint64_t tag) {
    const Time now = kernel_.shard(s).now();
    logs_[s].push_back({s, now, tag});
    if (now >= seconds(1.9)) return;
    // Derive everything from the tag — a pure function, so the workload's
    // shape is independent of execution interleaving.
    const std::uint64_t next_tag = hash_mix(tag);
    const unsigned dst = next_tag % kernel_.shards();
    const Time when = now + milliseconds(30) + (next_tag >> 32) % 50'000 / 1000;
    if (dst == s) {
      spawn(s, when, next_tag);
    } else {
      kernel_.post(s, dst, when, [this, dst, next_tag] {
        fire(dst, next_tag);
      });
    }
  }

  ShardedKernel kernel_;
  std::vector<std::vector<LogEntry>> logs_;
};

TEST(ShardedKernel, ExecutionLogIsIdenticalAtAnyThreadCount) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    Workload reference(6, 1, seed);
    reference.run();
    ASSERT_GT(reference.events(), 100u);
    for (const unsigned threads : {2u, 3u, 6u}) {
      Workload candidate(6, threads, seed);
      candidate.run();
      EXPECT_EQ(candidate.events(), reference.events());
      for (unsigned s = 0; s < 6; ++s) {
        EXPECT_EQ(candidate.logs()[s], reference.logs()[s])
            << "seed " << seed << " threads " << threads << " shard " << s;
      }
    }
  }
}

}  // namespace
}  // namespace ph::sim
