#include "sim/rng.hpp"

#include <gtest/gtest.h>

namespace ph::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform() != b.uniform()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3u);
    saw_lo |= (v == 1);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceZeroNeverFires) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng.chance(0.0));
}

TEST(RngTest, ChanceOneAlwaysFires) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceHalfIsRoughlyHalf) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.5);
  EXPECT_GT(hits, 4500);
  EXPECT_LT(hits, 5500);
}

TEST(RngTest, NormalNonnegNeverNegative) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.normal_nonneg(1.0, 5.0), 0.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.fork();
  Rng b(42);
  Rng forked_again = b.fork();
  // Forks of identically seeded parents match each other...
  EXPECT_DOUBLE_EQ(forked.uniform(), forked_again.uniform());
  // ...and the parents stay in sync too.
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

}  // namespace
}  // namespace ph::sim
