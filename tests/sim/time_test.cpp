#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace ph::sim {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(microseconds(5), 5u);
  EXPECT_EQ(milliseconds(5), 5'000u);
  EXPECT_EQ(seconds(5), 5'000'000u);
  EXPECT_EQ(minutes(2), 120'000'000u);
}

TEST(TimeTest, FractionalSeconds) {
  EXPECT_EQ(seconds(0.5), 500'000u);
  EXPECT_EQ(seconds(1.25), 1'250'000u);
}

TEST(TimeTest, ToSecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3.5)), 3.5);
}

TEST(TimeTest, ToMilliseconds) {
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(250)), 250.0);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(1.5)), "1.500s");
  EXPECT_EQ(format_duration(0), "0.000s");
  EXPECT_EQ(format_duration(milliseconds(12)), "0.012s");
}

}  // namespace
}  // namespace ph::sim
