#include "sim/mobility.hpp"

#include <gtest/gtest.h>

namespace ph::sim {
namespace {

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility m({3.0, 4.0});
  EXPECT_EQ(m.position_at(0), (Vec2{3.0, 4.0}));
  EXPECT_EQ(m.position_at(minutes(60)), (Vec2{3.0, 4.0}));
}

TEST(LinearMobilityTest, MovesWithVelocity) {
  // 1 m/s eastwards from the origin.
  LinearMobility m({0, 0}, {1.0, 0.0});
  EXPECT_DOUBLE_EQ(m.position_at(seconds(10)).x, 10.0);
  EXPECT_DOUBLE_EQ(m.position_at(seconds(10)).y, 0.0);
}

TEST(LinearMobilityTest, HoldsBeforeStartTime) {
  LinearMobility m({5, 5}, {1.0, 0.0}, seconds(10));
  EXPECT_DOUBLE_EQ(m.position_at(seconds(3)).x, 5.0);
  EXPECT_DOUBLE_EQ(m.position_at(seconds(12)).x, 7.0);
}

TEST(LinearMobilityTest, DiagonalMotion) {
  LinearMobility m({0, 0}, {3.0, 4.0});
  const Vec2 p = m.position_at(seconds(2));
  EXPECT_DOUBLE_EQ(p.x, 6.0);
  EXPECT_DOUBLE_EQ(p.y, 8.0);
}

TEST(WaypointMobilityTest, HoldsAtFirstWaypointBeforeStart) {
  WaypointMobility m({{seconds(10), {1, 1}}, {seconds(20), {2, 2}}});
  EXPECT_EQ(m.position_at(0), (Vec2{1, 1}));
}

TEST(WaypointMobilityTest, HoldsAtLastWaypointAfterEnd) {
  WaypointMobility m({{seconds(10), {1, 1}}, {seconds(20), {2, 2}}});
  EXPECT_EQ(m.position_at(minutes(5)), (Vec2{2, 2}));
}

TEST(WaypointMobilityTest, InterpolatesLinearly) {
  WaypointMobility m({{seconds(0), {0, 0}}, {seconds(10), {10, 20}}});
  const Vec2 mid = m.position_at(seconds(5));
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
}

TEST(WaypointMobilityTest, MultiSegmentPath) {
  WaypointMobility m({{seconds(0), {0, 0}},
                      {seconds(10), {10, 0}},
                      {seconds(20), {10, 10}}});
  EXPECT_DOUBLE_EQ(m.position_at(seconds(15)).x, 10.0);
  EXPECT_DOUBLE_EQ(m.position_at(seconds(15)).y, 5.0);
}

TEST(WaypointMobilityTest, ExactWaypointTimes) {
  WaypointMobility m({{seconds(0), {0, 0}}, {seconds(10), {10, 0}}});
  EXPECT_DOUBLE_EQ(m.position_at(seconds(10)).x, 10.0);
}

TEST(RandomWaypointTest, StaysInsideArea) {
  RandomWaypoint::Config config;
  config.area_min = {0, 0};
  config.area_max = {50, 30};
  RandomWaypoint m(config, Rng(9));
  for (int i = 0; i <= 600; ++i) {
    const Vec2 p = m.position_at(seconds(i));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 30.0);
  }
}

TEST(RandomWaypointTest, DeterministicForSameSeed) {
  RandomWaypoint::Config config;
  RandomWaypoint a(config, Rng(11));
  RandomWaypoint b(config, Rng(11));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.position_at(seconds(i * 3)), b.position_at(seconds(i * 3)));
  }
}

TEST(RandomWaypointTest, ActuallyMoves) {
  RandomWaypoint::Config config;
  config.pause = seconds(1);
  RandomWaypoint m(config, Rng(13));
  const Vec2 start = m.position_at(0);
  bool moved = false;
  for (int i = 1; i < 120; ++i) {
    if (!(m.position_at(seconds(i)) == start)) {
      moved = true;
      break;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(RandomWaypointTest, SpeedWithinConfiguredBand) {
  RandomWaypoint::Config config;
  config.speed_min_mps = 1.0;
  config.speed_max_mps = 2.0;
  config.pause = 0;
  RandomWaypoint m(config, Rng(17));
  // Sampling every 100 ms, instantaneous speed never exceeds the max.
  Vec2 prev = m.position_at(0);
  for (int i = 1; i < 600; ++i) {
    const Vec2 cur = m.position_at(milliseconds(100) * i);
    const double speed = distance(prev, cur) / 0.1;
    EXPECT_LE(speed, 2.0 + 1e-6);
    prev = cur;
  }
}

TEST(WaypointMobilityTest, HintedLookupSurvivesNonMonotonicQueries) {
  // The segment hint accelerates monotonic sampling; it must be pure
  // lookup state — backwards and random-order queries after a long
  // monotonic sweep must return exactly what a fresh model returns.
  std::vector<WaypointMobility::Waypoint> path;
  for (int i = 0; i <= 40; ++i) {
    path.push_back({seconds(i * 5),
                    {static_cast<double>(i % 7), static_cast<double>(i % 5)}});
  }
  WaypointMobility hinted(path);
  for (int i = 0; i <= 200; ++i) hinted.position_at(seconds(i));  // warm hint
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    WaypointMobility fresh(path);  // hint at zero: ground truth
    const Time t = seconds(static_cast<std::uint64_t>(rng.uniform_int(0, 210)));
    EXPECT_EQ(hinted.position_at(t), fresh.position_at(t)) << "t=" << t;
  }
}

TEST(RandomWaypointTest, HintedLookupSurvivesNonMonotonicQueries) {
  // Same property for the random-waypoint leg hint, including the cold
  // restart (query far past the hint) and backwards jumps. Ground truth is
  // a same-seed twin queried only at the probe time — RNG consumption in
  // extend_to is monotonic coverage, so both twins generate identical legs.
  RandomWaypoint::Config config;
  config.pause = seconds(2);
  RandomWaypoint hinted(config, Rng(23));
  for (int i = 0; i <= 600; ++i) hinted.position_at(seconds(i));  // warm hint
  Rng rng(47);
  for (int i = 0; i < 200; ++i) {
    RandomWaypoint fresh(config, Rng(23));
    const Time t = seconds(static_cast<std::uint64_t>(rng.uniform_int(0, 650)));
    EXPECT_EQ(hinted.position_at(t), fresh.position_at(t)) << "t=" << t;
  }
}

TEST(Vec2Test, DistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
}

TEST(Vec2Test, Arithmetic) {
  const Vec2 v = Vec2{1, 2} + Vec2{3, 4} * 2.0;
  EXPECT_DOUBLE_EQ(v.x, 7.0);
  EXPECT_DOUBLE_EQ(v.y, 10.0);
}

}  // namespace
}  // namespace ph::sim
