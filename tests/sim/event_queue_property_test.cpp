// Property tests for the event-queue implementations.
//
// The timer wheel earns its keep only if it is *indistinguishable* from
// the reference binary heap: same (when, id) pop order for every workload,
// including same-timestamp ties, cancellations, far-future overflow
// entries and wheel cascades. The lockstep tests drive both queues with
// identical randomized workloads and compare every popped entry; the
// simulator-level test does the same through the public Simulator API.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace ph::sim {
namespace {

TEST(FlatIdSet, InsertContainsErase) {
  FlatIdSet set;
  EXPECT_FALSE(set.contains(1));
  EXPECT_TRUE(set.insert(1));
  EXPECT_FALSE(set.insert(1));  // duplicate
  EXPECT_TRUE(set.contains(1));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.erase(1));
  EXPECT_FALSE(set.erase(1));
  EXPECT_FALSE(set.contains(1));
  EXPECT_EQ(set.size(), 0u);
}

TEST(FlatIdSet, IdZeroIsRejectedNotCorrupting) {
  // 0 is the empty-slot marker. erase(0) once "found" the first empty slot,
  // shifted live entries around a fake hole and underflowed size_ — after
  // which every insert re-grew the table (observed as multi-GB blowup when
  // a scenario cancelled a zero-initialised, never-armed event handle).
  FlatIdSet set;
  EXPECT_FALSE(set.erase(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_FALSE(set.contains(0));
  EXPECT_EQ(set.size(), 0u);
  for (EventId id = 1; id <= 100; ++id) EXPECT_TRUE(set.insert(id));
  for (int round = 0; round < 1000; ++round) EXPECT_FALSE(set.erase(0));
  EXPECT_EQ(set.size(), 100u);
  for (EventId id = 1; id <= 100; ++id) EXPECT_TRUE(set.contains(id));
}

TEST(SimulatorCancel, NeverArmedHandleIsHarmless) {
  Simulator simulator;
  // EventId{} is the conventional "no event armed" sentinel in scenario
  // code; cancelling it must be a no-op, repeatedly.
  for (int round = 0; round < 1000; ++round) {
    EXPECT_FALSE(simulator.cancel(EventId{}));
  }
  bool ran = false;
  const EventId armed = simulator.schedule(Duration{10}, [&ran] { ran = true; });
  EXPECT_FALSE(simulator.cancel(0));
  EXPECT_TRUE(simulator.pending(armed));
  simulator.run_all();
  EXPECT_TRUE(ran);
}

TEST(FlatIdSet, GrowsPastInitialCapacityAndKeepsMembership) {
  FlatIdSet set;
  const std::size_t n = 10'000;  // forces several grows past 1024 slots
  for (EventId id = 1; id <= n; ++id) EXPECT_TRUE(set.insert(id));
  EXPECT_EQ(set.size(), n);
  for (EventId id = 1; id <= n; ++id) EXPECT_TRUE(set.contains(id));
  // Erase odd ids; evens must survive the backward-shift deletions.
  for (EventId id = 1; id <= n; id += 2) EXPECT_TRUE(set.erase(id));
  for (EventId id = 1; id <= n; ++id) {
    EXPECT_EQ(set.contains(id), id % 2 == 0) << id;
  }
}

TEST(FlatIdSet, RandomizedAgainstReference) {
  std::mt19937_64 rng(0xF1A75E7u);
  FlatIdSet set;
  std::vector<bool> reference(4096, false);
  for (int round = 0; round < 100'000; ++round) {
    const EventId id = 1 + rng() % 4095;
    if (rng() % 2 == 0) {
      EXPECT_EQ(set.insert(id), !reference[id]);
      reference[id] = true;
    } else {
      EXPECT_EQ(set.erase(id), static_cast<bool>(reference[id]));
      reference[id] = false;
    }
  }
  for (EventId id = 1; id < 4096; ++id) {
    ASSERT_EQ(set.contains(id), static_cast<bool>(reference[id])) << id;
  }
}

TEST(EventFn, InlineAndHeapCallablesBothWork) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });
  EXPECT_TRUE(small.is_inline());
  small();
  EXPECT_EQ(hits, 1);

  std::array<std::uint64_t, 32> big{};  // 256 bytes: too big for the SBO
  big[0] = 41;
  EventFn large([&hits, big] { hits += static_cast<int>(big[0]); });
  EXPECT_FALSE(large.is_inline());
  large();
  EXPECT_EQ(hits, 42);

  // Moving transfers the callable (inline relocate / heap pointer steal).
  EventFn moved_small = std::move(small);
  EventFn moved_large = std::move(large);
  moved_small();
  moved_large();
  EXPECT_EQ(hits, 84);
}

/// Drives `wheel` and `heap` with an identical workload and asserts every
/// pop matches. Reports the number of events popped via `popped_out`
/// (ASSERT_* needs a void-returning function).
void run_lockstep(std::uint64_t seed, int rounds, Time max_delay,
                  std::size_t* popped_out = nullptr) {
  std::mt19937_64 rng(seed);
  FlatIdSet live_wheel, live_heap;
  TimerWheelQueue wheel(live_wheel);
  BinaryHeapQueue heap(live_heap);

  Time now = 0;
  EventId next_id = 1;
  std::vector<EventId> live_ids;
  std::size_t popped = 0;

  for (int round = 0; round < rounds; ++round) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 55) {
      // Schedule. Bias towards small delays (the real load shape) but
      // include ties (delay 0) and far-future entries crossing levels.
      Time delay = 0;
      switch (rng() % 5) {
        case 0: delay = 0; break;                            // tie with now
        case 1: delay = rng() % 2'000; break;                // sub-slot
        case 2: delay = rng() % 300'000; break;              // level 0/1
        case 3: delay = rng() % 80'000'000; break;           // level 1/2
        default: delay = rng() % (2 * max_delay); break;     // deep + overflow
      }
      const EventId id = next_id++;
      live_wheel.insert(id);
      live_heap.insert(id);
      wheel.push(now + delay, id, EventFn([] {}));
      heap.push(now + delay, id, EventFn([] {}));
      live_ids.push_back(id);
    } else if (op < 70 && !live_ids.empty()) {
      // Cancel a random live event in both.
      const std::size_t pick = rng() % live_ids.size();
      const EventId id = live_ids[pick];
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
      live_wheel.erase(id);
      live_heap.erase(id);
      wheel.note_cancelled();
      heap.note_cancelled();
    } else {
      // Pop everything up to a random horizon; both queues must yield the
      // exact same (when, id) sequence.
      const Time until = now + rng() % (max_delay / 4 + 1);
      QueueEntry from_wheel, from_heap;
      while (true) {
        const bool got_wheel = wheel.pop_next(until, from_wheel);
        const bool got_heap = heap.pop_next(until, from_heap);
        ASSERT_EQ(got_wheel, got_heap) << "seed " << seed;
        if (!got_wheel) break;
        ASSERT_EQ(from_wheel.when, from_heap.when) << "seed " << seed;
        ASSERT_EQ(from_wheel.id, from_heap.id) << "seed " << seed;
        ASSERT_GE(from_wheel.when, now);
        now = from_wheel.when;  // simulator semantics: time follows pops
        live_wheel.erase(from_wheel.id);
        live_heap.erase(from_heap.id);
        std::erase(live_ids, from_wheel.id);
        ++popped;
      }
      now = until;
    }
  }

  // Full drain: remaining events must come out in the same total order.
  // The horizon must clear every delay branch above (the level-1/2 branch
  // reaches 80 s regardless of max_delay) or cancelled stragglers linger.
  const Time far = now + 2 * max_delay + 200'000'000;
  QueueEntry from_wheel, from_heap;
  while (true) {
    const bool got_wheel = wheel.pop_next(far, from_wheel);
    const bool got_heap = heap.pop_next(far, from_heap);
    EXPECT_EQ(got_wheel, got_heap) << "seed " << seed;
    if (!got_wheel || !got_heap) break;
    EXPECT_EQ(from_wheel.when, from_heap.when) << "seed " << seed;
    EXPECT_EQ(from_wheel.id, from_heap.id) << "seed " << seed;
    live_wheel.erase(from_wheel.id);
    live_heap.erase(from_heap.id);
    ++popped;
  }
  EXPECT_EQ(wheel.stored(), 0u);
  EXPECT_EQ(heap.stored(), 0u);
  if (popped_out != nullptr) *popped_out = popped;
}

TEST(EventQueueLockstep, ShortHorizonWorkload) {
  std::size_t popped = 0;
  run_lockstep(0xA11CE, 20'000, 500'000, &popped);
  EXPECT_GT(popped, 1'000u);
}

TEST(EventQueueLockstep, CascadingWorkload) {
  // Delays up to ~160 s exercise level-1/2 cascades heavily.
  std::size_t popped = 0;
  run_lockstep(0xB0B, 8'000, 80'000'000, &popped);
  EXPECT_GT(popped, 500u);
}

TEST(EventQueueLockstep, OverflowWorkload) {
  // Delays past the wheel's 4.77 h horizon park in the overflow heap.
  std::size_t popped = 0;
  run_lockstep(0xCAFE, 4'000, Time{40'000'000'000}, &popped);
  EXPECT_GT(popped, 200u);
}

TEST(EventQueueLockstep, ManySeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    run_lockstep(seed * 7919, 3'000, 10'000'000);
  }
}

TEST(TimerWheelQueue, DrainedBeforeIsMonotonic) {
  FlatIdSet live;
  TimerWheelQueue wheel(live);
  std::mt19937_64 rng(42);
  Time now = 0;
  EventId next_id = 1;
  Time last_drained = wheel.drained_before();
  for (int i = 0; i < 5'000; ++i) {
    const EventId id = next_id++;
    live.insert(id);
    wheel.push(now + rng() % 1'000'000, id, EventFn([] {}));
    if (i % 3 == 0) {
      QueueEntry out;
      const Time until = now + rng() % 400'000;
      while (wheel.pop_next(until, out)) {
        live.erase(out.id);
        now = out.when;
      }
      now = until;
      EXPECT_GE(wheel.drained_before(), last_drained);
      last_drained = wheel.drained_before();
    }
  }
}

/// Regression driver for the window-boundary starvation bug: an entry
/// parked one level up (A), a filler (B) that keeps level 0 busy right
/// through the boundary so wheel time rolls into A's window via the
/// level-0 path, then a later same-window entry (C) scheduled after the
/// crossing. The buggy wheel filed C straight into level 0 and fired it
/// before the earlier parked A; entering a window must cascade it first.
void run_boundary_starvation(Time window) {
  FlatIdSet live_wheel, live_heap;
  TimerWheelQueue wheel(live_wheel);
  BinaryHeapQueue heap(live_heap);
  EventId next_id = 1;
  auto push_both = [&](Time when) {
    const EventId id = next_id++;
    live_wheel.insert(id);
    live_heap.insert(id);
    wheel.push(when, id, EventFn([] {}));
    heap.push(when, id, EventFn([] {}));
  };
  auto pop_both_until = [&](Time until) {
    QueueEntry from_wheel, from_heap;
    std::vector<std::pair<Time, EventId>> order;
    while (true) {
      const bool got_wheel = wheel.pop_next(until, from_wheel);
      const bool got_heap = heap.pop_next(until, from_heap);
      EXPECT_EQ(got_wheel, got_heap);
      if (!got_wheel || !got_heap) break;
      EXPECT_EQ(from_wheel.when, from_heap.when);
      EXPECT_EQ(from_wheel.id, from_heap.id);
      live_wheel.erase(from_wheel.id);
      live_heap.erase(from_heap.id);
      order.emplace_back(from_wheel.when, from_wheel.id);
    }
    return order;
  };

  push_both(window + 56);   // A: parks one level above level 0
  push_both(window - 100);  // B: the last level-0 work before the boundary
  // Firing B rolls the wheel's clock exactly onto the window boundary.
  EXPECT_EQ(pop_both_until(window - 1).size(), 1u);
  // C arrives after the wheel already entered A's window.
  push_both(window + 200);  // C
  const auto order = pop_both_until(window + 1'000'000);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, window + 56) << "parked entry must fire first";
  EXPECT_EQ(order[1].first, window + 200);
}

TEST(TimerWheelQueue, ParkedLevel1EntrySurvivesBusyBoundaryCrossing) {
  run_boundary_starvation(Time{1} << 18);  // first level-1 window boundary
}

TEST(TimerWheelQueue, ParkedLevel2EntrySurvivesBusyBoundaryCrossing) {
  run_boundary_starvation(Time{1} << 26);  // first level-2 window boundary
}

TEST(TimerWheelQueue, OverflowDrainsIntoWheel) {
  FlatIdSet live;
  TimerWheelQueue wheel(live);
  const Time horizon = Time{1} << 34;  // wheel span
  live.insert(1);
  wheel.push(horizon + 5'000'000, 1, EventFn([] {}));
  EXPECT_EQ(wheel.overflow_size(), 1u);
  QueueEntry out;
  ASSERT_TRUE(wheel.pop_next(horizon + 10'000'000, out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_EQ(out.when, horizon + 5'000'000);
  EXPECT_EQ(wheel.overflow_size(), 0u);
}

TEST(EventQueue, CancelledEntriesCompactOnceTheyDominate) {
  FlatIdSet live;
  TimerWheelQueue wheel(live);
  // 40 live + 40 cancelled: 40 dead >= 32 and 2*40 >= 80 stored, so the
  // policy (mirroring Medium::note_dead_link) must have compacted.
  for (EventId id = 1; id <= 80; ++id) {
    live.insert(id);
    wheel.push(1'000 + id, id, EventFn([] {}));
  }
  for (EventId id = 1; id <= 40; ++id) {
    live.erase(id);
    wheel.note_cancelled();
  }
  EXPECT_EQ(wheel.dead(), 0u) << "compaction should have run";
  EXPECT_EQ(wheel.stored(), 40u);
  QueueEntry out;
  std::size_t fired = 0;
  while (wheel.pop_next(Time{10'000}, out)) {
    EXPECT_GT(out.id, 40u);
    ++fired;
  }
  EXPECT_EQ(fired, 40u);
}

TEST(SimulatorLockstep, BothQueueImplsExecuteIdentically) {
  // Same randomized scenario on both queue implementations, recording the
  // execution order through the public API. Periodic tasks, cancellations
  // and nested scheduling included.
  auto run = [](Simulator::QueueImpl impl) {
    std::vector<std::pair<Time, int>> order;
    Simulator simulator(impl);
    std::mt19937_64 rng(0xD15EA5E);
    int tag = 0;
    for (int i = 0; i < 500; ++i) {
      const Time delay = rng() % 3'000'000;
      const int id = tag++;
      const EventId ev =
          simulator.schedule(Duration{delay}, [&order, &simulator, id] {
            order.emplace_back(simulator.now(), id);
          });
      if (i % 7 == 0) simulator.cancel(ev);
    }
    simulator.schedule_periodic(Duration{50'000}, [&order, &simulator]() {
      order.emplace_back(simulator.now(), -1);
    });
    simulator.run_until(Time{2'500'000});
    return order;
  };
  const auto wheel_order = run(Simulator::QueueImpl::timer_wheel);
  const auto heap_order = run(Simulator::QueueImpl::binary_heap);
  ASSERT_EQ(wheel_order.size(), heap_order.size());
  EXPECT_EQ(wheel_order, heap_order);
}

}  // namespace
}  // namespace ph::sim
