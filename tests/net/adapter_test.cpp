#include "net/adapter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::net {
namespace {

TechProfile lossless_bt() {
  TechProfile p = bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class AdapterTest : public ::testing::Test {
 protected:
  AdapterTest() : medium_(simulator_, sim::Rng(2)) {}

  NodeId add_node(const std::string& name, sim::Vec2 pos) {
    return medium_.add_node(name, std::make_unique<sim::StaticMobility>(pos));
  }

  sim::Simulator simulator_;
  Medium medium_;
};

TEST_F(AdapterTest, InquiryFindsNeighbourAfterScanDuration) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  medium_.add_adapter(b, lossless_bt());

  std::vector<NodeId> found;
  bool completed = false;
  radio_a.start_inquiry([&](std::vector<NodeId> result) {
    found = std::move(result);
    completed = true;
  });
  // The scan takes the full inquiry duration — not earlier.
  simulator_.run_until(sim::seconds(10.0));
  EXPECT_FALSE(completed);
  simulator_.run_until(sim::seconds(10.5));
  ASSERT_TRUE(completed);
  EXPECT_EQ(found, (std::vector<NodeId>{b}));
}

TEST_F(AdapterTest, InquiryExcludesSelfAndOutOfRange) {
  NodeId a = add_node("a", {0, 0});
  NodeId far = add_node("far", {99, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  medium_.add_adapter(far, lossless_bt());
  std::vector<NodeId> found{kInvalidNode};
  radio_a.start_inquiry([&](std::vector<NodeId> result) { found = result; });
  simulator_.run_until(sim::seconds(11));
  EXPECT_TRUE(found.empty());
}

TEST_F(AdapterTest, InquiryWhilePoweredOffReturnsNothing) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {1, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  medium_.add_adapter(b, lossless_bt());
  radio_a.start_inquiry([&](std::vector<NodeId> result) {
    EXPECT_TRUE(result.empty());
  });
  radio_a.set_powered(false);  // powered off mid-scan
  simulator_.run_until(sim::seconds(11));
}

TEST_F(AdapterTest, GprsInquiryFindsEveryoneViaGateway) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {5000, 0});
  NodeId c = add_node("c", {-8000, 100});
  Adapter& radio_a = medium_.add_adapter(a, gprs());
  medium_.add_adapter(b, gprs());
  medium_.add_adapter(c, gprs());
  std::vector<NodeId> found;
  radio_a.start_inquiry([&](std::vector<NodeId> result) { found = result; });
  simulator_.run_until(sim::seconds(2));
  EXPECT_EQ(found, (std::vector<NodeId>{b, c}));
}

TEST_F(AdapterTest, DatagramDeliveredToBoundPort) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  Adapter& radio_b = medium_.add_adapter(b, lossless_bt());

  std::string received;
  NodeId from = kInvalidNode;
  radio_b.bind(7, [&](NodeId src, BytesView payload) {
    from = src;
    received = to_text(payload);
  });
  radio_a.send_datagram(b, 7, to_bytes("ping!"));
  simulator_.run_until(sim::seconds(1));
  EXPECT_EQ(received, "ping!");
  EXPECT_EQ(from, a);
}

TEST_F(AdapterTest, DatagramToUnboundPortDropped) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  Adapter& radio_b = medium_.add_adapter(b, lossless_bt());
  bool received = false;
  radio_b.bind(8, [&](NodeId, BytesView) { received = true; });
  radio_a.send_datagram(b, 9, to_bytes("lost"));
  simulator_.run_until(sim::seconds(1));
  EXPECT_FALSE(received);
}

TEST_F(AdapterTest, UnbindStopsDelivery) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  Adapter& radio_b = medium_.add_adapter(b, lossless_bt());
  int count = 0;
  radio_b.bind(7, [&](NodeId, BytesView) { ++count; });
  radio_a.send_datagram(b, 7, to_bytes("one"));
  simulator_.run_until(sim::seconds(1));
  radio_b.unbind(7);
  radio_a.send_datagram(b, 7, to_bytes("two"));
  simulator_.run_until(sim::seconds(2));
  EXPECT_EQ(count, 1);
}

TEST_F(AdapterTest, DatagramAcrossRangeBoundaryDropped) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {30, 0});  // out of BT range
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  Adapter& radio_b = medium_.add_adapter(b, lossless_bt());
  bool received = false;
  radio_b.bind(7, [&](NodeId, BytesView) { received = true; });
  radio_a.send_datagram(b, 7, to_bytes("x"));
  simulator_.run_until(sim::seconds(1));
  EXPECT_FALSE(received);
}

TEST_F(AdapterTest, DatagramFromPoweredOffAdapterNotSent) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  Adapter& radio_b = medium_.add_adapter(b, lossless_bt());
  radio_a.set_powered(false);
  bool received = false;
  radio_b.bind(7, [&](NodeId, BytesView) { received = true; });
  radio_a.send_datagram(b, 7, to_bytes("x"));
  simulator_.run_until(sim::seconds(1));
  EXPECT_FALSE(received);
  EXPECT_EQ(medium_.stats().counter("datagrams_sent"), 0u);
}

TEST_F(AdapterTest, LossyLinkDropsSomeDatagrams) {
  TechProfile lossy = bluetooth_2_0();
  lossy.frame_loss = 0.5;
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {2, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossy);
  Adapter& radio_b = medium_.add_adapter(b, lossy);
  int received = 0;
  radio_b.bind(7, [&](NodeId, BytesView) { ++received; });
  for (int i = 0; i < 200; ++i) radio_a.send_datagram(b, 7, to_bytes("x"));
  simulator_.run_until(sim::minutes(2));
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(medium_.stats().counter("datagrams_lost"),
            200u - static_cast<unsigned>(received));
}

TEST_F(AdapterTest, SignalToTracksMedium) {
  NodeId a = add_node("a", {0, 0});
  NodeId b = add_node("b", {5, 0});
  Adapter& radio_a = medium_.add_adapter(a, lossless_bt());
  medium_.add_adapter(b, lossless_bt());
  EXPECT_DOUBLE_EQ(radio_a.signal_to(b),
                   medium_.signal(a, b, radio_a.profile()));
  EXPECT_GT(radio_a.signal_to(b), 0.0);
}

}  // namespace
}  // namespace ph::net
