#include "net/tech.hpp"

#include <gtest/gtest.h>

namespace ph::net {
namespace {

TEST(TechTest, BluetoothProfileMatchesSpec) {
  const TechProfile p = bluetooth_2_0();
  EXPECT_EQ(p.tech, Technology::bluetooth);
  EXPECT_DOUBLE_EQ(p.range_m, 10.0);       // class-2 dongles
  EXPECT_DOUBLE_EQ(p.bandwidth_bps, 723'000.0);
  EXPECT_EQ(p.inquiry_duration, sim::seconds(10.24));  // BT inquiry scan
  EXPECT_FALSE(p.via_gateway);
}

TEST(TechTest, WlanDataRatesMatchTable1) {
  // Thesis Table 1: 802.11 = 2 Mbps, 802.11a = 54, 802.11b = 11, 802.11g = 54.
  EXPECT_DOUBLE_EQ(wlan_80211().bandwidth_bps, 2e6);
  EXPECT_DOUBLE_EQ(wlan_80211a().bandwidth_bps, 54e6);
  EXPECT_DOUBLE_EQ(wlan_80211b().bandwidth_bps, 11e6);
  EXPECT_DOUBLE_EQ(wlan_80211g().bandwidth_bps, 54e6);
}

TEST(TechTest, Wlan80211aHasShorterRange) {
  // Table 1: "Relatively shorter range than 802.11b".
  EXPECT_LT(wlan_80211a().range_m, wlan_80211b().range_m);
}

TEST(TechTest, WlanDiscoveryFasterThanBluetooth) {
  EXPECT_LT(wlan_80211b().inquiry_duration, bluetooth_2_0().inquiry_duration);
}

TEST(TechTest, GprsIsGatewayRouted) {
  const TechProfile p = gprs();
  EXPECT_TRUE(p.via_gateway);
  EXPECT_GT(p.gateway_latency, 0u);
  // GPRS rate sits inside the thesis' 9.6-171 kbps band.
  EXPECT_GE(p.bandwidth_bps, 9'600.0);
  EXPECT_LE(p.bandwidth_bps, 171'000.0);
}

TEST(TechTest, GprsLatencyDominatesLocalRadios) {
  EXPECT_GT(gprs().base_latency, bluetooth_2_0().base_latency);
  EXPECT_GT(gprs().base_latency, wlan_80211b().base_latency);
}

TEST(TechTest, TechnologyNames) {
  EXPECT_EQ(to_string(Technology::bluetooth), "bluetooth");
  EXPECT_EQ(to_string(Technology::wlan), "wlan");
  EXPECT_EQ(to_string(Technology::gprs), "gprs");
}

TEST(TechTest, ProfileNamesIdentifyStandard) {
  EXPECT_EQ(wlan_80211b().name, "IEEE 802.11b");
  EXPECT_EQ(bluetooth_2_0().name, "Bluetooth 2.0");
  EXPECT_EQ(gprs().name, "GPRS");
}

}  // namespace
}  // namespace ph::net
