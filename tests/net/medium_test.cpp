#include "net/medium.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ph::net {
namespace {

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() : medium_(simulator_, sim::Rng(1)) {}

  NodeId add_static_node(const std::string& name, sim::Vec2 pos) {
    return medium_.add_node(name, std::make_unique<sim::StaticMobility>(pos));
  }

  sim::Simulator simulator_;
  Medium medium_;
};

TEST_F(MediumTest, NodeIdsAreDenseFromOne) {
  EXPECT_EQ(add_static_node("a", {0, 0}), 1u);
  EXPECT_EQ(add_static_node("b", {0, 0}), 2u);
  EXPECT_EQ(medium_.node_count(), 2u);
}

TEST_F(MediumTest, NodeNameStored) {
  NodeId id = add_static_node("laptop", {0, 0});
  EXPECT_EQ(medium_.node_name(id), "laptop");
}

TEST_F(MediumTest, PositionSamplesMobilityAtCurrentTime) {
  NodeId id = medium_.add_node(
      "walker", std::make_unique<sim::LinearMobility>(sim::Vec2{0, 0},
                                                      sim::Vec2{1.0, 0.0}));
  simulator_.run_until(sim::seconds(5));
  EXPECT_DOUBLE_EQ(medium_.position(id).x, 5.0);
}

TEST_F(MediumTest, SetMobilityReplacesModel) {
  NodeId id = add_static_node("a", {0, 0});
  medium_.set_mobility(id, std::make_unique<sim::StaticMobility>(sim::Vec2{9, 9}));
  EXPECT_DOUBLE_EQ(medium_.position(id).x, 9.0);
}

TEST_F(MediumTest, AdapterLookup) {
  NodeId id = add_static_node("a", {0, 0});
  Adapter& adapter = medium_.add_adapter(id, bluetooth_2_0());
  EXPECT_EQ(medium_.adapter(id, Technology::bluetooth), &adapter);
  EXPECT_EQ(medium_.adapter(id, Technology::wlan), nullptr);
}

TEST_F(MediumTest, SignalFullAtZeroDistance) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId b = add_static_node("b", {0, 0});
  medium_.add_adapter(a, bluetooth_2_0());
  medium_.add_adapter(b, bluetooth_2_0());
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bluetooth_2_0()), 1.0);
}

TEST_F(MediumTest, SignalZeroAtRange) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId b = add_static_node("b", {10.0, 0});  // exactly BT range
  medium_.add_adapter(a, bluetooth_2_0());
  medium_.add_adapter(b, bluetooth_2_0());
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bluetooth_2_0()), 0.0);
  EXPECT_FALSE(medium_.reachable(a, b, bluetooth_2_0()));
}

TEST_F(MediumTest, SignalDecreasesWithDistance) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId near = add_static_node("near", {2, 0});
  NodeId far = add_static_node("far", {8, 0});
  medium_.add_adapter(a, bluetooth_2_0());
  medium_.add_adapter(near, bluetooth_2_0());
  medium_.add_adapter(far, bluetooth_2_0());
  EXPECT_GT(medium_.signal(a, near, bluetooth_2_0()),
            medium_.signal(a, far, bluetooth_2_0()));
}

TEST_F(MediumTest, SignalZeroWithoutAdapter) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId b = add_static_node("b", {1, 0});
  medium_.add_adapter(a, bluetooth_2_0());
  // b has no Bluetooth radio.
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bluetooth_2_0()), 0.0);
}

TEST_F(MediumTest, SignalZeroWhenPoweredOff) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId b = add_static_node("b", {1, 0});
  medium_.add_adapter(a, bluetooth_2_0());
  Adapter& radio_b = medium_.add_adapter(b, bluetooth_2_0());
  radio_b.set_powered(false);
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, bluetooth_2_0()), 0.0);
}

TEST_F(MediumTest, SignalToSelfIsZero) {
  NodeId a = add_static_node("a", {0, 0});
  medium_.add_adapter(a, bluetooth_2_0());
  EXPECT_DOUBLE_EQ(medium_.signal(a, a, bluetooth_2_0()), 0.0);
}

TEST_F(MediumTest, GatewayTechIgnoresDistance) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId b = add_static_node("b", {100000.0, 0});
  medium_.add_adapter(a, gprs());
  medium_.add_adapter(b, gprs());
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, gprs()), 1.0);
  EXPECT_TRUE(medium_.reachable(a, b, gprs()));
}

TEST_F(MediumTest, NodesInRangeFiltersByDistanceAndPower) {
  NodeId a = add_static_node("a", {0, 0});
  NodeId close1 = add_static_node("c1", {3, 0});
  NodeId close2 = add_static_node("c2", {0, 4});
  NodeId far = add_static_node("far", {50, 0});
  NodeId off = add_static_node("off", {1, 1});
  medium_.add_adapter(a, bluetooth_2_0());
  medium_.add_adapter(close1, bluetooth_2_0());
  medium_.add_adapter(close2, bluetooth_2_0());
  medium_.add_adapter(far, bluetooth_2_0());
  medium_.add_adapter(off, bluetooth_2_0()).set_powered(false);
  auto in_range = medium_.nodes_in_range(a, bluetooth_2_0());
  EXPECT_EQ(in_range, (std::vector<NodeId>{close1, close2}));
}

TEST_F(MediumTest, MovingNodeLeavesRange) {
  NodeId a = add_static_node("a", {0, 0});
  // Walks east at 1 m/s: in BT range until t=10 s.
  NodeId walker = medium_.add_node(
      "walker", std::make_unique<sim::LinearMobility>(sim::Vec2{0, 0},
                                                      sim::Vec2{1.0, 0.0}));
  medium_.add_adapter(a, bluetooth_2_0());
  medium_.add_adapter(walker, bluetooth_2_0());
  simulator_.run_until(sim::seconds(5));
  EXPECT_TRUE(medium_.reachable(a, walker, bluetooth_2_0()));
  simulator_.run_until(sim::seconds(11));
  EXPECT_FALSE(medium_.reachable(a, walker, bluetooth_2_0()));
}

// --- link accounting ---------------------------------------------------

class MediumLinkAccountingTest : public MediumTest {
 protected:
  void SetUp() override {
    TechProfile bt = bluetooth_2_0();
    bt.frame_loss = 0.0;
    a_ = add_static_node("a", {0, 0});
    b_ = add_static_node("b", {2, 0});
    radio_a_ = &medium_.add_adapter(a_, bt);
    radio_b_ = &medium_.add_adapter(b_, bt);
    radio_b_->listen(5, [](Link) {});
  }

  Link connect() {
    Link client;
    radio_a_->connect(b_, 5, [&](Result<Link> link) {
      ASSERT_TRUE(link.ok()) << link.error().to_string();
      client = *link;
    });
    simulator_.run_until(simulator_.now() + sim::seconds(2));
    EXPECT_TRUE(client.valid());
    return client;
  }

  NodeId a_ = 0, b_ = 0;
  Adapter* radio_a_ = nullptr;
  Adapter* radio_b_ = nullptr;
};

TEST_F(MediumLinkAccountingTest, OpenLinkCountTracksBothEndpoints) {
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 0u);
  Link link = connect();
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 1u);
  EXPECT_EQ(medium_.open_link_count(b_, Technology::bluetooth), 1u);
  EXPECT_EQ(medium_.open_link_count(a_, Technology::wlan), 0u);
}

TEST_F(MediumLinkAccountingTest, CapacityFreesAtCloseInitiation) {
  Link link = connect();
  // close() only *schedules* the teardown, but a closing link no longer
  // occupies piconet capacity — the count must drop before the close
  // completes, matching the semantics a new connect() relies on.
  link.close();
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 0u);
  EXPECT_EQ(medium_.open_link_count(b_, Technology::bluetooth), 0u);
  simulator_.run_all();
  EXPECT_FALSE(link.open());
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 0u);
}

TEST_F(MediumLinkAccountingTest, CountDropsWhenPowerOffBreaksLinks) {
  Link link = connect();
  radio_b_->set_powered(false);  // breaks the link immediately
  EXPECT_FALSE(link.open());
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 0u);
  EXPECT_EQ(medium_.open_link_count(b_, Technology::bluetooth), 0u);
}

TEST_F(MediumLinkAccountingTest, BreakAfterCloseInitiationDoesNotDoubleFree) {
  Link first = connect();
  first.close();
  // The link is closing but not yet dead; a power-off now takes the break
  // path. The count already dropped at close initiation and must not go
  // negative / wrap for later links.
  radio_a_->set_powered(false);
  simulator_.run_all();
  radio_a_->set_powered(true);
  Link second = connect();
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 1u);
  EXPECT_EQ(medium_.open_link_count(b_, Technology::bluetooth), 1u);
}

TEST_F(MediumLinkAccountingTest, TrackedLinksStayBoundedUnderChurn) {
  // The regression this guards: links_ grew one weak_ptr per link ever
  // opened. 200 open/close cycles must leave the registry near-empty, not
  // 200 entries long.
  for (int i = 0; i < 200; ++i) {
    Link link = connect();
    link.close();
    simulator_.run_all();
  }
  EXPECT_LT(medium_.tracked_link_count(), 64u);
  EXPECT_GT(medium_.stats().counter("links_compacted"), 0u);
  EXPECT_EQ(medium_.open_link_count(a_, Technology::bluetooth), 0u);
}

}  // namespace
}  // namespace ph::net
