#include "net/link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::net {
namespace {

TechProfile lossless_bt() {
  TechProfile p = bluetooth_2_0();
  p.frame_loss = 0.0;
  return p;
}

class LinkTest : public ::testing::Test {
 protected:
  LinkTest() : medium_(simulator_, sim::Rng(3)) {}

  void SetUp() override {
    a_ = medium_.add_node("a", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
    b_ = medium_.add_node("b", std::make_unique<sim::StaticMobility>(sim::Vec2{2, 0}));
    radio_a_ = &medium_.add_adapter(a_, lossless_bt());
    radio_b_ = &medium_.add_adapter(b_, lossless_bt());
  }

  /// Establishes a link a->b on port 5; returns {client link, server link}.
  std::pair<Link, Link> connect() {
    Link client, server;
    radio_b_->listen(5, [&](Link link) { server = link; });
    radio_a_->connect(b_, 5, [&](Result<Link> link) {
      ASSERT_TRUE(link.ok()) << link.error().to_string();
      client = *link;
    });
    simulator_.run_until(simulator_.now() + sim::seconds(2));
    EXPECT_TRUE(client.valid());
    EXPECT_TRUE(server.valid());
    return {client, server};
  }

  sim::Simulator simulator_;
  Medium medium_;
  NodeId a_ = 0, b_ = 0;
  Adapter* radio_a_ = nullptr;
  Adapter* radio_b_ = nullptr;
};

TEST_F(LinkTest, ConnectTakesConnectLatency) {
  bool connected = false;
  radio_b_->listen(5, [](Link) {});
  radio_a_->connect(b_, 5, [&](Result<Link> link) { connected = link.ok(); });
  simulator_.run_until(sim::milliseconds(500));  // BT paging is 640 ms
  EXPECT_FALSE(connected);
  simulator_.run_until(sim::seconds(1));
  EXPECT_TRUE(connected);
}

TEST_F(LinkTest, ConnectToNonListenerFails) {
  Error error;
  radio_a_->connect(b_, 99, [&](Result<Link> link) {
    ASSERT_FALSE(link.ok());
    error = link.error();
  });
  simulator_.run_until(sim::seconds(2));
  EXPECT_EQ(error.code, Errc::connect_failed);
}

TEST_F(LinkTest, ConnectToUnreachableNodeFails) {
  NodeId far = medium_.add_node(
      "far", std::make_unique<sim::StaticMobility>(sim::Vec2{500, 0}));
  medium_.add_adapter(far, lossless_bt()).listen(5, [](Link) {});
  Error error;
  radio_a_->connect(far, 5, [&](Result<Link> link) {
    ASSERT_FALSE(link.ok());
    error = link.error();
  });
  simulator_.run_until(sim::seconds(2));
  EXPECT_EQ(error.code, Errc::device_unreachable);
}

TEST_F(LinkTest, ConnectToPoweredOffPeerFails) {
  radio_b_->listen(5, [](Link) {});
  radio_b_->set_powered(false);
  bool failed = false;
  radio_a_->connect(b_, 5, [&](Result<Link> link) { failed = !link.ok(); });
  simulator_.run_until(sim::seconds(2));
  EXPECT_TRUE(failed);
}

TEST_F(LinkTest, MessagesDeliveredInOrder) {
  auto [client, server] = connect();
  std::vector<std::string> received;
  server.on_receive([&](BytesView data) { received.push_back(to_text(data)); });
  client.send(to_bytes("one"));
  client.send(to_bytes("two"));
  client.send(to_bytes("three"));
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  EXPECT_EQ(received, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(LinkTest, BidirectionalTraffic) {
  auto [client, server] = connect();
  std::string at_server, at_client;
  server.on_receive([&](BytesView d) { at_server = to_text(d); });
  client.on_receive([&](BytesView d) { at_client = to_text(d); });
  client.send(to_bytes("hello"));
  server.send(to_bytes("world"));
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  EXPECT_EQ(at_server, "hello");
  EXPECT_EQ(at_client, "world");
}

TEST_F(LinkTest, LargePayloadTakesBandwidthTime) {
  auto [client, server] = connect();
  bool received = false;
  server.on_receive([&](BytesView) { received = true; });
  // 723 kbps -> ~11 s for 1 MB.
  client.send(Bytes(1'000'000, 0x42));
  simulator_.run_until(simulator_.now() + sim::seconds(5));
  EXPECT_FALSE(received);
  simulator_.run_until(simulator_.now() + sim::seconds(10));
  EXPECT_TRUE(received);
}

TEST_F(LinkTest, CloseNotifiesPeer) {
  auto [client, server] = connect();
  bool server_broke = false;
  server.on_break([&] { server_broke = true; });
  client.close();
  EXPECT_FALSE(client.open());
  simulator_.run_until(simulator_.now() + sim::seconds(1));
  EXPECT_TRUE(server_broke);
  EXPECT_FALSE(server.open());
}

TEST_F(LinkTest, DoubleCloseIsSafe) {
  auto [client, server] = connect();
  client.close();
  client.close();
  simulator_.run_until(simulator_.now() + sim::seconds(1));
  SUCCEED();
}

TEST_F(LinkTest, SendAfterCloseIsDiscarded) {
  auto [client, server] = connect();
  bool received = false;
  server.on_receive([&](BytesView) { received = true; });
  client.close();
  client.send(to_bytes("ghost"));
  simulator_.run_until(simulator_.now() + sim::seconds(1));
  EXPECT_FALSE(received);
}

TEST_F(LinkTest, PeerMovingOutOfRangeBreaksLinkOnNextSend) {
  // b walks east at 2 m/s; leaves the 10 m BT range after ~5 s.
  medium_.set_mobility(b_, std::make_unique<sim::LinearMobility>(
                               sim::Vec2{2, 0}, sim::Vec2{2.0, 0.0}));
  auto [client, server] = connect();
  bool client_broke = false, server_broke = false;
  client.on_break([&] { client_broke = true; });
  server.on_break([&] { server_broke = true; });
  simulator_.run_until(sim::seconds(10));  // b is now ~22 m away
  client.send(to_bytes("anyone there?"));
  simulator_.run_until(sim::seconds(12));
  EXPECT_TRUE(client_broke);
  EXPECT_TRUE(server_broke);
  EXPECT_FALSE(client.open());
}

TEST_F(LinkTest, PoweringOffAdapterBreaksItsLinks) {
  auto [client, server] = connect();
  bool client_broke = false;
  client.on_break([&] { client_broke = true; });
  radio_b_->set_powered(false);
  EXPECT_TRUE(client_broke);
  EXPECT_FALSE(client.open());
  EXPECT_EQ(medium_.stats().counter("links_broken"), 1u);
}

TEST_F(LinkTest, SignalReflectsDistance) {
  auto [client, server] = connect();
  EXPECT_GT(client.signal(), 0.9);  // 2 m apart, 10 m range
  medium_.set_mobility(b_, std::make_unique<sim::StaticMobility>(sim::Vec2{9, 0}));
  EXPECT_LT(client.signal(), 0.3);
}

TEST_F(LinkTest, StatsCountTraffic) {
  auto [client, server] = connect();
  server.on_receive([](BytesView) {});
  client.send(to_bytes("abcd"));
  simulator_.run_until(simulator_.now() + sim::seconds(1));
  EXPECT_EQ(medium_.stats().counter("links_opened"), 1u);
  EXPECT_EQ(medium_.stats().counter("link_messages_sent"), 1u);
  EXPECT_EQ(medium_.stats().counter("link_bytes_sent"), 4u);
}

TEST_F(LinkTest, InvalidLinkHandleIsInert) {
  Link link;
  EXPECT_FALSE(link.valid());
  EXPECT_FALSE(link.open());
  link.send(to_bytes("x"));  // must not crash
  link.close();
  EXPECT_DOUBLE_EQ(link.signal(), 0.0);
}

TEST_F(LinkTest, RetransmissionsDelayButDeliver) {
  TechProfile lossy = bluetooth_2_0();
  lossy.frame_loss = 0.3;
  NodeId c = medium_.add_node(
      "c", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 2}));
  NodeId d = medium_.add_node(
      "d", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 4}));
  Adapter& radio_c = medium_.add_adapter(c, lossy);
  Adapter& radio_d = medium_.add_adapter(d, lossy);
  Link client;
  int received = 0;
  radio_d.listen(5, [&](Link link) {
    auto server = std::make_shared<Link>(link);
    server->on_receive([&received, server](BytesView) { ++received; });
  });
  radio_c.connect(d, 5, [&](Result<Link> link) { client = *link; });
  simulator_.run_until(simulator_.now() + sim::seconds(2));
  for (int i = 0; i < 100; ++i) client.send(to_bytes("x"));
  simulator_.run_until(simulator_.now() + sim::minutes(1));
  EXPECT_EQ(received, 100);  // reliable: everything arrives
  EXPECT_GT(medium_.stats().counter("retransmissions"), 0u);
}

}  // namespace
}  // namespace ph::net
