// ParallelWorld: the randomized lockstep property — a world run at N
// threads must produce byte-identical metrics/series/trace dumps to the
// same world run at 1 thread (same seed, same shard count), across
// mobility, frame loss, outage waves and data ops. Plus sanity checks on
// the workload itself (conservation laws between the counters).
#include "net/parallel_world.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/export.hpp"
#include "sim/time.hpp"

namespace ph::net {
namespace {

ParallelWorldConfig small_world(std::uint64_t seed, unsigned threads) {
  ParallelWorldConfig config;
  config.devices = 96;
  config.shards = 4;
  config.threads = threads;
  config.seed = seed;
  config.sample_interval_us = 500'000;  // exercise the series path
  return config;
}

struct Dumps {
  std::string metrics;
  std::string series;
  std::string trace;
  ParallelWorld::Totals totals;
};

Dumps run_world(const ParallelWorldConfig& config, sim::Duration span) {
  ParallelWorld world(config);
  world.trace().set_enabled(true);
  world.run_for(span);
  Dumps d;
  d.metrics = obs::to_json(world.registry());
  d.series = obs::series_to_json(*world.sampler());
  d.trace = obs::to_chrome_trace(world.trace());
  d.totals = world.totals();
  return d;
}

TEST(ParallelWorld, LockstepDumpsAreByteIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : {3ULL, 11ULL}) {
    const Dumps reference = run_world(small_world(seed, 1), sim::seconds(20.0));
    ASSERT_GT(reference.totals.scans, 0u);
    ASSERT_GT(reference.totals.pings_sent, 0u);
    for (const unsigned threads : {2u, 4u}) {
      const Dumps candidate =
          run_world(small_world(seed, threads), sim::seconds(20.0));
      EXPECT_EQ(candidate.metrics, reference.metrics)
          << "metrics diverged: seed " << seed << " threads " << threads;
      EXPECT_EQ(candidate.series, reference.series)
          << "series diverged: seed " << seed << " threads " << threads;
      EXPECT_EQ(candidate.trace, reference.trace)
          << "trace diverged: seed " << seed << " threads " << threads;
    }
  }
}

TEST(ParallelWorld, DifferentSeedsDiverge) {
  const Dumps a = run_world(small_world(3, 1), sim::seconds(10.0));
  const Dumps b = run_world(small_world(4, 1), sim::seconds(10.0));
  EXPECT_NE(a.metrics, b.metrics);
}

TEST(ParallelWorld, CountersObeyConservationLaws) {
  ParallelWorldConfig config = small_world(5, 2);
  ParallelWorld world(config);
  world.run_for(sim::seconds(30.0));
  const ParallelWorld::Totals t = world.totals();
  // Every ping is either received, lost in flight, dropped by an outage,
  // or still in flight at the end (bounded by pending queue size).
  EXPECT_GT(t.scans, 0u);
  EXPECT_GT(t.pings_sent, 0u);
  EXPECT_LE(t.pings_received + t.pings_lost, t.pings_sent);
  EXPECT_LE(t.ops_completed + t.ops_dropped, t.ops_started);
  EXPECT_GT(t.discoveries, 0u);
  // 96 mobile devices over 30s must cross strip edges.
  EXPECT_GT(t.migrations, 0u);
  EXPECT_GT(t.cross_sent, 0u);
  // In-window radio latency >= lookahead, so only migration forwards may
  // clamp.
  EXPECT_LE(t.cross_clamped, t.forwards);
}

TEST(ParallelWorld, OwnersMatchStrips) {
  ParallelWorldConfig config = small_world(9, 2);
  ParallelWorld world(config);
  world.run_for(sim::seconds(10.0));
  // After a run, every device's owner must still be a valid shard.
  for (std::uint32_t d = 0; d < config.devices; ++d) {
    EXPECT_LT(world.owner(d), config.shards);
  }
}

TEST(ParallelWorld, ShardMetricsArePublished) {
  ParallelWorldConfig config = small_world(13, 2);
  ParallelWorld world(config);
  world.run_for(sim::seconds(10.0));
  std::uint64_t shard_events = 0;
  for (unsigned s = 0; s < config.shards; ++s) {
    const auto* counter = world.registry().find_counter(
        "sim.shard." + std::to_string(s) + ".events");
    ASSERT_NE(counter, nullptr);
    shard_events += counter->value();
  }
  EXPECT_EQ(shard_events, world.totals().events);
  const auto* cancelled =
      world.registry().find_gauge("sim.queue.cancelled_live");
  ASSERT_NE(cancelled, nullptr);
  // Wall-clock stall gauges stay out of deterministic dumps by default.
  EXPECT_EQ(world.registry().find_gauge("sim.shard.lookahead_stalls_us"),
            nullptr);
}

TEST(ParallelWorld, WallStatsAreOptIn) {
  ParallelWorldConfig config = small_world(13, 2);
  config.publish_wall_stats = true;
  ParallelWorld world(config);
  world.run_for(sim::seconds(2.0));
  EXPECT_NE(world.registry().find_gauge("sim.shard.lookahead_stalls_us"),
            nullptr);
}

}  // namespace
}  // namespace ph::net
