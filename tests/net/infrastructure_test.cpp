// WLAN infrastructure mode (thesis §2.4.2): stations reach each other
// through access points, with longer effective range than ad-hoc mode.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::net {
namespace {

class InfrastructureTest : public ::testing::Test {
 protected:
  InfrastructureTest() : medium_(simulator_, sim::Rng(95)) {
    profile_ = wlan_80211b_infrastructure();
    profile_.frame_loss = 0.0;
  }

  NodeId add_station(const std::string& name, sim::Vec2 pos) {
    NodeId id = medium_.add_node(
        name, std::make_unique<sim::StaticMobility>(pos));
    medium_.add_adapter(id, profile_);
    return id;
  }

  sim::Simulator simulator_;
  Medium medium_;
  TechProfile profile_;
};

TEST_F(InfrastructureTest, NoApMeansNoReachability) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {5, 0});  // trivially close, but no AP
  EXPECT_FALSE(medium_.reachable(a, b, profile_));
  EXPECT_DOUBLE_EQ(medium_.signal(a, b, profile_), 0.0);
}

TEST_F(InfrastructureTest, CommonApConnectsDistantStations) {
  // 150 m apart: far beyond the 100 m ad-hoc range, but both 75 m from
  // the AP — "communication range is longer" in infrastructure mode.
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {150, 0});
  medium_.add_access_point("ap", {75, 0}, 100.0);
  EXPECT_TRUE(medium_.reachable(a, b, profile_));
  // The same geometry in ad-hoc mode is out of range.
  TechProfile adhoc = wlan_80211b();
  NodeId c = medium_.add_node(
      "c", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 10}));
  NodeId d = medium_.add_node(
      "d", std::make_unique<sim::StaticMobility>(sim::Vec2{150, 10}));
  medium_.add_adapter(c, adhoc);
  medium_.add_adapter(d, adhoc);
  EXPECT_FALSE(medium_.reachable(c, d, adhoc));
}

TEST_F(InfrastructureTest, StationOutsideTheCellUnreachable) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {250, 0});  // 150 m from the AP
  medium_.add_access_point("ap", {100, 0}, 100.0);
  EXPECT_TRUE(medium_.signal(a, b, profile_) == 0.0);
}

TEST_F(InfrastructureTest, SignalIsTheWeakestLeg) {
  NodeId a = add_station("a", {90, 0});   // 10 m from AP: strong uplink
  NodeId b = add_station("b", {180, 0});  // 80 m from AP: weak downlink
  medium_.add_access_point("ap", {100, 0}, 100.0);
  const double signal = medium_.signal(a, b, profile_);
  EXPECT_GT(signal, 0.0);
  // min(up, down) = the 80 m leg's falloff = 1 - 0.64.
  EXPECT_NEAR(signal, 0.36, 1e-9);
}

TEST_F(InfrastructureTest, BestOfMultipleAps) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {60, 0});
  medium_.add_access_point("far-ap", {30, 95}, 100.0);   // weak for both
  medium_.add_access_point("near-ap", {30, 0}, 100.0);   // strong for both
  const double signal = medium_.signal(a, b, profile_);
  EXPECT_GT(signal, 0.9);  // the near AP's legs are each 30 m / 100 m
}

TEST_F(InfrastructureTest, ApsBridgeOverTheWiredLan) {
  // Two separate cells, no common AP: the distribution system still
  // connects the stations (§2.4.2 "inter-networking with wired LAN").
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {300, 0});
  medium_.add_access_point("west", {20, 0}, 100.0);
  medium_.add_access_point("east", {280, 0}, 100.0);
  EXPECT_TRUE(medium_.reachable(a, b, profile_));
  // Kill the east cell: b loses coverage, the path dies.
  // (west alone cannot reach b at 280 m.)
  for (NodeId ap = 1; ap <= medium_.node_count(); ++ap) {
    if (medium_.node_name(ap) == "east") {
      medium_.set_access_point_active(ap, false);
    }
  }
  EXPECT_FALSE(medium_.reachable(a, b, profile_));
}

TEST_F(InfrastructureTest, DataFlowsThroughTheAp) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {150, 0});
  medium_.add_access_point("ap", {75, 0}, 100.0);
  Adapter* radio_a = medium_.adapter(a, Technology::wlan);
  Adapter* radio_b = medium_.adapter(b, Technology::wlan);
  std::string received;
  radio_b->bind(7, [&](NodeId, BytesView data) { received = to_text(data); });
  radio_a->send_datagram(b, 7, to_bytes("via the AP"));
  simulator_.run_for(sim::seconds(1));
  EXPECT_EQ(received, "via the AP");
}

TEST_F(InfrastructureTest, ApFailureBreaksLinksImmediately) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {150, 0});
  NodeId ap = medium_.add_access_point("ap", {75, 0}, 100.0);
  Adapter* radio_a = medium_.adapter(a, Technology::wlan);
  Adapter* radio_b = medium_.adapter(b, Technology::wlan);
  Link client;
  std::shared_ptr<Link> server;
  radio_b->listen(5, [&](Link link) {
    server = std::make_shared<Link>(link);
  });
  radio_a->connect(b, 5, [&](Result<Link> link) {
    ASSERT_TRUE(link.ok());
    client = *link;
  });
  simulator_.run_for(sim::seconds(1));
  ASSERT_TRUE(client.open());
  bool broke = false;
  client.on_break([&] { broke = true; });
  medium_.set_access_point_active(ap, false);
  EXPECT_TRUE(broke);
  EXPECT_FALSE(client.open());
  // Bringing the AP back restores reachability for new connections.
  medium_.set_access_point_active(ap, true);
  EXPECT_TRUE(medium_.reachable(a, b, profile_));
}

TEST_F(InfrastructureTest, SecondApKeepsLinkAliveWhenFirstDies) {
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {60, 0});
  NodeId ap1 = medium_.add_access_point("ap1", {30, 0}, 100.0);
  medium_.add_access_point("ap2", {30, 10}, 100.0);
  Adapter* radio_a = medium_.adapter(a, Technology::wlan);
  Adapter* radio_b = medium_.adapter(b, Technology::wlan);
  radio_b->listen(5, [](Link) {});
  Link client;
  radio_a->connect(b, 5, [&](Result<Link> link) { client = *link; });
  simulator_.run_for(sim::seconds(1));
  ASSERT_TRUE(client.open());
  medium_.set_access_point_active(ap1, false);
  EXPECT_TRUE(client.open());  // ap2 still covers both stations
}

TEST_F(InfrastructureTest, RelayAddsLatency) {
  // Same payload, same distance: infrastructure delivery is ap_relay
  // slower than ad-hoc.
  NodeId a = add_station("a", {0, 0});
  NodeId b = add_station("b", {50, 0});
  medium_.add_access_point("ap", {25, 0}, 100.0);
  Adapter* radio_a = medium_.adapter(a, Technology::wlan);
  Adapter* radio_b = medium_.adapter(b, Technology::wlan);
  sim::Time infra_at = 0;
  radio_b->bind(7, [&](NodeId, BytesView) { infra_at = simulator_.now(); });
  radio_a->send_datagram(b, 7, Bytes(100, 1));
  simulator_.run_for(sim::seconds(1));

  TechProfile adhoc = wlan_80211b();
  adhoc.frame_loss = 0.0;
  NodeId c = medium_.add_node(
      "c", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 50}));
  NodeId d = medium_.add_node(
      "d", std::make_unique<sim::StaticMobility>(sim::Vec2{50, 50}));
  Adapter& radio_c = medium_.add_adapter(c, adhoc);
  Adapter& radio_d = medium_.add_adapter(d, adhoc);
  sim::Time adhoc_sent = simulator_.now();
  sim::Time adhoc_at = 0;
  radio_d.bind(7, [&](NodeId, BytesView) { adhoc_at = simulator_.now(); });
  radio_c.send_datagram(d, 7, Bytes(100, 1));
  simulator_.run_for(sim::seconds(1));

  ASSERT_GT(infra_at, 0u);
  ASSERT_GT(adhoc_at, 0u);
  EXPECT_EQ(infra_at - 0, (adhoc_at - adhoc_sent) + profile_.ap_relay);
}

}  // namespace
}  // namespace ph::net
