// GPRS-specific behaviour: operator-gateway routing and its latency.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"

namespace ph::net {
namespace {

TechProfile lossless_gprs() {
  TechProfile p = gprs();
  p.frame_loss = 0.0;
  return p;
}

class GprsTest : public ::testing::Test {
 protected:
  GprsTest() : medium_(simulator_, sim::Rng(70)) {
    a_ = medium_.add_node("a", std::make_unique<sim::StaticMobility>(
                                   sim::Vec2{0, 0}));
    b_ = medium_.add_node("b", std::make_unique<sim::StaticMobility>(
                                   sim::Vec2{50'000, 0}));  // 50 km away
    radio_a_ = &medium_.add_adapter(a_, lossless_gprs());
    radio_b_ = &medium_.add_adapter(b_, lossless_gprs());
  }

  sim::Simulator simulator_;
  Medium medium_;
  NodeId a_ = 0, b_ = 0;
  Adapter* radio_a_ = nullptr;
  Adapter* radio_b_ = nullptr;
};

TEST_F(GprsTest, DatagramCrossesAnyDistance) {
  bool received = false;
  radio_b_->bind(7, [&](NodeId, BytesView) { received = true; });
  radio_a_->send_datagram(b_, 7, to_bytes("hello over the cellular network"));
  simulator_.run_until(sim::seconds(5));
  EXPECT_TRUE(received);
}

TEST_F(GprsTest, DeliveryIncludesGatewayLatency) {
  // One-way datagram time = base latency + 2 gateway hops + serialization.
  const TechProfile p = lossless_gprs();
  sim::Time delivered_at = 0;
  radio_b_->bind(7, [&](NodeId, BytesView) { delivered_at = simulator_.now(); });
  const Bytes payload(100, 1);
  const sim::Time sent_at = simulator_.now();
  radio_a_->send_datagram(b_, 7, payload);
  simulator_.run_until(sim::seconds(5));
  ASSERT_GT(delivered_at, 0u);
  const sim::Duration expected = p.base_latency + 2 * p.gateway_latency +
                                 sim::seconds(100.0 * 8 / p.bandwidth_bps);
  EXPECT_EQ(delivered_at - sent_at, expected);
}

TEST_F(GprsTest, LinkRoundTripIsSlow) {
  // A small echo over GPRS costs > 1.6 s — the latency floor behind the
  // slow SNS baseline and the thesis' "GPRS is very expensive" remark.
  Link client;
  std::shared_ptr<Link> server;
  radio_b_->listen(5, [&](Link link) {
    server = std::make_shared<Link>(link);
    server->on_receive([&](BytesView data) { server->send(data); });
  });
  radio_a_->connect(b_, 5, [&](Result<Link> link) {
    ASSERT_TRUE(link.ok());
    client = *link;
  });
  simulator_.run_until(sim::seconds(3));
  ASSERT_TRUE(client.valid());
  sim::Time echoed_at = 0;
  client.on_receive([&](BytesView) { echoed_at = simulator_.now(); });
  const sim::Time sent_at = simulator_.now();
  client.send(to_bytes("ping"));
  simulator_.run_until(simulator_.now() + sim::seconds(10));
  ASSERT_GT(echoed_at, 0u);
  const double rtt = sim::to_seconds(echoed_at - sent_at);
  EXPECT_GT(rtt, 1.5);
  EXPECT_LT(rtt, 2.5);
}

TEST_F(GprsTest, PoweredOffGprsDeviceUnreachableDespiteGateway) {
  radio_b_->set_powered(false);
  EXPECT_FALSE(medium_.reachable(a_, b_, lossless_gprs()));
  bool connected_or_failed = false;
  bool ok = false;
  radio_a_->connect(b_, 5, [&](Result<Link> link) {
    connected_or_failed = true;
    ok = link.ok();
  });
  simulator_.run_until(sim::seconds(3));
  EXPECT_TRUE(connected_or_failed);
  EXPECT_FALSE(ok);
}

TEST_F(GprsTest, SignalIsBinaryViaGateway) {
  // Cellular coverage is modelled as ubiquitous: full signal while both
  // radios are powered, zero otherwise — no distance falloff.
  EXPECT_DOUBLE_EQ(medium_.signal(a_, b_, lossless_gprs()), 1.0);
  radio_b_->set_powered(false);
  EXPECT_DOUBLE_EQ(medium_.signal(a_, b_, lossless_gprs()), 0.0);
}

}  // namespace
}  // namespace ph::net
