// Property tests for the radio medium: FIFO link ordering under random
// message sizes, signal monotonicity, and traffic accounting.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::net {
namespace {

class LinkFifoPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkFifoPropertyTest, RandomSizedMessagesStayOrdered) {
  // Bandwidth serialization must never let a small late message overtake a
  // large earlier one, regardless of sizes and retransmissions.
  const std::uint64_t seed = GetParam();
  sim::Simulator simulator;
  Medium medium(simulator, sim::Rng(seed));
  sim::Rng sizes(seed * 31 + 7);

  TechProfile bt = bluetooth_2_0();
  bt.frame_loss = 0.1;  // plenty of retransmission jitter
  NodeId a = medium.add_node(
      "a", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  NodeId b = medium.add_node(
      "b", std::make_unique<sim::StaticMobility>(sim::Vec2{2, 0}));
  Adapter& tx = medium.add_adapter(a, bt);
  Adapter& rx = medium.add_adapter(b, bt);

  std::vector<std::uint32_t> received;
  rx.listen(5, [&](Link link) {
    auto held = std::make_shared<Link>(link);
    held->on_receive([&received, held](BytesView data) {
      // First 4 bytes carry the sequence number.
      std::uint32_t seq = 0;
      for (int i = 0; i < 4; ++i) seq |= std::uint32_t(data[i]) << (8 * i);
      received.push_back(seq);
    });
  });
  Link sender;
  tx.connect(b, 5, [&](Result<Link> link) { sender = *link; });
  simulator.run_for(sim::seconds(2));
  ASSERT_TRUE(sender.valid());

  constexpr std::uint32_t kMessages = 100;
  for (std::uint32_t seq = 0; seq < kMessages; ++seq) {
    Bytes payload(4 + sizes.uniform_int(0, 20'000));
    for (int i = 0; i < 4; ++i) {
      payload[i] = static_cast<std::uint8_t>(seq >> (8 * i));
    }
    sender.send(payload);
  }
  simulator.run_for(sim::minutes(2));
  ASSERT_EQ(received.size(), kMessages) << "seed " << seed;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    ASSERT_EQ(received[i], i) << "seed " << seed << ": FIFO violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkFifoPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(SignalPropertyTest, MonotonicallyDecreasingWithDistance) {
  sim::Simulator simulator;
  Medium medium(simulator, sim::Rng(1));
  const TechProfile bt = bluetooth_2_0();
  NodeId a = medium.add_node(
      "a", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  NodeId b = medium.add_node(
      "b", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  medium.add_adapter(a, bt);
  medium.add_adapter(b, bt);
  double previous = 1.1;
  for (double x = 0.0; x <= 12.0; x += 0.25) {
    medium.set_mobility(b, std::make_unique<sim::StaticMobility>(sim::Vec2{x, 0}));
    const double signal = medium.signal(a, b, bt);
    EXPECT_LE(signal, previous) << "at distance " << x;
    EXPECT_GE(signal, 0.0);
    EXPECT_LE(signal, 1.0);
    previous = signal;
  }
  EXPECT_DOUBLE_EQ(previous, 0.0);  // beyond range
}

TEST(TrafficAccountingTest, PerTechnologyBytesAreSeparated) {
  sim::Simulator simulator;
  Medium medium(simulator, sim::Rng(2));
  TechProfile bt = bluetooth_2_0();
  bt.frame_loss = 0.0;
  TechProfile cellular = gprs();
  cellular.frame_loss = 0.0;
  NodeId a = medium.add_node(
      "a", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  NodeId b = medium.add_node(
      "b", std::make_unique<sim::StaticMobility>(sim::Vec2{2, 0}));
  Adapter& bt_a = medium.add_adapter(a, bt);
  medium.add_adapter(b, bt);
  Adapter& gprs_a = medium.add_adapter(a, cellular);
  Adapter& gprs_b = medium.add_adapter(b, cellular);
  gprs_b.bind(9, [](NodeId, BytesView) {});

  bt_a.send_datagram(b, 9, Bytes(100, 1));
  gprs_a.send_datagram(b, 9, Bytes(250, 1));
  gprs_a.send_datagram(b, 9, Bytes(250, 1));
  simulator.run_for(sim::seconds(5));

  EXPECT_EQ(medium.traffic(Technology::bluetooth).datagram_bytes, 100u);
  EXPECT_EQ(medium.traffic(Technology::gprs).datagram_bytes, 500u);
  EXPECT_EQ(medium.traffic(Technology::gprs).messages, 2u);
  EXPECT_EQ(medium.traffic(Technology::wlan).total_bytes(), 0u);
}

TEST(TrafficAccountingTest, LinkBytesCounted) {
  sim::Simulator simulator;
  Medium medium(simulator, sim::Rng(3));
  TechProfile bt = bluetooth_2_0();
  bt.frame_loss = 0.0;
  NodeId a = medium.add_node(
      "a", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  NodeId b = medium.add_node(
      "b", std::make_unique<sim::StaticMobility>(sim::Vec2{2, 0}));
  Adapter& tx = medium.add_adapter(a, bt);
  Adapter& rx = medium.add_adapter(b, bt);
  rx.listen(5, [](Link) {});
  Link sender;
  tx.connect(b, 5, [&](Result<Link> link) { sender = *link; });
  simulator.run_for(sim::seconds(2));
  sender.send(Bytes(12'345, 1));
  simulator.run_for(sim::seconds(2));
  EXPECT_EQ(medium.traffic(Technology::bluetooth).link_bytes, 12'345u);
}

}  // namespace
}  // namespace ph::net
