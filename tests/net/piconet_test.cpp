// Piconet capacity (thesis §2.4.1): a Bluetooth radio carries at most 7
// active links; further connections are refused until one closes.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"

namespace ph::net {
namespace {

TechProfile capped_bt() {
  TechProfile p = bluetooth_2_0();
  p.frame_loss = 0.0;
  return p;
}

class PiconetTest : public ::testing::Test {
 protected:
  PiconetTest() : medium_(simulator_, sim::Rng(90)) {
    hub_ = medium_.add_node("hub", std::make_unique<sim::StaticMobility>(
                                       sim::Vec2{0, 0}));
    hub_radio_ = &medium_.add_adapter(hub_, capped_bt());
    hub_radio_->listen(5, [this](Link link) {
      accepted_.push_back(std::make_shared<Link>(link));
    });
  }

  NodeId add_spoke(int index) {
    NodeId id = medium_.add_node(
        "spoke" + std::to_string(index),
        std::make_unique<sim::StaticMobility>(
            sim::Vec2{2.0 + 0.1 * index, 0}));
    medium_.add_adapter(id, capped_bt());
    return id;
  }

  /// Connects spoke -> hub; returns the link (invalid on refusal).
  Result<Link> connect_from(NodeId spoke) {
    Result<Link> outcome = Error{Errc::timeout, "never completed"};
    medium_.adapter(spoke, Technology::bluetooth)
        ->connect(hub_, 5, [&](Result<Link> link) { outcome = std::move(link); });
    simulator_.run_for(sim::seconds(2));
    return outcome;
  }

  sim::Simulator simulator_;
  Medium medium_;
  NodeId hub_ = 0;
  Adapter* hub_radio_ = nullptr;
  std::vector<std::shared_ptr<Link>> accepted_;
};

TEST_F(PiconetTest, SevenLinksFitTheEighthIsRefused) {
  std::vector<Link> links;
  for (int i = 0; i < 7; ++i) {
    auto link = connect_from(add_spoke(i));
    ASSERT_TRUE(link.ok()) << "link " << i << ": " << link.error().to_string();
    links.push_back(*link);
  }
  EXPECT_EQ(medium_.open_link_count(hub_, Technology::bluetooth), 7u);
  auto eighth = connect_from(add_spoke(7));
  ASSERT_FALSE(eighth.ok());
  EXPECT_EQ(eighth.error().code, Errc::radio_busy);
  EXPECT_NE(eighth.error().message.find("capacity"), std::string::npos);
}

TEST_F(PiconetTest, ClosingALinkFreesCapacity) {
  std::vector<Link> links;
  for (int i = 0; i < 7; ++i) {
    links.push_back(*connect_from(add_spoke(i)));
  }
  links.front().close();
  simulator_.run_for(sim::seconds(1));
  EXPECT_EQ(medium_.open_link_count(hub_, Technology::bluetooth), 6u);
  EXPECT_TRUE(connect_from(add_spoke(7)).ok());
}

TEST_F(PiconetTest, BreakageAlsoFreesCapacity) {
  std::vector<NodeId> spokes;
  std::vector<Link> links;
  for (int i = 0; i < 7; ++i) {
    spokes.push_back(add_spoke(i));
    links.push_back(*connect_from(spokes.back()));
  }
  // Spoke 0's radio dies -> its link breaks -> capacity frees.
  medium_.adapter(spokes[0], Technology::bluetooth)->set_powered(false);
  simulator_.run_for(sim::seconds(1));
  EXPECT_TRUE(connect_from(add_spoke(7)).ok());
}

TEST_F(PiconetTest, WlanHasNoLinkCap) {
  sim::Simulator simulator;
  Medium medium(simulator, sim::Rng(91));
  TechProfile wlan = wlan_80211b();
  wlan.frame_loss = 0.0;
  NodeId hub = medium.add_node(
      "hub", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  Adapter& hub_radio = medium.add_adapter(hub, wlan);
  std::vector<std::shared_ptr<Link>> accepted;
  hub_radio.listen(5, [&](Link link) {
    accepted.push_back(std::make_shared<Link>(link));
  });
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    NodeId spoke = medium.add_node(
        "s" + std::to_string(i),
        std::make_unique<sim::StaticMobility>(sim::Vec2{5, 0}));
    medium.add_adapter(spoke, wlan).connect(hub, 5, [&](Result<Link> link) {
      if (link.ok()) ++successes;
    });
  }
  simulator.run_for(sim::seconds(2));
  EXPECT_EQ(successes, 20);
}

}  // namespace
}  // namespace ph::net
