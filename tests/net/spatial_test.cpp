#include "net/spatial.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace ph::net {
namespace {

std::vector<std::uint32_t> query(const SpatialGrid& grid, sim::Vec2 center,
                                 double radius) {
  std::vector<std::uint32_t> out;
  grid.query(center, radius, out);
  return out;
}

/// The exact predicate the grid must agree with: strict `< radius`,
/// mirroring the signal falloff's "0 at/beyond range".
std::vector<std::uint32_t> oracle(const std::vector<sim::Vec2>& positions,
                                  sim::Vec2 center, double radius) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    if (sim::distance(positions[i], center) < radius) out.push_back(i);
  }
  return out;
}

TEST(SpatialGridTest, ReturnsExactlyTheEntriesInsideTheDisk) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{0, 0}, {3, 0}, {0, 4}, {20, 20}, {7, 1}});
  EXPECT_EQ(query(grid, {0, 0}, 8.0),
            (std::vector<std::uint32_t>{0, 1, 2, 4}));
}

TEST(SpatialGridTest, BoundaryIsExclusive) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{10, 0}});
  // Exactly at radius: falloff would be 0, so the entry must not appear.
  EXPECT_TRUE(query(grid, {0, 0}, 10.0).empty());
  EXPECT_EQ(query(grid, {0, 0}, 10.0 + 1e-9).size(), 1u);
}

TEST(SpatialGridTest, NonPositiveRadiusYieldsNothing) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{0, 0}, {1, 1}});
  EXPECT_TRUE(query(grid, {0, 0}, 0.0).empty());
  EXPECT_TRUE(query(grid, {0, 0}, -3.0).empty());
}

TEST(SpatialGridTest, HandlesNegativeCoordinates) {
  // Floor-division cell mapping: positions straddling the origin land in
  // distinct cells, and queries across the origin still find everything.
  SpatialGrid grid;
  grid.rebuild(4.0, {{-1, -1}, {-7, 3}, {2, -5}, {-30, -30}});
  EXPECT_EQ(query(grid, {-2, -2}, 12.0),
            (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(SpatialGridTest, OutputIsSortedAcrossCells) {
  // Entries deliberately inserted so that cell walk order differs from
  // index order; callers rely on ascending indices for deterministic RNG
  // consumption.
  SpatialGrid grid;
  grid.rebuild(2.0, {{9, 9}, {0, 0}, {5, 5}, {9, 0}, {0, 9}});
  const auto got = query(grid, {5, 5}, 50.0);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.size(), 5u);
}

TEST(SpatialGridTest, QueryAppendsWithoutClearing) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{0, 0}});
  std::vector<std::uint32_t> out = {99};
  grid.query({0, 0}, 1.0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{99, 0}));
}

TEST(SpatialGridTest, RebuildReplacesContents) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{0, 0}, {1, 0}});
  EXPECT_EQ(grid.size(), 2u);
  grid.rebuild(5.0, {{100, 100}});
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_TRUE(query(grid, {0, 0}, 10.0).empty());
  EXPECT_EQ(query(grid, {100, 100}, 1.0).size(), 1u);
}

TEST(SpatialGridTest, StatsCountCellsAndCandidates) {
  SpatialGrid grid;
  grid.rebuild(5.0, {{0, 0}, {3, 3}, {40, 40}});
  std::vector<std::uint32_t> out;
  const SpatialGrid::QueryStats stats = grid.query({1, 1}, 6.0, out);
  // Bounding box [-5,7]² at cell edge 5 → cells [-1..1]² = 9 probes.
  EXPECT_EQ(stats.cells_visited, 9u);
  EXPECT_EQ(stats.candidates, out.size());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
}

TEST(SpatialGridTest, AgreesWithOracleOnRandomClouds) {
  sim::Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    std::vector<sim::Vec2> cloud;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 80));
    for (int i = 0; i < n; ++i) {
      cloud.push_back({rng.uniform(-50.0, 150.0), rng.uniform(-50.0, 150.0)});
    }
    SpatialGrid grid;
    grid.rebuild(rng.uniform(1.0, 20.0), cloud);
    for (int q = 0; q < 25; ++q) {
      const sim::Vec2 center{rng.uniform(-60.0, 160.0),
                             rng.uniform(-60.0, 160.0)};
      const double radius = rng.uniform(0.0, 40.0);
      EXPECT_EQ(query(grid, center, radius), oracle(cloud, center, radius))
          << "round " << round << " query " << q;
    }
  }
}

}  // namespace
}  // namespace ph::net
