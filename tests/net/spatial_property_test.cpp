// Property: the proximity fast path (spatial grid + position cache +
// signal memo) is observationally identical to the brute-force reference.
//
// Two worlds are built from the same seeds — one with every MediumConfig
// acceleration on, one with everything off — and stepped in lockstep
// through a scenario exercising all the machinery's hazard cases: random
// waypoint mobility (stale grids), WLAN infrastructure with access points
// (non-direct signal path), GPRS gateway adapters (range-free path),
// powered-off radios (query-time power filtering), a fault-plane signal
// ramp (attenuation must never un-prune), and mid-run power / AP / mobility
// flips (memo invalidation). At every step every node's nodes_in_range and
// every pair's exact signal value must match EXPECT_EQ — bit-identical,
// not approximately equal.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/plane.hpp"
#include "net/medium.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"

namespace ph::net {
namespace {

constexpr int kCrowd = 40;
constexpr double kField = 80.0;

struct World {
  sim::Simulator simulator;
  Medium medium;
  fault::FaultPlane plane;
  std::vector<NodeId> nodes;
  NodeId ap0 = kInvalidNode;
  NodeId ap1 = kInvalidNode;

  static MediumConfig config_for(bool fast) {
    MediumConfig config;
    config.use_spatial_index = fast;
    config.use_position_cache = fast;
    config.use_signal_cache = fast;
    return config;
  }

  explicit World(bool fast)
      : medium(simulator, sim::Rng(42), config_for(fast)),
        plane(medium, sim::Rng(5)) {
    sim::Rng walkers(77);
    for (int i = 0; i < kCrowd; ++i) {
      sim::RandomWaypoint::Config walk;
      walk.area_min = {0, 0};
      walk.area_max = {kField, kField};
      const NodeId id = medium.add_node(
          "n" + std::to_string(i),
          std::make_unique<sim::RandomWaypoint>(walk, walkers.fork()));
      nodes.push_back(id);
      Adapter& bt = medium.add_adapter(id, bluetooth_2_0());
      if (i % 7 == 3) bt.set_powered(false);
      if (i % 3 == 0) {
        medium.add_adapter(id, wlan_80211b_infrastructure());
      }
      if (i % 5 == 0) medium.add_adapter(id, gprs());
    }
    ap0 = medium.add_access_point("ap0", {20, 20}, 30.0);
    ap1 = medium.add_access_point("ap1", {60, 60}, 30.0);
    fault::SignalRamp ramp;
    ramp.node = nodes[3];
    ramp.start = sim::seconds(2);
    ramp.ramp = sim::seconds(3);
    ramp.hold = sim::seconds(4);
    ramp.recover = sim::seconds(3);
    ramp.floor = 0.1;
    plane.begin_signal_ramp(ramp);
  }
};

class SpatialPropertyTest : public ::testing::Test {
 protected:
  SpatialPropertyTest() : fast_(true), brute_(false) {}

  /// Compares every node's neighbourhood and every pair's signal across
  /// the two worlds, for one profile. Returns the number of range queries
  /// issued (per world).
  std::size_t compare_profile(const TechProfile& profile) {
    for (NodeId node : fast_.nodes) {
      EXPECT_EQ(fast_.medium.nodes_in_range(node, profile),
                brute_.medium.nodes_in_range(node, profile))
          << "node " << node << " tech " << profile.name << " at t="
          << fast_.simulator.now();
    }
    for (NodeId a : fast_.nodes) {
      for (NodeId b : fast_.nodes) {
        EXPECT_EQ(fast_.medium.signal(a, b, profile),
                  brute_.medium.signal(a, b, profile))
            << "pair " << a << "->" << b << " tech " << profile.name
            << " at t=" << fast_.simulator.now();
      }
    }
    return fast_.nodes.size();
  }

  World fast_;
  World brute_;
};

TEST_F(SpatialPropertyTest, GridEquivalentToBruteForceThroughoutScenario) {
  const TechProfile bt = bluetooth_2_0();
  const TechProfile infra = wlan_80211b_infrastructure();
  const TechProfile cell = gprs();
  std::size_t range_queries = 0;

  for (int step = 0; step < 30; ++step) {
    const sim::Time next = sim::milliseconds(500) * (step + 1);
    fast_.simulator.run_until(next);
    brute_.simulator.run_until(next);
    ASSERT_EQ(fast_.simulator.now(), brute_.simulator.now());

    // Mid-run world mutations, applied identically to both sides; each
    // one is a memo/grid invalidation hazard.
    if (step == 10) {
      for (World* world : {&fast_, &brute_}) {
        world->medium.adapter(world->nodes[2], Technology::bluetooth)
            ->set_powered(false);
        world->medium.adapter(world->nodes[3], Technology::bluetooth)
            ->set_powered(true);  // was off via the i%7 rule
      }
    }
    if (step == 15) {
      fast_.medium.set_access_point_active(fast_.ap1, false);
      brute_.medium.set_access_point_active(brute_.ap1, false);
    }
    if (step == 20) {
      for (World* world : {&fast_, &brute_}) {
        world->medium.set_mobility(
            world->nodes[5],
            std::make_unique<sim::StaticMobility>(sim::Vec2{10, 10}));
      }
    }
    if (step == 25) {
      fast_.medium.set_access_point_active(fast_.ap1, true);
      brute_.medium.set_access_point_active(brute_.ap1, true);
    }

    range_queries += compare_profile(bt);
    range_queries += compare_profile(infra);
    range_queries += compare_profile(cell);
  }

  // The acceptance bar: a meaningful sample size, not a handful of spots.
  EXPECT_GE(range_queries, 1000u);

  // The equivalence must have been between the two paths, not between two
  // brute-force worlds: the fast world must actually have used the grid
  // and both caches, and the reference world must not have.
  const obs::Snapshot fast_stats = fast_.medium.stats();
  EXPECT_GT(fast_stats.counter("spatial.queries"), 0u);
  EXPECT_GT(fast_stats.counter("spatial.pairs_pruned"), 0u);
  EXPECT_GT(fast_stats.counter("position_cache.hits"), 0u);
  EXPECT_GT(fast_stats.counter("signal_cache.hits"), 0u);
  const obs::Snapshot brute_stats = brute_.medium.stats();
  EXPECT_EQ(brute_stats.counter("spatial.queries"), 0u);
  EXPECT_EQ(brute_stats.counter("position_cache.hits"), 0u);
  EXPECT_EQ(brute_stats.counter("signal_cache.hits"), 0u);
}

}  // namespace
}  // namespace ph::net
