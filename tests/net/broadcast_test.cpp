// Broadcast datagrams (thesis §4.2.3: the WLANPlugin "uses broadcast-based
// service discovery").
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"

namespace ph::net {
namespace {

TechProfile lossless_wlan() {
  TechProfile p = wlan_80211b();
  p.frame_loss = 0.0;
  return p;
}

class BroadcastTest : public ::testing::Test {
 protected:
  BroadcastTest() : medium_(simulator_, sim::Rng(96)) {}

  NodeId add_station(const std::string& name, sim::Vec2 pos,
                     const TechProfile& profile) {
    NodeId id = medium_.add_node(name, std::make_unique<sim::StaticMobility>(pos));
    medium_.add_adapter(id, profile);
    return id;
  }

  sim::Simulator simulator_;
  Medium medium_;
};

TEST_F(BroadcastTest, ReachesEveryInRangeStation) {
  const TechProfile wlan = lossless_wlan();
  NodeId sender = add_station("sender", {0, 0}, wlan);
  std::vector<NodeId> hearers;
  for (int i = 0; i < 4; ++i) {
    NodeId id = add_station("h" + std::to_string(i),
                            {10.0 * (i + 1), 0}, wlan);
    hearers.push_back(id);
  }
  NodeId far = add_station("far", {500, 0}, wlan);
  int heard = 0;
  bool far_heard = false;
  for (NodeId id : hearers) {
    medium_.adapter(id, Technology::wlan)->bind(7, [&](NodeId, BytesView) {
      ++heard;
    });
  }
  medium_.adapter(far, Technology::wlan)->bind(7, [&](NodeId, BytesView) {
    far_heard = true;
  });
  medium_.adapter(sender, Technology::wlan)
      ->broadcast_datagram(7, to_bytes("hello everyone"));
  simulator_.run_for(sim::seconds(1));
  EXPECT_EQ(heard, 4);
  EXPECT_FALSE(far_heard);
}

TEST_F(BroadcastTest, BluetoothCannotBroadcast) {
  TechProfile bt = bluetooth_2_0();
  bt.frame_loss = 0.0;
  NodeId sender = add_station("sender", {0, 0}, bt);
  NodeId hearer = add_station("hearer", {2, 0}, bt);
  bool heard = false;
  medium_.adapter(hearer, Technology::bluetooth)
      ->bind(7, [&](NodeId, BytesView) { heard = true; });
  medium_.adapter(sender, Technology::bluetooth)
      ->broadcast_datagram(7, to_bytes("x"));
  simulator_.run_for(sim::seconds(1));
  EXPECT_FALSE(heard);  // no-op on non-broadcast technologies
}

TEST_F(BroadcastTest, PoweredOffSenderSendsNothing) {
  const TechProfile wlan = lossless_wlan();
  NodeId sender = add_station("sender", {0, 0}, wlan);
  NodeId hearer = add_station("hearer", {10, 0}, wlan);
  bool heard = false;
  medium_.adapter(hearer, Technology::wlan)->bind(7, [&](NodeId, BytesView) {
    heard = true;
  });
  Adapter* radio = medium_.adapter(sender, Technology::wlan);
  radio->set_powered(false);
  radio->broadcast_datagram(7, to_bytes("x"));
  simulator_.run_for(sim::seconds(1));
  EXPECT_FALSE(heard);
}

TEST_F(BroadcastTest, SourceNodeIsReported) {
  const TechProfile wlan = lossless_wlan();
  NodeId sender = add_station("sender", {0, 0}, wlan);
  NodeId hearer = add_station("hearer", {10, 0}, wlan);
  NodeId reported = kInvalidNode;
  medium_.adapter(hearer, Technology::wlan)->bind(7, [&](NodeId src, BytesView) {
    reported = src;
  });
  medium_.adapter(sender, Technology::wlan)->broadcast_datagram(7, to_bytes("x"));
  simulator_.run_for(sim::seconds(1));
  EXPECT_EQ(reported, sender);
}

}  // namespace
}  // namespace ph::net
