// Unit tests for the evaluation harness itself: scenario construction and
// the Table 8 cell plumbing (the shape assertions live in
// tests/integration/table8_scenario_test.cpp).
#include <gtest/gtest.h>

#include "net/medium.hpp"
#include "eval/scenarios.hpp"
#include "eval/table8.hpp"

namespace ph::eval {
namespace {

TEST(ScenarioTest, ComlabRoomMatchesTheThesisTestbed) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(1));
  auto devices = comlab_room(medium, /*autostart=*/false);
  ASSERT_EQ(devices.size(), 3u);  // laptop + two PCs
  EXPECT_EQ(devices[0].member, "tester");
  EXPECT_EQ(devices[1].member, "dave");
  EXPECT_EQ(devices[2].member, "emma");
  for (const ScenarioDevice& device : devices) {
    // Bluetooth-only, logged in, daemon not yet started (autostart=false).
    EXPECT_EQ(device.stack->daemon().plugins().size(), 1u);
    EXPECT_EQ(device.stack->daemon().plugins()[0]->technology(),
              net::Technology::bluetooth);
    EXPECT_FALSE(device.stack->daemon().running());
    EXPECT_TRUE(device.app->logged_in());
  }
  // Everyone shares the Football interest (the Table 8 group).
  for (const ScenarioDevice& device : devices) {
    const auto& interests = device.app->active()->profile().interests;
    EXPECT_NE(std::find(interests.begin(), interests.end(), "Football"),
              interests.end());
  }
  // All mutually within Bluetooth range.
  for (const auto& a : devices) {
    for (const auto& b : devices) {
      if (a.stack->id() == b.stack->id()) continue;
      EXPECT_LT(sim::distance(medium.position(a.stack->id()),
                              medium.position(b.stack->id())),
                10.0);
    }
  }
}

TEST(ScenarioTest, AutostartTrueStartsDaemons) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(2));
  auto devices = comlab_room(medium, /*autostart=*/true);
  for (const ScenarioDevice& device : devices) {
    EXPECT_TRUE(device.stack->daemon().running());
  }
}

TEST(ScenarioTest, BuildSeatsHonoursSpecs) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(3));
  auto devices = build_seats(medium,
                             {{"solo", {5, 7}, {"a", "b", "c"}}},
                             net::wlan_80211b(), true);
  ASSERT_EQ(devices.size(), 1u);
  EXPECT_EQ(devices[0].app->active()->profile().interests.size(), 3u);
  EXPECT_DOUBLE_EQ(medium.position(devices[0].stack->id()).x, 5.0);
  EXPECT_EQ(devices[0].stack->daemon().plugins()[0]->technology(),
            net::Technology::wlan);
}

TEST(Table8CellTest, TotalSumsTheFourTasks) {
  Table8Cell cell;
  cell.search_s = 10;
  cell.join_s = 1;
  cell.member_list_s = 2;
  cell.profile_s = 3.5;
  EXPECT_DOUBLE_EQ(cell.total_s(), 16.5);
}

TEST(Table8CellTest, SnsColumnIsDeterministicPerSeed) {
  const Table8Cell a = run_sns_column(sns::facebook(), sns::nokia_n810(), 9);
  const Table8Cell b = run_sns_column(sns::facebook(), sns::nokia_n810(), 9);
  EXPECT_DOUBLE_EQ(a.total_s(), b.total_s());
  EXPECT_EQ(a.paid_bytes, b.paid_bytes);
}

TEST(Table8CellTest, SnsColumnPaysOnlyCellularBytes) {
  const Table8Cell cell = run_sns_column(sns::hi5(), sns::nokia_n95(), 10);
  EXPECT_GT(cell.paid_bytes, 100'000u);  // heavyweight pages over GPRS
  EXPECT_EQ(cell.free_bytes, 0u);
}

TEST(Table8CellTest, PeerHoodColumnPaysNothing) {
  const Table8Cell cell = run_peerhood_column(11);
  EXPECT_EQ(cell.paid_bytes, 0u);
  EXPECT_GT(cell.free_bytes, 0u);  // Bluetooth control + session traffic
}

}  // namespace
}  // namespace ph::eval
