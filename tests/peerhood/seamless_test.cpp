// Seamless connectivity (thesis Table 3): technology failover and proactive
// handover on weakening links.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

net::TechProfile deterministic_wlan() {
  net::TechProfile p = net::wlan_80211b();
  p.frame_loss = 0.0;
  return p;
}

class SeamlessTest : public ::testing::Test {
 protected:
  SeamlessTest() : medium_(simulator_, sim::Rng(8)) {}

  void make_dual_radio_pair(sim::Vec2 pos_b) {
    StackConfig config;
    config.radios = {deterministic_bt(), deterministic_wlan()};
    config.device_name = "a";
    a_ = std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
        config);
    config.device_name = "b";
    b_ = std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos_b), config);
    ASSERT_TRUE(b_->library()
                    .register_service(
                        "Sink", {},
                        [this](Connection connection) {
                          server_ = std::make_shared<Connection>(
                              std::move(connection));
                          server_->on_message([this](BytesView data) {
                            received_.push_back(to_text(data));
                          });
                        })
                    .ok());
    ASSERT_TRUE(run_until(
        simulator_,
        [&] {
          auto device = a_->daemon().device(b_->id());
          return device.ok() && device->technologies.size() == 2;
        },
        sim::seconds(30)));
  }

  Connection connect(ConnectOptions options) {
    Connection client;
    a_->library().connect(b_->id(), "Sink", options,
                          [&](Result<Connection> connection) {
                            EXPECT_TRUE(connection.ok());
                            if (connection) client = *connection;
                          });
    EXPECT_TRUE(run_until(
        simulator_, [&] { return client.valid(); }, sim::seconds(5)));
    return client;
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::unique_ptr<Stack> a_, b_;
  std::shared_ptr<Connection> server_;
  std::vector<std::string> received_;
};

TEST_F(SeamlessTest, FailsOverToSecondRadioWhenFirstDies) {
  make_dual_radio_pair({3, 0});
  Connection client = connect({});
  // Both in range: the library picks WLAN (stronger signal at 3 m of a
  // 100 m radio). Kill it mid-session.
  ASSERT_EQ(client.current_technology(), net::Technology::wlan);
  client.send(to_bytes("before"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return received_.size() == 1; }, sim::seconds(5)));

  a_->set_radio_powered(net::Technology::wlan, false);
  client.send(to_bytes("after"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return received_.size() == 2; }, sim::seconds(20)));
  EXPECT_EQ(received_, (std::vector<std::string>{"before", "after"}));
  EXPECT_EQ(client.current_technology(), net::Technology::bluetooth);
  EXPECT_GE(client.handover_count(), 1);
  EXPECT_TRUE(client.open());
}

TEST_F(SeamlessTest, InFlightDataRetransmittedAcrossHandover) {
  make_dual_radio_pair({3, 0});
  Connection client = connect({});
  // Queue a burst, then kill the carrying radio before most of it drains.
  for (int i = 0; i < 20; ++i) client.send(to_bytes("m" + std::to_string(i)));
  a_->set_radio_powered(net::Technology::wlan, false);
  ASSERT_TRUE(run_until(
      simulator_, [&] { return received_.size() == 20; }, sim::seconds(30)));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(received_[i], "m" + std::to_string(i));
  }
}

TEST_F(SeamlessTest, ServerToClientDirectionAlsoSurvives) {
  make_dual_radio_pair({3, 0});
  Connection client = connect({});
  std::vector<std::string> at_client;
  client.on_message([&](BytesView data) { at_client.push_back(to_text(data)); });
  // Ensure the server session exists before talking back.
  client.send(to_bytes("wake"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return server_ != nullptr && !received_.empty(); },
      sim::seconds(5)));
  server_->send(to_bytes("s1"));
  a_->set_radio_powered(net::Technology::wlan, false);
  server_->send(to_bytes("s2"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return at_client.size() == 2; }, sim::seconds(30)));
  EXPECT_EQ(at_client, (std::vector<std::string>{"s1", "s2"}));
}

TEST_F(SeamlessTest, ProactiveHandoverOnWeakSignal) {
  // Start BT-only so the session rides Bluetooth, then enable WLAN and
  // weaken Bluetooth below the threshold: the monitor should move the
  // session before the link actually breaks.
  make_dual_radio_pair({3, 0});
  a_->set_radio_powered(net::Technology::wlan, false);
  ConnectOptions options;
  options.monitor_interval = sim::milliseconds(200);
  Connection client = connect(options);
  ASSERT_EQ(client.current_technology(), net::Technology::bluetooth);

  a_->set_radio_powered(net::Technology::wlan, true);
  // b moves to 9.7 m: BT signal ~0.06 (< 0.15 threshold), WLAN ~0.99.
  medium_.set_mobility(b_->id(),
                       std::make_unique<sim::StaticMobility>(sim::Vec2{9.7, 0}));
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return client.current_technology() == net::Technology::wlan &&
               client.handover_count() >= 1;
      },
      sim::seconds(10)));
  EXPECT_TRUE(client.open());
  // And the session still carries data.
  client.send(to_bytes("post-handover"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !received_.empty(); }, sim::seconds(5)));
  EXPECT_EQ(received_.back(), "post-handover");
}

TEST_F(SeamlessTest, ForcedTechnologyNeverFailsOver) {
  make_dual_radio_pair({3, 0});
  ConnectOptions options;
  options.force_technology = net::Technology::bluetooth;
  options.resume_deadline = sim::seconds(3);
  Connection client = connect(options);
  ASSERT_EQ(client.current_technology(), net::Technology::bluetooth);
  bool closed = false;
  client.on_close([&](const Error&) { closed = true; });
  // Kill Bluetooth; WLAN is available but pinned sessions must not take it.
  a_->set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(simulator_, [&] { return closed; }, sim::seconds(10)));
  EXPECT_NE(client.current_technology(), net::Technology::wlan);
}

TEST_F(SeamlessTest, ResumeDeadlineFiresConnectionLostWhenNoRadioReturns) {
  make_dual_radio_pair({3, 0});
  ConnectOptions options;
  options.resume_deadline = sim::seconds(5);
  Connection client = connect(options);
  Error last_error;
  bool closed = false;
  client.on_close([&](const Error& error) {
    closed = true;
    last_error = error;
  });
  // Every radio on b dies and never comes back: the backed-off resume
  // sweeps all fail and the deadline must end the session.
  const sim::Time died_at = simulator_.now();
  b_->set_radio_powered(net::Technology::bluetooth, false);
  b_->set_radio_powered(net::Technology::wlan, false);
  ASSERT_TRUE(run_until(simulator_, [&] { return closed; }, sim::minutes(1)));
  EXPECT_EQ(last_error.code, Errc::connection_lost);
  EXPECT_GE(simulator_.now() - died_at, options.resume_deadline);
  // The deadline, not the retry cadence, bounds how long we linger.
  EXPECT_LE(simulator_.now() - died_at,
            options.resume_deadline + sim::seconds(1));
  EXPECT_FALSE(client.open());
}

TEST_F(SeamlessTest, HandoverPrefersStrongestSignal) {
  make_dual_radio_pair({8, 0});
  // At 8 m: BT signal 1-(0.8)^2 = 0.36, WLAN ~0.994 — initial pick is WLAN.
  Connection client = connect({});
  ASSERT_EQ(client.current_technology(), net::Technology::wlan);
  // Drop WLAN: the only candidate is BT, still in range at 8 m.
  b_->set_radio_powered(net::Technology::wlan, false);
  client.send(to_bytes("x"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !received_.empty(); }, sim::seconds(20)));
  EXPECT_EQ(client.current_technology(), net::Technology::bluetooth);
}

TEST_F(SeamlessTest, WalkOutOfBluetoothIntoWlanOnlyRange) {
  // The thesis' marquee scenario: a file transfer keeps running as the
  // peer walks from Bluetooth range (10 m) out to 40 m, where only WLAN
  // (100 m) still reaches.
  make_dual_radio_pair({2, 0});
  a_->set_radio_powered(net::Technology::wlan, false);  // start on BT
  ConnectOptions options;
  options.monitor_interval = sim::milliseconds(250);
  Connection client = connect(options);
  ASSERT_EQ(client.current_technology(), net::Technology::bluetooth);
  a_->set_radio_powered(net::Technology::wlan, true);

  // b walks away at 1.5 m/s.
  medium_.set_mobility(b_->id(), std::make_unique<sim::LinearMobility>(
                                     sim::Vec2{2, 0}, sim::Vec2{1.5, 0.0}));
  // Stream messages the whole way.
  int sent = 0;
  std::function<void()> pump = [&] {
    if (sent >= 30 || !client.open()) return;
    client.send(to_bytes("chunk" + std::to_string(sent++)));
    simulator_.schedule(sim::seconds(1), pump);
  };
  pump();
  ASSERT_TRUE(run_until(
      simulator_, [&] { return received_.size() == 30; }, sim::minutes(2)));
  for (int i = 0; i < 30; ++i) EXPECT_EQ(received_[i], "chunk" + std::to_string(i));
  EXPECT_EQ(client.current_technology(), net::Technology::wlan);
  EXPECT_TRUE(client.open());
}

}  // namespace
}  // namespace ph::peerhood
