#include "net/medium.hpp"
#include "peerhood/stack.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ph::peerhood {
namespace {

class StackTest : public ::testing::Test {
 protected:
  StackTest() : medium_(simulator_, sim::Rng(80)) {}

  sim::Simulator simulator_;
  net::Medium medium_;
};

TEST_F(StackTest, DefaultConfigIsBluetoothOnly) {
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              {});
  ASSERT_EQ(stack.daemon().plugins().size(), 1u);
  EXPECT_EQ(stack.daemon().plugins()[0]->name(), "BTPlugin");
  EXPECT_TRUE(stack.daemon().running());  // autostart default
}

TEST_F(StackTest, MultiRadioConfigCreatesOnePluginEach) {
  StackConfig config;
  config.radios = {net::bluetooth_2_0(), net::wlan_80211b(), net::gprs()};
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              config);
  ASSERT_EQ(stack.daemon().plugins().size(), 3u);
  EXPECT_NE(stack.daemon().plugin_for(net::Technology::bluetooth), nullptr);
  EXPECT_NE(stack.daemon().plugin_for(net::Technology::wlan), nullptr);
  EXPECT_NE(stack.daemon().plugin_for(net::Technology::gprs), nullptr);
  // The node carries matching adapters in the world.
  EXPECT_NE(medium_.adapter(stack.id(), net::Technology::wlan), nullptr);
}

TEST_F(StackTest, NamePropagatesEverywhere) {
  StackConfig config;
  config.device_name = "my-laptop";
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              config);
  EXPECT_EQ(stack.name(), "my-laptop");
  EXPECT_EQ(medium_.node_name(stack.id()), "my-laptop");
  EXPECT_EQ(stack.daemon().device_name(), "my-laptop");
}

TEST_F(StackTest, AutostartFalseLeavesDaemonStopped) {
  StackConfig config;
  config.autostart = false;
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              config);
  EXPECT_FALSE(stack.daemon().running());
  (void)stack.daemon().start();
  EXPECT_TRUE(stack.daemon().running());
}

TEST_F(StackTest, SetRadioPoweredTogglesAdapter) {
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              {});
  net::Adapter* adapter = medium_.adapter(stack.id(), net::Technology::bluetooth);
  ASSERT_NE(adapter, nullptr);
  EXPECT_TRUE(adapter->powered());
  stack.set_radio_powered(net::Technology::bluetooth, false);
  EXPECT_FALSE(adapter->powered());
  stack.set_radio_powered(net::Technology::bluetooth, true);
  EXPECT_TRUE(adapter->powered());
}

TEST_F(StackTest, PoweringUnknownTechnologyIsNoop) {
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              {});
  stack.set_radio_powered(net::Technology::gprs, false);  // no GPRS radio
  SUCCEED();
}

TEST_F(StackTest, DaemonConfigPassedThrough) {
  StackConfig config;
  config.daemon.ping_interval = sim::seconds(42);
  config.daemon.max_missed_pings = 9;
  Stack stack(medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
              config);
  EXPECT_EQ(stack.daemon().config().ping_interval, sim::seconds(42));
  EXPECT_EQ(stack.daemon().config().max_missed_pings, 9);
}

}  // namespace
}  // namespace ph::peerhood
