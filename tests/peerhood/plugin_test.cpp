#include "peerhood/plugin.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"

namespace ph::peerhood {
namespace {

class PluginTest : public ::testing::Test {
 protected:
  PluginTest() : medium_(simulator_, sim::Rng(4)) {
    node_ = medium_.add_node(
        "dev", std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}));
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  net::NodeId node_ = 0;
};

TEST_F(PluginTest, BtPluginIdentity) {
  net::Adapter& adapter = medium_.add_adapter(node_, net::bluetooth_2_0());
  auto plugin = make_bt_plugin(adapter);
  EXPECT_EQ(plugin->name(), "BTPlugin");
  EXPECT_EQ(plugin->technology(), net::Technology::bluetooth);
  EXPECT_EQ(plugin->endpoint().device(), adapter.node());
}

TEST_F(PluginTest, WlanPluginIdentity) {
  net::Adapter& adapter = medium_.add_adapter(node_, net::wlan_80211b());
  auto plugin = make_wlan_plugin(adapter);
  EXPECT_EQ(plugin->name(), "WLANPlugin");
  EXPECT_EQ(plugin->technology(), net::Technology::wlan);
}

TEST_F(PluginTest, GprsPluginIdentity) {
  net::Adapter& adapter = medium_.add_adapter(node_, net::gprs());
  auto plugin = make_gprs_plugin(adapter);
  EXPECT_EQ(plugin->name(), "GPRSPlugin");
  EXPECT_EQ(plugin->technology(), net::Technology::gprs);
}

TEST_F(PluginTest, PreferenceOrdersFreeTechnologiesFirst) {
  net::Adapter& bt = medium_.add_adapter(node_, net::bluetooth_2_0());
  net::Adapter& wlan = medium_.add_adapter(node_, net::wlan_80211b());
  net::Adapter& cell = medium_.add_adapter(node_, net::gprs());
  auto bt_plugin = make_bt_plugin(bt);
  auto wlan_plugin = make_wlan_plugin(wlan);
  auto gprs_plugin = make_gprs_plugin(cell);
  // The thesis prefers cost-free short-range radios over metered GPRS.
  EXPECT_LT(bt_plugin->preference(), gprs_plugin->preference());
  EXPECT_LT(wlan_plugin->preference(), gprs_plugin->preference());
}

TEST_F(PluginTest, MakePluginDispatchesOnTechnology) {
  net::Adapter& bt = medium_.add_adapter(node_, net::bluetooth_2_0());
  net::Adapter& wlan = medium_.add_adapter(node_, net::wlan_80211g());
  net::Adapter& cell = medium_.add_adapter(node_, net::gprs());
  EXPECT_EQ(make_plugin(bt)->name(), "BTPlugin");
  EXPECT_EQ(make_plugin(wlan)->name(), "WLANPlugin");
  EXPECT_EQ(make_plugin(cell)->name(), "GPRSPlugin");
}

TEST_F(PluginTest, ProfilePassesThrough) {
  net::Adapter& adapter = medium_.add_adapter(node_, net::wlan_80211a());
  auto plugin = make_wlan_plugin(adapter);
  EXPECT_EQ(plugin->profile().name, "IEEE 802.11a");
  EXPECT_DOUBLE_EQ(plugin->profile().bandwidth_bps, 54e6);
}

}  // namespace
}  // namespace ph::peerhood
