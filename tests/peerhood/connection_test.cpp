#include "net/medium.hpp"
#include "peerhood/connection.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class ConnectionTest : public ::testing::Test {
 protected:
  ConnectionTest() : medium_(simulator_, sim::Rng(7)) {}

  void SetUp() override {
    StackConfig config;
    config.radios = {deterministic_bt()};
    config.device_name = "a";
    a_ = std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
        config);
    config.device_name = "b";
    b_ = std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}),
        config);
    // b runs an echo service; keep server connections alive in the fixture.
    ASSERT_TRUE(b_->library()
                    .register_service(
                        "Echo", {},
                        [this](Connection connection) {
                          auto held = std::make_shared<Connection>(
                              std::move(connection));
                          server_connections_.push_back(held);
                          held->on_message([held](BytesView data) {
                            held->send(data);
                          });
                        })
                    .ok());
    ASSERT_TRUE(run_until(
        simulator_, [&] { return a_->daemon().device(b_->id()).ok(); },
        sim::seconds(20)));
  }

  Connection connect(ConnectOptions options = {}) {
    Connection client;
    a_->library().connect(b_->id(), "Echo", options,
                          [&](Result<Connection> connection) {
                            EXPECT_TRUE(connection.ok());
                            if (connection) client = *connection;
                          });
    EXPECT_TRUE(run_until(
        simulator_, [&] { return client.valid(); }, sim::seconds(5)));
    return client;
  }

  sim::Simulator simulator_;
  net::Medium medium_{simulator_, sim::Rng(7)};
  std::unique_ptr<Stack> a_, b_;
  std::vector<std::shared_ptr<Connection>> server_connections_;
};

TEST_F(ConnectionTest, DefaultHandleIsInvalid) {
  Connection connection;
  EXPECT_FALSE(connection.valid());
  EXPECT_FALSE(connection.open());
  EXPECT_EQ(connection.remote_device(), net::kInvalidNode);
  EXPECT_EQ(connection.session_id(), 0u);
  connection.send(to_bytes("x"));  // must not crash
  connection.close();
}

TEST_F(ConnectionTest, EchoRoundTrip) {
  Connection client = connect();
  std::string got;
  client.on_message([&](BytesView data) { got = to_text(data); });
  client.send(to_bytes("ping"));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !got.empty(); }, sim::seconds(5)));
  EXPECT_EQ(got, "ping");
}

TEST_F(ConnectionTest, ManyMessagesInOrderExactlyOnce) {
  Connection client = connect();
  std::vector<int> got;
  client.on_message([&](BytesView data) { got.push_back(std::stoi(to_text(data))); });
  for (int i = 0; i < 50; ++i) client.send(to_bytes(std::to_string(i)));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return got.size() == 50; }, sim::seconds(30)));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST_F(ConnectionTest, SessionIdsAreUniquePerConnection) {
  Connection c1 = connect();
  Connection c2 = connect();
  EXPECT_NE(c1.session_id(), 0u);
  EXPECT_NE(c1.session_id(), c2.session_id());
}

TEST_F(ConnectionTest, HandoverCountStartsAtZero) {
  Connection client = connect();
  EXPECT_EQ(client.handover_count(), 0);
}

TEST_F(ConnectionTest, CopiedHandlesShareTheSession) {
  Connection client = connect();
  Connection copy = client;
  copy.close();
  EXPECT_FALSE(client.open());
}

TEST_F(ConnectionTest, NonSeamlessBreakReportsConnectionLost) {
  ConnectOptions options;
  options.seamless = false;
  Connection client = connect(options);
  Error close_reason;
  bool closed = false;
  client.on_close([&](const Error& error) {
    closed = true;
    close_reason = error;
  });
  (void)b_->set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(simulator_, [&] { return closed; }, sim::seconds(5)));
  EXPECT_EQ(close_reason.code, Errc::connection_lost);
  EXPECT_FALSE(client.open());
}

TEST_F(ConnectionTest, SeamlessGivesUpAfterResumeDeadline) {
  ConnectOptions options;
  options.seamless = true;
  options.resume_deadline = sim::seconds(5);
  Connection client = connect(options);
  bool closed = false;
  Error close_reason;
  client.on_close([&](const Error& error) {
    closed = true;
    close_reason = error;
  });
  // The only common radio disappears for good.
  (void)b_->set_radio_powered(net::Technology::bluetooth, false);
  simulator_.run_until(simulator_.now() + sim::seconds(3));
  EXPECT_FALSE(closed);  // still hunting
  ASSERT_TRUE(run_until(simulator_, [&] { return closed; }, sim::seconds(10)));
  EXPECT_EQ(close_reason.code, Errc::connection_lost);
}

TEST_F(ConnectionTest, SeamlessRecoversWhenPeerReturnsInTime) {
  ConnectOptions options;
  options.seamless = true;
  options.resume_deadline = sim::seconds(20);
  Connection client = connect(options);
  std::vector<std::string> got;
  client.on_message([&](BytesView data) { got.push_back(to_text(data)); });
  // Radio blips off for 3 seconds, then returns.
  (void)b_->set_radio_powered(net::Technology::bluetooth, false);
  client.send(to_bytes("during-outage"));
  simulator_.run_until(simulator_.now() + sim::seconds(3));
  (void)b_->set_radio_powered(net::Technology::bluetooth, true);
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !got.empty(); }, sim::seconds(30)));
  EXPECT_EQ(got, (std::vector<std::string>{"during-outage"}));
  EXPECT_TRUE(client.open());
  EXPECT_GE(client.handover_count(), 1);
}

TEST_F(ConnectionTest, CloseDuringMessageHandlerIsSafe) {
  Connection client = connect();
  int deliveries = 0;
  client.on_message([&](BytesView) {
    ++deliveries;
    client.close();  // closing from inside the handler must not crash
  });
  client.send(to_bytes("a"));
  client.send(to_bytes("b"));
  simulator_.run_until(simulator_.now() + sim::seconds(5));
  EXPECT_EQ(deliveries, 1);
  EXPECT_FALSE(client.open());
}

}  // namespace
}  // namespace ph::peerhood
