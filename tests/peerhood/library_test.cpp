#include "net/medium.hpp"
#include "peerhood/library.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class LibraryTest : public ::testing::Test {
 protected:
  LibraryTest() : medium_(simulator_, sim::Rng(6)) {}

  Stack& add_device(const std::string& name, sim::Vec2 pos) {
    StackConfig config;
    config.device_name = name;
    config.radios = {deterministic_bt()};
    stacks_.push_back(std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config));
    return *stacks_.back();
  }

  /// Waits until `who` has discovered `whom`.
  void await_discovery(Stack& who, Stack& whom) {
    ASSERT_TRUE(run_until(
        simulator_, [&] { return who.daemon().device(whom.id()).ok(); },
        sim::seconds(20)));
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Stack>> stacks_;
};

TEST_F(LibraryTest, RegisterServiceAppearsInDaemon) {
  Stack& a = add_device("a", {0, 0});
  ASSERT_TRUE(a.library().register_service("Echo", {}, [](Connection) {}).ok());
  auto services = a.daemon().local_services();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].name, "Echo");
  EXPECT_GE(services[0].port, 1000);
}

TEST_F(LibraryTest, DuplicateServiceRejected) {
  Stack& a = add_device("a", {0, 0});
  ASSERT_TRUE(a.library().register_service("Echo", {}, [](Connection) {}).ok());
  auto dup = a.library().register_service("Echo", {}, [](Connection) {});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, Errc::service_already_registered);
}

TEST_F(LibraryTest, UnregisterUnknownServiceFails) {
  Stack& a = add_device("a", {0, 0});
  EXPECT_FALSE(a.library().unregister_service("Nope").ok());
}

TEST_F(LibraryTest, ConnectAndExchangeMessages) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  std::string server_got, client_got;
  ASSERT_TRUE(b.library()
                  .register_service("Echo", {},
                                    [&](Connection connection) {
                                      auto held = std::make_shared<Connection>(
                                          std::move(connection));
                                      held->on_message([held, &server_got](
                                                           BytesView data) {
                                        server_got = to_text(data);
                                        held->send(to_bytes("echo:" +
                                                            to_text(data)));
                                      });
                                    })
                  .ok());
  await_discovery(a, b);
  Connection client;
  a.library().connect(b.id(), "Echo", {}, [&](Result<Connection> connection) {
    ASSERT_TRUE(connection.ok()) << connection.error().to_string();
    client = *connection;
    client.on_message([&](BytesView data) { client_got = to_text(data); });
    client.send(to_bytes("hi"));
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !client_got.empty(); }, sim::seconds(10)));
  EXPECT_EQ(server_got, "hi");
  EXPECT_EQ(client_got, "echo:hi");
  EXPECT_EQ(client.remote_device(), b.id());
  EXPECT_EQ(client.current_technology(), net::Technology::bluetooth);
}

TEST_F(LibraryTest, ConnectToUnknownDeviceFails) {
  Stack& a = add_device("a", {0, 0});
  Error error;
  a.library().connect(12345, "Echo", {}, [&](Result<Connection> connection) {
    ASSERT_FALSE(connection.ok());
    error = connection.error();
  });
  simulator_.run_until(sim::seconds(1));
  EXPECT_EQ(error.code, Errc::unknown_device);
}

TEST_F(LibraryTest, ConnectToMissingServiceFails) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(b.library().register_service("Echo", {}, [](Connection) {}).ok());
  await_discovery(a, b);
  Error error;
  a.library().connect(b.id(), "Other", {}, [&](Result<Connection> connection) {
    ASSERT_FALSE(connection.ok());
    error = connection.error();
  });
  simulator_.run_until(simulator_.now() + sim::seconds(1));
  EXPECT_EQ(error.code, Errc::service_not_found);
}

TEST_F(LibraryTest, GracefulCloseReachesPeer) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  Error server_close_reason{Errc::timeout, "never set"};
  bool server_closed = false;
  ASSERT_TRUE(b.library()
                  .register_service("Echo", {},
                                    [&](Connection connection) {
                                      auto held = std::make_shared<Connection>(
                                          std::move(connection));
                                      held->on_close([&, held](const Error& e) {
                                        server_closed = true;
                                        server_close_reason = e;
                                      });
                                    })
                  .ok());
  await_discovery(a, b);
  Connection client;
  a.library().connect(b.id(), "Echo", {}, [&](Result<Connection> connection) {
    client = *connection;
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return client.valid(); }, sim::seconds(5)));
  client.close();
  EXPECT_FALSE(client.open());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return server_closed; }, sim::seconds(5)));
  EXPECT_EQ(server_close_reason.code, Errc::ok);  // graceful
}

TEST_F(LibraryTest, MultipleConcurrentSessionsToOneService) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  Stack& c = add_device("c", {0, 3});
  int sessions = 0;
  std::vector<std::shared_ptr<Connection>> held_connections;
  ASSERT_TRUE(b.library()
                  .register_service("Echo", {},
                                    [&](Connection connection) {
                                      ++sessions;
                                      held_connections.push_back(
                                          std::make_shared<Connection>(
                                              std::move(connection)));
                                    })
                  .ok());
  await_discovery(a, b);
  await_discovery(c, b);
  Connection from_a, from_c;
  a.library().connect(b.id(), "Echo", {},
                      [&](Result<Connection> conn) { from_a = *conn; });
  c.library().connect(b.id(), "Echo", {},
                      [&](Result<Connection> conn) { from_c = *conn; });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return sessions == 2; }, sim::seconds(10)));
  EXPECT_TRUE(from_a.open());
  EXPECT_TRUE(from_c.open());
  EXPECT_NE(from_a.session_id(), from_c.session_id());
}

TEST_F(LibraryTest, LargeTransferArrivesIntact) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  Bytes received;
  ASSERT_TRUE(b.library()
                  .register_service("Sink", {},
                                    [&](Connection connection) {
                                      auto held = std::make_shared<Connection>(
                                          std::move(connection));
                                      held->on_message(
                                          [held, &received](BytesView data) {
                                            received.insert(received.end(),
                                                            data.begin(),
                                                            data.end());
                                          });
                                    })
                  .ok());
  await_discovery(a, b);
  Bytes payload(200'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  Connection client;
  a.library().connect(b.id(), "Sink", {}, [&](Result<Connection> conn) {
    client = *conn;
    // Send in 20 kB chunks, like a file transfer would.
    for (std::size_t offset = 0; offset < payload.size(); offset += 20'000) {
      const std::size_t n = std::min<std::size_t>(20'000, payload.size() - offset);
      client.send(BytesView(payload).subspan(offset, n));
    }
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return received.size() == payload.size(); },
      sim::minutes(1)));
  EXPECT_EQ(received, payload);
}

TEST_F(LibraryTest, UnregisteredServiceRefusesNewConnections) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(b.library().register_service("Echo", {}, [](Connection) {}).ok());
  await_discovery(a, b);
  ASSERT_TRUE(b.library().unregister_service("Echo").ok());
  bool failed = false;
  // a's daemon still has the stale service cache entry; the connect must
  // fail at the transport (no listener).
  a.library().connect(b.id(), "Echo", {}, [&](Result<Connection> connection) {
    failed = !connection.ok();
  });
  simulator_.run_until(simulator_.now() + sim::seconds(3));
  EXPECT_TRUE(failed);
}

}  // namespace
}  // namespace ph::peerhood
