#include "net/medium.hpp"
#include "peerhood/daemon.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

net::TechProfile deterministic_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.frame_loss = 0.0;
  p.inquiry_detect_prob = 1.0;
  return p;
}

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : medium_(simulator_, sim::Rng(5)) {}

  Stack& add_device(const std::string& name, sim::Vec2 pos,
                    bool autostart = true) {
    StackConfig config;
    config.device_name = name;
    config.radios = {deterministic_bt()};
    config.autostart = autostart;
    stacks_.push_back(std::make_unique<Stack>(
        medium_, std::make_unique<sim::StaticMobility>(pos), config));
    return *stacks_.back();
  }

  Stack& add_moving_device(const std::string& name, sim::Vec2 origin,
                           sim::Vec2 velocity) {
    StackConfig config;
    config.device_name = name;
    config.radios = {deterministic_bt()};
    stacks_.push_back(std::make_unique<Stack>(
        medium_, std::make_unique<sim::LinearMobility>(origin, velocity),
        config));
    return *stacks_.back();
  }

  sim::Simulator simulator_;
  net::Medium medium_;
  std::vector<std::unique_ptr<Stack>> stacks_;
};

TEST_F(DaemonTest, DiscoversNeighbourAfterInquiry) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  auto devices = a.daemon().devices();
  ASSERT_EQ(devices.size(), 1u);
  EXPECT_EQ(devices[0].id, b.id());
  EXPECT_EQ(devices[0].name, "b");
  EXPECT_TRUE(devices[0].has_technology(net::Technology::bluetooth));
}

TEST_F(DaemonTest, DiscoveryIsMutual) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        return !a.daemon().devices().empty() && !b.daemon().devices().empty();
      },
      sim::seconds(15)));
  EXPECT_EQ(b.daemon().devices()[0].id, a.id());
}

TEST_F(DaemonTest, OutOfRangeDeviceNotDiscovered) {
  Stack& a = add_device("a", {0, 0});
  add_device("far", {100, 0});
  simulator_.run_until(sim::seconds(30));
  EXPECT_TRUE(a.daemon().devices().empty());
}

TEST_F(DaemonTest, ServiceDiscoveryTransfersServiceList) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(b.daemon()
                  .register_service({"PeerHoodCommunity", 1000, {}})
                  .ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  auto device = a.daemon().device(b.id());
  ASSERT_TRUE(device.ok());
  ASSERT_EQ(device->services.size(), 1u);
  EXPECT_EQ(device->services[0].name, "PeerHoodCommunity");
  EXPECT_EQ(device->services[0].port, 1000);
}

TEST_F(DaemonTest, FindServiceLocatesAdvertisingDevices) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  Stack& c = add_device("c", {0, 3});
  ASSERT_TRUE(b.daemon().register_service({"ChatService", 1000, {}}).ok());
  ASSERT_TRUE(c.daemon().register_service({"ChatService", 1000, {}}).ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return a.daemon().devices().size() == 2; },
      sim::seconds(20)));
  auto found = a.daemon().find_service("ChatService");
  EXPECT_EQ(found.size(), 2u);
  EXPECT_TRUE(a.daemon().find_service("NoSuchService").empty());
}

TEST_F(DaemonTest, RegisterServiceRejectsDuplicates) {
  Stack& a = add_device("a", {0, 0});
  EXPECT_TRUE(a.daemon().register_service({"S", 1, {}}).ok());
  auto second = a.daemon().register_service({"S", 2, {}});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, Errc::service_already_registered);
}

TEST_F(DaemonTest, RegisterServiceRejectsEmptyName) {
  Stack& a = add_device("a", {0, 0});
  auto result = a.daemon().register_service({"", 1, {}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::invalid_argument);
}

TEST_F(DaemonTest, UpdateServiceAttributesPropagatesToNeighbours) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(b.daemon()
                  .register_service({"S", 1000, {{"state", "old"}}})
                  .ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().find_service("S").empty(); },
      sim::seconds(20)));
  ASSERT_TRUE(
      b.daemon().update_service_attributes("S", {{"state", "new"}}).ok());
  // The next service refresh (inquiry cycle) carries the new attributes.
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto found = a.daemon().find_service("S");
        return !found.empty() &&
               found[0].second.attributes.at("state") == "new";
      },
      sim::minutes(1)));
}

TEST_F(DaemonTest, UpdateAttributesOfUnknownServiceFails) {
  Stack& a = add_device("a", {0, 0});
  auto result = a.daemon().update_service_attributes("Nope", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::service_not_found);
}

TEST_F(DaemonTest, AttributeChangeFiresOnUpdate) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  ASSERT_TRUE(b.daemon().register_service({"S", 1000, {{"k", "1"}}}).ok());
  int updates = 0;
  a.daemon().monitor_device(b.id(), [&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::updated) ++updates;
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().find_service("S").empty(); },
      sim::seconds(20)));
  const int before = updates;
  ASSERT_TRUE(b.daemon().update_service_attributes("S", {{"k", "2"}}).ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return updates > before; }, sim::minutes(1)));
}

TEST_F(DaemonTest, WlanPushAnnouncementSkipsTheScanWait) {
  // On broadcast-capable radios, a newly registered service is announced
  // immediately — neighbours learn of it in milliseconds instead of at the
  // next discovery cycle (compare Table 3's 30 s "Service Sharing" row on
  // Bluetooth).
  StackConfig config;
  config.radios = {net::wlan_80211b()};
  config.device_name = "wa";
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config));
  Stack& a = *stacks_.back();
  config.device_name = "wb";
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config));
  Stack& b = *stacks_.back();
  ASSERT_TRUE(run_until(
      simulator_, [&] { return a.daemon().device(b.id()).ok(); },
      sim::seconds(5)));
  const sim::Time registered_at = simulator_.now();
  ASSERT_TRUE(b.daemon().register_service({"LateService", 1500, {}}).ok());
  ASSERT_TRUE(run_until(
      simulator_,
      [&] { return !a.daemon().find_service("LateService").empty(); },
      sim::seconds(5)));
  // Far below the 20 s inquiry interval: the broadcast did it.
  EXPECT_LT(simulator_.now() - registered_at, sim::seconds(1));
  EXPECT_GT(b.daemon().stats().counter("announcements_sent"), 0u);
}

TEST_F(DaemonTest, BluetoothHasNoPushAnnouncements) {
  Stack& a = add_device("a", {0, 0});
  (void)a;
  ASSERT_TRUE(a.daemon().register_service({"S", 1, {}}).ok());
  EXPECT_EQ(a.daemon().stats().counter("announcements_sent"), 0u);
}

TEST_F(DaemonTest, UnregisterServiceRemovesIt) {
  Stack& a = add_device("a", {0, 0});
  ASSERT_TRUE(a.daemon().register_service({"S", 1, {}}).ok());
  EXPECT_TRUE(a.daemon().unregister_service("S").ok());
  EXPECT_TRUE(a.daemon().local_services().empty());
  auto again = a.daemon().unregister_service("S");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::service_not_found);
}

TEST_F(DaemonTest, MonitorAllFiresOnAppear) {
  Stack& a = add_device("a", {0, 0});
  add_device("b", {3, 0});
  std::vector<std::string> appeared;
  a.daemon().monitor_all([&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::appeared) {
      appeared.push_back(event.device.name);
    }
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !appeared.empty(); }, sim::seconds(15)));
  EXPECT_EQ(appeared, (std::vector<std::string>{"b"}));
}

TEST_F(DaemonTest, MonitorDeviceFiltersOtherDevices) {
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0});
  Stack& c = add_device("c", {0, 3});
  int b_events = 0, any_events = 0;
  a.daemon().monitor_device(b.id(), [&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::appeared) ++b_events;
  });
  a.daemon().monitor_all([&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::appeared) ++any_events;
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return a.daemon().devices().size() == 2; },
      sim::seconds(20)));
  (void)c;
  EXPECT_EQ(b_events, 1);
  EXPECT_EQ(any_events, 2);
}

TEST_F(DaemonTest, DepartingDeviceDisappears) {
  Stack& a = add_device("a", {0, 0});
  // b stays put through the first inquiry (which ends at ~10.3 s), then
  // walks off and is out of the 10 m range by ~t=25 s.
  StackConfig b_config;
  b_config.device_name = "b";
  b_config.radios = {deterministic_bt()};
  stacks_.push_back(std::make_unique<Stack>(
      medium_,
      std::make_unique<sim::WaypointMobility>(
          std::vector<sim::WaypointMobility::Waypoint>{
              {sim::seconds(0), {0, 1}},
              {sim::seconds(15), {0, 1}},
              {sim::seconds(25), {60, 1}}}),
      b_config));
  Stack& b = *stacks_.back();
  std::vector<DeviceId> gone;
  a.daemon().monitor_all([&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::disappeared) {
      gone.push_back(event.device.id);
    }
  });
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !gone.empty(); }, sim::minutes(1)));
  EXPECT_EQ(gone, (std::vector<DeviceId>{b.id()}));
  EXPECT_TRUE(a.daemon().devices().empty());
}

TEST_F(DaemonTest, ReturningDeviceReappears) {
  Stack& a = add_device("a", {0, 0});
  // In range through the first inquiry (ends ~10.3 s), out of range during
  // the second (~40 s), back for the later rounds.
  StackConfig config;
  config.device_name = "b";
  config.radios = {deterministic_bt()};
  stacks_.push_back(std::make_unique<Stack>(
      medium_,
      std::make_unique<sim::WaypointMobility>(
          std::vector<sim::WaypointMobility::Waypoint>{
              {sim::seconds(0), {2, 0}},
              {sim::seconds(25), {2, 0}},
              {sim::seconds(30), {60, 0}},
              {sim::seconds(55), {60, 0}},
              {sim::seconds(60), {2, 0}}}),
      config));
  int appearances = 0, disappearances = 0;
  a.daemon().monitor_all([&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::appeared) ++appearances;
    if (event.kind == NeighbourEvent::Kind::disappeared) ++disappearances;
  });
  simulator_.run_until(sim::minutes(2));
  EXPECT_GE(appearances, 2);
  EXPECT_GE(disappearances, 1);
}

TEST_F(DaemonTest, UnmonitorStopsCallbacks) {
  Stack& a = add_device("a", {0, 0});
  add_device("b", {3, 0});
  int events = 0;
  Daemon::MonitorId id = a.daemon().monitor_all(
      [&](const NeighbourEvent&) { ++events; });
  a.daemon().unmonitor(id);
  simulator_.run_until(sim::seconds(20));
  EXPECT_EQ(events, 0);
}

TEST_F(DaemonTest, DeviceLookupFailsForUnknown) {
  Stack& a = add_device("a", {0, 0});
  auto result = a.daemon().device(999);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, Errc::unknown_device);
}

TEST_F(DaemonTest, StoppedDaemonDoesNotDiscover) {
  Stack& a = add_device("a", {0, 0}, /*autostart=*/false);
  add_device("b", {3, 0});
  simulator_.run_until(sim::seconds(30));
  EXPECT_TRUE(a.daemon().devices().empty());
  EXPECT_FALSE(a.daemon().running());
}

TEST_F(DaemonTest, StartAfterStopResumesDiscovery) {
  Stack& a = add_device("a", {0, 0}, /*autostart=*/false);
  add_device("b", {3, 0});
  simulator_.run_until(sim::seconds(5));
  (void)a.daemon().start();
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  EXPECT_TRUE(a.daemon().running());
}

TEST_F(DaemonTest, StoppedDaemonStillAnswersQueries) {
  // The control port stays bound even when the local daemon's own loops
  // are stopped — the device remains discoverable by others.
  Stack& a = add_device("a", {0, 0});
  Stack& b = add_device("b", {3, 0}, /*autostart=*/false);
  ASSERT_TRUE(b.daemon().register_service({"S", 1, {}}).ok());
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  EXPECT_EQ(a.daemon().devices()[0].name, "b");
}

TEST_F(DaemonTest, StatsTrackActivity) {
  Stack& a = add_device("a", {0, 0});
  add_device("b", {3, 0});
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
  simulator_.run_until(sim::seconds(30));
  const obs::Snapshot stats = a.daemon().stats();
  EXPECT_GE(stats.counter("inquiries_started"), 1u);
  EXPECT_GE(stats.counter("service_queries"), 1u);
  EXPECT_GE(stats.counter("service_replies"), 1u);
  EXPECT_EQ(stats.counter("neighbours_appeared"), 1u);
  EXPECT_GT(stats.counter("pings_sent"), 0u);
}

TEST_F(DaemonTest, EntryTtlEvictsSilentNeighbourWithCauseExpired) {
  // Missed-ping eviction is disabled (absurd max), so only the entry_ttl
  // safety net can drop the neighbour once it stops answering.
  StackConfig config;
  config.radios = {deterministic_bt()};
  config.device_name = "a";
  config.daemon.entry_ttl = sim::seconds(30);
  config.daemon.max_missed_pings = 1'000'000;
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config));
  Stack& a = *stacks_.back();
  Stack& b = add_device("b", {3, 0});

  ASSERT_TRUE(run_until(
      simulator_, [&] { return a.daemon().device(b.id()).ok(); },
      sim::seconds(20)));
  std::vector<GoneCause> causes;
  a.daemon().monitor_device(b.id(), [&](const NeighbourEvent& event) {
    if (event.kind == NeighbourEvent::Kind::disappeared) {
      causes.push_back(event.cause);
    }
  });

  const sim::Time silent_at = simulator_.now();
  b.set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !causes.empty(); }, sim::minutes(2)));
  EXPECT_EQ(causes[0], GoneCause::expired);
  EXPECT_TRUE(a.daemon().devices().empty());
  // Evicted roughly one TTL after the last refresh — never sooner, and at
  // most one TTL plus a couple of sweep periods later.
  EXPECT_GE(simulator_.now() - silent_at, sim::seconds(25));
  EXPECT_LE(simulator_.now() - silent_at,
            config.daemon.entry_ttl + 3 * config.daemon.ping_interval);
}

TEST_F(DaemonTest, TriggerDiscoveryShortcutsTheTimer) {
  // With a very long inquiry interval, the second round would normally be
  // far away; trigger_discovery runs one immediately.
  StackConfig config;
  config.device_name = "a";
  config.radios = {deterministic_bt()};
  config.daemon.inquiry_interval = sim::minutes(60);
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config));
  Stack& a = *stacks_.back();
  simulator_.run_until(sim::seconds(15));  // first scan done, nothing found
  EXPECT_TRUE(a.daemon().devices().empty());
  add_device("b", {3, 0});
  a.daemon().trigger_discovery();
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(15)));
}

TEST_F(DaemonTest, MultiRadioDeviceDiscoveredOnBothTechnologies) {
  StackConfig config;
  config.device_name = "dual-a";
  config.radios = {deterministic_bt(), net::wlan_80211b()};
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config));
  Stack& a = *stacks_.back();
  config.device_name = "dual-b";
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config));
  Stack& b = *stacks_.back();
  ASSERT_TRUE(run_until(
      simulator_,
      [&] {
        auto device = a.daemon().device(b.id());
        return device.ok() && device->technologies.size() == 2;
      },
      sim::seconds(30)));
  auto device = a.daemon().device(b.id());
  EXPECT_TRUE(device->has_technology(net::Technology::bluetooth));
  EXPECT_TRUE(device->has_technology(net::Technology::wlan));
}

TEST_F(DaemonTest, WlanDiscoveryIsMuchFasterThanBluetooth) {
  StackConfig config;
  config.device_name = "wa";
  config.radios = {net::wlan_80211b()};
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config));
  Stack& a = *stacks_.back();
  config.device_name = "wb";
  stacks_.push_back(std::make_unique<Stack>(
      medium_, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config));
  // WLAN broadcast discovery + service query completes in ~1 s, far below
  // the 10.24 s Bluetooth inquiry.
  ASSERT_TRUE(run_until(
      simulator_, [&] { return !a.daemon().devices().empty(); },
      sim::seconds(3)));
}

}  // namespace
}  // namespace ph::peerhood
