// Detection-latency property: the daemon's active monitoring must notice a
// silently vanished neighbour within (max_missed_pings + 1) ping intervals
// plus one reply window — for ANY configuration in a sensible sweep — and
// must never evict a healthy, reachable neighbour.
#include <gtest/gtest.h>

#include <memory>

#include "net/medium.hpp"
#include "peerhood/stack.hpp"
#include "tests/testutil/sim_helpers.hpp"

namespace ph::peerhood {
namespace {

using testutil::run_until;

struct MonitoringParams {
  int ping_interval_s;
  int max_missed;
};

class MonitoringPropertyTest
    : public ::testing::TestWithParam<MonitoringParams> {};

TEST_P(MonitoringPropertyTest, DetectionWithinBound) {
  const MonitoringParams params = GetParam();
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(7));
  net::TechProfile bt = net::bluetooth_2_0();
  bt.frame_loss = 0.0;
  bt.inquiry_detect_prob = 1.0;

  StackConfig config;
  config.radios = {bt};
  config.daemon.ping_interval = sim::seconds(params.ping_interval_s);
  config.daemon.max_missed_pings = params.max_missed;
  config.device_name = "watcher";
  Stack watcher(medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                config);
  config.device_name = "target";
  Stack target(medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}),
               config);

  ASSERT_TRUE(run_until(
      simulator, [&] { return watcher.daemon().device(target.id()).ok(); },
      sim::seconds(20)));

  bool gone = false;
  watcher.daemon().monitor_device(
      target.id(), [&](const NeighbourEvent& event) {
        if (event.kind == NeighbourEvent::Kind::disappeared) gone = true;
      });

  // Healthy neighbour: never evicted over many ping rounds.
  simulator.run_for(sim::seconds(params.ping_interval_s) * (params.max_missed + 4));
  EXPECT_FALSE(gone) << "healthy neighbour was evicted";

  // Silent death (radio off, no goodbye).
  const sim::Time died_at = simulator.now();
  (void)target.set_radio_powered(net::Technology::bluetooth, false);
  ASSERT_TRUE(run_until(simulator, [&] { return gone; }, sim::minutes(5)));
  const double detection_s = sim::to_seconds(simulator.now() - died_at);
  // Bound: (max_missed + 1) intervals (the +1 covers dying right after a
  // successful round) plus a one-second reply window of slack.
  const double bound_s =
      (params.max_missed + 1.0) * params.ping_interval_s + 1.0;
  EXPECT_LE(detection_s, bound_s)
      << "interval=" << params.ping_interval_s
      << " max_missed=" << params.max_missed;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, MonitoringPropertyTest,
    ::testing::Values(MonitoringParams{1, 1}, MonitoringParams{1, 3},
                      MonitoringParams{2, 2}, MonitoringParams{2, 3},
                      MonitoringParams{5, 1}, MonitoringParams{5, 3},
                      MonitoringParams{10, 2}),
    [](const ::testing::TestParamInfo<MonitoringParams>& info) {
      return "interval" + std::to_string(info.param.ping_interval_s) +
             "s_missed" + std::to_string(info.param.max_missed);
    });

}  // namespace
}  // namespace ph::peerhood
