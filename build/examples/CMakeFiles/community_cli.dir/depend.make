# Empty dependencies file for community_cli.
# This may be replaced when dependencies are built.
