file(REMOVE_RECURSE
  "CMakeFiles/community_cli.dir/community_cli.cpp.o"
  "CMakeFiles/community_cli.dir/community_cli.cpp.o.d"
  "community_cli"
  "community_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
