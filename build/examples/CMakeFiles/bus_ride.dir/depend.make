# Empty dependencies file for bus_ride.
# This may be replaced when dependencies are built.
