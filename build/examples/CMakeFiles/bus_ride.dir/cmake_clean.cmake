file(REMOVE_RECURSE
  "CMakeFiles/bus_ride.dir/bus_ride.cpp.o"
  "CMakeFiles/bus_ride.dir/bus_ride.cpp.o.d"
  "bus_ride"
  "bus_ride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_ride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
