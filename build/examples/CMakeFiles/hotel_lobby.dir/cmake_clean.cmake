file(REMOVE_RECURSE
  "CMakeFiles/hotel_lobby.dir/hotel_lobby.cpp.o"
  "CMakeFiles/hotel_lobby.dir/hotel_lobby.cpp.o.d"
  "hotel_lobby"
  "hotel_lobby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_lobby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
