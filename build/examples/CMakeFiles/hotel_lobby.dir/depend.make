# Empty dependencies file for hotel_lobby.
# This may be replaced when dependencies are built.
