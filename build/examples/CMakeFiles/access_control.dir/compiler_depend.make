# Empty compiler generated dependencies file for access_control.
# This may be replaced when dependencies are built.
