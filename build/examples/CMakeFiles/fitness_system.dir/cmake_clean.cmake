file(REMOVE_RECURSE
  "CMakeFiles/fitness_system.dir/fitness_system.cpp.o"
  "CMakeFiles/fitness_system.dir/fitness_system.cpp.o.d"
  "fitness_system"
  "fitness_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitness_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
