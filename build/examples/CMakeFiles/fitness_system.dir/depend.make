# Empty dependencies file for fitness_system.
# This may be replaced when dependencies are built.
