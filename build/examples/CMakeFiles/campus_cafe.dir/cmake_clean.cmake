file(REMOVE_RECURSE
  "CMakeFiles/campus_cafe.dir/campus_cafe.cpp.o"
  "CMakeFiles/campus_cafe.dir/campus_cafe.cpp.o.d"
  "campus_cafe"
  "campus_cafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_cafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
