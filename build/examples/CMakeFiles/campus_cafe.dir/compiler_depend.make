# Empty compiler generated dependencies file for campus_cafe.
# This may be replaced when dependencies are built.
