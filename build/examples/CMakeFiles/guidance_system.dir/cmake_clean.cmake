file(REMOVE_RECURSE
  "CMakeFiles/guidance_system.dir/guidance_system.cpp.o"
  "CMakeFiles/guidance_system.dir/guidance_system.cpp.o.d"
  "guidance_system"
  "guidance_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guidance_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
