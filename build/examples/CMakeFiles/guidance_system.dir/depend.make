# Empty dependencies file for guidance_system.
# This may be replaced when dependencies are built.
