file(REMOVE_RECURSE
  "CMakeFiles/trusted_sharing.dir/trusted_sharing.cpp.o"
  "CMakeFiles/trusted_sharing.dir/trusted_sharing.cpp.o.d"
  "trusted_sharing"
  "trusted_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trusted_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
