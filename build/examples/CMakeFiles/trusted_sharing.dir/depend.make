# Empty dependencies file for trusted_sharing.
# This may be replaced when dependencies are built.
