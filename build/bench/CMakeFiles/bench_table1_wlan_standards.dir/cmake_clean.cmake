file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_wlan_standards.dir/table1_wlan_standards.cpp.o"
  "CMakeFiles/bench_table1_wlan_standards.dir/table1_wlan_standards.cpp.o.d"
  "bench_table1_wlan_standards"
  "bench_table1_wlan_standards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_wlan_standards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
