# Empty dependencies file for bench_table1_wlan_standards.
# This may be replaced when dependencies are built.
