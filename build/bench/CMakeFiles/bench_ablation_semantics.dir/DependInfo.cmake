
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_semantics.cpp" "bench/CMakeFiles/bench_ablation_semantics.dir/ablation_semantics.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_semantics.dir/ablation_semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/ph_community.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/CMakeFiles/ph_sns.dir/DependInfo.cmake"
  "/root/repo/build/src/peerhood/CMakeFiles/ph_peerhood.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
