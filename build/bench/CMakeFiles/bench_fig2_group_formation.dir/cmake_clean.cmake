file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_group_formation.dir/fig2_group_formation.cpp.o"
  "CMakeFiles/bench_fig2_group_formation.dir/fig2_group_formation.cpp.o.d"
  "bench_fig2_group_formation"
  "bench_fig2_group_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_group_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
