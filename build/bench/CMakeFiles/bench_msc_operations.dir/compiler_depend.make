# Empty compiler generated dependencies file for bench_msc_operations.
# This may be replaced when dependencies are built.
