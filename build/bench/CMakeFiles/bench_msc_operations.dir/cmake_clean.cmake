file(REMOVE_RECURSE
  "CMakeFiles/bench_msc_operations.dir/msc_operations.cpp.o"
  "CMakeFiles/bench_msc_operations.dir/msc_operations.cpp.o.d"
  "bench_msc_operations"
  "bench_msc_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msc_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
