file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_sns_comparison.dir/table8_sns_comparison.cpp.o"
  "CMakeFiles/bench_table8_sns_comparison.dir/table8_sns_comparison.cpp.o.d"
  "bench_table8_sns_comparison"
  "bench_table8_sns_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_sns_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
