# Empty compiler generated dependencies file for bench_social_ops_comparison.
# This may be replaced when dependencies are built.
