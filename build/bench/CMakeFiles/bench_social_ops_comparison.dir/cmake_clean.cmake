file(REMOVE_RECURSE
  "CMakeFiles/bench_social_ops_comparison.dir/social_ops_comparison.cpp.o"
  "CMakeFiles/bench_social_ops_comparison.dir/social_ops_comparison.cpp.o.d"
  "bench_social_ops_comparison"
  "bench_social_ops_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_social_ops_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
