file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_analysis.dir/cost_analysis.cpp.o"
  "CMakeFiles/bench_cost_analysis.dir/cost_analysis.cpp.o.d"
  "bench_cost_analysis"
  "bench_cost_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
