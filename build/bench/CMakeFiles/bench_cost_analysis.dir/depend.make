# Empty dependencies file for bench_cost_analysis.
# This may be replaced when dependencies are built.
