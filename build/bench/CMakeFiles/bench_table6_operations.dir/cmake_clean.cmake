file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_operations.dir/table6_operations.cpp.o"
  "CMakeFiles/bench_table6_operations.dir/table6_operations.cpp.o.d"
  "bench_table6_operations"
  "bench_table6_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
