# Empty compiler generated dependencies file for bench_ablation_interest_attributes.
# This may be replaced when dependencies are built.
