file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_interest_attributes.dir/ablation_interest_attributes.cpp.o"
  "CMakeFiles/bench_ablation_interest_attributes.dir/ablation_interest_attributes.cpp.o.d"
  "bench_ablation_interest_attributes"
  "bench_ablation_interest_attributes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interest_attributes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
