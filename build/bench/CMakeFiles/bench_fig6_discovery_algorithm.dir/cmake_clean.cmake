file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_discovery_algorithm.dir/fig6_discovery_algorithm.cpp.o"
  "CMakeFiles/bench_fig6_discovery_algorithm.dir/fig6_discovery_algorithm.cpp.o.d"
  "bench_fig6_discovery_algorithm"
  "bench_fig6_discovery_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_discovery_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
