# Empty dependencies file for bench_fig6_discovery_algorithm.
# This may be replaced when dependencies are built.
