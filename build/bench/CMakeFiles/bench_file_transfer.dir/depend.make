# Empty dependencies file for bench_file_transfer.
# This may be replaced when dependencies are built.
