# Empty dependencies file for bench_ablation_discovery_cache.
# This may be replaced when dependencies are built.
