file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_discovery_cache.dir/ablation_discovery_cache.cpp.o"
  "CMakeFiles/bench_ablation_discovery_cache.dir/ablation_discovery_cache.cpp.o.d"
  "bench_ablation_discovery_cache"
  "bench_ablation_discovery_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_discovery_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
