# Empty dependencies file for bench_table3_functionality.
# This may be replaced when dependencies are built.
