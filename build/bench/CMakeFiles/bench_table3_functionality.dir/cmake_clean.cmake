file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_functionality.dir/table3_functionality.cpp.o"
  "CMakeFiles/bench_table3_functionality.dir/table3_functionality.cpp.o.d"
  "bench_table3_functionality"
  "bench_table3_functionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_functionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
