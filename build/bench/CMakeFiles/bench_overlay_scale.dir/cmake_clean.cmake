file(REMOVE_RECURSE
  "CMakeFiles/bench_overlay_scale.dir/overlay_scale.cpp.o"
  "CMakeFiles/bench_overlay_scale.dir/overlay_scale.cpp.o.d"
  "bench_overlay_scale"
  "bench_overlay_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overlay_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
