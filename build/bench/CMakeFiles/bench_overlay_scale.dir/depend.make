# Empty dependencies file for bench_overlay_scale.
# This may be replaced when dependencies are built.
