
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/chaos_property_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/chaos_property_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/chaos_property_test.cpp.o.d"
  "/root/repo/tests/integration/dynamic_groups_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/dynamic_groups_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/dynamic_groups_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/msc_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/msc_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/msc_test.cpp.o.d"
  "/root/repo/tests/integration/soak_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/soak_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/soak_test.cpp.o.d"
  "/root/repo/tests/integration/table8_scenario_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/table8_scenario_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/table8_scenario_test.cpp.o.d"
  "/root/repo/tests/integration/working_principle_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/working_principle_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/working_principle_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/ph_community.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/CMakeFiles/ph_sns.dir/DependInfo.cmake"
  "/root/repo/build/src/peerhood/CMakeFiles/ph_peerhood.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
