
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/community/app_test.cpp" "tests/CMakeFiles/community_test.dir/community/app_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/app_test.cpp.o.d"
  "/root/repo/tests/community/client_test.cpp" "tests/CMakeFiles/community_test.dir/community/client_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/client_test.cpp.o.d"
  "/root/repo/tests/community/groups_property_test.cpp" "tests/CMakeFiles/community_test.dir/community/groups_property_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/groups_property_test.cpp.o.d"
  "/root/repo/tests/community/groups_test.cpp" "tests/CMakeFiles/community_test.dir/community/groups_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/groups_test.cpp.o.d"
  "/root/repo/tests/community/interests_test.cpp" "tests/CMakeFiles/community_test.dir/community/interests_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/interests_test.cpp.o.d"
  "/root/repo/tests/community/persistence_test.cpp" "tests/CMakeFiles/community_test.dir/community/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/persistence_test.cpp.o.d"
  "/root/repo/tests/community/profile_test.cpp" "tests/CMakeFiles/community_test.dir/community/profile_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/profile_test.cpp.o.d"
  "/root/repo/tests/community/server_ops_test.cpp" "tests/CMakeFiles/community_test.dir/community/server_ops_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/server_ops_test.cpp.o.d"
  "/root/repo/tests/community/shell_test.cpp" "tests/CMakeFiles/community_test.dir/community/shell_test.cpp.o" "gcc" "tests/CMakeFiles/community_test.dir/community/shell_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ph_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/community/CMakeFiles/ph_community.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/CMakeFiles/ph_sns.dir/DependInfo.cmake"
  "/root/repo/build/src/peerhood/CMakeFiles/ph_peerhood.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
