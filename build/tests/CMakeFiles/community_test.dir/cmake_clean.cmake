file(REMOVE_RECURSE
  "CMakeFiles/community_test.dir/community/app_test.cpp.o"
  "CMakeFiles/community_test.dir/community/app_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/client_test.cpp.o"
  "CMakeFiles/community_test.dir/community/client_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/groups_property_test.cpp.o"
  "CMakeFiles/community_test.dir/community/groups_property_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/groups_test.cpp.o"
  "CMakeFiles/community_test.dir/community/groups_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/interests_test.cpp.o"
  "CMakeFiles/community_test.dir/community/interests_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/persistence_test.cpp.o"
  "CMakeFiles/community_test.dir/community/persistence_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/profile_test.cpp.o"
  "CMakeFiles/community_test.dir/community/profile_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/server_ops_test.cpp.o"
  "CMakeFiles/community_test.dir/community/server_ops_test.cpp.o.d"
  "CMakeFiles/community_test.dir/community/shell_test.cpp.o"
  "CMakeFiles/community_test.dir/community/shell_test.cpp.o.d"
  "community_test"
  "community_test.pdb"
  "community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
