file(REMOVE_RECURSE
  "CMakeFiles/sns_test.dir/sns/browser_test.cpp.o"
  "CMakeFiles/sns_test.dir/sns/browser_test.cpp.o.d"
  "CMakeFiles/sns_test.dir/sns/server_test.cpp.o"
  "CMakeFiles/sns_test.dir/sns/server_test.cpp.o.d"
  "sns_test"
  "sns_test.pdb"
  "sns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
