# Empty compiler generated dependencies file for peerhood_test.
# This may be replaced when dependencies are built.
