file(REMOVE_RECURSE
  "CMakeFiles/peerhood_test.dir/peerhood/connection_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/connection_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/daemon_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/daemon_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/library_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/library_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/monitoring_property_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/monitoring_property_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/plugin_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/plugin_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/seamless_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/seamless_test.cpp.o.d"
  "CMakeFiles/peerhood_test.dir/peerhood/stack_test.cpp.o"
  "CMakeFiles/peerhood_test.dir/peerhood/stack_test.cpp.o.d"
  "peerhood_test"
  "peerhood_test.pdb"
  "peerhood_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peerhood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
