file(REMOVE_RECURSE
  "CMakeFiles/ph_proto.dir/codec.cpp.o"
  "CMakeFiles/ph_proto.dir/codec.cpp.o.d"
  "CMakeFiles/ph_proto.dir/daemon.cpp.o"
  "CMakeFiles/ph_proto.dir/daemon.cpp.o.d"
  "CMakeFiles/ph_proto.dir/messages.cpp.o"
  "CMakeFiles/ph_proto.dir/messages.cpp.o.d"
  "libph_proto.a"
  "libph_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
