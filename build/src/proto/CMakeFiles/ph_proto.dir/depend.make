# Empty dependencies file for ph_proto.
# This may be replaced when dependencies are built.
