file(REMOVE_RECURSE
  "libph_proto.a"
)
