
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/adapter.cpp" "src/net/CMakeFiles/ph_net.dir/adapter.cpp.o" "gcc" "src/net/CMakeFiles/ph_net.dir/adapter.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/ph_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/ph_net.dir/link.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/net/CMakeFiles/ph_net.dir/medium.cpp.o" "gcc" "src/net/CMakeFiles/ph_net.dir/medium.cpp.o.d"
  "/root/repo/src/net/tech.cpp" "src/net/CMakeFiles/ph_net.dir/tech.cpp.o" "gcc" "src/net/CMakeFiles/ph_net.dir/tech.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
