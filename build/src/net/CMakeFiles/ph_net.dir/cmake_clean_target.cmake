file(REMOVE_RECURSE
  "libph_net.a"
)
