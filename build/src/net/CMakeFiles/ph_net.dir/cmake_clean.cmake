file(REMOVE_RECURSE
  "CMakeFiles/ph_net.dir/adapter.cpp.o"
  "CMakeFiles/ph_net.dir/adapter.cpp.o.d"
  "CMakeFiles/ph_net.dir/link.cpp.o"
  "CMakeFiles/ph_net.dir/link.cpp.o.d"
  "CMakeFiles/ph_net.dir/medium.cpp.o"
  "CMakeFiles/ph_net.dir/medium.cpp.o.d"
  "CMakeFiles/ph_net.dir/tech.cpp.o"
  "CMakeFiles/ph_net.dir/tech.cpp.o.d"
  "libph_net.a"
  "libph_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
