# Empty compiler generated dependencies file for ph_net.
# This may be replaced when dependencies are built.
