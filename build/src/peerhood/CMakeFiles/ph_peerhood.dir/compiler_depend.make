# Empty compiler generated dependencies file for ph_peerhood.
# This may be replaced when dependencies are built.
