file(REMOVE_RECURSE
  "libph_peerhood.a"
)
