file(REMOVE_RECURSE
  "CMakeFiles/ph_peerhood.dir/connection.cpp.o"
  "CMakeFiles/ph_peerhood.dir/connection.cpp.o.d"
  "CMakeFiles/ph_peerhood.dir/daemon.cpp.o"
  "CMakeFiles/ph_peerhood.dir/daemon.cpp.o.d"
  "CMakeFiles/ph_peerhood.dir/library.cpp.o"
  "CMakeFiles/ph_peerhood.dir/library.cpp.o.d"
  "CMakeFiles/ph_peerhood.dir/plugin.cpp.o"
  "CMakeFiles/ph_peerhood.dir/plugin.cpp.o.d"
  "CMakeFiles/ph_peerhood.dir/session.cpp.o"
  "CMakeFiles/ph_peerhood.dir/session.cpp.o.d"
  "CMakeFiles/ph_peerhood.dir/stack.cpp.o"
  "CMakeFiles/ph_peerhood.dir/stack.cpp.o.d"
  "libph_peerhood.a"
  "libph_peerhood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_peerhood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
