
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peerhood/connection.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/connection.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/connection.cpp.o.d"
  "/root/repo/src/peerhood/daemon.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/daemon.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/daemon.cpp.o.d"
  "/root/repo/src/peerhood/library.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/library.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/library.cpp.o.d"
  "/root/repo/src/peerhood/plugin.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/plugin.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/plugin.cpp.o.d"
  "/root/repo/src/peerhood/session.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/session.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/session.cpp.o.d"
  "/root/repo/src/peerhood/stack.cpp" "src/peerhood/CMakeFiles/ph_peerhood.dir/stack.cpp.o" "gcc" "src/peerhood/CMakeFiles/ph_peerhood.dir/stack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
