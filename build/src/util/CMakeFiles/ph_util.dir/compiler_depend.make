# Empty compiler generated dependencies file for ph_util.
# This may be replaced when dependencies are built.
