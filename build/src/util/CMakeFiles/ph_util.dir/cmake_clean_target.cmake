file(REMOVE_RECURSE
  "libph_util.a"
)
