file(REMOVE_RECURSE
  "CMakeFiles/ph_util.dir/bytes.cpp.o"
  "CMakeFiles/ph_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ph_util.dir/error.cpp.o"
  "CMakeFiles/ph_util.dir/error.cpp.o.d"
  "CMakeFiles/ph_util.dir/log.cpp.o"
  "CMakeFiles/ph_util.dir/log.cpp.o.d"
  "CMakeFiles/ph_util.dir/strings.cpp.o"
  "CMakeFiles/ph_util.dir/strings.cpp.o.d"
  "libph_util.a"
  "libph_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
