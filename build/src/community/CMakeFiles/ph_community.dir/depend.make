# Empty dependencies file for ph_community.
# This may be replaced when dependencies are built.
