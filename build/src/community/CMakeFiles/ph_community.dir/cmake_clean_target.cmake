file(REMOVE_RECURSE
  "libph_community.a"
)
