file(REMOVE_RECURSE
  "CMakeFiles/ph_community.dir/app.cpp.o"
  "CMakeFiles/ph_community.dir/app.cpp.o.d"
  "CMakeFiles/ph_community.dir/client.cpp.o"
  "CMakeFiles/ph_community.dir/client.cpp.o.d"
  "CMakeFiles/ph_community.dir/groups.cpp.o"
  "CMakeFiles/ph_community.dir/groups.cpp.o.d"
  "CMakeFiles/ph_community.dir/interests.cpp.o"
  "CMakeFiles/ph_community.dir/interests.cpp.o.d"
  "CMakeFiles/ph_community.dir/persistence.cpp.o"
  "CMakeFiles/ph_community.dir/persistence.cpp.o.d"
  "CMakeFiles/ph_community.dir/profile.cpp.o"
  "CMakeFiles/ph_community.dir/profile.cpp.o.d"
  "CMakeFiles/ph_community.dir/server.cpp.o"
  "CMakeFiles/ph_community.dir/server.cpp.o.d"
  "CMakeFiles/ph_community.dir/shell.cpp.o"
  "CMakeFiles/ph_community.dir/shell.cpp.o.d"
  "libph_community.a"
  "libph_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
