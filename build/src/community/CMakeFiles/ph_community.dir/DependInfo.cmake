
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/community/app.cpp" "src/community/CMakeFiles/ph_community.dir/app.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/app.cpp.o.d"
  "/root/repo/src/community/client.cpp" "src/community/CMakeFiles/ph_community.dir/client.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/client.cpp.o.d"
  "/root/repo/src/community/groups.cpp" "src/community/CMakeFiles/ph_community.dir/groups.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/groups.cpp.o.d"
  "/root/repo/src/community/interests.cpp" "src/community/CMakeFiles/ph_community.dir/interests.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/interests.cpp.o.d"
  "/root/repo/src/community/persistence.cpp" "src/community/CMakeFiles/ph_community.dir/persistence.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/persistence.cpp.o.d"
  "/root/repo/src/community/profile.cpp" "src/community/CMakeFiles/ph_community.dir/profile.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/profile.cpp.o.d"
  "/root/repo/src/community/server.cpp" "src/community/CMakeFiles/ph_community.dir/server.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/server.cpp.o.d"
  "/root/repo/src/community/shell.cpp" "src/community/CMakeFiles/ph_community.dir/shell.cpp.o" "gcc" "src/community/CMakeFiles/ph_community.dir/shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/peerhood/CMakeFiles/ph_peerhood.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
