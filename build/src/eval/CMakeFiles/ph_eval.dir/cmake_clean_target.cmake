file(REMOVE_RECURSE
  "libph_eval.a"
)
