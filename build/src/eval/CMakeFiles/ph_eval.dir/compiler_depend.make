# Empty compiler generated dependencies file for ph_eval.
# This may be replaced when dependencies are built.
