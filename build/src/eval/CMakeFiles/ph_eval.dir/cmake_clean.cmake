file(REMOVE_RECURSE
  "CMakeFiles/ph_eval.dir/scenarios.cpp.o"
  "CMakeFiles/ph_eval.dir/scenarios.cpp.o.d"
  "CMakeFiles/ph_eval.dir/table8.cpp.o"
  "CMakeFiles/ph_eval.dir/table8.cpp.o.d"
  "libph_eval.a"
  "libph_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
