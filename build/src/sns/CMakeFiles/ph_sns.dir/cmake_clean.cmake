file(REMOVE_RECURSE
  "CMakeFiles/ph_sns.dir/browser.cpp.o"
  "CMakeFiles/ph_sns.dir/browser.cpp.o.d"
  "CMakeFiles/ph_sns.dir/protocol.cpp.o"
  "CMakeFiles/ph_sns.dir/protocol.cpp.o.d"
  "CMakeFiles/ph_sns.dir/server.cpp.o"
  "CMakeFiles/ph_sns.dir/server.cpp.o.d"
  "CMakeFiles/ph_sns.dir/types.cpp.o"
  "CMakeFiles/ph_sns.dir/types.cpp.o.d"
  "libph_sns.a"
  "libph_sns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ph_sns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
