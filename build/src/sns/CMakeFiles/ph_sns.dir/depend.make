# Empty dependencies file for ph_sns.
# This may be replaced when dependencies are built.
