file(REMOVE_RECURSE
  "libph_sns.a"
)
