
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/browser.cpp" "src/sns/CMakeFiles/ph_sns.dir/browser.cpp.o" "gcc" "src/sns/CMakeFiles/ph_sns.dir/browser.cpp.o.d"
  "/root/repo/src/sns/protocol.cpp" "src/sns/CMakeFiles/ph_sns.dir/protocol.cpp.o" "gcc" "src/sns/CMakeFiles/ph_sns.dir/protocol.cpp.o.d"
  "/root/repo/src/sns/server.cpp" "src/sns/CMakeFiles/ph_sns.dir/server.cpp.o" "gcc" "src/sns/CMakeFiles/ph_sns.dir/server.cpp.o.d"
  "/root/repo/src/sns/types.cpp" "src/sns/CMakeFiles/ph_sns.dir/types.cpp.o" "gcc" "src/sns/CMakeFiles/ph_sns.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ph_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ph_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ph_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ph_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
