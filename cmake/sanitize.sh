#!/bin/sh
# Configure, build, and run the whole test suite under ASan + UBSan
# (the `asan-ubsan` preset in CMakePresets.json). Any sanitizer report
# aborts the offending test (abort_on_error / halt_on_error), so a clean
# exit here means a clean run. Usage, from the repository root:
#
#   ./cmake/sanitize.sh [extra ctest args, e.g. -R fault_test]
set -eu

cd "$(dirname "$0")/.."
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"
ctest --preset asan-ubsan -j "$(nproc)" "$@"
