# Smoke-runs two metric-dumping benches with tiny workloads and validates
# the JSON each writes. Invoked by the `ph_bench_smoke` CTest target
# (bench/CMakeLists.txt) as:
#
#   cmake -DMICROBENCH=... -DTABLE8=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/bench_smoke.cmake
#
# Fails (FATAL_ERROR → non-zero exit → test failure) when a bench exits
# non-zero, a dump is missing, or ph_obs_json_check rejects the JSON.

foreach(var MICROBENCH TABLE8 JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

# --- microbench: kernel throughput counters --------------------------------
set(micro_json ${WORK_DIR}/smoke_microbench_metrics.json)
file(REMOVE ${micro_json})
run_checked("bench_microbench"
  ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${micro_json}
  ${MICROBENCH} --benchmark_filter=BM_SimulatorScheduleRun/1000)
run_checked("ph_obs_json_check(microbench)"
  ${JSON_CHECK} ${micro_json} counter:sim.kernel.)

# --- table8: one seed per column, full per-layer registry ------------------
set(table8_json ${WORK_DIR}/smoke_table8_metrics.json)
file(REMOVE ${table8_json})
run_checked("bench_table8_sns_comparison"
  ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${table8_json} PH_TABLE8_RUNS=1
  ${TABLE8})
# The acceptance bar: at least one counter from every layer plus the
# Table 8 operation histograms (p50/p95/p99).
run_checked("ph_obs_json_check(table8)"
  ${JSON_CHECK} ${table8_json}
  counter:net. counter:peerhood. counter:sns. counter:community.
  histogram:eval.table8.)

message(STATUS "bench smoke OK: ${micro_json} ${table8_json}")
