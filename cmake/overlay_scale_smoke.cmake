# Overlay-scale acceptance smoke: run bench_overlay_scale on a small crowd
# with the fast path enabled, then validate the metrics dump. Invoked by
# the `ph_overlay_scale_smoke` CTest target (bench/CMakeLists.txt) as:
#
#   cmake -DOVERLAY_SCALE=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/overlay_scale_smoke.cmake
#
# The dump must carry the per-N scaling record (bench.overlay.*) plus live
# proximity-machinery instruments: spatial queries actually routed through
# the grid, pairs actually pruned, and a position cache that actually hit
# (counter_nonzero catches the "subsystem present but never exercised"
# regression a plain presence check would miss).

foreach(var OVERLAY_SCALE JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "overlay_scale_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

set(overlay_json ${WORK_DIR}/smoke_overlay_scale_metrics.json)
file(REMOVE ${overlay_json})
run_checked("bench_overlay_scale"
  ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${overlay_json}
  ${OVERLAY_SCALE} --devices=12 --window-min=2 --seed=7)
run_checked("ph_obs_json_check(overlay_scale)"
  ${JSON_CHECK} ${overlay_json}
  counter:bench.overlay.n12.signal_evals
  gauge:bench.overlay.n12.group_events_per_device_min
  gauge:bench.overlay.n12.position_cache_hit_rate
  gauge:bench.overlay.n12.sim_seconds_per_wall_second
  counter_nonzero:net.medium.spatial.queries
  counter_nonzero:net.medium.spatial.rebuilds
  counter_nonzero:net.medium.spatial.pairs_pruned
  counter_nonzero:net.medium.position_cache.hits
  counter_nonzero:net.medium.signal_cache.hits)

message(STATUS "overlay scale smoke OK: ${overlay_json}")
