# Drives the profiling acceptance test (`ph_prof_smoke`): run the same
# fork-based smoke binary as ph_ops_scrape_smoke (it scrapes every ops
# route, /profile included, from a live forked daemon), then lint the
# folded profile with ph_obs_json_check --folded —
#
#   profile.folded   --folded   non-empty, well-formed `stack count`
#                               lines; every stack rooted at the "loop"
#                               thread the daemon registered
#
#   cmake -DSMOKE=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/prof_smoke.cmake

foreach(var SMOKE JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "prof_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

set(out_dir ${WORK_DIR}/prof_scrape)
file(REMOVE_RECURSE ${out_dir})
file(MAKE_DIRECTORY ${out_dir})

run_checked("prof_smoke" ${SMOKE} ${out_dir})

# The folded scrape must parse (strict `thread[;center...] count` lines),
# hold at least one sample, and attribute everything to the loop thread.
run_checked("ph_obs_json_check(/profile)"
  ${JSON_CHECK} --folded ${out_dir}/profile.folded
  frame: frame:loop)

message(STATUS "prof smoke OK: ${out_dir}/profile.folded")
