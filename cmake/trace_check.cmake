# Runs bench_trace_scenario twice with the same seed, validates both dumps
# (metrics JSON including the spans/events sections, Chrome trace JSON),
# and byte-compares the two Chrome trace dumps — tracing's determinism
# guarantee, mirroring cmake/chaos_determinism.cmake. Invoked by the
# `ph_trace_check` CTest target (bench/CMakeLists.txt) as:
#
#   cmake -DTRACE_SCENARIO=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/trace_check.cmake

foreach(var TRACE_SCENARIO JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "trace_check.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

foreach(run a b)
  set(metrics_${run} ${WORK_DIR}/trace_scenario_metrics_${run}.json)
  set(trace_${run} ${WORK_DIR}/trace_scenario_trace_${run}.json)
  file(REMOVE ${metrics_${run}} ${trace_${run}})
  run_checked("bench_trace_scenario(${run})"
    ${CMAKE_COMMAND} -E env
    PH_METRICS_JSON=${metrics_${run}} PH_TRACE_JSON=${trace_${run}}
    PH_TRACE_SEED=11
    ${TRACE_SCENARIO})
endforeach()

# The metrics dump must carry well-formed spans/events sections with the
# operation root, the cross-device server handling span, and the network
# flight spans underneath.
run_checked("ph_obs_json_check(metrics)"
  ${JSON_CHECK} ${metrics_a}
  span:eval.table8.send_message span:community.rpc
  span:community.server.handle span:net.
  counter:obs.trace. counter:net. counter:peerhood.)

# The Chrome trace must be well-formed trace-event JSON with the same
# spans as named events plus the cross-device flow arrows.
run_checked("ph_obs_json_check(chrome)"
  ${JSON_CHECK} --chrome ${trace_a}
  eval.table8.send_message community.rpc community.server.handle causal)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${trace_a} ${trace_b}
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "tracing is non-deterministic: ${trace_a} and "
                      "${trace_b} differ for the same seed")
endif()

message(STATUS "trace check OK: ${trace_a} == ${trace_b}")
