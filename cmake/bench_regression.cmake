# Benchmark-trajectory regression gate (ISSUE 5 tentpole). Re-runs the
# report-emitting benches with the exact workloads the committed baselines
# were generated with, then diffs each BENCH_<name>.json candidate against
# bench/baselines/BENCH_<name>.json via ph_bench_compare — headline metrics
# are virtual-time deterministic, so drift beyond the tolerances in
# bench/baselines/tolerances.json is a behaviour change, not noise.
# Finally the gate proves it can actually catch a regression: it perturbs
# one latency headline by +20% and requires the comparison to FAIL.
#
# Invoked by the `ph_bench_regression` CTest target (bench/CMakeLists.txt):
#
#   cmake -DBENCH_COMPARE=... -DMICROBENCH=... -DTABLE8=...
#         -DOVERLAY_SCALE=... -DCHAOS_SOAK=... -DBASELINE_DIR=...
#         -DWORK_DIR=... -P cmake/bench_regression.cmake
#
# To regenerate baselines after an intentional behaviour change, run each
# bench with PH_BENCH_JSON pointed at bench/baselines/BENCH_<name>.json and
# the same workload settings used below (seeds, runs, minutes, args), then
# commit the new files with the change that moved the numbers.

foreach(var BENCH_COMPARE MICROBENCH TABLE8 OVERLAY_SCALE CHAOS_SOAK
            BASELINE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_regression.cmake: -D${var}=... is required")
  endif()
endforeach()
set(TOLERANCES ${BASELINE_DIR}/tolerances.json)

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

# Runs one bench (extra_args after a -- separator) with PH_BENCH_JSON plus
# any KEY=VALUE env settings, then compares against the committed baseline.
function(gate name binary)
  set(env_settings)
  set(extra_args)
  set(in_args FALSE)
  foreach(arg IN LISTS ARGN)
    if(arg STREQUAL "--")
      set(in_args TRUE)
    elseif(in_args)
      list(APPEND extra_args ${arg})
    else()
      list(APPEND env_settings ${arg})
    endif()
  endforeach()

  set(candidate ${WORK_DIR}/BENCH_${name}_candidate.json)
  file(REMOVE ${candidate})
  run_checked("bench(${name})"
    ${CMAKE_COMMAND} -E env PH_BENCH_JSON=${candidate} ${env_settings}
    ${binary} ${extra_args})
  set(baseline ${BASELINE_DIR}/BENCH_${name}.json)
  if(NOT EXISTS ${baseline})
    message(FATAL_ERROR "missing committed baseline ${baseline} — generate "
                        "it per the header of this script and commit it")
  endif()
  run_checked("ph_bench_compare(${name})"
    ${BENCH_COMPARE} ${baseline} ${candidate} ${TOLERANCES})
  message(STATUS "bench trajectory OK: ${name}")
endfunction()

# Workloads must match the committed baselines' `env` exactly —
# ph_bench_compare treats an env mismatch as a setup error.
gate(microbench ${MICROBENCH} -- --benchmark_filter=^$)
gate(table8_sns_comparison ${TABLE8} PH_TABLE8_RUNS=2)
gate(overlay_scale ${OVERLAY_SCALE} -- --devices=5,10 --window-min=2 --seed=1000)
gate(chaos_soak ${CHAOS_SOAK} PH_CHAOS_SEED=7 PH_CHAOS_MINUTES=3 PH_SAMPLE_MS=100)

# --- negative control: the gate must catch a 20% latency regression -------
# Perturb one Table-8 latency headline in the candidate it just passed and
# require the same comparison to fail.
set(good ${WORK_DIR}/BENCH_table8_sns_comparison_candidate.json)
set(perturbed ${WORK_DIR}/BENCH_table8_perturbed.json)
run_checked("ph_bench_compare(--perturb)"
  ${BENCH_COMPARE} --perturb peerhood.total_s 1.2 ${good} ${perturbed})
execute_process(
  COMMAND ${BENCH_COMPARE} ${BASELINE_DIR}/BENCH_table8_sns_comparison.json
          ${perturbed} ${TOLERANCES}
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(result EQUAL 0)
  message(FATAL_ERROR "regression gate is blind: a +20% peerhood.total_s "
                      "perturbation passed the comparison:\n${output}")
endif()

message(STATUS "bench regression gate OK (and the +20% perturbation failed "
               "as it must)")
