# Drives the ops-plane acceptance test (`ph_ops_scrape_smoke`): run the
# fork-based smoke binary, which leaves one scrape per ops route in
# WORK_DIR, then lint every scrape with ph_obs_json_check —
#
#   metrics.txt   --expo     live counters must be flowing
#   series.json   (default)  registry snapshot + sampled series rings
#   slo.json      non-empty  series_to_json shape (no metric sections)
#   flight.json   --chrome   Perfetto-loadable trace events
#
#   cmake -DSMOKE=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/ops_scrape_smoke.cmake

foreach(var SMOKE JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "ops_scrape_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

set(out_dir ${WORK_DIR}/ops_scrape)
file(REMOVE_RECURSE ${out_dir})
file(MAKE_DIRECTORY ${out_dir})

run_checked("ops_scrape_smoke" ${SMOKE} ${out_dir})

# The exposition must lint clean and show a live transport: discovery
# datagrams flowing, the socket loop instrumented, the common histogram
# families registered.
run_checked("ph_obs_json_check(/metrics)"
  ${JSON_CHECK} --expo ${out_dir}/metrics.txt
  counter_nonzero:transport.datagrams_sent
  counter:transport.channels_
  gauge:transport.socket.loop.wait_stall_us
  histogram:transport.socket.loop.lag_us
  histogram:transport.socket.loop.dispatch_us
  histogram:transport.handshake_us
  histogram:transport.channel_rtt_us)

# /series is a full to_json snapshot: metric sections plus the sampler's
# series rings, which must hold at least one sampled point by scrape time.
run_checked("ph_obs_json_check(/series)"
  ${JSON_CHECK} ${out_dir}/series.json
  counter_nonzero:transport.datagrams_sent
  series:transport.)

# /flight must be a well-formed Chrome trace dump.
run_checked("ph_obs_json_check(/flight)"
  ${JSON_CHECK} --chrome ${out_dir}/flight.json)

# /slo has its own shape (series_to_json): just require it to be present
# and carry the SLO section marker.
file(READ ${out_dir}/slo.json slo_body)
if(NOT slo_body MATCHES "\"series\"")
  message(FATAL_ERROR "/slo scrape has no 'series' section:\n${slo_body}")
endif()

message(STATUS "ops scrape smoke OK: ${out_dir}")
