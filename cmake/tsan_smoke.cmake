# Builds the parallel kernel/world tests under the `tsan` preset
# (build-tsan/) and runs the gtest binary directly — the tier-1 data-race
# gate for the sharded kernel. The lockstep suites drive real multi-thread
# runs (worker pool, cross-shard mailboxes, barrier hooks), so any missing
# happens-before edge in ShardedKernel or ParallelWorld surfaces here as a
# hard failure even though the plain build passes by luck of scheduling.
# Mirrors cmake/sanitize_smoke.cmake; invoked by the `ph_tsan_smoke` CTest
# target (tests/CMakeLists.txt) as:
#
#   cmake -DSOURCE_DIR=... -P cmake/tsan_smoke.cmake
#
# The first run pays a full TSan configure+build; later runs are
# incremental.

if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "tsan_smoke.cmake: -DSOURCE_DIR=... is required")
endif()

set(BUILD_DIR ${SOURCE_DIR}/build-tsan)
set(SMOKE_TARGETS parallel_test)

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

if(NOT EXISTS ${BUILD_DIR}/CMakeCache.txt)
  run_checked("configure(tsan)"
    ${CMAKE_COMMAND} --preset tsan -S ${SOURCE_DIR})
endif()

include(ProcessorCount)
ProcessorCount(NPROC)
if(NPROC EQUAL 0)
  set(NPROC 4)
endif()

run_checked("build(tsan smoke targets)"
  ${CMAKE_COMMAND} --build ${BUILD_DIR} --target ${SMOKE_TARGETS} -j ${NPROC})

# halt_on_error: the first race report fails the binary (and so the test)
# instead of logging and carrying on.
foreach(target ${SMOKE_TARGETS})
  run_checked("${target}(tsan)"
    ${CMAKE_COMMAND} -E env
    TSAN_OPTIONS=halt_on_error=1:abort_on_error=1
    ${BUILD_DIR}/tests/${target})
  message(STATUS "${target}: clean under TSan")
endforeach()
