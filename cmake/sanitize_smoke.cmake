# Builds the sim/net/obs/util unit tests under the `asan-ubsan` preset
# (build-asan/) and runs the gtest binaries directly. This keeps the
# pooling layers honest in tier-1: Arena/BufferPool poison recycled
# memory, so a use-after-free on a recycled block — the bug class manual
# pooling normally hides — aborts here even though the plain build cannot
# see it. Invoked by the `ph_sanitize_smoke` CTest target
# (tests/CMakeLists.txt) as:
#
#   cmake -DSOURCE_DIR=... -P cmake/sanitize_smoke.cmake
#
# The first run pays a full sanitizer configure+build; later runs are
# incremental. ./cmake/sanitize.sh remains the full-suite variant.

if(NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "sanitize_smoke.cmake: -DSOURCE_DIR=... is required")
endif()

set(BUILD_DIR ${SOURCE_DIR}/build-asan)
set(SMOKE_TARGETS util_test sim_test sim_alloc_test net_test obs_test
    parallel_test transport_test)

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

if(NOT EXISTS ${BUILD_DIR}/CMakeCache.txt)
  run_checked("configure(asan-ubsan)"
    ${CMAKE_COMMAND} --preset asan-ubsan -S ${SOURCE_DIR})
endif()

include(ProcessorCount)
ProcessorCount(NPROC)
if(NPROC EQUAL 0)
  set(NPROC 4)
endif()

run_checked("build(asan-ubsan smoke targets)"
  ${CMAKE_COMMAND} --build ${BUILD_DIR} --target ${SMOKE_TARGETS} -j ${NPROC})

# halt_on_error: any sanitizer report fails the binary (and so the test)
# instead of logging and carrying on.
foreach(target ${SMOKE_TARGETS})
  run_checked("${target}(asan-ubsan)"
    ${CMAKE_COMMAND} -E env
    ASAN_OPTIONS=halt_on_error=1:abort_on_error=1:detect_leaks=1
    UBSAN_OPTIONS=halt_on_error=1:abort_on_error=1
    ${BUILD_DIR}/tests/${target})
  message(STATUS "${target}: clean under ASan+UBSan")
endforeach()
