# Runs bench_chaos_soak twice with the same seed and a short horizon, then
# byte-compares the two PH_METRICS_JSON dumps — the fault plane's headline
# guarantee (ISSUE 2): identical seed, identical metrics. Then runs the
# sharded-kernel sweep (bench_overlay_scale --devices=none) at --threads=1,
# 2 and 8 and byte-compares metrics, series AND trace dumps across thread
# counts — the parallel kernel's headline guarantee (ISSUE 9): thread count
# must be unobservable in any deterministic artifact. Invoked by the
# `ph_chaos_determinism` CTest target (bench/CMakeLists.txt) as:
#
#   cmake -DCHAOS_SOAK=... -DOVERLAY_SCALE=... -DJSON_CHECK=...
#         -DWORK_DIR=... -P cmake/chaos_determinism.cmake

foreach(var CHAOS_SOAK OVERLAY_SCALE JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "chaos_determinism.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

foreach(run a b)
  set(json_${run} ${WORK_DIR}/chaos_soak_${run}.json)
  set(series_${run} ${WORK_DIR}/chaos_series_${run}.json)
  file(REMOVE ${json_${run}} ${series_${run}})
  run_checked("bench_chaos_soak(${run})"
    ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${json_${run}}
    PH_SERIES_JSON=${series_${run}}
    PH_CHAOS_SEED=7 PH_CHAOS_MINUTES=3 PH_SAMPLE_MS=100
    ${CHAOS_SOAK})
endforeach()

# The dump must be well-formed and actually contain fault windows, the
# layers they disturb, sampled health time-series, at least one SLO
# breach window driven by the injected faults, and the Mode 1 cost
# attribution counters (prof.<center>.events) — which, being inside this
# byte-compared dump, are thereby pinned deterministic.
run_checked("ph_obs_json_check(chaos_soak)"
  ${JSON_CHECK} ${json_a}
  counter:fault. counter:net. counter:peerhood.
  counter_nonzero:prof.net.delivery.events
  counter_nonzero:prof.peerhood. counter_nonzero:prof.obs.sample.events
  histogram:fault.recovery.
  series:peerhood.daemon. series:net.medium.datagrams_lost.rate
  slo_breach:)

foreach(pair "${json_a};${json_b}" "${series_a};${series_b}")
  list(GET pair 0 first)
  list(GET pair 1 second)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${first} ${second}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "chaos soak is non-deterministic: ${first} and "
                        "${second} differ for the same seed")
  endif()
endforeach()

message(STATUS "chaos determinism OK: metrics and sampled series are "
               "byte-identical across same-seed runs")

# Parallel kernel determinism: one seed, three thread counts, every dump
# byte-identical. --devices=none skips the classic full-stack sweep (whose
# dump carries wall-clock gauges); the artifact of record is the sharded
# world's registry/series/trace.
foreach(threads 1 2 8)
  set(pjson_${threads} ${WORK_DIR}/parallel_metrics_t${threads}.json)
  set(pseries_${threads} ${WORK_DIR}/parallel_series_t${threads}.json)
  set(ptrace_${threads} ${WORK_DIR}/parallel_trace_t${threads}.json)
  file(REMOVE ${pjson_${threads}} ${pseries_${threads}} ${ptrace_${threads}})
  run_checked("bench_overlay_scale(threads=${threads})"
    ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${pjson_${threads}}
    PH_SERIES_JSON=${pseries_${threads}}
    PH_TRACE_JSON=${ptrace_${threads}}
    PH_SAMPLE_MS=100
    ${OVERLAY_SCALE} --devices=none --parallel-devices=256
    --threads=${threads} --shards=8 --window-min=1 --seed=7)
endforeach()

run_checked("ph_obs_json_check(parallel)"
  ${JSON_CHECK} ${pjson_1}
  counter:world.scans counter:world.discoveries counter:world.pings_sent
  counter:sim.shard.0.events counter:sim.shard.7.events
  counter:world.migrations
  counter_nonzero:prof.world.scan.events
  counter_nonzero:prof.world.frame.events
  series:world.)

foreach(threads 2 8)
  foreach(kind pjson pseries ptrace)
    execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                    ${${kind}_1} ${${kind}_${threads}}
                    RESULT_VARIABLE same)
    if(NOT same EQUAL 0)
      message(FATAL_ERROR "parallel kernel is non-deterministic: "
                          "${${kind}_1} and ${${kind}_${threads}} differ "
                          "between --threads=1 and --threads=${threads}")
    endif()
  endforeach()
endforeach()

message(STATUS "parallel determinism OK: metrics, series and trace dumps "
               "are byte-identical at --threads=1, 2 and 8")
