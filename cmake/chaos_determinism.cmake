# Runs bench_chaos_soak twice with the same seed and a short horizon, then
# byte-compares the two PH_METRICS_JSON dumps — the fault plane's headline
# guarantee (ISSUE 2): identical seed, identical metrics. Invoked by the
# `ph_chaos_determinism` CTest target (bench/CMakeLists.txt) as:
#
#   cmake -DCHAOS_SOAK=... -DJSON_CHECK=... -DWORK_DIR=...
#         -P cmake/chaos_determinism.cmake

foreach(var CHAOS_SOAK JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "chaos_determinism.cmake: -D${var}=... is required")
  endif()
endforeach()

function(run_checked label)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE result
                  OUTPUT_VARIABLE output ERROR_VARIABLE output)
  if(NOT result EQUAL 0)
    message(FATAL_ERROR "${label} failed (exit ${result}):\n${output}")
  endif()
endfunction()

foreach(run a b)
  set(json_${run} ${WORK_DIR}/chaos_soak_${run}.json)
  set(series_${run} ${WORK_DIR}/chaos_series_${run}.json)
  file(REMOVE ${json_${run}} ${series_${run}})
  run_checked("bench_chaos_soak(${run})"
    ${CMAKE_COMMAND} -E env PH_METRICS_JSON=${json_${run}}
    PH_SERIES_JSON=${series_${run}}
    PH_CHAOS_SEED=7 PH_CHAOS_MINUTES=3 PH_SAMPLE_MS=100
    ${CHAOS_SOAK})
endforeach()

# The dump must be well-formed and actually contain fault windows, the
# layers they disturb, sampled health time-series, and at least one SLO
# breach window driven by the injected faults.
run_checked("ph_obs_json_check(chaos_soak)"
  ${JSON_CHECK} ${json_a}
  counter:fault. counter:net. counter:peerhood.
  histogram:fault.recovery.
  series:peerhood.daemon. series:net.medium.datagrams_lost.rate
  slo_breach:)

foreach(pair "${json_a};${json_b}" "${series_a};${series_b}")
  list(GET pair 0 first)
  list(GET pair 1 second)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${first} ${second}
                  RESULT_VARIABLE same)
  if(NOT same EQUAL 0)
    message(FATAL_ERROR "chaos soak is non-deterministic: ${first} and "
                        "${second} differ for the same seed")
  endif()
endforeach()

message(STATUS "chaos determinism OK: metrics and sampled series are "
               "byte-identical across same-seed runs")
