// Fitness system — the third §4.4 companion application: "This application
// promotes physical exercise through encouragement and motivates the users
// by providing instant analyzed feedback of the exercise. As Fitness
// System is built on top of PeerHood, this application can be offered as a
// service in Bluetooth, WLAN and GPRS network."
//
// A heart-rate belt (a tiny PeerHood device) streams beat samples over a
// session to the runner's PTD, which runs the FitnessSystem service: it
// analyses the stream and sends instant feedback ("speed up", "good pace",
// "slow down") back to the belt's display. The session rides Bluetooth and
// survives the runner's arm swinging the belt out of range momentarily —
// seamless connectivity at work in a non-social application.
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "peerhood/stack.hpp"
#include "util/check.hpp"

using namespace ph;

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(120));

  peerhood::StackConfig config;
  config.radios = {net::bluetooth_2_0()};
  config.device_name = "runner-ptd";
  peerhood::Stack ptd(medium,
                      std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                      config);
  config.device_name = "hr-belt";
  peerhood::Stack belt(medium,
                       std::make_unique<sim::StaticMobility>(sim::Vec2{1, 0}),
                       config);

  // The PTD's fitness service: analyses samples, answers with feedback.
  int samples_received = 0;
  std::shared_ptr<peerhood::Connection> service_session;
  PH_CHECK(ptd.library()
               .register_service(
                   "FitnessSystem", {{"sport", "running"}},
                   [&](peerhood::Connection connection) {
                     service_session = std::make_shared<peerhood::Connection>(
                         std::move(connection));
                     service_session->on_message([&](BytesView sample) {
                       ++samples_received;
                       const int bpm = std::stoi(to_text(sample));
                       const char* feedback = bpm < 120   ? "speed up!"
                                              : bpm <= 165 ? "good pace"
                                                           : "slow down!";
                       service_session->send(to_bytes(feedback));
                     });
                   })
               .ok());

  // The belt finds the service and streams one sample per second for a
  // two-minute interval run: warm-up, push, cool-down.
  peerhood::Connection stream;
  int feedback_count = 0;
  std::string last_feedback;
  auto on_ptd = [&](const peerhood::NeighbourEvent& event) {
    if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) return;
    const peerhood::DeviceInfo& info = event.device;
    if (info.find_service("FitnessSystem") == nullptr || stream.valid()) return;
    belt.library().connect(
        info.id, "FitnessSystem", {},
        [&](Result<peerhood::Connection> result) {
          PH_CHECK(result.ok());
          stream = *result;
          stream.on_message([&](BytesView feedback) {
            ++feedback_count;
            const std::string text = to_text(feedback);
            if (text != last_feedback) {
              std::printf("[t=%5.1fs] belt display: %s\n",
                          sim::to_seconds(simulator.now()), text.c_str());
              last_feedback = text;
            }
          });
          // Self-rescheduling tick; shared_ptr keeps the closure alive
          // across virtual time.
          auto second = std::make_shared<int>(0);
          auto beat = std::make_shared<std::function<void()>>();
          *beat = [&, second, beat] {
            if (!stream.open() || *second >= 120) return;
            // Warm-up 100->140, push to 180, cool back down.
            int bpm;
            if (*second < 40) {
              bpm = 100 + *second;
            } else if (*second < 80) {
              bpm = 140 + (*second - 40);
            } else {
              bpm = 180 - (*second - 80);
            }
            stream.send(to_bytes(std::to_string(bpm)));
            ++*second;
            simulator.schedule(sim::seconds(1), *beat);
          };
          (*beat)();
        });
  };
  belt.daemon().monitor_all(std::move(on_ptd));

  // 60 s in, the belt's radio drops for two seconds (sleeve over the
  // antenna); the seamless session resumes and no sample is lost.
  simulator.schedule(sim::seconds(60), [&] {
    std::printf("[t=%5.1fs] belt radio glitch...\n",
                sim::to_seconds(simulator.now()));
    belt.set_radio_powered(net::Technology::bluetooth, false);
  });
  simulator.schedule(sim::seconds(62), [&] {
    belt.set_radio_powered(net::Technology::bluetooth, true);
  });

  simulator.run_until(sim::minutes(4));
  std::printf("[t=%5.1fs] workout done: %d samples analysed, %d feedback "
              "messages, %d handover(s)\n",
              sim::to_seconds(simulator.now()), samples_received,
              feedback_count, stream.handover_count());
  PH_CHECK(samples_received == 120);  // exactly-once across the glitch
  return 0;
}
