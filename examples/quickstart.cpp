// Quickstart: two PeerHood devices meet over Bluetooth, dynamic group
// discovery forms a "football" group, and the users exchange a message.
//
//   $ ./quickstart
//
// Everything runs on simulated virtual time; the printed timestamps are
// simulated seconds since power-on.
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

using namespace ph;

int main() {
  // Narrate what the middleware does.
  Logger::instance().set_level(LogLevel::info);

  // 1. The world: a discrete-event simulator and a radio medium.
  sim::Simulator simulator;
  Logger::instance().set_clock([&simulator] { return simulator.now(); });
  net::Medium medium(simulator, sim::Rng(/*seed=*/1));

  // 2. Two devices three metres apart, each with a Bluetooth radio, a
  //    PeerHood daemon and the PeerHood Community application.
  peerhood::StackConfig config;
  config.radios = {net::bluetooth_2_0()};
  config.device_name = "alice-phone";
  peerhood::Stack alice_phone(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config);
  config.device_name = "bob-laptop";
  peerhood::Stack bob_laptop(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config);

  community::CommunityApp alice(alice_phone);
  community::CommunityApp bob(bob_laptop);

  // 3. Profiles: create an account, add interests, log in.
  PH_CHECK(alice.create_account("alice", "secret").ok());
  PH_CHECK(alice.login("alice", "secret").ok());
  PH_CHECK(alice.add_interest("football").ok());
  PH_CHECK(alice.add_interest("jazz").ok());

  PH_CHECK(bob.create_account("bob", "hunter2").ok());
  PH_CHECK(bob.login("bob", "hunter2").ok());
  PH_CHECK(bob.add_interest("football").ok());
  PH_CHECK(bob.add_interest("chess").ok());

  // 4. Let the neighbourhood run: the Bluetooth inquiry takes ~10.24
  //    simulated seconds, then the devices probe each other's interests
  //    and the shared "football" group forms on both sides.
  simulator.run_for(sim::seconds(15));

  auto group = alice.groups().group("football");
  PH_CHECK(group.ok() && group->formed());
  std::printf("\n[t=%.1fs] alice's football group members:", sim::to_seconds(simulator.now()));
  for (const auto& member : group->members) std::printf(" %s", member.c_str());
  std::printf("\n");

  // 5. Alice messages Bob (Figure 17's PS_MSG exchange).
  bool sent = false;
  alice.client().send_message("bob", "match tonight",
                              "fancy watching the game at 7?",
                              [&](Result<void> result) {
                                PH_CHECK(result.ok());
                                sent = true;
                              });
  while (!sent) simulator.run_for(sim::milliseconds(100));

  const proto::MailData& mail = bob.active()->inbox().front();
  std::printf("[t=%.1fs] bob's inbox: from=%s subject=\"%s\" body=\"%s\"\n",
              sim::to_seconds(simulator.now()), mail.sender.c_str(),
              mail.subject.c_str(), mail.body.c_str());

  // 6. Bob walks away; PeerHood monitoring dissolves the group.
  std::printf("[t=%.1fs] bob walks away...\n", sim::to_seconds(simulator.now()));
  medium.set_mobility(bob_laptop.id(),
                      std::make_unique<sim::LinearMobility>(
                          sim::Vec2{3, 0}, sim::Vec2{1.5, 0.0},
                          simulator.now()));
  while (alice.groups().group("football")->formed()) {
    simulator.run_for(sim::seconds(1));
  }
  std::printf("[t=%.1fs] football group dissolved — bob left Bluetooth range\n",
              sim::to_seconds(simulator.now()));
  return 0;
}
