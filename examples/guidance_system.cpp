// Guidance system — the thesis' second §4.4 companion application:
// "The guidance system offers guidance to travelers in some strange
// environment into some selected destinations", built on predictive
// Bluetooth guidance points.
//
// Guidance points are fixed PeerHood devices along a campus path, each
// registering a "Guidance" service that knows the direction to every
// destination from its own position. A traveller's PTD monitors the
// neighbourhood; whenever a new guidance point comes into Bluetooth range
// it asks for the next leg towards the chosen destination and follows it.
// The traveller reaches the destination purely by hopping between
// guidance points — no map, no GPS, exactly the thesis' scenario.
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "peerhood/stack.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct GuidancePoint {
  std::string name;
  sim::Vec2 position;
  /// Where to walk next for each destination ("" = you have arrived).
  std::map<std::string, sim::Vec2> next_leg;
  std::unique_ptr<peerhood::Stack> stack;
  std::vector<std::shared_ptr<peerhood::Connection>> sessions;
};

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(99));

  // Three guidance points on the way to the library, 8 m apart (each hop
  // within Bluetooth range of the next point's surroundings).
  std::vector<std::unique_ptr<GuidancePoint>> points;
  auto add_point = [&](const std::string& name, sim::Vec2 pos,
                       sim::Vec2 towards_library) {
    auto point = std::make_unique<GuidancePoint>();
    point->name = name;
    point->position = pos;
    point->next_leg["library"] = towards_library;
    peerhood::StackConfig config;
    config.device_name = name;
    config.radios = {net::bluetooth_2_0()};
    point->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(pos), config);
    GuidancePoint* raw = point.get();
    PH_CHECK(point->stack->library()
                 .register_service(
                     "Guidance", {{"operator", "campus"}},
                     [raw, &simulator](peerhood::Connection connection) {
                       auto held = std::make_shared<peerhood::Connection>(
                           std::move(connection));
                       raw->sessions.push_back(held);
                       held->on_message([raw, held, &simulator](BytesView dest) {
                         const std::string destination = to_text(dest);
                         auto leg = raw->next_leg.find(destination);
                         std::string answer =
                             leg == raw->next_leg.end()
                                 ? std::string("UNKNOWN")
                                 : std::to_string(leg->second.x) + "," +
                                       std::to_string(leg->second.y);
                         std::printf("[t=%5.1fs] %s: guiding traveller to %s\n",
                                     sim::to_seconds(simulator.now()),
                                     raw->name.c_str(), answer.c_str());
                         held->send(to_bytes(answer));
                       });
                     })
                 .ok());
    points.push_back(std::move(point));
  };
  add_point("gp-entrance", {0, 0}, {8, 0});
  add_point("gp-courtyard", {8, 0}, {16, 0});
  add_point("gp-corridor", {16, 0}, {16, 8});
  const sim::Vec2 library{16, 8};

  // The traveller starts at the entrance and only moves where guidance
  // points send them.
  peerhood::StackConfig config;
  config.device_name = "traveller-ptd";
  config.radios = {net::bluetooth_2_0()};
  peerhood::Stack traveller(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{-2, 0}), config);

  std::set<peerhood::DeviceId> asked;
  bool arrived = false;
  auto on_point = [&](const peerhood::NeighbourEvent& event) {
    if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) return;
    const peerhood::DeviceInfo& info = event.device;
    if (arrived || info.find_service("Guidance") == nullptr) return;
    if (!asked.insert(info.id).second) return;  // one question per point
    traveller.library().connect(
        info.id, "Guidance", {},
        [&](Result<peerhood::Connection> result) {
          if (!result) return;
          auto held = std::make_shared<peerhood::Connection>(*result);
          held->on_message([&, held](BytesView answer) {
            const std::string text = to_text(answer);
            held->close();
            if (arrived) return;  // later answers must not divert us
            const std::size_t comma = text.find(',');
            if (comma == std::string::npos) return;
            const sim::Vec2 target{std::stod(text.substr(0, comma)),
                                   std::stod(text.substr(comma + 1))};
            // Walk to the advised waypoint at 1.2 m/s.
            const sim::Vec2 from = medium.position(traveller.id());
            const double dist = sim::distance(from, target);
            const sim::Time now = simulator.now();
            medium.set_mobility(
                traveller.id(),
                std::make_unique<sim::WaypointMobility>(
                    std::vector<sim::WaypointMobility::Waypoint>{
                        {now, from},
                        {now + sim::seconds(dist / 1.2), target}}));
            std::printf("[t=%5.1fs] traveller: walking to (%.0f, %.0f)\n",
                        sim::to_seconds(now), target.x, target.y);
            if (target == library) arrived = true;
          });
          held->send(to_bytes("library"));
        });
  };
  traveller.daemon().monitor_all(std::move(on_point));

  simulator.run_until(sim::minutes(5));
  const sim::Vec2 final_pos = medium.position(traveller.id());
  PH_CHECK(sim::distance(final_pos, library) < 0.5);
  std::printf("[t=%5.1fs] traveller reached the library at (%.1f, %.1f) by "
              "hopping %zu guidance points\n",
              sim::to_seconds(simulator.now()), final_pos.x, final_pos.y,
              asked.size());
  return 0;
}
