// Campus café — the thesis' "instant local community" scenario (§5.1:
// "very much feasible in instant local communities like in university or
// pub").
//
// A café with a handful of regulars sitting at tables and students
// wandering in and out (random-waypoint mobility). Every device runs
// PeerHood Community; interest groups form and churn as people move. The
// example prints a "café board" every simulated minute: who is around and
// which groups exist, then demonstrates semantics teaching live — merging
// the "biking" and "cycling" crowds into one group.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Person {
  std::string name;
  std::vector<std::string> interests;
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(2026));
  sim::Rng mobility_rng(7);

  std::vector<std::unique_ptr<Person>> people;
  auto arrive = [&](const std::string& name,
                    std::vector<std::string> interests,
                    std::unique_ptr<sim::MobilityModel> mobility) {
    auto person = std::make_unique<Person>();
    person->name = name;
    person->interests = interests;
    peerhood::StackConfig config;
    config.device_name = name + "-ptd";
    config.radios = {net::bluetooth_2_0()};
    person->stack = std::make_unique<peerhood::Stack>(medium,
                                                      std::move(mobility),
                                                      config);
    person->app = std::make_unique<community::CommunityApp>(*person->stack);
    PH_CHECK(person->app->create_account(name, "pw").ok());
    PH_CHECK(person->app->login(name, "pw").ok());
    for (const auto& interest : interests) {
      PH_CHECK(person->app->add_interest(interest).ok());
    }
    people.push_back(std::move(person));
    return people.back().get();
  };

  // The café is a 12x12 m room. Regulars sit at tables (static).
  Person* maria =
      arrive("maria", {"espresso", "cycling"},
             std::make_unique<sim::StaticMobility>(sim::Vec2{2, 2}));
  arrive("jussi", {"espresso", "ice hockey"},
         std::make_unique<sim::StaticMobility>(sim::Vec2{8, 3}));
  arrive("lena", {"biking", "photography"},
         std::make_unique<sim::StaticMobility>(sim::Vec2{4, 9}));

  // Students wander around the room.
  for (int i = 0; i < 4; ++i) {
    sim::RandomWaypoint::Config wander;
    wander.area_min = {0, 0};
    wander.area_max = {12, 12};
    wander.speed_min_mps = 0.3;
    wander.speed_max_mps = 1.0;
    arrive("student" + std::to_string(i),
           i % 2 == 0 ? std::vector<std::string>{"espresso", "exams"}
                      : std::vector<std::string>{"cycling", "exams"},
           std::make_unique<sim::RandomWaypoint>(wander, mobility_rng.fork()));
  }

  auto print_board = [&] {
    std::printf("\n=== café board at t=%.0fs ===\n",
                sim::to_seconds(simulator.now()));
    for (const auto& person : people) {
      auto groups = person->app->groups().formed_groups();
      if (groups.empty()) continue;
      std::printf("%-10s sees:", person->name.c_str());
      for (const auto& group : groups) {
        std::printf(" %s(%zu)", group.interest.c_str(), group.members.size());
      }
      std::printf("\n");
    }
  };

  // Let the café life run for three simulated minutes.
  for (int minute = 1; minute <= 3; ++minute) {
    simulator.run_for(sim::minutes(1));
    print_board();
  }

  // Maria notices the cycling/biking split and teaches the semantics
  // (the thesis' future-work feature): her groups merge immediately.
  auto cycling_before = maria->app->groups().group("cycling");
  std::printf("\nmaria's cycling group before teaching: %zu member(s)\n",
              cycling_before.ok() ? cycling_before->members.size() : 0);
  PH_CHECK(maria->app->teach_synonym("cycling", "biking").ok());
  auto merged = maria->app->groups().group("cycling");
  std::printf("maria teaches cycling == biking -> merged group '%s' with %zu member(s):",
              merged->interest.c_str(), merged->members.size());
  for (const auto& member : merged->members) std::printf(" %s", member.c_str());
  std::printf("\n");

  // Espresso drinkers in range of maria right now, via the live query path
  // (Figure 12 + PS_GETINTERESTEDMEMBERLIST).
  bool done = false;
  maria->app->client().get_interested_members(
      "espresso", [&](Result<std::vector<std::string>> members) {
        PH_CHECK(members.ok());
        std::printf("\nespresso drinkers near maria:");
        for (const auto& member : *members) std::printf(" %s", member.c_str());
        std::printf("\n");
        done = true;
      });
  while (!done) simulator.run_for(sim::milliseconds(100));
  return 0;
}
