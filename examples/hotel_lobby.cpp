// Hotel lobby — infrastructure-mode WLAN (thesis §2.4.2) carrying the
// community across a space far larger than any single radio's reach.
//
// A conference-hotel lobby, 180 m end to end, covered by two access
// points. Guests scattered across the whole floor are far outside mutual
// ad-hoc range, yet the PeerHood Community finds them all through the APs.
// Mid-evening one AP fails: the sessions it carried break, the daemons
// notice the vanished half of the neighbourhood, and the groups shrink to
// the surviving cell — then heal when the AP comes back.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Guest {
  std::string name;
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(1908));

  // Two cells cover the lobby: west AP at x=40, east AP at x=140.
  const net::NodeId west_ap = medium.add_access_point("west-ap", {40, 0}, 100.0);
  medium.add_access_point("east-ap", {140, 0}, 100.0);

  net::TechProfile wlan = net::wlan_80211b_infrastructure();

  std::vector<std::unique_ptr<Guest>> guests;
  auto check_in = [&](const std::string& name, double x,
                      std::vector<std::string> interests) {
    auto guest = std::make_unique<Guest>();
    guest->name = name;
    peerhood::StackConfig config;
    config.device_name = name + "-ptd";
    config.radios = {wlan};
    guest->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(sim::Vec2{x, 5}), config);
    guest->app = std::make_unique<community::CommunityApp>(*guest->stack);
    PH_CHECK(guest->app->create_account(name, "pw").ok());
    PH_CHECK(guest->app->login(name, "pw").ok());
    for (const auto& interest : interests) {
      PH_CHECK(guest->app->add_interest(interest).ok());
    }
    guests.push_back(std::move(guest));
    return guests.back().get();
  };

  // Conference guests spread across the whole 180 m lobby.
  Guest* ana = check_in("ana", 5, {"middleware", "sauna"});
  check_in("beni", 60, {"middleware", "jazz"});
  check_in("chris", 110, {"middleware", "sauna"});
  Guest* dora = check_in("dora", 175, {"sauna", "jazz"});

  simulator.run_for(sim::seconds(10));
  auto print_groups = [&](const char* label) {
    std::printf("\n-- %s (t=%.0fs)\n", label, sim::to_seconds(simulator.now()));
    for (const auto& guest : guests) {
      std::printf("%-7s:", guest->name.c_str());
      for (const auto& group : guest->app->groups().formed_groups()) {
        std::printf(" %s(%zu)", group.interest.c_str(), group.members.size());
      }
      std::printf("\n");
    }
  };
  print_groups("full lobby, both APs up");
  // Ana (x=5, west cell) and dora (x=175, east cell) share the sauna
  // group even though they are 170 m apart — no ad-hoc radio reaches that.
  PH_CHECK(ana->app->groups().group("sauna")->members.contains("dora"));

  // Ana messages dora across the lobby.
  bool delivered = false;
  ana->app->send_message("dora", "sauna?", "meet at the rooftop sauna at 9?",
                         [&](Result<void> result) {
                           PH_CHECK(result.ok());
                           delivered = true;
                         });
  while (!delivered) simulator.run_for(sim::milliseconds(100));
  std::printf("\nana -> dora delivered across both cells (t=%.1fs)\n",
              sim::to_seconds(simulator.now()));

  // The west AP dies. Ana only hears the west AP (x=5 is 135 m from the
  // east one), so she drops out of everyone's neighbourhood.
  std::printf("\n!! west AP power failure\n");
  medium.set_access_point_active(west_ap, false);
  while (dora->app->groups().group("sauna")->members.contains("ana")) {
    simulator.run_for(sim::seconds(1));
  }
  print_groups("west cell dark");
  PH_CHECK(!dora->app->groups().group("sauna")->members.contains("ana"));

  // Power returns; the neighbourhood heals on the next discovery rounds.
  std::printf("\n!! west AP back online\n");
  medium.set_access_point_active(west_ap, true);
  while (!dora->app->groups().group("sauna")->members.contains("ana")) {
    simulator.run_for(sim::seconds(1));
  }
  print_groups("healed");
  std::printf("\nlobby community recovered at t=%.0fs\n",
              sim::to_seconds(simulator.now()));
  return 0;
}
