// community_cli — the reference application's terminal interface
// (thesis Figure 10 and the Appendix 2 screenshots), scriptable.
//
//   $ ./community_cli                 # replays the built-in demo session
//   $ ./community_cli - < script.txt  # runs your own commands from stdin
//
// The program builds a three-device Bluetooth neighbourhood (you +
// "alice" + "bob", both logged in with interests and shared content) and
// drives YOUR device's shell. Virtual time advances automatically while
// commands wait for the network.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/shell.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Device {
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

Device make_device(net::Medium& medium, const std::string& name, sim::Vec2 pos) {
  Device device;
  peerhood::StackConfig config;
  config.device_name = name;
  config.radios = {net::bluetooth_2_0()};
  device.stack = std::make_unique<peerhood::Stack>(
      medium, std::make_unique<sim::StaticMobility>(pos), config);
  device.app = std::make_unique<community::CommunityApp>(*device.stack);
  return device;
}

const char* kDemoScript[] = {
    "menu",
    "create me secret",
    "login me secret",
    "set name Bishal",
    "set about testing PeerHood Community",
    "interest add football",
    "interest add movies",
    "profile",
    "members",
    "allinterests",
    "group list",
    "group members football",
    "profile alice",
    "comment alice nice profile!",
    "msg alice hello | are you going to the seminar?",
    "trust list alice",
    "shared alice",
    "fetch alice holiday-photos.zip",
    "teach movies = films",
    "group members movies",
    "devices",
    "services",
    "inbox",
    "logout",
};

}  // namespace

int main(int argc, char** argv) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(8));

  Device mine = make_device(medium, "my-ptd", {0, 0});
  Device alice = make_device(medium, "alice-ptd", {3, 0});
  Device bob = make_device(medium, "bob-ptd", {0, 3});

  // Populate the neighbours.
  PH_CHECK(alice.app->create_account("alice", "pw").ok());
  PH_CHECK(alice.app->login("alice", "pw").ok());
  PH_CHECK(alice.app->add_interest("football").ok());
  PH_CHECK(alice.app->add_interest("films").ok());
  PH_CHECK(alice.app->add_trusted("me").ok());
  PH_CHECK(alice.app->share_file("holiday-photos.zip", Bytes(64'000, 0x11)).ok());

  PH_CHECK(bob.app->create_account("bob", "pw").ok());
  PH_CHECK(bob.app->login("bob", "pw").ok());
  PH_CHECK(bob.app->add_interest("football").ok());
  PH_CHECK(bob.app->add_interest("chess").ok());

  // Let Bluetooth discovery settle before the session starts.
  simulator.run_for(sim::seconds(15));

  community::Shell shell(*mine.app);
  auto run = [&](const std::string& line) {
    std::printf("phc> %s\n", line.c_str());
    std::fputs(shell.execute(line).c_str(), stdout);
    // A human pauses between commands; the neighbourhood keeps living.
    simulator.run_for(sim::seconds(2));
  };

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) run(line);
  } else {
    for (const char* line : kDemoScript) run(line);
  }
  return 0;
}
