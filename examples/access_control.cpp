// Access control — the thesis' §4.4 companion application, showing that
// PeerHood is a general middleware, not just the community app's plumbing:
// "PTDs with wireless access control system can be used as keys for
// locking or unlocking and provides access to locked resources and
// places."
//
// A Bluetooth-controlled door registers an "AccessControl" service in its
// PHD. Arriving PTDs discover the door through normal PeerHood device +
// service discovery, connect, and present their key; the door checks its
// access list and answers GRANTED or DENIED. The door also uses PeerHood's
// active monitoring to re-lock when the keyholder walks away.
#include <cstdio>
#include <memory>
#include <set>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "peerhood/stack.hpp"
#include "util/check.hpp"

using namespace ph;

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(55));

  // The door: a fixed device beside the lab entrance.
  peerhood::StackConfig config;
  config.radios = {net::bluetooth_2_0()};
  config.device_name = "lab-door";
  peerhood::Stack door(medium,
                       std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}),
                       config);

  // An employee's PTD walking towards the door, then later away.
  config.device_name = "employee-ptd";
  peerhood::Stack employee(
      medium,
      std::make_unique<sim::WaypointMobility>(
          std::vector<sim::WaypointMobility::Waypoint>{
              {sim::seconds(0), {30, 0}},    // out of range
              {sim::seconds(20), {3, 0}},    // at the door
              {sim::seconds(60), {3, 0}},    // lingers
              {sim::seconds(80), {40, 0}}}), // leaves
      config);

  // A visitor with no access rights.
  config.device_name = "visitor-ptd";
  peerhood::Stack visitor(
      medium, std::make_unique<sim::StaticMobility>(sim::Vec2{4, 1}), config);

  // Door logic: an ACL of key strings and a lock state.
  const std::set<std::string> acl = {"key-4711"};
  bool unlocked = false;
  peerhood::DeviceId keyholder = net::kInvalidNode;

  std::vector<std::shared_ptr<peerhood::Connection>> sessions;
  PH_CHECK(door.library()
               .register_service(
                   "AccessControl", {{"location", "lab entrance"}},
                   [&](peerhood::Connection connection) {
                     auto held = std::make_shared<peerhood::Connection>(
                         std::move(connection));
                     sessions.push_back(held);
                     held->on_message([&, held](BytesView key) {
                       const std::string presented = to_text(key);
                       if (acl.contains(presented)) {
                         unlocked = true;
                         keyholder = held->remote_device();
                         std::printf("[t=%5.1fs] door: key '%s' GRANTED — unlocked for device %u\n",
                                     sim::to_seconds(simulator.now()),
                                     presented.c_str(), keyholder);
                         held->send(to_bytes("GRANTED"));
                       } else {
                         std::printf("[t=%5.1fs] door: key '%s' DENIED\n",
                                     sim::to_seconds(simulator.now()),
                                     presented.c_str());
                         held->send(to_bytes("DENIED"));
                       }
                     });
                   })
               .ok());

  // Re-lock via active monitoring: when the keyholder's device leaves
  // Bluetooth range, the door locks itself (Table 3 "Active monitoring").
  door.daemon().monitor_all([&](const peerhood::NeighbourEvent& event) {
    if (event.kind != peerhood::NeighbourEvent::Kind::disappeared) return;
    if (unlocked && event.device.id == keyholder) {
      unlocked = false;
      std::printf("[t=%5.1fs] door: keyholder left range — locked again\n",
                  sim::to_seconds(simulator.now()));
    }
  });

  // PTD behaviour: when a device sees the AccessControl service, it
  // presents its key.
  auto present_key = [&](peerhood::Stack& ptd, const std::string& key) {
    auto on_door = [&ptd, key,
                    &simulator](const peerhood::NeighbourEvent& event) {
      if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) return;
      const peerhood::DeviceInfo& info = event.device;
      if (info.find_service("AccessControl") == nullptr) return;
      ptd.library().connect(
          info.id, "AccessControl", {},
          [key, &simulator](Result<peerhood::Connection> result) {
            if (!result) return;
            auto held = std::make_shared<peerhood::Connection>(*result);
            held->on_message([held, &simulator](BytesView answer) {
              std::printf("[t=%5.1fs] ptd: door answered %s\n",
                          sim::to_seconds(simulator.now()),
                          to_text(answer).c_str());
              held->close();
            });
            held->send(to_bytes(key));
          });
    };
    ptd.daemon().monitor_all(std::move(on_door));
  };
  present_key(employee, "key-4711");
  present_key(visitor, "key-0000");

  simulator.run_until(sim::minutes(2));
  PH_CHECK(!unlocked);  // the door locked itself after the employee left
  std::printf("[t=%5.1fs] scenario complete: door is %s\n",
              sim::to_seconds(simulator.now()), unlocked ? "UNLOCKED" : "locked");
  return 0;
}
