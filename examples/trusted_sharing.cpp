// Trusted friends & content sharing — Table 7's "Trusted Friends" feature
// family end to end: trust levels gate what a peer may see (thesis §5.1:
// "non trusted users can view or see only the interest groups and members
// of different groups; trusted users are allowed to see/transfer the
// shared files, comment profiles etc").
//
// Walks through the full Figure 16 flow: a stranger is refused
// (NOT_TRUSTED_YET), trust is granted, the listing and a download succeed,
// trust is revoked and access closes again. Also shows profile comments
// and the visitors log (Figure 13/14).
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct User {
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

User make_user(net::Medium& medium, const std::string& name, sim::Vec2 pos) {
  User user;
  peerhood::StackConfig config;
  config.device_name = name + "-ptd";
  config.radios = {net::bluetooth_2_0()};
  user.stack = std::make_unique<peerhood::Stack>(
      medium, std::make_unique<sim::StaticMobility>(pos), config);
  user.app = std::make_unique<community::CommunityApp>(*user.stack);
  PH_CHECK(user.app->create_account(name, "pw").ok());
  PH_CHECK(user.app->login(name, "pw").ok());
  return user;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(77));

  User owner = make_user(medium, "owner", {0, 0});
  User friend_ = make_user(medium, "friend", {3, 0});
  User stranger = make_user(medium, "stranger", {0, 3});

  PH_CHECK(owner.app->share_file("holiday.jpg", Bytes(120'000, 0xAA)).ok());
  PH_CHECK(owner.app->share_file("thesis.pdf", Bytes(800'000, 0xBB)).ok());

  // Let discovery settle.
  simulator.run_for(sim::seconds(15));

  auto pump_until = [&](bool& flag) {
    while (!flag) simulator.run_for(sim::milliseconds(100));
  };

  // 1. The stranger tries to browse the owner's shared content — refused.
  bool refused = false;
  stranger.app->client().view_shared_content(
      "owner", [&](Result<std::vector<proto::SharedItemData>> items) {
        PH_CHECK(!items.ok() && items.error().code == Errc::not_trusted);
        std::printf("stranger -> owner shared content: refused (%s)\n",
                    items.error().to_string().c_str());
        refused = true;
      });
  pump_until(refused);

  // 2. Anyone may view the profile and leave a comment (non-trusted
  //    operations per the thesis' trust levels). The view is recorded in
  //    the owner's visitors log (Figure 13).
  bool viewed = false;
  stranger.app->client().view_profile(
      "owner", [&](Result<proto::ProfileData> profile) {
        PH_CHECK(profile.ok());
        std::printf("stranger viewed owner's profile (allowed; visit logged)\n");
        viewed = true;
      });
  pump_until(viewed);
  bool commented = false;
  stranger.app->client().put_profile_comment(
      "owner", "nice photo collection!", [&](Result<void> result) {
        PH_CHECK(result.ok());
        commented = true;
      });
  pump_until(commented);
  std::printf("stranger commented on owner's profile (allowed for everyone)\n");

  // 3. The owner grants trust to 'friend'; the listing now works.
  PH_CHECK(owner.app->add_trusted("friend").ok());
  bool listed = false;
  friend_.app->client().view_shared_content(
      "owner", [&](Result<std::vector<proto::SharedItemData>> items) {
        PH_CHECK(items.ok());
        std::printf("friend sees %zu shared item(s):", items->size());
        for (const auto& item : *items) {
          std::printf(" %s(%llu B)", item.name.c_str(),
                      static_cast<unsigned long long>(item.size_bytes));
        }
        std::printf("\n");
        listed = true;
      });
  pump_until(listed);

  // 4. ...and the trusted friend downloads a file.
  bool downloaded = false;
  friend_.app->client().fetch_content(
      "owner", "holiday.jpg", [&](Result<Bytes> content) {
        PH_CHECK(content.ok() && content->size() == 120'000);
        std::printf("friend downloaded holiday.jpg (%zu bytes) at t=%.1fs\n",
                    content->size(), sim::to_seconds(simulator.now()));
        downloaded = true;
      });
  pump_until(downloaded);

  // 5. Trust is revocable: remove it and access closes immediately.
  PH_CHECK(owner.app->remove_trusted("friend").ok());
  bool re_refused = false;
  friend_.app->client().view_shared_content(
      "owner", [&](Result<std::vector<proto::SharedItemData>> items) {
        PH_CHECK(!items.ok() && items.error().code == Errc::not_trusted);
        std::printf("after revocation, friend is refused again\n");
        re_refused = true;
      });
  pump_until(re_refused);

  // 6. The owner's local view: comments and the visitors log.
  std::printf("\nowner's profile state:\n");
  for (const auto& comment : owner.app->active()->profile().comments) {
    std::printf("  comment by %s: \"%s\"\n", comment.author.c_str(),
                comment.text.c_str());
  }
  std::printf("  visitors:");
  for (const auto& visitor : owner.app->active()->profile().visitors) {
    std::printf(" %s", visitor.c_str());
  }
  std::printf("\n");
  return 0;
}
