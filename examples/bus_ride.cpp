// Bus ride — the thesis' "mobile community" scenario (§5.1: "in mobile
// community like in bus or airplane while travelling") plus seamless
// connectivity (Table 3).
//
// A commuter bus drives along a road. Passengers on board form an
// "instantaneous social network": their devices stay in mutual Bluetooth
// range because they move together. A cyclist rides alongside for a while
// — she joins the groups while pacing the bus and drops out when it pulls
// away. Meanwhile two passengers run a large trusted file transfer that
// survives a mid-ride Bluetooth outage by failing over to WLAN.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Rider {
  std::string name;
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

}  // namespace

int main() {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(404));

  std::vector<std::unique_ptr<Rider>> riders;
  auto board = [&](const std::string& name, std::vector<std::string> interests,
                   std::unique_ptr<sim::MobilityModel> mobility,
                   std::vector<net::TechProfile> radios) {
    auto rider = std::make_unique<Rider>();
    rider->name = name;
    peerhood::StackConfig config;
    config.device_name = name + "-ptd";
    config.radios = std::move(radios);
    rider->stack = std::make_unique<peerhood::Stack>(medium,
                                                     std::move(mobility),
                                                     config);
    rider->app = std::make_unique<community::CommunityApp>(*rider->stack);
    PH_CHECK(rider->app->create_account(name, "pw").ok());
    PH_CHECK(rider->app->login(name, "pw").ok());
    for (const auto& interest : interests) {
      PH_CHECK(rider->app->add_interest(interest).ok());
    }
    riders.push_back(std::move(rider));
    return riders.back().get();
  };

  // The bus drives east at 10 m/s; passengers share its motion with small
  // seat offsets.
  const sim::Vec2 bus_velocity{10.0, 0.0};
  auto seat = [&](double dx, double dy) {
    return std::make_unique<sim::LinearMobility>(sim::Vec2{dx, dy}, bus_velocity);
  };
  Rider* anna = board("anna", {"podcasts", "hiking"}, seat(0, 0),
                      {net::bluetooth_2_0(), net::wlan_80211b()});
  Rider* ben = board("ben", {"podcasts", "football"}, seat(2, 1),
                     {net::bluetooth_2_0(), net::wlan_80211b()});
  board("carla", {"hiking", "knitting"}, seat(4, 0), {net::bluetooth_2_0()});

  // A cyclist pacing the bus at the same speed for the first 60 s, then
  // falling behind (8 m/s).
  board("dara", {"podcasts", "cycling"},
        std::make_unique<sim::WaypointMobility>(
            std::vector<sim::WaypointMobility::Waypoint>{
                {sim::seconds(0), {-3, 2}},
                {sim::seconds(60), {-3 + 600, 2}},     // pacing: 10 m/s
                {sim::seconds(120), {-3 + 600 + 480, 2}}}),  // 8 m/s: drops back
        {net::bluetooth_2_0()});

  // Everyone discovers everyone (same reference frame => stable ranges).
  simulator.run_for(sim::seconds(20));
  std::printf("[t=%.0fs] anna's groups:", sim::to_seconds(simulator.now()));
  for (const auto& group : anna->app->groups().formed_groups()) {
    std::printf(" %s(%zu)", group.interest.c_str(), group.members.size());
  }
  std::printf("\n");
  PH_CHECK(anna->app->groups().group("podcasts")->members.contains("dara"));
  std::printf("         the cyclist dara is in the podcasts group while pacing the bus\n");

  // Anna shares a podcast episode with Ben (trusted-only file transfer).
  PH_CHECK(anna->app->add_trusted("ben").ok());
  Bytes episode(600'000);
  for (std::size_t i = 0; i < episode.size(); ++i) {
    episode[i] = static_cast<std::uint8_t>(i * 131);
  }
  PH_CHECK(anna->app->share_file("episode42.mp3", episode).ok());

  Bytes downloaded;
  bool transfer_done = false;
  ben->app->client().fetch_content("anna", "episode42.mp3",
                                   [&](Result<Bytes> content) {
                                     PH_CHECK(content.ok());
                                     downloaded = std::move(*content);
                                     transfer_done = true;
                                   });
  // Mid-transfer, anna's Bluetooth radio dies (battery saver kicks in).
  // The seamless session fails over to WLAN and the download completes.
  simulator.run_for(sim::seconds(2));
  std::printf("[t=%.0fs] anna's Bluetooth drops mid-transfer...\n",
              sim::to_seconds(simulator.now()));
  anna->stack->set_radio_powered(net::Technology::bluetooth, false);
  while (!transfer_done) simulator.run_for(sim::milliseconds(200));
  PH_CHECK(downloaded == episode);
  std::printf("[t=%.0fs] ben received episode42.mp3 intact (%zu bytes) — "
              "session resumed over WLAN\n",
              sim::to_seconds(simulator.now()), downloaded.size());
  anna->stack->set_radio_powered(net::Technology::bluetooth, true);

  // Ride on: the cyclist falls behind and leaves the groups.
  while (anna->app->groups().group("podcasts")->members.contains("dara")) {
    simulator.run_for(sim::seconds(2));
  }
  std::printf("[t=%.0fs] dara fell behind the bus — podcasts group is now:",
              sim::to_seconds(simulator.now()));
  const auto podcasts = anna->app->groups().group("podcasts");
  for (const auto& member : podcasts->members) {
    std::printf(" %s", member.c_str());
  }
  std::printf("\n");

  // The on-board community remains intact despite all the road mobility.
  PH_CHECK(anna->app->groups().group("podcasts")->members.contains("ben"));
  PH_CHECK(anna->app->groups().group("hiking")->members.contains("carla"));
  std::printf("[t=%.0fs] on-board community intact: moving together keeps "
              "the instantaneous social network alive\n",
              sim::to_seconds(simulator.now()));
  return 0;
}
