// Ablation (DESIGN.md #4) — semantics teaching vs the thesis' limitation.
//
// "Users interested in riding bicycle can put biking or cycling as their
// interest. Even though both have same meaning, the application is not
// that much intelligent to know both interest are same and it creates two
// different dynamic groups rather than one single group."
//
// This bench populates a neighbourhood whose members spell the same three
// topics with varying synonyms and measures group fragmentation with the
// dictionary untaught (the thesis' implementation) vs taught (the
// implemented future work).
#include <cstdio>

#include "community/groups.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

// Three topics, three spellings each.
const std::vector<std::vector<std::string>> kTopics = {
    {"biking", "cycling", "bicycling"},
    {"football", "soccer", "futbol"},
    {"movies", "films", "cinema"},
};

community::SemanticDictionary taught_dictionary() {
  community::SemanticDictionary dictionary;
  for (const auto& topic : kTopics) {
    for (std::size_t i = 1; i < topic.size(); ++i) {
      dictionary.teach(topic[0], topic[i]);
    }
  }
  return dictionary;
}

struct Fragmentation {
  std::size_t groups = 0;           // formed groups tracked by the centre
  double avg_members = 0;           // mean members per formed group
  std::size_t largest = 0;
};

Fragmentation run(const community::SemanticDictionary& dictionary, int peers) {
  community::GroupEngine engine("centre", dictionary);
  // The centre lists every spelling variant it has encountered; in the
  // untaught world that's how users actually behave.
  std::vector<std::string> local;
  for (const auto& topic : kTopics) {
    local.insert(local.end(), topic.begin(), topic.end());
  }
  engine.set_local_interests(local);
  for (int p = 0; p < peers; ++p) {
    // Peer p spells each topic with variant (p % 3).
    std::vector<std::string> interests;
    for (const auto& topic : kTopics) {
      interests.push_back(topic[p % topic.size()]);
    }
    engine.on_peer("peer" + std::to_string(p), interests);
  }
  Fragmentation out;
  auto formed = engine.formed_groups();
  out.groups = formed.size();
  for (const auto& group : formed) {
    out.avg_members += static_cast<double>(group.members.size()) /
                       static_cast<double>(formed.size());
    out.largest = std::max(out.largest, group.members.size());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: interest semantics off (thesis implementation) vs\n");
  std::printf("taught synonym dictionary (implemented future work)\n");
  std::printf("3 topics x 3 spellings, peers rotate spellings\n\n");
  std::printf("%-8s | %10s %12s %9s | %10s %12s %9s\n", "", "groups",
              "avg members", "largest", "groups", "avg members", "largest");
  std::printf("%-8s | %35s | %35s\n", "peers", "semantics OFF", "semantics ON");
  community::SemanticDictionary untaught;
  community::SemanticDictionary taught = taught_dictionary();
  for (int peers : {3, 6, 12, 24, 48}) {
    const Fragmentation off = run(untaught, peers);
    const Fragmentation on = run(taught, peers);
    std::printf("%-8d | %10zu %12.1f %9zu | %10zu %12.1f %9zu\n", peers,
                off.groups, off.avg_members, off.largest, on.groups,
                on.avg_members, on.largest);
    PH_CHECK(on.groups == kTopics.size());  // exactly one group per topic
    PH_CHECK(off.groups > on.groups);       // fragmentation without semantics
  }
  std::printf("\nExpected shape: without semantics each spelling fragments "
              "into its own group (9 groups); taught, exactly one group per "
              "topic (3) with every matching peer inside.\n");
  return 0;
}
