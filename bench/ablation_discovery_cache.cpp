// Ablation (DESIGN.md #1) — why the PHD caches discovery results.
//
// The thesis' daemon "continuously keeps track of other wireless devices",
// so applications read the neighbour table instantly. The ablated design
// would run a fresh Bluetooth inquiry per application query. This bench
// measures the member-list operation under both designs: with the daemon
// cache the operation costs only the fan-out RPCs; without it, every query
// pays the 10.24 s inquiry again.
#include <cstdio>

#include "bench/community_fixture.hpp"

using namespace ph;

namespace {

double member_list_with_cache(bench::CommunityWorld& world) {
  bool done = false;
  const sim::Time start = world.simulator.now();
  world.self().app->client().get_online_members([&](auto result) {
    PH_CHECK(result.ok());
    done = true;
  });
  world.time_until([&] { return done; });
  return sim::to_seconds(world.simulator.now() - start);
}

double member_list_without_cache(bench::CommunityWorld& world) {
  // Ablated design: the application first re-runs device discovery (a
  // full inquiry on the radio), then queries.
  auto* plugin =
      world.self().stack->daemon().plugin_for(net::Technology::bluetooth);
  PH_CHECK(plugin != nullptr);
  bool scanned = false;
  const sim::Time start = world.simulator.now();
  plugin->endpoint().start_inquiry([&](std::vector<net::NodeId>) {
    scanned = true;
  });
  world.time_until([&] { return scanned; });
  bool done = false;
  world.self().app->client().get_online_members([&](auto result) {
    PH_CHECK(result.ok());
    done = true;
  });
  world.time_until([&] { return done; });
  return sim::to_seconds(world.simulator.now() - start);
}

}  // namespace

int main() {
  std::printf("Ablation: PHD discovery cache vs per-query inquiry\n");
  std::printf("(member-list operation, Bluetooth, 3 queries back to back)\n\n");
  std::printf("%-10s %22s %26s\n", "query#", "with PHD cache (s)",
              "inquiry per query (s)");
  bench::CommunityWorld cached(net::bluetooth_2_0(), {"alice", "bob"},
                               {"football"}, 50);
  bench::CommunityWorld uncached(net::bluetooth_2_0(), {"alice", "bob"},
                                 {"football"}, 51);
  double cached_total = 0, uncached_total = 0;
  for (int query = 1; query <= 3; ++query) {
    const double with_cache = member_list_with_cache(cached);
    const double without = member_list_without_cache(uncached);
    cached_total += with_cache;
    uncached_total += without;
    std::printf("%-10d %22.3f %26.3f\n", query, with_cache, without);
  }
  std::printf("\n3-query total: %.1f s vs %.1f s — the daemon cache removes "
              "the %.2f s inquiry from every operation, which is what keeps "
              "Table 8's member-list row at seconds, not tens of seconds.\n",
              cached_total, uncached_total,
              sim::to_seconds(net::bluetooth_2_0().inquiry_duration));
  return 0;
}
