// Table 3 — "Functionality of PeerHood": one measured latency per row.
//
//   Device Discovery      — cold start until a neighbour device is known
//   Service Discovery     — service query round trip after an inquiry hit
//   Service Sharing       — newly registered service visible to a neighbour
//   Connection Establish. — pConnect() to an advertised service
//   Data Transmission     — 1 kB request/response round trip on a session
//   Active Monitoring     — peer powers off until on_disappear fires
//   Seamless Connectivity — link break until the session is resumed on the
//                           alternative technology
//
// All rows run over simulated Bluetooth (the thesis' test technology);
// seamless connectivity uses Bluetooth + WLAN dual radios.
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "peerhood/stack.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

net::TechProfile bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.inquiry_detect_prob = 1.0;
  return p;
}

struct World {
  sim::Simulator simulator;
  net::Medium medium{simulator, sim::Rng(7)};
  std::unique_ptr<peerhood::Stack> a, b;

  explicit World(std::vector<net::TechProfile> radios = {bt()}) {
    peerhood::StackConfig config;
    config.radios = radios;
    config.device_name = "a";
    a = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(sim::Vec2{0, 0}), config);
    config.device_name = "b";
    b = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(sim::Vec2{3, 0}), config);
  }

  template <typename Pred>
  sim::Duration time_until(Pred pred, sim::Duration limit = sim::minutes(5)) {
    const sim::Time start = simulator.now();
    while (!pred()) {
      simulator.run_for(sim::milliseconds(10));
      PH_CHECK_MSG(simulator.now() - start < limit, "condition never met");
    }
    return simulator.now() - start;
  }
};

double device_discovery_s() {
  World world;
  return sim::to_seconds(
      world.time_until([&] { return !world.a->daemon().devices().empty(); }));
}

double service_discovery_s() {
  // Isolate the service-query exchange: total time to an announced
  // neighbour minus the inquiry scan itself.
  World world;
  const sim::Duration total =
      world.time_until([&] { return !world.a->daemon().devices().empty(); });
  return sim::to_seconds(total) - sim::to_seconds(bt().inquiry_duration);
}

double service_sharing_s() {
  // b registers a new service after the neighbourhood is stable; measure
  // until a's daemon lists it (the next inquiry + query cycle).
  World world;
  world.time_until([&] { return !world.a->daemon().devices().empty(); });
  PH_CHECK(world.b->daemon().register_service({"LateService", 1500, {}}).ok());
  return sim::to_seconds(world.time_until(
      [&] { return !world.a->daemon().find_service("LateService").empty(); }));
}

double connection_establishment_s() {
  World world;
  PH_CHECK(world.b->library()
               .register_service("Echo", {}, [](peerhood::Connection) {})
               .ok());
  world.time_until(
      [&] { return !world.a->library().find_service("Echo").empty(); });
  bool connected = false;
  const sim::Time start = world.simulator.now();
  world.a->library().connect(world.b->id(), "Echo", {},
                             [&](Result<peerhood::Connection> result) {
                               PH_CHECK(result.ok());
                               connected = true;
                             });
  world.time_until([&] { return connected; });
  return sim::to_seconds(world.simulator.now() - start);
}

double data_transmission_rtt_s() {
  World world;
  std::shared_ptr<peerhood::Connection> server;
  PH_CHECK(world.b->library()
               .register_service("Echo", {},
                                 [&](peerhood::Connection connection) {
                                   server = std::make_shared<peerhood::Connection>(
                                       std::move(connection));
                                   server->on_message([&](BytesView data) {
                                     server->send(data);
                                   });
                                 })
               .ok());
  world.time_until(
      [&] { return !world.a->library().find_service("Echo").empty(); });
  peerhood::Connection client;
  world.a->library().connect(world.b->id(), "Echo", {},
                             [&](Result<peerhood::Connection> result) {
                               PH_CHECK(result.ok());
                               client = *result;
                             });
  world.time_until([&] { return client.valid(); });
  bool echoed = false;
  client.on_message([&](BytesView) { echoed = true; });
  const sim::Time start = world.simulator.now();
  client.send(Bytes(1024, 0x42));
  world.time_until([&] { return echoed; });
  return sim::to_seconds(world.simulator.now() - start);
}

double active_monitoring_s() {
  World world;
  world.time_until([&] { return !world.a->daemon().devices().empty(); });
  bool gone = false;
  world.a->daemon().monitor_device(
      world.b->id(), [&](const peerhood::NeighbourEvent& event) {
        if (event.kind == peerhood::NeighbourEvent::Kind::disappeared) {
          gone = true;
        }
      });
  const sim::Time start = world.simulator.now();
  (void)world.b->set_radio_powered(net::Technology::bluetooth, false);
  world.time_until([&] { return gone; });
  return sim::to_seconds(world.simulator.now() - start);
}

double seamless_connectivity_s() {
  World world({bt(), net::wlan_80211b()});
  std::shared_ptr<peerhood::Connection> server;
  PH_CHECK(world.b->library()
               .register_service("Sink", {},
                                 [&](peerhood::Connection connection) {
                                   server = std::make_shared<peerhood::Connection>(
                                       std::move(connection));
                                 })
               .ok());
  world.time_until([&] {
    auto device = world.a->daemon().device(world.b->id());
    return device.ok() && device->technologies.size() == 2 &&
           device->find_service("Sink") != nullptr;
  });
  peerhood::Connection client;
  world.a->library().connect(world.b->id(), "Sink", {},
                             [&](Result<peerhood::Connection> result) {
                               PH_CHECK(result.ok());
                               client = *result;
                             });
  world.time_until([&] { return client.valid(); });
  const int handovers_before = client.handover_count();
  const net::Technology carrying = client.current_technology();
  const sim::Time start = world.simulator.now();
  (void)world.a->set_radio_powered(carrying, false);  // break the carrying link
  world.time_until([&] { return client.handover_count() > handovers_before; });
  return sim::to_seconds(world.simulator.now() - start);
}

}  // namespace

int main() {
  std::printf("Table 3: PeerHood functionality — measured latency per row "
              "(Bluetooth testbed)\n\n");
  std::printf("%-28s %14s  %s\n", "functionality", "latency (s)", "what is measured");
  std::printf("%-28s %14.3f  %s\n", "Device Discovery", device_discovery_s(),
              "cold start -> neighbour known (inquiry-dominated)");
  std::printf("%-28s %14.3f  %s\n", "Service Discovery", service_discovery_s(),
              "service query exchange after the inquiry hit");
  std::printf("%-28s %14.3f  %s\n", "Service Sharing", service_sharing_s(),
              "new remote service visible (next discovery cycle)");
  std::printf("%-28s %14.3f  %s\n", "Connection Establishment",
              connection_establishment_s(), "pConnect to advertised service");
  std::printf("%-28s %14.3f  %s\n", "Data Transmission",
              data_transmission_rtt_s(), "1 kB echo round trip on a session");
  std::printf("%-28s %14.3f  %s\n", "Active Monitoring", active_monitoring_s(),
              "peer radio off -> on_disappear callback");
  std::printf("%-28s %14.3f  %s\n", "Seamless Connectivity",
              seamless_connectivity_s(), "link break -> session resumed on WLAN");
  return 0;
}
