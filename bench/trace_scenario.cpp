// Two-device traced scenario — the acceptance fixture for cross-device
// causal tracing (and the binary behind the ph_trace_check CTest target).
//
// Two PeerHood Community devices within Bluetooth range discover each
// other, form the Football group, then "alice" sends "bob" a message —
// the Table-8 send-message operation — with tracing on. The run then
// asserts, in process, the two tentpole guarantees:
//
//   1. One connected span tree across both radios: the receive-side
//      `community.server.handle` span on bob's device walks up through
//      alice's `community.rpc` span to the operation's root span.
//   2. The critical-path attribution of the operation window sums to the
//      elapsed window within 1%.
//
// Exits non-zero when either fails. PH_METRICS_JSON / PH_TRACE_JSON dump
// as usual (the ctest script runs the binary twice with one seed and
// byte-compares the Chrome trace dumps); PH_TRACE_SEED overrides the seed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "eval/scenarios.hpp"
#include "net/tech.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"

namespace {

/// Follows parent links from `id` to the root; returns the visited chain
/// (including `id` itself, excluding the zero terminator).
std::vector<const ph::obs::Span*> ancestry(const ph::obs::Trace& trace,
                                           ph::obs::SpanId id) {
  std::vector<const ph::obs::Span*> chain;
  while (id != 0) {
    const ph::obs::Span* span = trace.find_span(id);
    if (span == nullptr) break;
    chain.push_back(span);
    if (chain.size() > 10000) break;  // cycle guard; ids are acyclic by design
    id = span->parent;
  }
  return chain;
}

}  // namespace

int main() {
  std::uint64_t seed = 11;
  if (const char* env = std::getenv("PH_TRACE_SEED"); env != nullptr) {
    if (const long long v = std::atoll(env); v > 0) {
      seed = static_cast<std::uint64_t>(v);
    }
  }

  ph::sim::Simulator simulator;
  ph::net::Medium medium(simulator, ph::sim::Rng(seed));
  medium.trace().set_enabled(true);

  ph::net::TechProfile radio = ph::net::bluetooth_2_0();
  radio.inquiry_detect_prob = 1.0;  // deterministic discovery, like Table 8
  std::vector<ph::eval::ScenarioDevice> devices = ph::eval::build_seats(
      medium,
      {
          {"alice", {0.0, 0.0}, {"Football"}},
          {"bob", {2.5, 0.0}, {"Football"}},
      },
      radio, /*autostart=*/true);
  ph::eval::ScenarioDevice& alice = devices[0];
  ph::eval::ScenarioDevice& bob = devices[1];
  const ph::net::NodeId alice_node = alice.stack->daemon().self();
  const ph::net::NodeId bob_node = bob.stack->daemon().self();
  ph::obs::Trace& trace = medium.trace();

  // Discovery -> group join: run until dynamic group discovery has formed
  // the Football group on alice's side.
  while (true) {
    auto group = alice.app->groups().group("football");
    if (group.ok() && group->formed()) break;
    simulator.run_for(ph::sim::milliseconds(250));
    if (simulator.now() >= ph::sim::minutes(5)) {
      std::fprintf(stderr, "trace_scenario: discovery never completed\n");
      return 1;
    }
  }
  const ph::sim::Time formed_at = simulator.now();

  // The Table-8 operation: alice sends bob a message under one root span.
  const ph::sim::Time op_start = simulator.now();
  const ph::obs::SpanId op_span = trace.begin_span(
      "eval.table8.send_message", op_start, alice_node, "operation");
  bool done = false;
  bool sent = false;
  {
    ph::obs::Trace::Scope op_scope(trace, op_span);
    alice.app->client().send_message("bob", "hi", "hello from alice",
                                     [&](ph::Result<void> result) {
                                       sent = result.ok();
                                       done = true;
                                     });
    while (!done) simulator.run_for(ph::sim::milliseconds(100));
  }
  const ph::sim::Time op_end = simulator.now();
  trace.end_span(op_span, op_end);
  if (!sent) {
    std::fprintf(stderr, "trace_scenario: send_message failed\n");
    return 1;
  }

  // --- assertion 1: one connected tree across both devices -----------------
  // The PS_MSG handling span on bob's track must chain, via parent links
  // alone, through alice's community.rpc span up to the operation root.
  bool connected = false;
  bool crossed_back = false;
  for (const ph::obs::Span& span : trace.spans()) {
    if (span.name != "community.server.handle" || span.device != bob_node ||
        span.start < op_start) {
      continue;
    }
    const std::vector<const ph::obs::Span*> chain = ancestry(trace, span.id);
    bool via_rpc = false;
    for (const ph::obs::Span* node : chain) {
      if (node->name == "community.rpc" && node->device == alice_node) {
        via_rpc = true;
      }
    }
    if (via_rpc && !chain.empty() && chain.back()->id == op_span) {
      connected = true;
    }
  }
  // And the reply direction: something alice did during the operation must
  // be parented (directly or transitively) under a span on bob's device —
  // the response's causal hop back.
  for (const ph::obs::Span& span : trace.spans()) {
    if (span.device != alice_node || span.start < op_start) continue;
    for (const ph::obs::Span* node : ancestry(trace, span.id)) {
      if (node->device == bob_node) {
        crossed_back = true;
        break;
      }
    }
    if (crossed_back) break;
  }
  if (!connected) {
    std::fprintf(stderr,
                 "trace_scenario: no community.server.handle span on device "
                 "%u chains up to the operation root via alice's "
                 "community.rpc — the cross-device tree is disconnected\n",
                 bob_node);
    return 1;
  }
  if (!crossed_back) {
    std::fprintf(stderr,
                 "trace_scenario: no span on alice's device descends from a "
                 "bob-side span — the response direction never crossed\n");
    return 1;
  }

  // --- assertion 2: attribution sums to the window within 1% ---------------
  const ph::obs::Attribution op_attribution =
      ph::obs::attribute_window(trace, op_start, op_end);
  std::uint64_t phase_sum = 0;
  for (const std::uint64_t us : op_attribution.phase_us) phase_sum += us;
  const std::uint64_t window = op_end - op_start;
  const std::uint64_t drift =
      phase_sum > window ? phase_sum - window : window - phase_sum;
  if (window == 0 || drift * 100 > window) {
    std::fprintf(stderr,
                 "trace_scenario: attribution drifted: phases sum to %llu us "
                 "over a %llu us window\n",
                 static_cast<unsigned long long>(phase_sum),
                 static_cast<unsigned long long>(window));
    return 1;
  }

  std::printf("trace_scenario: seed=%llu devices=%u,%u spans=%zu "
              "group formed at %.2fs, message delivered in %.2fs\n",
              static_cast<unsigned long long>(seed), alice_node, bob_node,
              trace.spans().size(), ph::sim::to_seconds(formed_at),
              ph::sim::to_seconds(op_end - op_start));
  std::printf("cross-device tree: connected (request and response "
              "directions); attribution drift %.3f%%\n\n",
              window == 0 ? 0.0
                          : 100.0 * static_cast<double>(drift) /
                                static_cast<double>(window));
  std::printf("%s",
              ph::obs::format_attribution_table(
                  {{"discovery + group join",
                    ph::obs::attribute_window(trace, 0, formed_at)},
                   {"send message", op_attribution},
                   {"send message (tree only)",
                    ph::obs::attribute_tree(trace, op_span)}})
                  .c_str());

  ph::obs::dump_if_requested(medium.registry(), &trace,
                             medium.trace_device_names());
  return 0;
}
