// Table 6 — "Client Requests and corresponding Server Function": measured
// round-trip latency of every PS_* operation against a real neighbour over
// simulated Bluetooth (one fresh session per request, as in the thesis'
// client).
#include <cmath>
#include <cstdio>

#include "bench/community_fixture.hpp"

using namespace ph;

namespace {

double rpc_seconds(bench::CommunityWorld& world, proto::Request request) {
  auto& client = world.self().app->client();
  auto targets =
      world.self().app->stack().library().find_service(community::kServiceName);
  PH_CHECK(!targets.empty());
  bool done = false;
  const sim::Time start = world.simulator.now();
  client.call(targets.front().first.id, std::move(request),
              [&](Result<proto::Response> response) {
                PH_CHECK(response.ok());
                done = true;
              });
  world.time_until([&] { return done; });
  return sim::to_seconds(world.simulator.now() - start);
}

}  // namespace

int main() {
  bench::CommunityWorld world(net::bluetooth_2_0(), {"alice"},
                              {"football", "movies"});
  // Give alice some state so responses have realistic payloads.
  auto& alice = *world.devices[1];
  alice.app->active()->add_trusted("self");
  alice.app->active()->share_file("mixtape.mp3", Bytes(200'000, 1));
  alice.app->active()->share_file("notes.txt", Bytes(2'000, 2));

  struct Row {
    const char* name;
    proto::Request request;
  };
  auto request = [](proto::Opcode op) {
    proto::Request r;
    r.op = op;
    r.requester = "self";
    r.member_id = "alice";
    return r;
  };
  proto::Request msg = request(proto::Opcode::ps_msg);
  msg.mail = {"alice", "self", "benchmark", "one mail body", 0};
  proto::Request interested = request(proto::Opcode::ps_get_interested_member_list);
  interested.argument = "football";
  proto::Request comment = request(proto::Opcode::ps_add_profile_comment);
  comment.argument = "benchmark comment";
  proto::Request content = request(proto::Opcode::ps_get_content);
  content.argument = "notes.txt";

  const Row rows[] = {
      {"PS_GETONLINEMEMBERLIST", request(proto::Opcode::ps_get_online_member_list)},
      {"PS_GETINTERESTLIST", request(proto::Opcode::ps_get_interest_list)},
      {"PS_GETINTERESTEDMEMBERLIST", interested},
      {"PS_GETPROFILE", request(proto::Opcode::ps_get_profile)},
      {"PS_ADDPROFILECOMMENT", comment},
      {"PS_CHECKMEMBERID", request(proto::Opcode::ps_check_member_id)},
      {"PS_MSG", msg},
      {"PS_SHAREDCONTENT", request(proto::Opcode::ps_get_shared_content)},
      {"PS_GETTRUSTEDFRIEND", request(proto::Opcode::ps_get_trusted_friends)},
      {"PS_CHECKTRUSTED", request(proto::Opcode::ps_check_trusted)},
      {"PS_GETCONTENT (2 kB file)", content},
  };

  std::printf("Table 6: per-operation round trip over Bluetooth (connect +\n");
  std::printf("request + response + close, fresh session per request)\n\n");
  std::printf("%-30s %14s\n", "operation", "latency (s)");
  for (const Row& row : rows) {
    std::printf("%-30s %14.3f\n", row.name, rpc_seconds(world, row.request));
  }
  std::printf("\nExpected shape: connection setup (~0.64 s paging) dominates; "
              "PS_GETCONTENT adds payload serialization at 723 kbps.\n");
  return 0;
}
