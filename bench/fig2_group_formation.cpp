// Figures 2 & 5 — dynamic group formation latency vs neighbourhood size.
//
// From a cold start (all daemons power on at t=0), how long until the
// central user's interest group contains ALL matching neighbours? Sweeps
// the neighbourhood from 1 to 16 devices over Bluetooth and WLAN.
// Expected shape: Bluetooth sits on the 10.24 s inquiry plus a probe tail
// that grows mildly with neighbourhood size (fan-out probing is
// concurrent); WLAN is an order of magnitude faster.
//
// Set PH_METRICS_JSON=/path/out.json (or PH_METRICS_CSV) to dump the
// aggregated per-layer counters from every sweep point at exit.
#include <cstdio>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "bench/community_fixture.hpp"
#include "obs/export.hpp"

using namespace ph;

namespace {

double formation_seconds(const net::TechProfile& radio, int neighbours,
                         std::uint64_t seed, obs::Registry& metrics) {
  std::vector<std::string> names;
  for (int i = 0; i < neighbours; ++i) names.push_back("p" + std::to_string(i));

  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  std::vector<std::unique_ptr<bench::CommunityWorld::Device>> devices;

  auto add = [&](const std::string& member, sim::Vec2 pos) {
    auto device = std::make_unique<bench::CommunityWorld::Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    net::TechProfile p = radio;
    p.inquiry_detect_prob = 1.0;
    config.radios = {p};
    config.autostart = false;
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<community::CommunityApp>(*device->stack);
    auto account = device->app->create_account(member, "pw");
    PH_CHECK(account.ok());
    (*account)->add_interest("football");
    PH_CHECK(device->app->login(member, "pw").ok());
    devices.push_back(std::move(device));
  };

  add("centre", {0, 0});
  for (int i = 0; i < neighbours; ++i) {
    const double angle = 2.0 * 3.14159265 * i / neighbours;
    add(names[i], {4.0 * std::cos(angle), 4.0 * std::sin(angle)});
  }
  for (auto& device : devices) (void)device->stack->daemon().start();

  auto& centre = *devices.front();
  const sim::Time start = simulator.now();
  while (true) {
    auto group = centre.app->groups().group("football");
    if (group.ok() &&
        group->members.size() == static_cast<std::size_t>(neighbours) + 1) {
      break;
    }
    simulator.run_for(sim::milliseconds(50));
    PH_CHECK_MSG(simulator.now() < sim::minutes(10), "group never completed");
  }
  const double seconds = sim::to_seconds(simulator.now() - start);
  metrics.merge_from(medium.registry());
  return seconds;
}

}  // namespace

int main() {
  obs::Registry metrics;
  std::printf("Figures 2/5: time (s) from cold start until the central\n");
  std::printf("user's group contains every matching neighbour\n\n");
  std::printf("%-14s %14s %14s\n", "neighbours", "Bluetooth", "WLAN 802.11b");
  for (int n : {1, 2, 4, 8, 12, 16}) {
    const double bt = formation_seconds(net::bluetooth_2_0(), n, 40 + n, metrics);
    const double wlan =
        formation_seconds(net::wlan_80211b(), n, 40 + n, metrics);
    std::printf("%-14d %14.2f %14.2f\n", n, bt, wlan);
  }
  std::printf("\nExpected shape: Bluetooth ~12-17 s — the 10.24 s inquiry\n"
              "dominates, with mild growth from piconet link-capacity\n"
              "contention as the crowd densifies. WLAN is sub-second: push\n"
              "service announcements + fast broadcast discovery.\n");
  obs::dump_if_requested(metrics);
  return 0;
}
