// §5.2.6 cost analysis — "it is beneficial to use social networking
// application on mobile environment rather than using SNS in mobile
// devices. The cost of data transfer and time required to carry out
// desired operation is very less than using SNS in mobile devices, as our
// approach uses Bluetooth, which enables cost free and reliably faster
// data transmission."
//
// Runs the Table 8 task set on every column and reports the data volume
// over the metered cellular link vs the free short-range radios, plus an
// estimated bill at 2008-era GPRS pricing.
#include <cstdio>
#include <vector>

#include "eval/table8.hpp"

int main() {
  // Typical European operator pricing around 2008: a few euros per MB of
  // GPRS data ("it is very expensive and is charged on the basis of data
  // transfer rate", thesis §2.4.3).
  constexpr double kEurPerMb = 4.0;

  const std::vector<ph::eval::Table8Cell> columns = {
      ph::eval::run_sns_column(ph::sns::facebook(), ph::sns::nokia_n810(), 300),
      ph::eval::run_sns_column(ph::sns::facebook(), ph::sns::nokia_n95(), 301),
      ph::eval::run_sns_column(ph::sns::hi5(), ph::sns::nokia_n810(), 302),
      ph::eval::run_sns_column(ph::sns::hi5(), ph::sns::nokia_n95(), 303),
      ph::eval::run_peerhood_column(304),
  };

  std::printf("Cost analysis (Table 8 task set: search + join + member list "
              "+ profile)\n\n");
  std::printf("%-42s %14s %14s %12s\n", "column", "paid kB (GPRS)",
              "free kB (BT/WLAN)", "bill (EUR)");
  for (const auto& cell : columns) {
    const double paid_kb = static_cast<double>(cell.paid_bytes) / 1000.0;
    const double free_kb = static_cast<double>(cell.free_bytes) / 1000.0;
    std::printf("%-42s %14.1f %14.1f %12.2f\n",
                (cell.network_type + " / " + cell.accessed_through).c_str(),
                paid_kb, free_kb,
                kEurPerMb * static_cast<double>(cell.paid_bytes) / 1e6);
  }
  std::printf("\nExpected shape: every SNS column moves hundreds of kB over "
              "the metered link; the PeerHood column's cellular traffic is "
              "exactly zero — the thesis' cost-free claim.\n");
  return 0;
}
