// Chaos soak — the Table-8 ComLab scenario under a seeded fault schedule.
//
// Replays a fault::random_schedule (burst loss, radio outages, latency
// spikes, signal ramps, whole-device blackouts) over the thesis' room-6604
// testbed while the three PeerHood Community devices keep discovering each
// other and re-forming the Football interest group. Every recovery is
// timed on the virtual clock:
//
//   fault.recovery.rediscovery_us   disappear -> reappear, per observer pair
//   fault.recovery.group_reform_us  Football group unformed -> formed again
//
// and the p50/p95/p99 of both histograms are printed next to the fault.*
// window counters. All randomness derives from one seed (PH_CHAOS_SEED,
// default 42), so two runs with the same seed produce byte-identical
// metrics dumps — set PH_METRICS_JSON=/path/out.json (or PH_METRICS_CSV)
// and diff. PH_CHAOS_MINUTES overrides the soak horizon (default 10).
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "eval/scenarios.hpp"
#include "fault/plane.hpp"
#include "fault/schedule.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "peerhood/stack.hpp"

namespace {

void print_histogram(const char* label, const ph::obs::Histogram* h) {
  if (h == nullptr || h->count() == 0) {
    std::printf("  %-28s (no samples)\n", label);
    return;
  }
  std::printf("  %-28s n=%-4llu p50=%7.2fs  p95=%7.2fs  p99=%7.2fs\n", label,
              static_cast<unsigned long long>(h->count()), h->p50() / 1e6,
              h->p95() / 1e6, h->p99() / 1e6);
}

}  // namespace

int main() {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("PH_CHAOS_SEED"); env != nullptr) {
    if (const long long v = std::atoll(env); v > 0) {
      seed = static_cast<std::uint64_t>(v);
    }
  }
  int soak_minutes = 10;
  if (const char* env = std::getenv("PH_CHAOS_MINUTES"); env != nullptr) {
    if (const int v = std::atoi(env); v > 0) soak_minutes = v;
  }
  const ph::sim::Duration horizon = ph::sim::minutes(soak_minutes);

  ph::sim::Simulator simulator;
  ph::net::Medium medium(simulator, ph::sim::Rng(seed));
  // Flight-recorder mode: tracing stays on for the whole soak, bounded to
  // the last ~64k spans. The fault plane snapshots the ring to
  // $PH_FLIGHT_JSON the moment a blackout/outage fires, and the reform
  // attribution below reads the same journal.
  medium.trace().set_enabled(true);
  medium.trace().set_ring_capacity(1 << 16);
  std::vector<ph::eval::ScenarioDevice> devices =
      ph::eval::comlab_room(medium, /*autostart=*/true);

  ph::obs::Registry& metrics = medium.registry();
  ph::obs::Histogram& rediscovery =
      metrics.histogram("fault.recovery.rediscovery_us");
  ph::obs::Histogram& group_reform =
      metrics.histogram("fault.recovery.group_reform_us");

  // Time every neighbour loss to the matching reappearance, per observer
  // pair — this is the metric the retry/backoff hardening moves.
  std::map<std::pair<ph::net::NodeId, ph::net::NodeId>, ph::sim::Time>
      gone_since;
  for (ph::eval::ScenarioDevice& device : devices) {
    const ph::net::NodeId observer = device.stack->id();
    device.stack->daemon().monitor_all(
        [&, observer](const ph::peerhood::NeighbourEvent& event) {
          const auto key = std::make_pair(observer, event.device.id);
          if (event.kind == ph::peerhood::NeighbourEvent::Kind::disappeared) {
            gone_since.emplace(key, simulator.now());
          } else if (auto it = gone_since.find(key); it != gone_since.end()) {
            rediscovery.observe(
                static_cast<double>(simulator.now() - it->second));
            gone_since.erase(it);
          }
        });
  }

  // Poll the tester's view of the Football group once a second and time
  // every unformed window — the user-visible face of a fault.
  ph::community::CommunityApp& tester = *devices.front().app;
  bool was_formed = false;
  ph::sim::Time unformed_since = 0;
  // Each unformed window is also attributed over the trace: which phases
  // (inquiry, handshake, backoff idle, …) the recovery time went to,
  // summed across windows and published as per-phase histograms so the
  // same-seed determinism check covers the analyzer too.
  ph::obs::Attribution reform_attribution;
  std::function<void()> poll_group = [&] {
    auto group = tester.groups().group("football");
    const bool formed = group.ok() && group->formed();
    if (was_formed && !formed) {
      unformed_since = simulator.now();
    } else if (!was_formed && formed && unformed_since != 0) {
      group_reform.observe(
          static_cast<double>(simulator.now() - unformed_since));
      const ph::obs::Attribution window = ph::obs::attribute_window(
          medium.trace(), unformed_since, simulator.now());
      reform_attribution.add(window);
      for (std::size_t i = 0; i < ph::obs::kPhaseCount; ++i) {
        const auto phase = static_cast<ph::obs::Phase>(i);
        metrics
            .histogram(std::string("fault.recovery.reform.") +
                       ph::obs::to_string(phase) + "_us")
            .observe(static_cast<double>(window.phase_us[i]));
      }
      unformed_since = 0;
    }
    was_formed = formed;
    simulator.schedule(ph::sim::seconds(1), poll_group);
  };
  poll_group();

  // The adversary: one plane, hooks on every device so blackouts really
  // cold-restart the daemons, and a schedule drawn from the same seed.
  ph::fault::FaultPlane plane(medium, ph::sim::Rng(seed + 1));
  ph::fault::RandomScheduleParams params;
  params.horizon = horizon;
  for (ph::eval::ScenarioDevice& device : devices) {
    ph::peerhood::Stack* stack = device.stack.get();
    plane.set_device_hooks(stack->id(),
                           {.shutdown = [stack] { stack->blackout(); },
                            .restart = [stack] { stack->restart(); }});
    params.nodes.push_back(stack->id());
  }
  params.bursts = soak_minutes;
  params.outages = soak_minutes;
  params.latency_spikes = soak_minutes / 2 + 1;
  params.signal_ramps = soak_minutes / 2 + 1;
  params.blackouts = soak_minutes / 4 + 1;
  ph::sim::Rng schedule_rng(seed + 2);
  const ph::fault::Schedule schedule =
      ph::fault::random_schedule(schedule_rng, params);
  plane.load(schedule);

  std::printf("chaos soak: seed=%llu horizon=%dmin faults=%zu "
              "(bursts=%zu outages=%zu spikes=%zu ramps=%zu blackouts=%zu)\n",
              static_cast<unsigned long long>(seed), soak_minutes,
              schedule.size(), schedule.bursts.size(), schedule.outages.size(),
              schedule.latency_spikes.size(), schedule.signal_ramps.size(),
              schedule.blackouts.size());

  // Soak, then a quiet tail so the last windows' recoveries complete.
  simulator.run_for(horizon + ph::sim::minutes(2));

  const ph::obs::Snapshot faults = plane.stats();
  std::printf("\nfault windows delivered:\n");
  for (const auto& [name, value] : faults.counters()) {
    std::printf("  fault.%-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("\nrecovery times (virtual):\n");
  print_histogram("neighbour rediscovery", &rediscovery);
  print_histogram("Football group re-form", &group_reform);

  std::printf("\ncritical-path attribution of the re-form windows "
              "(summed, seconds):\n%s",
              ph::obs::format_attribution_table(
                  {{"group re-form (all windows)", reform_attribution}})
                  .c_str());

  // The acceptance check: same seed => byte-identical dump (the trace
  // ring rides along in the JSON's spans/events sections).
  ph::obs::dump_if_requested(metrics, &medium.trace(),
                             medium.trace_device_names());
  return 0;
}
