// Chaos soak — the Table-8 ComLab scenario under a seeded fault schedule.
//
// Replays a fault::random_schedule (burst loss, radio outages, latency
// spikes, signal ramps, whole-device blackouts) over the thesis' room-6604
// testbed while the three PeerHood Community devices keep discovering each
// other and re-forming the Football interest group. Every recovery is
// timed on the virtual clock:
//
//   fault.recovery.rediscovery_us   disappear -> reappear, per observer pair
//   fault.recovery.group_reform_us  Football group unformed -> formed again
//
// and the p50/p95/p99 of both histograms are printed next to the fault.*
// window counters. All randomness derives from one seed (PH_CHAOS_SEED,
// default 42), so two runs with the same seed produce byte-identical
// metrics dumps — set PH_METRICS_JSON=/path/out.json (or PH_METRICS_CSV)
// and diff. PH_CHAOS_MINUTES overrides the soak horizon (default 10).
//
// Telemetry: an obs::Sampler scrapes the world registry every
// PH_SAMPLE_MS virtual milliseconds (default 100; 0 disables sampling and
// the SLO engine entirely), and an obs::SloEngine watches the sampled
// series for health violations — the Football group staying unformed, the
// tester's neighbour table going stale, loss/retransmission rate spikes,
// slow group re-forms. Every breach arms the flight recorder (the trace
// ring is dumped to $PH_FLIGHT_JSON with reason "slo:<rule>") and the
// breach windows are printed so they can be eyeballed against the fault
// schedule. PH_SERIES_JSON dumps the raw series; PH_BENCH_JSON emits the
// BENCH report the ph_bench_regression gate diffs against its baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "eval/scenarios.hpp"
#include "fault/plane.hpp"
#include "fault/schedule.hpp"
#include "obs/bench_report.hpp"
#include "obs/clock.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "peerhood/stack.hpp"

namespace {

void print_histogram(const char* label, const ph::obs::Histogram* h) {
  if (h == nullptr || h->count() == 0) {
    std::printf("  %-28s (no samples)\n", label);
    return;
  }
  std::printf("  %-28s n=%-4llu p50=%7.2fs  p95=%7.2fs  p99=%7.2fs\n", label,
              static_cast<unsigned long long>(h->count()), h->p50() / 1e6,
              h->p95() / 1e6, h->p99() / 1e6);
}

}  // namespace

int main() {
  std::uint64_t seed = 42;
  if (const char* env = std::getenv("PH_CHAOS_SEED"); env != nullptr) {
    if (const long long v = std::atoll(env); v > 0) {
      seed = static_cast<std::uint64_t>(v);
    }
  }
  int soak_minutes = 10;
  if (const char* env = std::getenv("PH_CHAOS_MINUTES"); env != nullptr) {
    if (const int v = std::atoi(env); v > 0) soak_minutes = v;
  }
  const ph::sim::Duration horizon = ph::sim::minutes(soak_minutes);
  int sample_ms = 100;
  if (const char* env = std::getenv("PH_SAMPLE_MS"); env != nullptr) {
    sample_ms = std::atoi(env);  // 0 (or negative) disables sampling
  }
  // PH_PROF: 0 = profiling off, 1 (default) = Mode 1 deterministic event
  // attribution (prof.<center>.events counters — inside the byte-identity
  // gate), 2 = Mode 1 + wall-cost histograms + slow-event watchdog +
  // Mode 2 sampling profiler. PH_PROF_WALL=1 arms the wall plane without
  // the sampler; PH_PROF_BUDGET_US tunes the watchdog (default 50 ms).
  int prof_mode = 1;
  if (const char* env = std::getenv("PH_PROF"); env != nullptr) {
    prof_mode = std::atoi(env);
  }
  bool prof_wall = prof_mode >= 2;
  if (const char* env = std::getenv("PH_PROF_WALL"); env != nullptr) {
    if (std::atoi(env) > 0) prof_wall = true;
  }

  ph::sim::Simulator simulator;
  ph::net::Medium medium(simulator, ph::sim::Rng(seed));
  // Flight-recorder mode: tracing stays on for the whole soak, bounded to
  // the last ~64k spans. The fault plane snapshots the ring to
  // $PH_FLIGHT_JSON the moment a blackout/outage fires, and the reform
  // attribution below reads the same journal.
  medium.trace().set_enabled(true);
  medium.trace().set_ring_capacity(1 << 16);
  std::vector<ph::eval::ScenarioDevice> devices =
      ph::eval::comlab_room(medium, /*autostart=*/true);

  ph::obs::Registry& metrics = medium.registry();

  // Mode 1 cost attribution: every dispatched event bumps its cost
  // center's counter. Deterministic, so it rides inside the byte-compared
  // dump (ph_chaos_determinism requires counter:prof.).
  ph::obs::prof::EventProfiler prof;
  ph::obs::prof::WallProfiler wall_sampler;
  if (prof_mode > 0) {
    simulator.set_profiler(&prof);
    if (prof_wall) {
      prof.enable_wall();
      if (const char* env = std::getenv("PH_PROF_BUDGET_US");
          env != nullptr && std::atoll(env) > 0) {
        prof.set_slow_budget_us(static_cast<std::uint64_t>(std::atoll(env)));
      }
      // The watchdog runs inline on the (single) dispatching thread:
      // journal the straggler and arm the flight recorder so the spans
      // around it survive to $PH_FLIGHT_JSON.
      prof.set_on_slow([&](ph::obs::prof::Center c, std::uint64_t us) {
        medium.trace().add_event(std::string("prof.slow_event.") +
                                     ph::obs::prof::center_name(c),
                                 simulator.now());
        std::printf("  slow event: %s took %.1f ms (budget %.1f ms)\n",
                    ph::obs::prof::center_name(c),
                    static_cast<double>(us) / 1e3,
                    static_cast<double>(prof.slow_budget_us()) / 1e3);
        ph::obs::dump_flight_recording(
            medium.trace(),
            std::string("prof.slow:") + ph::obs::prof::center_name(c));
      });
    }
  }
  if (prof_mode >= 2) {
    // Mode 2: sample the main thread's span stack (the kernel pushes one
    // frame per dispatched event tag) into a folded profile.
    wall_sampler.register_thread("main");
    wall_sampler.start();
  }

  ph::obs::Histogram& rediscovery =
      metrics.histogram("fault.recovery.rediscovery_us");
  ph::obs::Histogram& group_reform =
      metrics.histogram("fault.recovery.group_reform_us");

  // Virtual-time telemetry: scrape the registry into time series at a fixed
  // interval on the simulator's own event queue, evaluate the SLO rules
  // after every scrape, and arm the flight recorder on each breach. With
  // PH_SAMPLE_MS=0 neither the sampler nor the engine schedules anything —
  // the soak runs exactly as before (the disabled path must cost nothing).
  const bool sampling = sample_ms > 0;
  ph::obs::SamplerConfig sampler_config;
  if (sampling) {
    sampler_config.interval_us = ph::sim::milliseconds(sample_ms);
  }
  // Ring sized for the whole soak plus the quiet tail: no eviction, so the
  // dumped series cover every interval and the Chrome counter tracks replay
  // the full run.
  sampler_config.capacity = static_cast<std::size_t>(
      (horizon + ph::sim::minutes(2)) / sampler_config.interval_us + 8);
  // Route through the clockful path (FnClock over simulator.now()) so the
  // same code the wall-clock transport runs is exercised under the
  // byte-identical determinism gate. The clock only reads the simulator —
  // sampling stays a pure function of the seed.
  ph::obs::FnClock sim_clock([&] { return simulator.now(); });
  ph::obs::Sampler sampler(metrics, sim_clock, sampler_config);
  sampler.set_enabled(sampling);
  ph::obs::SloEngine slo(sampler, metrics, &medium.trace());
  if (sampling) {
    const std::string d =
        "d" + std::to_string(devices.front().stack->id());
    const auto points_in = [&](ph::sim::Duration window) {
      return static_cast<std::size_t>(window / sampler_config.interval_us);
    };
    // The tester's Football group has been unformed for a full 30 s window
    // (a healthy formation after boot takes one inquiry round, ~11 s, so
    // this only fires on real outages).
    slo.add_rule({.name = "football_unformed",
                  .series = "community.groups." + d + ".formed_groups",
                  .aggregate = ph::obs::SloAggregate::max,
                  .comparison = ph::obs::SloComparison::below,
                  .threshold = 1.0,
                  .window_us = ph::sim::seconds(30),
                  .min_points = points_in(ph::sim::seconds(30))});
    // An announced neighbour has not been heard from for > 5 s — pings run
    // every 2 s, so this means two consecutive rounds went unanswered
    // (radio outage / blackout), well before eviction clears the entry.
    slo.add_rule({.name = "neighbour_table_stale",
                  .series = "peerhood.daemon." + d + ".table_staleness_us",
                  .aggregate = ph::obs::SloAggregate::last,
                  .comparison = ph::obs::SloComparison::above,
                  .threshold = 5e6});
    // Sustained loss: the mean lost-datagram rate over 10 s exceeds 2/s
    // (burst-loss windows; background loss is well under this).
    slo.add_rule({.name = "loss_rate",
                  .series = "net.medium.datagrams_lost.rate",
                  .aggregate = ph::obs::SloAggregate::mean,
                  .comparison = ph::obs::SloComparison::above,
                  .threshold = 2.0,
                  .window_us = ph::sim::seconds(10),
                  .min_points = points_in(ph::sim::seconds(10))});
    // Group re-forms are taking > 90 s at the p95 — the user-visible SLO.
    slo.add_rule({.name = "group_reform_slow",
                  .series = "fault.recovery.group_reform_us.p95",
                  .aggregate = ph::obs::SloAggregate::last,
                  .comparison = ph::obs::SloComparison::above,
                  .threshold = 90e6});
    slo.set_on_breach([&](const ph::obs::SloRule& rule, ph::obs::TimePoint at,
                          double value) {
      std::printf("  SLO breach t=%7.1fs  %-22s value=%.4g\n", at / 1e6,
                  rule.name.c_str(), value);
      // Dapper-style: snapshot the trace ring around the moment health was
      // lost (no-op unless $PH_FLIGHT_JSON is set).
      ph::obs::dump_flight_recording(medium.trace(), "slo:" + rule.name);
    });
    // The scrape cadence dominates event counts on short soaks — attribute
    // it (and its self-rescheduling chain) to obs.sample, not unattributed.
    const ph::obs::prof::TagScope sample_tag(ph::obs::prof::Center::obs_sample);
    simulator.schedule_periodic(sampler_config.interval_us, [&] {
      // Cancelled-but-stored queue entries: the gauge the event kernel's
      // lazy-cancellation compaction keeps bounded (dead >= 32 && 2*dead
      // >= stored triggers a sweep, mirroring the medium's link policy).
      metrics.gauge("sim.queue.cancelled_live")
          .set(static_cast<double>(simulator.cancelled_pending()));
      sampler.sample();
      slo.evaluate();
    });
  }

  // Time every neighbour loss to the matching reappearance, per observer
  // pair — this is the metric the retry/backoff hardening moves.
  std::map<std::pair<ph::net::NodeId, ph::net::NodeId>, ph::sim::Time>
      gone_since;
  for (ph::eval::ScenarioDevice& device : devices) {
    const ph::net::NodeId observer = device.stack->id();
    device.stack->daemon().monitor_all(
        [&, observer](const ph::peerhood::NeighbourEvent& event) {
          const auto key = std::make_pair(observer, event.device.id);
          if (event.kind == ph::peerhood::NeighbourEvent::Kind::disappeared) {
            gone_since.emplace(key, simulator.now());
          } else if (auto it = gone_since.find(key); it != gone_since.end()) {
            rediscovery.observe(
                static_cast<double>(simulator.now() - it->second));
            gone_since.erase(it);
          }
        });
  }

  // Poll the tester's view of the Football group once a second and time
  // every unformed window — the user-visible face of a fault.
  ph::community::CommunityApp& tester = *devices.front().app;
  bool was_formed = false;
  ph::sim::Time unformed_since = 0;
  // Each unformed window is also attributed over the trace: which phases
  // (inquiry, handshake, backoff idle, …) the recovery time went to,
  // summed across windows and published as per-phase histograms so the
  // same-seed determinism check covers the analyzer too.
  ph::obs::Attribution reform_attribution;
  std::function<void()> poll_group = [&] {
    auto group = tester.groups().group("football");
    const bool formed = group.ok() && group->formed();
    if (was_formed && !formed) {
      unformed_since = simulator.now();
    } else if (!was_formed && formed && unformed_since != 0) {
      group_reform.observe(
          static_cast<double>(simulator.now() - unformed_since));
      const ph::obs::Attribution window = ph::obs::attribute_window(
          medium.trace(), unformed_since, simulator.now());
      reform_attribution.add(window);
      for (std::size_t i = 0; i < ph::obs::kPhaseCount; ++i) {
        const auto phase = static_cast<ph::obs::Phase>(i);
        metrics
            .histogram(std::string("fault.recovery.reform.") +
                       ph::obs::to_string(phase) + "_us")
            .observe(static_cast<double>(window.phase_us[i]));
      }
      unformed_since = 0;
    }
    was_formed = formed;
    simulator.schedule(ph::sim::seconds(1), poll_group);
  };
  {
    // Bench housekeeping, not protocol work.
    const ph::obs::prof::TagScope poll_tag(
        ph::obs::prof::Center::sim_kernel);
    poll_group();
  }

  // The adversary: one plane, hooks on every device so blackouts really
  // cold-restart the daemons, and a schedule drawn from the same seed.
  ph::fault::FaultPlane plane(medium, ph::sim::Rng(seed + 1));
  ph::fault::RandomScheduleParams params;
  params.horizon = horizon;
  for (ph::eval::ScenarioDevice& device : devices) {
    ph::peerhood::Stack* stack = device.stack.get();
    plane.set_device_hooks(stack->id(),
                           {.shutdown = [stack] { stack->blackout(); },
                            .restart = [stack] { stack->restart(); }});
    params.nodes.push_back(stack->id());
  }
  params.bursts = soak_minutes;
  params.outages = soak_minutes;
  params.latency_spikes = soak_minutes / 2 + 1;
  params.signal_ramps = soak_minutes / 2 + 1;
  params.blackouts = soak_minutes / 4 + 1;
  ph::sim::Rng schedule_rng(seed + 2);
  const ph::fault::Schedule schedule =
      ph::fault::random_schedule(schedule_rng, params);
  plane.load(schedule);

  std::printf("chaos soak: seed=%llu horizon=%dmin faults=%zu "
              "(bursts=%zu outages=%zu spikes=%zu ramps=%zu blackouts=%zu)\n",
              static_cast<unsigned long long>(seed), soak_minutes,
              schedule.size(), schedule.bursts.size(), schedule.outages.size(),
              schedule.latency_spikes.size(), schedule.signal_ramps.size(),
              schedule.blackouts.size());
  // Print the injected windows so SLO breach windows (below) can be read
  // against what caused them.
  std::printf("injected fault windows (virtual time):\n");
  for (const auto& f : schedule.bursts) {
    std::printf("  burst_loss             [%8.1fs, %8.1fs]\n", f.start / 1e6,
                (f.start + f.duration) / 1e6);
  }
  for (const auto& f : schedule.outages) {
    std::printf("  radio_outage     n%-3llu [%8.1fs, %8.1fs]\n",
                static_cast<unsigned long long>(f.node), f.start / 1e6,
                (f.start + f.duration) / 1e6);
  }
  for (const auto& f : schedule.latency_spikes) {
    std::printf("  latency_spike          [%8.1fs, %8.1fs]\n", f.start / 1e6,
                (f.start + f.duration) / 1e6);
  }
  for (const auto& f : schedule.signal_ramps) {
    std::printf("  signal_ramp      n%-3llu [%8.1fs, %8.1fs]\n",
                static_cast<unsigned long long>(f.node), f.start / 1e6,
                (f.start + f.ramp + f.hold + f.recover) / 1e6);
  }
  for (const auto& f : schedule.blackouts) {
    std::printf("  blackout         n%-3llu [%8.1fs, %8.1fs]\n",
                static_cast<unsigned long long>(f.node), f.start / 1e6,
                (f.start + f.duration) / 1e6);
  }

  // Soak, then a quiet tail so the last windows' recoveries complete.
  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run_for(horizon + ph::sim::minutes(2));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (prof_mode >= 2) {
    wall_sampler.stop();
    wall_sampler.unregister_thread();
    ph::obs::prof::dump_folded_if_requested(wall_sampler);
  }
  if (prof_mode > 0) {
    std::printf("\nper-event cost attribution (prof.<center>.events):\n");
    for (std::size_t i = 0; i < ph::obs::prof::kCenterCount; ++i) {
      const auto center = static_cast<ph::obs::prof::Center>(i);
      const auto& cost = prof.cost(center);
      if (cost.events == 0) continue;
      if (cost.wall_count > 0) {
        std::printf("  %-22s %9llu events  wall mean=%7.1fus total=%8.1fms\n",
                    ph::obs::prof::center_name(center),
                    static_cast<unsigned long long>(cost.events),
                    static_cast<double>(cost.wall_us) /
                        static_cast<double>(cost.wall_count),
                    static_cast<double>(cost.wall_us) / 1e3);
      } else {
        std::printf("  %-22s %9llu events\n",
                    ph::obs::prof::center_name(center),
                    static_cast<unsigned long long>(cost.events));
      }
    }
    if (prof_wall) {
      std::printf("  slow events over %.1f ms budget: %llu\n",
                  static_cast<double>(prof.slow_budget_us()) / 1e3,
                  static_cast<unsigned long long>(prof.slow_events()));
    }
  }

  const ph::obs::Snapshot faults = plane.stats();
  std::printf("\nfault windows delivered:\n");
  for (const auto& [name, value] : faults.counters()) {
    std::printf("  fault.%-32s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("\nrecovery times (virtual):\n");
  print_histogram("neighbour rediscovery", &rediscovery);
  print_histogram("Football group re-form", &group_reform);

  std::printf("\ncritical-path attribution of the re-form windows "
              "(summed, seconds):\n%s",
              ph::obs::format_attribution_table(
                  {{"group re-form (all windows)", reform_attribution}})
                  .c_str());

  if (sampling) {
    std::printf("\nSLO breach windows (virtual time, %llu breach%s over "
                "%zu series, %llu samples):\n",
                static_cast<unsigned long long>(slo.total_breaches()),
                slo.total_breaches() == 1 ? "" : "es", sampler.series().size(),
                static_cast<unsigned long long>(sampler.samples_taken()));
    for (const ph::obs::BreachWindow& window : slo.windows()) {
      std::printf("  %-22s [%8.1fs, %8.1fs]%s\n", window.rule.c_str(),
                  window.start / 1e6, window.end / 1e6,
                  window.open ? "  (still open)" : "");
    }
    if (slo.windows().empty()) std::printf("  (none)\n");
  }

  // The perf-trajectory record: every headline number below is virtual-time
  // deterministic, so the regression gate can hold them to tight tolerances.
  ph::obs::BenchReport report;
  report.bench = "chaos_soak";
  report.env = {{"seed", std::to_string(seed)},
                {"minutes", std::to_string(soak_minutes)},
                {"sample_ms", std::to_string(sample_ms)}};
  report.headline = {
      {"rediscovery_count", static_cast<double>(rediscovery.count())},
      {"rediscovery_p50_s", rediscovery.p50() / 1e6},
      {"rediscovery_p95_s", rediscovery.p95() / 1e6},
      {"group_reform_count", static_cast<double>(group_reform.count())},
      {"group_reform_p50_s", group_reform.p50() / 1e6},
      {"group_reform_p95_s", group_reform.p95() / 1e6},
      {"slo_breaches", static_cast<double>(slo.total_breaches())},
      {"datagrams_sent",
       static_cast<double>(metrics.counter("net.medium.datagrams_sent").value())},
      {"datagrams_lost",
       static_cast<double>(metrics.counter("net.medium.datagrams_lost").value())},
      {"events_executed", static_cast<double>(simulator.events_executed())},
  };
  report.info = {
      {"samples_taken", static_cast<double>(sampler.samples_taken())},
      {"series", static_cast<double>(sampler.series().size())},
      // Wall-clock throughput of the whole soak (machine-dependent: info,
      // never gated). `wall_clock_improvement` in ph_bench_compare reads
      // the *_per_sec / *_wall_s pairs advisorily.
      {"soak_wall_s", wall_s},
      {"soak_events_per_sec",
       wall_s > 0
           ? static_cast<double>(simulator.events_executed()) / wall_s
           : 0.0},
  };
  // The sampler is deliberately NOT embedded: the report is the compact
  // trajectory record the regression gate commits as a baseline; the full
  // time-series dump goes to PH_SERIES_JSON / PH_METRICS_JSON instead.
  ph::obs::dump_bench_report_if_requested(report, &metrics);

  // The acceptance check: same seed => byte-identical dump (the trace
  // ring rides along in the JSON's spans/events sections, the sampled
  // series and SLO windows in their own sections). The deterministic
  // prof.<center>.events counters publish INTO the compared dump; wall
  // histograms only when the wall plane was explicitly armed.
  if (prof_mode > 0) {
    prof.publish_events(metrics);
    if (prof_wall) prof.publish_wall(metrics);
  }
  ph::obs::dump_if_requested(metrics, &medium.trace(),
                             medium.trace_device_names(),
                             sampling ? &sampler : nullptr,
                             sampling ? &slo : nullptr);
  return 0;
}
