// Figure 6 — the dynamic group discovery algorithm's computational cost.
//
// google-benchmark over the pure GroupEngine (no radio): how the interest
// matching scales with (#neighbours x #interests), and the event-driven
// engine vs the thesis' batch rescan (DESIGN.md ablation 2).
#include <benchmark/benchmark.h>

#include "community/groups.hpp"

using namespace ph;

namespace {

std::vector<std::string> make_interests(int count, int offset = 0) {
  std::vector<std::string> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back("interest" + std::to_string((i + offset) % (2 * count)));
  }
  return out;
}

/// One peer appearing: the incremental Figure 6 path.
void BM_PeerAppears(benchmark::State& state) {
  const int neighbours = static_cast<int>(state.range(0));
  const int interests = static_cast<int>(state.range(1));
  community::SemanticDictionary dictionary;
  for (auto _ : state) {
    state.PauseTiming();
    community::GroupEngine engine("self", dictionary);
    engine.set_local_interests(make_interests(interests));
    for (int p = 0; p < neighbours - 1; ++p) {
      engine.on_peer("peer" + std::to_string(p), make_interests(interests, p));
    }
    state.ResumeTiming();
    engine.on_peer("late-peer", make_interests(interests, 3));
    benchmark::DoNotOptimize(engine.groups());
  }
  state.counters["comparisons_per_event"] = static_cast<double>(interests) * interests;
}
BENCHMARK(BM_PeerAppears)
    ->ArgsProduct({{1, 8, 32, 128}, {1, 4, 16}})
    ->ArgNames({"neighbours", "interests"});

/// The thesis' batch algorithm: full rescan of every peer.
void BM_FullRescan(benchmark::State& state) {
  const int neighbours = static_cast<int>(state.range(0));
  const int interests = static_cast<int>(state.range(1));
  community::SemanticDictionary dictionary;
  community::GroupEngine engine("self", dictionary);
  engine.set_local_interests(make_interests(interests));
  for (int p = 0; p < neighbours; ++p) {
    engine.on_peer("peer" + std::to_string(p), make_interests(interests, p));
  }
  for (auto _ : state) {
    engine.rescan();
    benchmark::DoNotOptimize(engine.groups());
  }
}
BENCHMARK(BM_FullRescan)
    ->ArgsProduct({{1, 8, 32, 128}, {1, 4, 16}})
    ->ArgNames({"neighbours", "interests"});

/// Departure handling (monitoring eviction).
void BM_PeerLeaves(benchmark::State& state) {
  const int neighbours = static_cast<int>(state.range(0));
  community::SemanticDictionary dictionary;
  for (auto _ : state) {
    state.PauseTiming();
    community::GroupEngine engine("self", dictionary);
    engine.set_local_interests(make_interests(8));
    for (int p = 0; p < neighbours; ++p) {
      engine.on_peer("peer" + std::to_string(p), make_interests(8, p));
    }
    state.ResumeTiming();
    engine.remove_peer("peer0");
  }
}
BENCHMARK(BM_PeerLeaves)->Arg(8)->Arg(64)->Arg(256)->ArgName("neighbours");

/// Semantic canonicalization overhead: matching through a taught
/// dictionary vs raw string equality.
void BM_MatchWithDictionary(benchmark::State& state) {
  const bool taught = state.range(0) != 0;
  community::SemanticDictionary dictionary;
  if (taught) {
    for (int i = 0; i < 64; ++i) {
      dictionary.teach("interest" + std::to_string(i),
                       "synonym" + std::to_string(i));
    }
  }
  community::GroupEngine engine("self", dictionary);
  engine.set_local_interests(make_interests(16));
  int round = 0;
  for (auto _ : state) {
    engine.on_peer("peer", make_interests(16, ++round % 8));
  }
}
BENCHMARK(BM_MatchWithDictionary)->Arg(0)->Arg(1)->ArgName("taught");

}  // namespace

BENCHMARK_MAIN();
