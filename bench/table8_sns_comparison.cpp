// Table 8 — "Time records for searching an interest group, joining and
// viewing any member's profile from different SNS and Reference
// Application" (the thesis' headline evaluation).
//
// Prints the same five columns the thesis reports, averaged over several
// seeds, next to the thesis' measured numbers. The expected *shape*:
// PeerHood search ≈ one Bluetooth inquiry (~11 s), join exactly 0 s, and a
// total 2-4x below every SNS column.
// Set PH_METRICS_JSON=/path/out.json (or PH_METRICS_CSV) to dump the
// aggregated per-layer counters and the per-operation latency histograms
// (p50/p95/p99 across runs) at exit; PH_TABLE8_RUNS overrides the number
// of seeds per column (handy for smoke tests).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "eval/table8.hpp"
#include "obs/bench_report.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"

namespace {

ph::eval::Table8Cell average(std::vector<ph::eval::Table8Cell> cells) {
  ph::eval::Table8Cell out = cells.front();
  out.search_s = out.join_s = out.member_list_s = out.profile_s = 0;
  for (const auto& cell : cells) {
    out.search_s += cell.search_s / cells.size();
    out.join_s += cell.join_s / cells.size();
    out.member_list_s += cell.member_list_s / cells.size();
    out.profile_s += cell.profile_s / cells.size();
  }
  return out;
}

struct PaperColumn {
  const char* label;
  double search, join, list, profile, total;
};

}  // namespace

int main() {
  int kRuns = 5;
  if (const char* env = std::getenv("PH_TABLE8_RUNS"); env != nullptr) {
    if (const int runs = std::atoi(env); runs > 0) kRuns = runs;
  }

  // Every run (all columns, all seeds) folds its world registry in here;
  // the per-operation histograms accumulate one sample per seed.
  ph::obs::Registry metrics;

  auto run_sns = [&](const ph::sns::SiteProfile& site,
                     const ph::sns::DeviceClass& device) {
    std::vector<ph::eval::Table8Cell> cells;
    for (int run = 0; run < kRuns; ++run) {
      cells.push_back(
          ph::eval::run_sns_column(site, device, 100 + run, &metrics));
    }
    return average(cells);
  };
  auto run_peerhood = [&] {
    std::vector<ph::eval::Table8Cell> cells;
    for (int run = 0; run < kRuns; ++run) {
      cells.push_back(ph::eval::run_peerhood_column(200 + run, {}, &metrics));
    }
    return average(cells);
  };

  const std::vector<ph::eval::Table8Cell> measured = {
      run_sns(ph::sns::facebook(), ph::sns::nokia_n810()),
      run_sns(ph::sns::facebook(), ph::sns::nokia_n95()),
      run_sns(ph::sns::hi5(), ph::sns::nokia_n810()),
      run_sns(ph::sns::hi5(), ph::sns::nokia_n95()),
      run_peerhood(),
  };
  const PaperColumn paper[] = {
      {"SNS (Facebook) / Nokia N810", 58, 17, 8, 11, 94},
      {"SNS (Facebook) / Nokia N95", 75, 24, 31, 27, 157},
      {"SNS (HI5) / Nokia N810", 50, 25, 18, 27, 120},
      {"SNS (HI5) / Nokia N95", 69, 40, 32, 40, 181},
      {"PeerHood Community (Bluetooth)", 11, 0, 15, 19, 45},
  };

  std::printf("Table 8: time (s) to search an interest group, join it, view the\n");
  std::printf("member list and view one member's profile (avg of %d runs)\n\n", kRuns);
  std::printf("%-34s %21s %21s %21s %21s %23s\n", "", "group search", "group join",
              "member list", "profile view", "TOTAL");
  std::printf("%-34s %10s %10s %10s %10s %10s %10s %10s %10s %11s %11s\n",
              "column", "ours", "paper", "ours", "paper", "ours", "paper",
              "ours", "paper", "ours", "paper");
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const auto& m = measured[i];
    const auto& p = paper[i];
    std::printf("%-34s %10.1f %10.0f %10.1f %10.0f %10.1f %10.0f %10.1f %10.0f %11.1f %11.0f\n",
                p.label, m.search_s, p.search, m.join_s, p.join,
                m.member_list_s, p.list, m.profile_s, p.profile, m.total_s(),
                p.total);
  }

  // Where the seconds went: mean critical-path attribution per operation,
  // reconstructed from the `eval.critical_path.<column>.<op>.<phase>_s`
  // histograms every run published. SNS rows aggregate all four SNS
  // columns (site × device); the phase split, not the absolute level, is
  // the point — GPRS transfer dominates SNS, inquiry dominates PeerHood
  // search.
  const std::vector<double> bounds = ph::obs::operation_bounds_s();
  auto mean_attribution = [&](const std::string& column,
                              const std::string& op) {
    ph::obs::Attribution attribution;
    for (std::size_t i = 0; i < ph::obs::kPhaseCount; ++i) {
      const auto phase = static_cast<ph::obs::Phase>(i);
      const ph::obs::Histogram& h = metrics.histogram(
          "eval.critical_path." + column + "." + op + "." +
              ph::obs::to_string(phase) + "_s",
          bounds);
      attribution.phase_us[i] = static_cast<std::uint64_t>(h.mean() * 1e6);
      attribution.window_us += attribution.phase_us[i];
    }
    return attribution;
  };
  std::vector<std::pair<std::string, ph::obs::Attribution>> rows;
  for (const auto& [key, label] :
       {std::pair<const char*, const char*>{"sns", "SNS (all columns)"},
        {"peerhood", "PeerHood Community"}}) {
    for (const char* op : {"search", "join", "member_list", "profile"}) {
      rows.emplace_back(std::string(label) + " / " + op,
                        mean_attribution(key, op));
    }
  }
  std::printf("\nCritical-path attribution — mean seconds per operation:\n%s",
              ph::obs::format_attribution_table(rows).c_str());

  const double best_sns_total = measured[0].total_s();
  const double peerhood_total = measured[4].total_s();
  std::printf("\nPeerHood total is %.1fx faster than the best SNS column "
              "(paper: %.1fx); join time is %s (paper: 0 s, already in the "
              "group).\n",
              best_sns_total / peerhood_total, 94.0 / 45.0,
              measured[4].join_s == 0.0 ? "exactly 0 s" : "NON-ZERO (!)");
  // Benchmark-trajectory report: every cell is a pure virtual-time average
  // over fixed seeds, so the whole table is bit-stable for a given
  // PH_TABLE8_RUNS and belongs in `headline` (gated by ph_bench_compare).
  ph::obs::BenchReport report;
  report.bench = "table8_sns_comparison";
  report.env["runs"] = std::to_string(kRuns);
  const char* column_keys[] = {"sns_facebook_n810", "sns_facebook_n95",
                               "sns_hi5_n810", "sns_hi5_n95", "peerhood"};
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const std::string key = column_keys[i];
    report.headline[key + ".search_s"] = measured[i].search_s;
    report.headline[key + ".join_s"] = measured[i].join_s;
    report.headline[key + ".member_list_s"] = measured[i].member_list_s;
    report.headline[key + ".profile_s"] = measured[i].profile_s;
    report.headline[key + ".total_s"] = measured[i].total_s();
  }
  report.headline["speedup_vs_best_sns"] = best_sns_total / peerhood_total;
  ph::obs::dump_bench_report_if_requested(report, &metrics);

  ph::obs::dump_if_requested(metrics);
  return 0;
}
