// Table 1 — WLAN standards and their data rates.
//
// The thesis quotes nominal rates (802.11 = 2 Mbps, a = 54, b = 11,
// g = 54). This bench measures the *achieved goodput* of a 4 MB bulk
// transfer between two devices over each simulated standard (and Bluetooth
// and GPRS for context). Ordering and ratios must match the table; achieved
// goodput sits slightly below nominal because of per-message latency and
// retransmissions.
#include <cstdio>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "net/medium.hpp"
#include "util/check.hpp"

namespace {

/// Transfers `total_bytes` in chunks over one link; returns goodput (bps).
double measure_goodput(const ph::net::TechProfile& profile,
                       std::size_t total_bytes, std::uint64_t seed) {
  ph::sim::Simulator simulator;
  ph::net::Medium medium(simulator, ph::sim::Rng(seed));
  auto a = medium.add_node("sender", std::make_unique<ph::sim::StaticMobility>(
                                         ph::sim::Vec2{0, 0}));
  auto b = medium.add_node("receiver", std::make_unique<ph::sim::StaticMobility>(
                                           ph::sim::Vec2{3, 0}));
  ph::net::Adapter& tx = medium.add_adapter(a, profile);
  ph::net::Adapter& rx = medium.add_adapter(b, profile);

  std::size_t received = 0;
  rx.listen(5, [&](ph::net::Link link) {
    auto held = std::make_shared<ph::net::Link>(link);
    held->on_receive([&received, held](ph::BytesView data) {
      received += data.size();
    });
  });
  ph::net::Link sender;
  tx.connect(b, 5, [&](ph::Result<ph::net::Link> link) {
    PH_CHECK(link.ok());
    sender = *link;
  });
  simulator.run_for(ph::sim::seconds(2));
  PH_CHECK(sender.valid());

  const ph::sim::Time start = simulator.now();
  constexpr std::size_t kChunk = 32'768;
  for (std::size_t offset = 0; offset < total_bytes; offset += kChunk) {
    sender.send(ph::Bytes(std::min(kChunk, total_bytes - offset), 0x55));
  }
  while (received < total_bytes) {
    simulator.run_for(ph::sim::seconds(1));
    PH_CHECK_MSG(simulator.now() - start < ph::sim::minutes(120),
                 "transfer stalled");
  }
  const double elapsed_s = ph::sim::to_seconds(simulator.now() - start);
  return static_cast<double>(total_bytes) * 8.0 / elapsed_s;
}

}  // namespace

int main() {
  constexpr std::size_t kTransfer = 4 * 1024 * 1024;
  struct Row {
    ph::net::TechProfile profile;
    double nominal_mbps;
  };
  const std::vector<Row> rows = {
      {ph::net::wlan_80211(), 2.0},   {ph::net::wlan_80211a(), 54.0},
      {ph::net::wlan_80211b(), 11.0}, {ph::net::wlan_80211g(), 54.0},
      {ph::net::bluetooth_2_0(), 0.723}, {ph::net::gprs(), 0.040},
  };

  std::printf("Table 1: WLAN standards — nominal data rate vs achieved goodput\n");
  std::printf("(%zu MB bulk transfer between two simulated devices)\n\n",
              kTransfer / (1024 * 1024));
  std::printf("%-16s %16s %18s %12s\n", "standard", "nominal (Mbps)",
              "goodput (Mbps)", "efficiency");
  for (const Row& row : rows) {
    // GPRS at 40 kbps needs a smaller transfer to finish in reasonable
    // virtual time.
    const std::size_t bytes =
        row.profile.bandwidth_bps < 1e6 ? kTransfer / 64 : kTransfer;
    const double goodput = measure_goodput(row.profile, bytes, 42);
    std::printf("%-16s %16.3f %18.3f %11.0f%%\n", row.profile.name.c_str(),
                row.nominal_mbps, goodput / 1e6,
                100.0 * goodput / row.profile.bandwidth_bps);
  }
  std::printf("\nExpected shape (thesis Table 1): 802.11a = 802.11g > 802.11b "
              "> 802.11 >> Bluetooth > GPRS.\n");
  return 0;
}
