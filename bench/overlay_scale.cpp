// Future work #2 (thesis conclusion) — "performance testing during the
// dynamic group discovery in the social network on mobile environment can
// be done in order to analyze the efficiency of such dynamic group
// discovery in any overlay networks."
//
// A crowd of N devices random-waypoints across a field several radio
// ranges wide, every device logged in and running dynamic group discovery.
// Over the window the bench measures, as a function of N:
//   * group events per device-minute (formations + dissolutions = churn
//     the middleware absorbed)
//   * mean interest-match comparisons per device (Figure 6 work)
//   * control traffic per device-minute (inquiries, service queries, pings)
//   * total radio bytes per device-minute
//   * simulator cost: pair signal() evaluations, spatial-index pruning,
//     position-cache hit rate, and wall-clock throughput (sim-seconds per
//     wall-second, events per second)
//
// CLI (all optional):
//   --devices=5,10,20,40   crowd sizes to sweep
//   --seed=1000            base seed (per run: seed + N)
//   --window-min=10        simulated minutes per run
//   --field=60 | --field=auto
//                          field edge in metres; `auto` scales the area to
//                          hold the 40-device baseline density (crowd
//                          scaling at constant density)
//   --brute                brute-force reference path (spatial index and
//                          position cache off) for A/B comparisons
//   --cell=M               spatial grid cell edge override in metres
//
// Set PH_METRICS_JSON=/path/out.json to dump, at exit, the aggregated
// world registries plus per-N scaling metrics under `bench.overlay.n<N>.*`
// — the scaling trajectory the BENCH_*.json series tracks.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "obs/bench_report.hpp"
#include "obs/export.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Options {
  std::vector<int> devices = {5, 10, 20, 40};
  std::uint64_t seed = 1000;
  double window_min = 10.0;
  double field_m = 60.0;  // 6 Bluetooth ranges across
  bool auto_field = false;
  bool brute = false;
  double cell_m = 0.0;
};

struct Metrics {
  double group_events_per_device_min = 0;
  double comparisons_per_device = 0;
  double control_msgs_per_device_min = 0;
  double bytes_per_device_min = 0;
  std::uint64_t signal_evals = 0;
  std::uint64_t pairs_pruned = 0;
  double cache_hit_rate = 0;
  double wall_s = 0;
  double sim_s_per_wall_s = 0;
  double events_per_sec = 0;
};

double field_for(const Options& options, int devices) {
  if (!options.auto_field) return options.field_m;
  // Constant density: the 40-device baseline on 60×60 m, area ∝ N.
  return 60.0 * std::sqrt(static_cast<double>(devices) / 40.0);
}

Metrics run_crowd(const Options& options, int devices, obs::Registry& dump) {
  sim::Simulator simulator;
  net::MediumConfig config;
  config.use_spatial_index = !options.brute;
  config.use_position_cache = !options.brute;
  config.use_signal_cache = !options.brute;
  config.spatial_cell_m = options.cell_m;
  const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(devices);
  net::Medium medium(simulator, sim::Rng(seed), config);
  sim::Rng mobility(seed * 17 + 3);
  const double field = field_for(options, devices);
  const sim::Duration window = sim::minutes(options.window_min);

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };
  std::vector<std::unique_ptr<Device>> crowd;
  const std::vector<std::string> topics = {"music", "sports", "films",
                                           "coffee", "code"};
  for (int i = 0; i < devices; ++i) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config_stack;
    config_stack.device_name = "n" + std::to_string(i);
    net::TechProfile bt = net::bluetooth_2_0();
    config_stack.radios = {bt};
    sim::RandomWaypoint::Config walk;
    walk.area_min = {0, 0};
    walk.area_max = {field, field};
    walk.speed_min_mps = 0.5;
    walk.speed_max_mps = 2.0;
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::RandomWaypoint>(walk, mobility.fork()),
        config_stack);
    device->app = std::make_unique<community::CommunityApp>(*device->stack);
    auto account = device->app->create_account("m" + std::to_string(i), "pw");
    PH_CHECK(account.ok());
    // Two topics per member, rotating so every pair shares something
    // sometimes.
    (*account)->add_interest(topics[i % topics.size()]);
    (*account)->add_interest(topics[(i + 2) % topics.size()]);
    PH_CHECK(device->app->login("m" + std::to_string(i), "pw").ok());
    crowd.push_back(std::move(device));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run_until(window);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  Metrics metrics;
  std::uint64_t group_events = 0, comparisons = 0, control_msgs = 0;
  for (const auto& device : crowd) {
    const obs::Snapshot group_stats = device->app->groups().stats();
    group_events += group_stats.counter("groups_formed") +
                    group_stats.counter("groups_dissolved");
    comparisons += group_stats.counter("comparisons");
    const obs::Snapshot daemon_stats = device->stack->daemon().stats();
    control_msgs += daemon_stats.counter("pings_sent") +
                    daemon_stats.counter("service_queries") +
                    daemon_stats.counter("inquiries_started");
  }
  const double device_minutes = devices * sim::to_seconds(window) / 60.0;
  metrics.group_events_per_device_min =
      static_cast<double>(group_events) / device_minutes;
  metrics.comparisons_per_device =
      static_cast<double>(comparisons) / devices;
  metrics.control_msgs_per_device_min =
      static_cast<double>(control_msgs) / device_minutes;
  metrics.bytes_per_device_min =
      static_cast<double>(
          medium.traffic(net::Technology::bluetooth).total_bytes()) /
      device_minutes;

  const obs::Snapshot world = medium.stats();
  metrics.signal_evals = world.counter("signal_evals");
  metrics.pairs_pruned = world.counter("spatial.pairs_pruned");
  const std::uint64_t hits = world.counter("position_cache.hits");
  const std::uint64_t misses = world.counter("position_cache.misses");
  metrics.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  metrics.wall_s = wall_s;
  metrics.sim_s_per_wall_s =
      wall_s > 0 ? sim::to_seconds(window) / wall_s : 0.0;
  metrics.events_per_sec =
      wall_s > 0 ? static_cast<double>(simulator.events_executed()) / wall_s
                 : 0.0;

  // Aggregate world counters across runs, plus one per-N scaling record —
  // the shape the BENCH_*.json trajectory and ph_overlay_scale_smoke read.
  dump.merge_from(medium.registry());
  const std::string prefix = "bench.overlay.n" + std::to_string(devices) + ".";
  dump.gauge(prefix + "group_events_per_device_min")
      .set(metrics.group_events_per_device_min);
  dump.gauge(prefix + "comparisons_per_device")
      .set(metrics.comparisons_per_device);
  dump.gauge(prefix + "control_msgs_per_device_min")
      .set(metrics.control_msgs_per_device_min);
  dump.gauge(prefix + "bytes_per_device_min").set(metrics.bytes_per_device_min);
  dump.counter(prefix + "signal_evals").inc(metrics.signal_evals);
  dump.counter(prefix + "spatial_pairs_pruned").inc(metrics.pairs_pruned);
  dump.counter(prefix + "signal_cache_hits")
      .inc(world.counter("signal_cache.hits"));
  dump.gauge(prefix + "position_cache_hit_rate").set(metrics.cache_hit_rate);
  dump.gauge(prefix + "field_m").set(field);
  dump.gauge(prefix + "wall_s").set(metrics.wall_s);
  dump.gauge(prefix + "sim_seconds_per_wall_second")
      .set(metrics.sim_s_per_wall_s);
  dump.gauge(prefix + "events_per_sec").set(metrics.events_per_sec);
  return metrics;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--devices")) {
      options.devices.clear();
      std::string list = v;
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string token =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const int n = std::atoi(token.c_str());
        if (n <= 0) {
          std::fprintf(stderr, "bad --devices entry '%s'\n", token.c_str());
          return false;
        }
        options.devices.push_back(n);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
      if (options.devices.empty()) return false;
    } else if (const char* v2 = value_of("--seed")) {
      options.seed = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = value_of("--window-min")) {
      options.window_min = std::atof(v3);
      if (options.window_min <= 0) return false;
    } else if (const char* v4 = value_of("--field")) {
      if (std::string(v4) == "auto") {
        options.auto_field = true;
      } else {
        options.field_m = std::atof(v4);
        if (options.field_m <= 0) return false;
      }
    } else if (const char* v5 = value_of("--cell")) {
      options.cell_m = std::atof(v5);
    } else if (arg == "--brute") {
      options.brute = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_overlay_scale [--devices=5,10,20,40] [--seed=N]\n"
          "       [--window-min=M] [--field=60|auto] [--brute] [--cell=M]\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;

  std::printf("Overlay-scale dynamic group discovery (future work #2):\n");
  std::printf(
      "random-waypoint crowd, %s field, %.0f simulated minutes, %s path\n\n",
      options.auto_field ? "constant-density (auto)"
                         : (std::to_string(static_cast<int>(options.field_m)) +
                            "x" + std::to_string(static_cast<int>(options.field_m)) +
                            " m")
                               .c_str(),
      options.window_min,
      options.brute ? "brute-force" : "spatial-index");
  std::printf("%8s %20s %16s %20s %14s %14s %10s %9s\n", "devices",
              "group events/dev/min", "comparisons/dev", "control msgs/dev/min",
              "bytes/dev/min", "signal evals", "cache hit", "sim/wall");
  obs::Registry dump;
  // Trajectory report: the per-N virtual-time metrics are seed-deterministic
  // (headline, gated); wall-clock throughput varies by machine (info only).
  obs::BenchReport report;
  report.bench = "overlay_scale";
  report.env["seed"] = std::to_string(options.seed);
  report.env["window_min"] = std::to_string(options.window_min);
  report.env["field"] = options.auto_field
                            ? std::string("auto")
                            : std::to_string(options.field_m);
  report.env["path"] = options.brute ? "brute" : "indexed";
  for (int n : options.devices) {
    const Metrics m = run_crowd(options, n, dump);
    std::printf("%8d %20.2f %16.0f %20.1f %14.0f %14llu %9.0f%% %8.1fx\n", n,
                m.group_events_per_device_min, m.comparisons_per_device,
                m.control_msgs_per_device_min, m.bytes_per_device_min,
                static_cast<unsigned long long>(m.signal_evals),
                m.cache_hit_rate * 100.0, m.sim_s_per_wall_s);
    const std::string key = "n" + std::to_string(n) + ".";
    report.headline[key + "group_events_per_device_min"] =
        m.group_events_per_device_min;
    report.headline[key + "comparisons_per_device"] = m.comparisons_per_device;
    report.headline[key + "control_msgs_per_device_min"] =
        m.control_msgs_per_device_min;
    report.headline[key + "bytes_per_device_min"] = m.bytes_per_device_min;
    report.headline[key + "signal_evals"] =
        static_cast<double>(m.signal_evals);
    report.headline[key + "spatial_pairs_pruned"] =
        static_cast<double>(m.pairs_pruned);
    report.headline[key + "position_cache_hit_rate"] = m.cache_hit_rate;
    report.info[key + "wall_s"] = m.wall_s;
    report.info[key + "sim_s_per_wall_s"] = m.sim_s_per_wall_s;
    report.info[key + "events_per_sec"] = m.events_per_sec;
  }
  obs::dump_bench_report_if_requested(report, &dump);
  std::printf(
      "\nExpected shape: per-device costs grow roughly linearly with crowd\n"
      "density (pings and service queries are per-neighbour). With the\n"
      "spatial index the simulator's own cost per discovery round is O(k)\n"
      "in the neighbourhood size instead of O(N) over the whole crowd —\n"
      "compare a --brute run's `signal evals` column at equal N.\n");
  if (!obs::dump_if_requested(dump)) return 1;
  return 0;
}
