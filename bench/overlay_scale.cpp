// Future work #2 (thesis conclusion) — "performance testing during the
// dynamic group discovery in the social network on mobile environment can
// be done in order to analyze the efficiency of such dynamic group
// discovery in any overlay networks."
//
// A crowd of N devices random-waypoints across a field several radio
// ranges wide, every device logged in and running dynamic group discovery.
// Over the window the bench measures, as a function of N:
//   * group events per device-minute (formations + dissolutions = churn
//     the middleware absorbed)
//   * mean interest-match comparisons per device (Figure 6 work)
//   * control traffic per device-minute (inquiries, service queries, pings)
//   * total radio bytes per device-minute
//   * simulator cost: pair signal() evaluations, spatial-index pruning,
//     position-cache hit rate, and wall-clock throughput (sim-seconds per
//     wall-second, events per second)
//
// CLI (all optional):
//   --devices=5,10,20,40   crowd sizes to sweep; `none` skips the classic
//                          full-stack sweep entirely (parallel-only runs)
//   --seed=1000            base seed (per run: seed + N)
//   --window-min=10        simulated minutes per run
//   --field=60 | --field=auto
//                          field edge in metres; `auto` scales the area to
//                          hold the 40-device baseline density (crowd
//                          scaling at constant density)
//   --brute                brute-force reference path (spatial index and
//                          position cache off) for A/B comparisons
//   --cell=M               spatial grid cell edge override in metres
//
// Parallel sharded-medium sweep (ParallelWorld on the ShardedKernel —
// city-scale crowds, constant density, medium hot path only):
//   --parallel-devices=64  crowd sizes for the sharded sweep; `none` skips
//   --threads=1,2          worker-thread counts to sweep per crowd size;
//                          results are asserted byte-identical across them
//   --shards=8             shard count (the determinism domain)
//   --ops=PATH             serve the live ops plane on a UNIX socket at
//                          PATH during the sharded runs (ph_ops_dump reads
//                          shard balance: sim.shard.<i>.events and the
//                          sim.shard.lookahead_stalls_us gauges)
//
// Set PH_METRICS_JSON=/path/out.json to dump, at exit, the aggregated
// world registries plus per-N scaling metrics under `bench.overlay.n<N>.*`
// — the scaling trajectory the BENCH_*.json series tracks. With
// `--devices=none` the dump is the last sharded world's registry instead
// (plus PH_SERIES_JSON / PH_TRACE_JSON when a sampler / trace is active),
// which is what ph_chaos_determinism byte-compares across --threads.
// PH_SAMPLE_MS sets the sharded worlds' series scrape interval.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "net/parallel_world.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "obs/bench_report.hpp"
#include "obs/export.hpp"
#include "obs/ops_server.hpp"
#include "obs/prof.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Options {
  std::vector<int> devices = {5, 10, 20, 40};
  std::uint64_t seed = 1000;
  double window_min = 10.0;
  double field_m = 60.0;  // 6 Bluetooth ranges across
  bool auto_field = false;
  bool brute = false;
  double cell_m = 0.0;
  std::vector<int> parallel_devices = {64};
  std::vector<unsigned> threads = {1, 2};
  unsigned shards = 8;
  std::string ops_socket;
};

struct Metrics {
  double group_events_per_device_min = 0;
  double comparisons_per_device = 0;
  double control_msgs_per_device_min = 0;
  double bytes_per_device_min = 0;
  std::uint64_t signal_evals = 0;
  std::uint64_t pairs_pruned = 0;
  double cache_hit_rate = 0;
  double wall_s = 0;
  double sim_s_per_wall_s = 0;
  double events_per_sec = 0;
};

double field_for(const Options& options, int devices) {
  if (!options.auto_field) return options.field_m;
  // Constant density: the 40-device baseline on 60×60 m, area ∝ N.
  return 60.0 * std::sqrt(static_cast<double>(devices) / 40.0);
}

Metrics run_crowd(const Options& options, int devices, obs::Registry& dump) {
  sim::Simulator simulator;
  net::MediumConfig config;
  config.use_spatial_index = !options.brute;
  config.use_position_cache = !options.brute;
  config.use_signal_cache = !options.brute;
  config.spatial_cell_m = options.cell_m;
  const std::uint64_t seed = options.seed + static_cast<std::uint64_t>(devices);
  net::Medium medium(simulator, sim::Rng(seed), config);
  sim::Rng mobility(seed * 17 + 3);
  const double field = field_for(options, devices);
  const sim::Duration window = sim::minutes(options.window_min);

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };
  std::vector<std::unique_ptr<Device>> crowd;
  const std::vector<std::string> topics = {"music", "sports", "films",
                                           "coffee", "code"};
  for (int i = 0; i < devices; ++i) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config_stack;
    config_stack.device_name = "n" + std::to_string(i);
    net::TechProfile bt = net::bluetooth_2_0();
    config_stack.radios = {bt};
    sim::RandomWaypoint::Config walk;
    walk.area_min = {0, 0};
    walk.area_max = {field, field};
    walk.speed_min_mps = 0.5;
    walk.speed_max_mps = 2.0;
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::RandomWaypoint>(walk, mobility.fork()),
        config_stack);
    device->app = std::make_unique<community::CommunityApp>(*device->stack);
    auto account = device->app->create_account("m" + std::to_string(i), "pw");
    PH_CHECK(account.ok());
    // Two topics per member, rotating so every pair shares something
    // sometimes.
    (*account)->add_interest(topics[i % topics.size()]);
    (*account)->add_interest(topics[(i + 2) % topics.size()]);
    PH_CHECK(device->app->login("m" + std::to_string(i), "pw").ok());
    crowd.push_back(std::move(device));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  simulator.run_until(window);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  Metrics metrics;
  std::uint64_t group_events = 0, comparisons = 0, control_msgs = 0;
  for (const auto& device : crowd) {
    const obs::Snapshot group_stats = device->app->groups().stats();
    group_events += group_stats.counter("groups_formed") +
                    group_stats.counter("groups_dissolved");
    comparisons += group_stats.counter("comparisons");
    const obs::Snapshot daemon_stats = device->stack->daemon().stats();
    control_msgs += daemon_stats.counter("pings_sent") +
                    daemon_stats.counter("service_queries") +
                    daemon_stats.counter("inquiries_started");
  }
  const double device_minutes = devices * sim::to_seconds(window) / 60.0;
  metrics.group_events_per_device_min =
      static_cast<double>(group_events) / device_minutes;
  metrics.comparisons_per_device =
      static_cast<double>(comparisons) / devices;
  metrics.control_msgs_per_device_min =
      static_cast<double>(control_msgs) / device_minutes;
  metrics.bytes_per_device_min =
      static_cast<double>(
          medium.traffic(net::Technology::bluetooth).total_bytes()) /
      device_minutes;

  const obs::Snapshot world = medium.stats();
  metrics.signal_evals = world.counter("signal_evals");
  metrics.pairs_pruned = world.counter("spatial.pairs_pruned");
  const std::uint64_t hits = world.counter("position_cache.hits");
  const std::uint64_t misses = world.counter("position_cache.misses");
  metrics.cache_hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  metrics.wall_s = wall_s;
  metrics.sim_s_per_wall_s =
      wall_s > 0 ? sim::to_seconds(window) / wall_s : 0.0;
  metrics.events_per_sec =
      wall_s > 0 ? static_cast<double>(simulator.events_executed()) / wall_s
                 : 0.0;

  // Aggregate world counters across runs, plus one per-N scaling record —
  // the shape the BENCH_*.json trajectory and ph_overlay_scale_smoke read.
  dump.merge_from(medium.registry());
  const std::string prefix = "bench.overlay.n" + std::to_string(devices) + ".";
  dump.gauge(prefix + "group_events_per_device_min")
      .set(metrics.group_events_per_device_min);
  dump.gauge(prefix + "comparisons_per_device")
      .set(metrics.comparisons_per_device);
  dump.gauge(prefix + "control_msgs_per_device_min")
      .set(metrics.control_msgs_per_device_min);
  dump.gauge(prefix + "bytes_per_device_min").set(metrics.bytes_per_device_min);
  dump.counter(prefix + "signal_evals").inc(metrics.signal_evals);
  dump.counter(prefix + "spatial_pairs_pruned").inc(metrics.pairs_pruned);
  dump.counter(prefix + "signal_cache_hits")
      .inc(world.counter("signal_cache.hits"));
  dump.gauge(prefix + "position_cache_hit_rate").set(metrics.cache_hit_rate);
  dump.gauge(prefix + "field_m").set(field);
  dump.gauge(prefix + "wall_s").set(metrics.wall_s);
  dump.gauge(prefix + "sim_seconds_per_wall_second")
      .set(metrics.sim_s_per_wall_s);
  dump.gauge(prefix + "events_per_sec").set(metrics.events_per_sec);
  return metrics;
}

bool parse_int_list(const char* v, const char* flag, std::vector<int>& out) {
  out.clear();
  if (std::string(v) == "none") return true;
  std::string list = v;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const int n = std::atoi(token.c_str());
    if (n <= 0) {
      std::fprintf(stderr, "bad %s entry '%s'\n", flag, token.c_str());
      return false;
    }
    out.push_back(n);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--devices")) {
      if (!parse_int_list(v, "--devices", options.devices) &&
          std::string(v) != "none") {
        return false;
      }
    } else if (const char* vp = value_of("--parallel-devices")) {
      if (!parse_int_list(vp, "--parallel-devices",
                          options.parallel_devices) &&
          std::string(vp) != "none") {
        return false;
      }
    } else if (const char* vt = value_of("--threads")) {
      std::vector<int> list;
      if (!parse_int_list(vt, "--threads", list)) return false;
      options.threads.clear();
      for (int t : list) options.threads.push_back(static_cast<unsigned>(t));
    } else if (const char* vs = value_of("--shards")) {
      const int s = std::atoi(vs);
      if (s <= 0) return false;
      options.shards = static_cast<unsigned>(s);
    } else if (const char* vo = value_of("--ops")) {
      options.ops_socket = vo;
    } else if (const char* v2 = value_of("--seed")) {
      options.seed = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = value_of("--window-min")) {
      options.window_min = std::atof(v3);
      if (options.window_min <= 0) return false;
    } else if (const char* v4 = value_of("--field")) {
      if (std::string(v4) == "auto") {
        options.auto_field = true;
      } else {
        options.field_m = std::atof(v4);
        if (options.field_m <= 0) return false;
      }
    } else if (const char* v5 = value_of("--cell")) {
      options.cell_m = std::atof(v5);
    } else if (arg == "--brute") {
      options.brute = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_overlay_scale [--devices=5,10,20,40|none] [--seed=N]\n"
          "       [--window-min=M] [--field=60|auto] [--brute] [--cell=M]\n"
          "       [--parallel-devices=64|none] [--threads=1,2] [--shards=8]\n"
          "       [--ops=SOCKET_PATH]\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// One sharded-kernel crowd at a given thread count. Returns the registry
// JSON (byte-compared across thread counts by the caller) and records
// wall-clock + deterministic counters into the report's info section.
struct ParallelRun {
  double wall_s = 0;
  double events_per_sec = 0;
  std::string metrics_json;
  net::ParallelWorld::Totals totals;
};

ParallelRun run_parallel_crowd(const Options& options, int devices,
                               unsigned threads, sim::Duration window,
                               int prof_mode, bool prof_wall,
                               obs::prof::WallProfiler* wall_sampler,
                               std::unique_ptr<net::ParallelWorld>& keep) {
  net::ParallelWorldConfig config;
  config.devices = static_cast<std::uint32_t>(devices);
  config.shards = options.shards;
  config.threads = threads;
  config.seed = options.seed + static_cast<std::uint64_t>(devices);
  // Wall-clock stall gauges are wanted live on the ops plane but would
  // poison the byte-compared dumps; only publish them when serving ops.
  config.publish_wall_stats = !options.ops_socket.empty();
  // Mode 1 attribution is deterministic and stays on by default
  // (PH_PROF=0 turns it off); the wall plane and Mode 2 sampler are
  // wall-clock and ride outside the byte-compared path.
  config.profile = prof_mode > 0;
  config.profile_wall = prof_wall;
  config.wall_sampler = wall_sampler;
  if (const char* sample_ms = std::getenv("PH_SAMPLE_MS")) {
    const long ms = std::atol(sample_ms);
    if (ms > 0) config.sample_interval_us = static_cast<std::uint64_t>(ms) * 1000;
  }
  auto world = std::make_unique<net::ParallelWorld>(config);
  if (std::getenv("PH_TRACE_JSON") != nullptr) {
    world->trace().set_enabled(true);
  }

  std::unique_ptr<obs::OpsServer> ops;
  if (!options.ops_socket.empty()) {
    obs::OpsSources sources;
    sources.registry = &world->registry();
    sources.trace = &world->trace();
    sources.sampler = world->sampler();
    sources.profiler = wall_sampler;
    ops = std::make_unique<obs::OpsServer>(
        obs::OpsServerConfig{options.ops_socket, 1.0}, sources);
    PH_CHECK_MSG(ops->start().ok(), "ops server failed to bind");
    obs::OpsServer* server = ops.get();
    world->set_barrier_poll([server] { server->handle_readable(); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  world->run_for(window);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ParallelRun run;
  run.wall_s = wall_s;
  run.totals = world->totals();
  run.events_per_sec =
      wall_s > 0 ? static_cast<double>(run.totals.events) / wall_s : 0.0;
  run.metrics_json = obs::to_json(world->registry());
  keep = std::move(world);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 1;
  if (options.threads.empty()) options.threads = {1};

  std::printf("Overlay-scale dynamic group discovery (future work #2):\n");
  std::printf(
      "random-waypoint crowd, %s field, %.0f simulated minutes, %s path\n\n",
      options.auto_field ? "constant-density (auto)"
                         : (std::to_string(static_cast<int>(options.field_m)) +
                            "x" + std::to_string(static_cast<int>(options.field_m)) +
                            " m")
                               .c_str(),
      options.window_min,
      options.brute ? "brute-force" : "spatial-index");
  std::printf("%8s %20s %16s %20s %14s %14s %10s %9s\n", "devices",
              "group events/dev/min", "comparisons/dev", "control msgs/dev/min",
              "bytes/dev/min", "signal evals", "cache hit", "sim/wall");
  obs::Registry dump;
  // Trajectory report: the per-N virtual-time metrics are seed-deterministic
  // (headline, gated); wall-clock throughput varies by machine (info only).
  obs::BenchReport report;
  report.bench = "overlay_scale";
  report.env["seed"] = std::to_string(options.seed);
  report.env["window_min"] = std::to_string(options.window_min);
  report.env["field"] = options.auto_field
                            ? std::string("auto")
                            : std::to_string(options.field_m);
  report.env["path"] = options.brute ? "brute" : "indexed";
  report.env["shards"] = std::to_string(options.shards);
  for (int n : options.devices) {
    const Metrics m = run_crowd(options, n, dump);
    std::printf("%8d %20.2f %16.0f %20.1f %14.0f %14llu %9.0f%% %8.1fx\n", n,
                m.group_events_per_device_min, m.comparisons_per_device,
                m.control_msgs_per_device_min, m.bytes_per_device_min,
                static_cast<unsigned long long>(m.signal_evals),
                m.cache_hit_rate * 100.0, m.sim_s_per_wall_s);
    const std::string key = "n" + std::to_string(n) + ".";
    report.headline[key + "group_events_per_device_min"] =
        m.group_events_per_device_min;
    report.headline[key + "comparisons_per_device"] = m.comparisons_per_device;
    report.headline[key + "control_msgs_per_device_min"] =
        m.control_msgs_per_device_min;
    report.headline[key + "bytes_per_device_min"] = m.bytes_per_device_min;
    report.headline[key + "signal_evals"] =
        static_cast<double>(m.signal_evals);
    report.headline[key + "spatial_pairs_pruned"] =
        static_cast<double>(m.pairs_pruned);
    report.headline[key + "position_cache_hit_rate"] = m.cache_hit_rate;
    report.info[key + "wall_s"] = m.wall_s;
    report.info[key + "sim_s_per_wall_s"] = m.sim_s_per_wall_s;
    report.info[key + "events_per_sec"] = m.events_per_sec;
  }

  // Sharded-medium sweep: the kernel-parallel hot path at city scale.
  // Every (N, threads) run must be byte-identical to the same N at
  // --threads=1 — checked right here, every run, not just in ctest.
  // PH_PROF: 0 = off, 1 (default) = deterministic Mode 1 attribution,
  // 2 = Mode 1 + wall histograms + Mode 2 sampling profiler (workers
  // register their span stacks; folded output via PH_PROF_FOLDED).
  int prof_mode = 1;
  if (const char* env = std::getenv("PH_PROF"); env != nullptr) {
    prof_mode = std::atoi(env);
  }
  bool prof_wall = prof_mode >= 2;
  if (const char* env = std::getenv("PH_PROF_WALL"); env != nullptr) {
    if (std::atoi(env) > 0) prof_wall = true;
  }
  // Declared before last_world: the kept world's kernel workers unregister
  // from the sampler at teardown, so the sampler must be destroyed last.
  obs::prof::WallProfiler wall_sampler;
  if (prof_mode >= 2) {
    wall_sampler.register_thread("main");
    wall_sampler.start();
  }
  std::unique_ptr<net::ParallelWorld> last_world;
  if (!options.parallel_devices.empty()) {
    const sim::Duration window = sim::minutes(options.window_min);
    std::printf(
        "\nParallel sharded medium (shards=%u, constant density, %.0f min):\n",
        options.shards, options.window_min);
    std::printf("%8s %8s %12s %12s %9s %9s %9s\n", "devices", "threads",
                "events", "events/s", "wall_s", "speedup", "forwards");
    for (int n : options.parallel_devices) {
      double base_wall = 0.0;
      std::string reference_json;
      for (unsigned threads : options.threads) {
        const ParallelRun run = run_parallel_crowd(
            options, n, threads, window, prof_mode,
            prof_wall, prof_mode >= 2 ? &wall_sampler : nullptr, last_world);
        if (reference_json.empty()) {
          reference_json = run.metrics_json;
          base_wall = run.wall_s;
        } else if (options.ops_socket.empty() && !prof_wall &&
                   run.metrics_json != reference_json) {
          // (wall histograms are machine noise — the byte check only runs
          // with the wall plane off, like the ops/stall gauges above)
          std::fprintf(stderr,
                       "parallel determinism violation: n=%d threads=%u "
                       "diverged from threads=%u\n",
                       n, threads, options.threads.front());
          return 1;
        }
        const double speedup =
            run.wall_s > 0 && base_wall > 0 ? base_wall / run.wall_s : 0.0;
        std::printf("%8d %8u %12llu %12.0f %9.2f %8.2fx %9llu\n", n, threads,
                    static_cast<unsigned long long>(run.totals.events),
                    run.events_per_sec, run.wall_s, speedup,
                    static_cast<unsigned long long>(run.totals.forwards));
        const std::string key =
            "p" + std::to_string(n) + ".t" + std::to_string(threads) + ".";
        report.info[key + "wall_s"] = run.wall_s;
        report.info[key + "events_per_sec"] = run.events_per_sec;
        report.info[key + "speedup"] = speedup;
        if (threads == options.threads.front()) {
          // Deterministic per-N records (identical at every thread count,
          // so recorded once): totals and the per-shard event balance.
          const std::string np = "p" + std::to_string(n) + ".";
          report.info[np + "events"] =
              static_cast<double>(run.totals.events);
          report.info[np + "scans"] = static_cast<double>(run.totals.scans);
          report.info[np + "ops_completed"] =
              static_cast<double>(run.totals.ops_completed);
          report.info[np + "migrations"] =
              static_cast<double>(run.totals.migrations);
          report.info[np + "threads"] =
              static_cast<double>(options.threads.size());
          for (unsigned s = 0; s < options.shards; ++s) {
            report.info[np + "shard" + std::to_string(s) + ".events"] =
                static_cast<double>(
                    last_world->kernel().shard_stats(s).executed);
          }
        }
      }
    }
  }

  if (prof_mode >= 2) {
    wall_sampler.stop();
    wall_sampler.unregister_thread();
    obs::prof::dump_folded_if_requested(wall_sampler);
  }

  obs::dump_bench_report_if_requested(report, &dump);
  std::printf(
      "\nExpected shape: per-device costs grow roughly linearly with crowd\n"
      "density (pings and service queries are per-neighbour). With the\n"
      "spatial index the simulator's own cost per discovery round is O(k)\n"
      "in the neighbourhood size instead of O(N) over the whole crowd —\n"
      "compare a --brute run's `signal evals` column at equal N.\n");
  if (options.devices.empty() && last_world != nullptr) {
    // Parallel-only run: the dump of record is the sharded world itself —
    // the artifact ph_chaos_determinism byte-compares across --threads.
    if (!obs::dump_if_requested(last_world->registry(), &last_world->trace(),
                                {}, last_world->sampler())) {
      return 1;
    }
  } else if (!obs::dump_if_requested(dump)) {
    return 1;
  }
  return 0;
}
