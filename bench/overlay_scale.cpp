// Future work #2 (thesis conclusion) — "performance testing during the
// dynamic group discovery in the social network on mobile environment can
// be done in order to analyze the efficiency of such dynamic group
// discovery in any overlay networks."
//
// A crowd of N devices random-waypoints across a field several radio
// ranges wide, every device logged in and running dynamic group discovery.
// Over a 10-minute window the bench measures, as a function of N:
//   * group events per device-minute (formations + dissolutions = churn
//     the middleware absorbed)
//   * mean interest-match comparisons per device (Figure 6 work)
//   * control traffic per device-minute (inquiries, service queries, pings)
//   * total radio bytes per device-minute
#include <cstdio>
#include <memory>
#include <vector>

#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Metrics {
  double group_events_per_device_min = 0;
  double comparisons_per_device = 0;
  double control_msgs_per_device_min = 0;
  double bytes_per_device_min = 0;
};

Metrics run_crowd(int devices, std::uint64_t seed) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  sim::Rng mobility(seed * 17 + 3);
  constexpr double kFieldSize = 60.0;  // 6 Bluetooth ranges across
  const sim::Duration kWindow = sim::minutes(10);

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };
  std::vector<std::unique_ptr<Device>> crowd;
  const std::vector<std::string> topics = {"music", "sports", "films",
                                           "coffee", "code"};
  for (int i = 0; i < devices; ++i) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = "n" + std::to_string(i);
    net::TechProfile bt = net::bluetooth_2_0();
    config.radios = {bt};
    sim::RandomWaypoint::Config walk;
    walk.area_min = {0, 0};
    walk.area_max = {kFieldSize, kFieldSize};
    walk.speed_min_mps = 0.5;
    walk.speed_max_mps = 2.0;
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::RandomWaypoint>(walk, mobility.fork()),
        config);
    device->app = std::make_unique<community::CommunityApp>(*device->stack);
    auto account = device->app->create_account("m" + std::to_string(i), "pw");
    PH_CHECK(account.ok());
    // Two topics per member, rotating so every pair shares something
    // sometimes.
    (*account)->add_interest(topics[i % topics.size()]);
    (*account)->add_interest(topics[(i + 2) % topics.size()]);
    PH_CHECK(device->app->login("m" + std::to_string(i), "pw").ok());
    crowd.push_back(std::move(device));
  }

  simulator.run_until(kWindow);

  Metrics metrics;
  std::uint64_t group_events = 0, comparisons = 0, control_msgs = 0;
  for (const auto& device : crowd) {
    const obs::Snapshot group_stats = device->app->groups().stats();
    group_events += group_stats.counter("groups_formed") +
                    group_stats.counter("groups_dissolved");
    comparisons += group_stats.counter("comparisons");
    const obs::Snapshot daemon_stats = device->stack->daemon().stats();
    control_msgs += daemon_stats.counter("pings_sent") +
                    daemon_stats.counter("service_queries") +
                    daemon_stats.counter("inquiries_started");
  }
  const double device_minutes = devices * sim::to_seconds(kWindow) / 60.0;
  metrics.group_events_per_device_min =
      static_cast<double>(group_events) / device_minutes;
  metrics.comparisons_per_device =
      static_cast<double>(comparisons) / devices;
  metrics.control_msgs_per_device_min =
      static_cast<double>(control_msgs) / device_minutes;
  metrics.bytes_per_device_min =
      static_cast<double>(
          medium.traffic(net::Technology::bluetooth).total_bytes()) /
      device_minutes;
  return metrics;
}

}  // namespace

int main() {
  std::printf("Overlay-scale dynamic group discovery (future work #2):\n");
  std::printf("random-waypoint crowd on a 60x60 m field, 10 simulated minutes\n\n");
  std::printf("%8s %22s %20s %24s %18s\n", "devices", "group events/dev/min",
              "comparisons/dev", "control msgs/dev/min", "bytes/dev/min");
  for (int n : {5, 10, 20, 40}) {
    const Metrics m = run_crowd(n, 1000 + n);
    std::printf("%8d %22.2f %20.0f %24.1f %18.0f\n", n,
                m.group_events_per_device_min, m.comparisons_per_device,
                m.control_msgs_per_device_min, m.bytes_per_device_min);
  }
  std::printf("\nExpected shape: everything per-device grows roughly linearly\n"
              "with crowd density — pings and service queries are per-\n"
              "neighbour, and group churn tracks how many matching members\n"
              "wander in and out of range. Inquiry count alone is flat (one\n"
              "periodic scan per device regardless of density).\n");
  return 0;
}
