// Real-socket loopback scenario (DESIGN.md "Transport abstraction").
//
// The Table-8-style operation set — search for a service, join (open a
// session), list members, fetch a profile — executed by real PeerHood
// daemon instances over SocketTransport: every frame crosses an actual
// UNIX-domain socket through the versioned proto::Frame envelope instead
// of the simulated medium. Defaults to 8 endpoints on one loopback
// rendezvous directory; the `ph_real_loopback_smoke` ctest runs exactly
// this binary.
//
//   bench_real_loopback [devices=8] [time_scale=200]
//
// time_scale compresses protocol cadences: virtual seconds per wall
// second, so discovery rounds designed for radio timescales finish in
// milliseconds of wall clock.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "peerhood/stack.hpp"
#include "transport/socket_transport.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

net::TechProfile quick_bt() {
  net::TechProfile p = net::bluetooth_2_0();
  p.inquiry_duration = sim::milliseconds(300);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(30);
  p.base_latency = sim::milliseconds(5);
  return p;
}

net::TechProfile quick_wlan() {
  net::TechProfile p = net::wlan_80211b();
  p.inquiry_duration = sim::milliseconds(150);
  p.inquiry_detect_prob = 1.0;
  p.connect_latency = sim::milliseconds(15);
  p.base_latency = sim::milliseconds(2);
  return p;
}

struct OpTimer {
  transport::Scheduler& scheduler;
  sim::Time virtual_start;
  std::chrono::steady_clock::time_point wall_start;

  explicit OpTimer(transport::Scheduler& s)
      : scheduler(s),
        virtual_start(s.now()),
        wall_start(std::chrono::steady_clock::now()) {}

  void report(const char* op) const {
    const double virtual_s =
        sim::to_seconds(scheduler.now() - virtual_start);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    std::printf("%-22s %14.3f %14.1f\n", op, virtual_s, wall_ms);
  }
};

template <typename Pred>
bool pump_until(transport::Scheduler& scheduler, Pred pred,
                sim::Duration limit) {
  const sim::Time deadline = scheduler.now() + limit;
  while (scheduler.now() < deadline) {
    if (pred()) return true;
    scheduler.run_until(
        std::min(deadline, scheduler.now() + sim::milliseconds(100)));
  }
  return pred();
}

}  // namespace

int main(int argc, char** argv) {
  const int devices = argc > 1 ? std::atoi(argv[1]) : 8;
  const double time_scale = argc > 2 ? std::atof(argv[2]) : 200.0;
  PH_CHECK_MSG(devices >= 2, "need at least two devices");

  transport::SocketTransportConfig config;
  config.time_scale = time_scale;
  config.seed = 42;
  // Wall-clock telemetry every 50 ms: loop-lag / dispatch histograms,
  // queue-depth gauges and channel RTT probes accumulate while the
  // operations below run.
  config.sample_interval_us = 50'000;
  transport::SocketTransport transport(config);
  transport::Scheduler& scheduler = transport.scheduler();
  const auto bench_wall_start = std::chrono::steady_clock::now();

  std::printf("Real loopback: %d PeerHood daemons (transport \"%s\") in %s\n",
              devices, transport.name(), transport.socket_dir().c_str());
  std::printf("(time_scale %.0fx; every frame crosses a real UNIX-domain "
              "socket)\n\n", time_scale);

  peerhood::DaemonConfig daemon_config;
  daemon_config.inquiry_interval = sim::seconds(1);
  daemon_config.ping_interval = sim::milliseconds(500);
  daemon_config.reply_timeout = sim::milliseconds(250);

  std::vector<std::unique_ptr<peerhood::Stack>> stacks;
  for (int i = 0; i < devices; ++i) {
    stacks.push_back(std::make_unique<peerhood::Stack>(
        peerhood::StackConfig{}
            .with_name("dev" + std::to_string(i))
            .with_radios({quick_bt(), quick_wlan()})
            .with_daemon(daemon_config)
            .with_transport(transport)));
  }

  // Every device except the tester hosts the community "service": it
  // answers "members?" with its neighbour names and anything else with its
  // profile string. Accepted connections are kept alive in `hosted`.
  std::vector<peerhood::Connection> hosted;
  for (int i = 1; i < devices; ++i) {
    peerhood::Stack& stack = *stacks[i];
    const std::string profile = "profile of " + stack.name();
    PH_CHECK(bool(stack.library().register_service(
        "community", {{"user", stack.name()}},
        [&hosted, &stack, profile](peerhood::Connection connection) {
          hosted.push_back(connection);
          peerhood::Connection conn = connection;
          conn.on_message([&stack, conn, profile](BytesView request) mutable {
            if (to_text(request) == "members?") {
              std::string members;
              for (const auto& device : stack.daemon().devices()) {
                if (!members.empty()) members += ",";
                members += device.name;
              }
              conn.send(to_bytes(members));
            } else {
              conn.send(to_bytes(profile));
            }
          });
        })));
  }

  peerhood::Stack& tester = *stacks[0];
  std::printf("%-22s %14s %14s\n", "operation", "virtual (s)", "wall (ms)");

  // -- search: discovery populates the neighbour table ----------------------
  {
    OpTimer timer(scheduler);
    const bool found = pump_until(scheduler, [&] {
      return tester.library().find_service("community").size() ==
             static_cast<std::size_t>(devices - 1);
    }, sim::seconds(60));
    PH_CHECK_MSG(found, "search: not every host advertised in time");
    timer.report("search");
  }

  // -- join: one session per host, opened back to back ---------------------
  std::vector<peerhood::Connection> sessions;
  {
    OpTimer timer(scheduler);
    for (const auto& [device, service] :
         tester.library().find_service("community")) {
      peerhood::Connection conn;
      bool failed = false;
      tester.library().connect(device.id, "community", {},
                               [&](Result<peerhood::Connection> result) {
                                 if (result.ok()) {
                                   conn = *result;
                                 } else {
                                   failed = true;
                                 }
                               });
      PH_CHECK_MSG(pump_until(scheduler,
                              [&] { return conn.valid() || failed; },
                              sim::seconds(30)) && !failed,
                   "join: session open failed");
      sessions.push_back(conn);
    }
    timer.report("join");
  }
  PH_CHECK(sessions.size() == static_cast<std::size_t>(devices - 1));

  // -- member list: ask every host for its neighbour view -------------------
  {
    OpTimer timer(scheduler);
    int replies = 0;
    for (auto& session : sessions) {
      session.on_message([&replies](BytesView) { ++replies; });
      session.send(to_bytes("members?"));
    }
    PH_CHECK_MSG(pump_until(scheduler,
                            [&] { return replies == devices - 1; },
                            sim::seconds(30)),
                 "member list: missing replies");
    timer.report("member list");
  }

  // -- profile: fetch one profile string over an open session ---------------
  {
    OpTimer timer(scheduler);
    std::string profile;
    sessions[0].on_message(
        [&profile](BytesView reply) { profile = to_text(reply); });
    sessions[0].send(to_bytes("profile?"));
    PH_CHECK_MSG(pump_until(scheduler, [&] { return !profile.empty(); },
                            sim::seconds(30)),
                 "profile: no reply");
    PH_CHECK_MSG(profile.rfind("profile of ", 0) == 0,
                 "profile: unexpected payload");
    timer.report("profile");
  }

  // -- telemetry settle: keep the sessions open until the periodic scrape
  // has pinged them at least once, so the RTT histogram is never empty.
  obs::Registry& registry = transport.registry();
  const obs::Histogram& rtt = registry.histogram("transport.channel_rtt_us");
  const obs::Histogram& lag =
      registry.histogram("transport.socket.loop.lag_us");
  PH_CHECK_MSG(pump_until(scheduler, [&] { return rtt.count() > 0; },
                          sim::seconds(300)),
               "telemetry: no channel RTT samples arrived");

  for (auto& session : sessions) session.close();
  pump_until(scheduler, [] { return false; }, sim::milliseconds(500));

  PH_CHECK_MSG(lag.count() > 0, "telemetry: loop-lag histogram is empty");
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_wall_start)
          .count();
  // search + one join/member-list pair per host + one profile fetch.
  const double ops = 2.0 + 2.0 * static_cast<double>(devices - 1);

  std::printf("\ntelemetry (wall clock):\n");
  std::printf("  %-28s n=%-5llu p50=%8.1fus p95=%8.1fus p99=%8.1fus\n",
              "channel RTT", static_cast<unsigned long long>(rtt.count()),
              rtt.p50(), rtt.p95(), rtt.p99());
  std::printf("  %-28s n=%-5llu p50=%8.1fus p95=%8.1fus p99=%8.1fus\n",
              "event-loop lag", static_cast<unsigned long long>(lag.count()),
              lag.p50(), lag.p95(), lag.p99());

  std::printf("\nreal_loopback OK: devices=%d sessions=%zu "
              "channels_open=%zu wall=%.2fs\n",
              devices, sessions.size(), transport.open_channel_count(),
              wall_s);

  obs::BenchReport report;
  report.bench = "real_loopback";
  report.env["devices"] = std::to_string(devices);
  report.env["time_scale"] = std::to_string(static_cast<int>(time_scale));
  // Deterministic count only; every latency here is wall clock and
  // machine-dependent, so it all goes in `info` (never gated).
  report.headline["sessions"] = static_cast<double>(sessions.size());
  report.info["wall_s"] = wall_s;
  report.info["ops_per_sec"] = wall_s > 0.0 ? ops / wall_s : 0.0;
  report.info["rtt_p50_us"] = rtt.p50();
  report.info["rtt_p95_us"] = rtt.p95();
  report.info["rtt_p99_us"] = rtt.p99();
  report.info["loop_lag_p95_us"] = lag.p95();
  PH_CHECK(obs::dump_bench_report_if_requested(report, &registry,
                                               transport.sampler()));
  return 0;
}
