// Trusted file transfer throughput: single-shot PS_GETCONTENT vs chunked
// PS_GETCONTENTCHUNK, across file sizes and technologies, plus the cost of
// a mid-transfer handover under each strategy.
//
// Shape to expect: chunking pays a per-chunk round trip (slightly slower on
// a healthy link) but caps what a handover retransmits at one chunk —
// single-shot re-sends the entire file after a failover.
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct World {
  sim::Simulator simulator;
  net::Medium medium{simulator, sim::Rng(77)};
  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };
  Device owner, fetcher;

  explicit World(const std::vector<net::TechProfile>& radios) {
    auto make = [&](const std::string& member, sim::Vec2 pos) {
      Device device;
      peerhood::StackConfig config;
      config.device_name = member + "-ptd";
      config.radios = radios;
      device.stack = std::make_unique<peerhood::Stack>(
          medium, std::make_unique<sim::StaticMobility>(pos), config);
      device.app = std::make_unique<community::CommunityApp>(*device.stack);
      PH_CHECK(device.app->create_account(member, "pw").ok());
      PH_CHECK(device.app->login(member, "pw").ok());
      return device;
    };
    owner = make("owner", {0, 0});
    fetcher = make("fetcher", {3, 0});
    PH_CHECK(owner.app->add_trusted("fetcher").ok());
    const sim::Time deadline = simulator.now() + sim::minutes(2);
    while (fetcher.stack->library()
               .find_service(community::kServiceName)
               .empty()) {
      simulator.run_for(sim::milliseconds(100));
      PH_CHECK(simulator.now() < deadline);
    }
  }

  struct TransferResult {
    double seconds = 0;
    std::uint64_t fallback_bt_bytes = 0;  ///< payload moved over Bluetooth
  };

  TransferResult transfer_seconds(std::size_t bytes, std::size_t chunk,
                                  bool handover_midway) {
    Bytes content(bytes, 0x42);
    PH_CHECK(owner.app->share_file("payload.bin", content).ok());
    bool done = false;
    const std::uint64_t bt_before =
        medium.traffic(net::Technology::bluetooth).link_bytes;
    const sim::Time start = simulator.now();
    auto check = [&](Result<Bytes> result) {
      PH_CHECK(result.ok());
      PH_CHECK(result->size() == bytes);
      done = true;
    };
    if (chunk == 0) {
      fetcher.app->client().fetch_content("owner", "payload.bin", check);
    } else {
      fetcher.app->client().fetch_content_chunked("owner", "payload.bin",
                                                  chunk, nullptr, check);
    }
    if (handover_midway) {
      // WLAN moves ~1.4 MB/s; interrupt while the transfer is mid-stream.
      simulator.run_for(sim::milliseconds(400));
      owner.stack->set_radio_powered(net::Technology::wlan, false);
    }
    const sim::Time deadline = simulator.now() + sim::minutes(30);
    while (!done) {
      simulator.run_for(sim::milliseconds(50));
      PH_CHECK_MSG(simulator.now() < deadline, "transfer never finished");
    }
    if (handover_midway) {
      owner.stack->set_radio_powered(net::Technology::wlan, true);
    }
    TransferResult result;
    result.seconds = sim::to_seconds(simulator.now() - start);
    result.fallback_bt_bytes =
        medium.traffic(net::Technology::bluetooth).link_bytes - bt_before;
    return result;
  }
};

}  // namespace

int main() {
  std::printf("Trusted file transfer: single-shot vs 32 kB chunks (seconds)\n\n");
  std::printf("%-12s %12s %14s %14s\n", "size", "technology", "single-shot",
              "chunked");
  for (std::size_t kb : {64, 256, 1024}) {
    {
      World world({net::bluetooth_2_0()});
      const double single = world.transfer_seconds(kb * 1024, 0, false).seconds;
      const double chunked =
          world.transfer_seconds(kb * 1024, 32'768, false).seconds;
      std::printf("%7zu kB   %12s %14.2f %14.2f\n", kb, "Bluetooth", single,
                  chunked);
    }
    {
      World world({net::wlan_80211b()});
      const double single = world.transfer_seconds(kb * 1024, 0, false).seconds;
      const double chunked =
          world.transfer_seconds(kb * 1024, 32'768, false).seconds;
      std::printf("%7zu kB   %12s %14.2f %14.2f\n", kb, "WLAN 802.11b", single,
                  chunked);
    }
  }

  std::printf("\nMid-transfer handover (dual radio, carrying WLAN link "
              "killed at t+0.4 s), 2 MB file:\n\n");
  std::printf("%-14s %12s %22s\n", "strategy", "time (s)",
              "bytes over fallback BT");
  net::TechProfile bt = net::bluetooth_2_0();
  bt.inquiry_detect_prob = 1.0;
  {
    World world({bt, net::wlan_80211b()});
    const auto single = world.transfer_seconds(2 * 1024 * 1024, 0, true);
    World world2({bt, net::wlan_80211b()});
    const auto chunked = world2.transfer_seconds(2 * 1024 * 1024, 32'768, true);
    std::printf("%-14s %12.2f %22llu\n", "single-shot", single.seconds,
                static_cast<unsigned long long>(single.fallback_bt_bytes));
    std::printf("%-14s %12.2f %22llu\n", "chunked", chunked.seconds,
                static_cast<unsigned long long>(chunked.fallback_bt_bytes));
    std::printf(
        "\nExpected shape: single-shot retransmits the ENTIRE payload over\n"
        "the slow fallback radio; chunking keeps every chunk delivered\n"
        "before the break, moving meaningfully fewer bytes over Bluetooth.\n"
        "Total time is similar at 32 kB chunks because per-chunk round\n"
        "trips on Bluetooth offset the saved bytes — bigger chunks shift\n"
        "the balance.\n");
  }
  return 0;
}
