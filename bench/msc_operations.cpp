// Figures 11-17 — per-MSC operation latency over each PeerHood technology.
//
// Each MSC operation (member list, interest list, profile view, comment,
// trusted friends, shared content, send message) runs end to end in a
// three-device neighbourhood over Bluetooth, WLAN (802.11b) and GPRS.
// Expected shape: WLAN fastest (low latency, high bandwidth), Bluetooth a
// few hundred ms (paging + 723 kbps), GPRS the slowest by far (gateway
// round trips).
#include <cstdio>
#include <functional>
#include <map>

#include "bench/community_fixture.hpp"

using namespace ph;

namespace {

using Operation =
    std::function<void(community::CommunityClient&, std::function<void()>)>;

double measure(bench::CommunityWorld& world, const Operation& op) {
  bool done = false;
  const sim::Time start = world.simulator.now();
  op(world.self().app->client(), [&] { done = true; });
  world.time_until([&] { return done; });
  return sim::to_seconds(world.simulator.now() - start);
}

std::map<std::string, Operation> operations() {
  std::map<std::string, Operation> ops;
  ops["Fig 11 get member list"] = [](auto& client, auto done) {
    client.get_online_members([done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  ops["Fig 12 get interests list"] = [](auto& client, auto done) {
    client.get_interest_list([done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  ops["Fig 13 view member profile"] = [](auto& client, auto done) {
    client.view_profile("alice", [done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  ops["Fig 14 put profile comment"] = [](auto& client, auto done) {
    client.put_profile_comment("alice", "benchmark comment",
                               [done](auto result) {
                                 PH_CHECK(result.ok());
                                 done();
                               });
  };
  ops["Fig 15 view trusted friends"] = [](auto& client, auto done) {
    client.view_trusted_friends("alice", [done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  ops["Fig 16 view shared content"] = [](auto& client, auto done) {
    client.view_shared_content("alice", [done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  ops["Fig 17 send message"] = [](auto& client, auto done) {
    client.send_message("bob", "bench", "hello there", [done](auto result) {
      PH_CHECK(result.ok());
      done();
    });
  };
  return ops;
}

}  // namespace

int main() {
  struct Tech {
    const char* label;
    net::TechProfile profile;
  };
  const Tech techs[] = {
      {"Bluetooth", net::bluetooth_2_0()},
      {"WLAN 802.11b", net::wlan_80211b()},
      {"GPRS", net::gprs()},
  };

  std::map<std::string, std::map<std::string, double>> results;
  for (const Tech& tech : techs) {
    bench::CommunityWorld world(tech.profile, {"alice", "bob"}, {"football"});
    auto& alice = *world.devices[1];
    alice.app->active()->add_trusted("self");
    alice.app->active()->share_file("notes.txt", Bytes(2'000, 1));
    for (auto& [name, op] : operations()) {
      results[name][tech.label] = measure(world, op);
    }
  }

  std::printf("Figures 11-17: MSC operation latency (s) per technology,\n");
  std::printf("three-device neighbourhood, fresh session(s) per operation\n\n");
  std::printf("%-30s %12s %14s %10s\n", "operation", "Bluetooth",
              "WLAN 802.11b", "GPRS");
  for (const auto& [name, per_tech] : results) {
    std::printf("%-30s %12.3f %14.3f %10.3f\n", name.c_str(),
                per_tech.at("Bluetooth"), per_tech.at("WLAN 802.11b"),
                per_tech.at("GPRS"));
  }
  std::printf("\nExpected shape: WLAN < Bluetooth << GPRS; member-targeted\n"
              "operations cost extra round trips (member resolution, Fig 16's\n"
              "two-phase trust check).\n");
  return 0;
}
