// Ablation: probe-based group discovery (the thesis' design) vs publishing
// interests as PHD service attributes (extension, AppConfig
// advertise_interests).
//
// The thesis' middleware learns a neighbour's interests by connecting to
// the PeerHoodCommunity service and issuing PS_GETONLINEMEMBERLIST +
// PS_GETINTERESTLIST — two RPCs after every appearance. The extension
// piggybacks member + interests on the service advertisement the daemon
// fetches anyway, so groups form straight from service discovery. This
// bench measures cold-start group-formation latency and the radio traffic
// both designs spend, on Bluetooth and WLAN.
#include <cstdio>
#include <memory>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct Sample {
  double formation_s = 0;
  std::uint64_t bytes = 0;
  std::uint64_t rpcs = 0;
};

Sample run(const net::TechProfile& radio_base, bool advertise,
           std::uint64_t seed) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  net::TechProfile radio = radio_base;
  radio.inquiry_detect_prob = 1.0;

  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };
  std::vector<std::unique_ptr<Device>> devices;
  auto add = [&](const std::string& member, sim::Vec2 pos) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {radio};
    config.autostart = false;
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(pos), config);
    community::AppConfig app_config;
    app_config.advertise_interests = advertise;
    device->app =
        std::make_unique<community::CommunityApp>(*device->stack, app_config);
    auto account = device->app->create_account(member, "pw");
    PH_CHECK(account.ok());
    (*account)->add_interest("football");
    PH_CHECK(device->app->login(member, "pw").ok());
    devices.push_back(std::move(device));
  };
  add("self", {0, 0});
  add("alice", {3, 0});
  add("bob", {0, 3});
  for (auto& device : devices) (void)device->stack->daemon().start();

  auto& self = *devices.front();
  const sim::Time start = simulator.now();
  while (true) {
    auto group = self.app->groups().group("football");
    if (group.ok() && group->members.size() == 3) break;
    simulator.run_for(sim::milliseconds(10));
    PH_CHECK_MSG(simulator.now() < sim::minutes(5), "group never completed");
  }
  Sample sample;
  sample.formation_s = sim::to_seconds(simulator.now() - start);
  sample.bytes = medium.traffic(radio.tech).total_bytes();
  for (auto& device : devices) {
    sample.rpcs += device->app->client().stats().counter("rpcs_sent");
  }
  return sample;
}

}  // namespace

int main() {
  std::printf("Ablation: probe RPCs (thesis) vs interest attributes "
              "(extension)\nthree devices, cold start until the football "
              "group is complete\n\n");
  std::printf("%-14s %-12s %16s %14s %12s\n", "radio", "mode",
              "formation (s)", "radio bytes", "probe RPCs");
  struct Radio {
    const char* label;
    net::TechProfile profile;
  };
  for (const Radio& radio : {Radio{"Bluetooth", net::bluetooth_2_0()},
                             Radio{"WLAN 802.11b", net::wlan_80211b()}}) {
    const Sample probe = run(radio.profile, false, 77);
    const Sample attrs = run(radio.profile, true, 77);
    std::printf("%-14s %-12s %16.2f %14llu %12llu\n", radio.label, "probe",
                probe.formation_s,
                static_cast<unsigned long long>(probe.bytes),
                static_cast<unsigned long long>(probe.rpcs));
    std::printf("%-14s %-12s %16.2f %14llu %12llu\n", radio.label, "attributes",
                attrs.formation_s,
                static_cast<unsigned long long>(attrs.bytes),
                static_cast<unsigned long long>(attrs.rpcs));
  }
  std::printf("\nExpected shape: attribute mode removes every probe RPC and\n"
              "its session traffic; formation time drops by the probe round\n"
              "trips (most visible on WLAN, where discovery itself is cheap).\n");
  return 0;
}
