// Infrastructure microbenchmarks (google-benchmark, wall-clock): the
// simulation kernel's event throughput and the wire codecs. Not tied to a
// thesis artifact — these document the harness' own capacity, i.e. how
// large an overlay simulation the repository can drive.
//
// Set PH_METRICS_JSON=/path/out.json (or PH_METRICS_CSV) to also dump a
// `sim.kernel.*` snapshot — one deterministic run of the schedule/run and
// cancel workloads with event counts and wall-clock throughput — at exit.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <random>

#include "net/medium.hpp"
#include "obs/bench_report.hpp"
#include "obs/export.hpp"
#include "proto/daemon.hpp"
#include "proto/messages.hpp"
#include "sim/mobility.hpp"
#include "sim/simulator.hpp"

using namespace ph;

namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < events; ++i) {
      simulator.schedule(sim::milliseconds(i % 1000), [] {});
    }
    simulator.run_all();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_SimulatorCascade(benchmark::State& state) {
  // Each event schedules the next — the latency-chain pattern every
  // network round trip uses.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator;
    int remaining = depth;
    std::function<void()> step = [&] {
      if (--remaining > 0) simulator.schedule(sim::microseconds(10), step);
    };
    simulator.schedule(0, step);
    simulator.run_all();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_SimulatorCascade)->Arg(1'000)->Arg(10'000);

// --- event queue: timer wheel vs binary heap -------------------------------
// Steady-state schedule/fire churn on the raw queues at a fixed pending-set
// size: pop the earliest event, schedule a replacement. This isolates the
// queue data structure (arg 1: 0 = binary heap reference, 1 = timer wheel)
// from the rest of the kernel; the heap pays an O(log n) sift per op while
// the wheel pays O(1) bucket filing plus amortized slot drains.

void BM_EventQueue(benchmark::State& state) {
  const std::size_t pending = static_cast<std::size_t>(state.range(0));
  const bool use_wheel = state.range(1) != 0;
  sim::FlatIdSet live;
  std::unique_ptr<sim::EventQueue> queue;
  if (use_wheel) {
    queue = std::make_unique<sim::TimerWheelQueue>(live);
  } else {
    queue = std::make_unique<sim::BinaryHeapQueue>(live);
  }
  std::mt19937_64 rng(12345);
  const sim::Duration horizon = 10'000'000;  // 10 s spread
  sim::Time now = 0;
  sim::EventId next_id = 1;
  for (std::size_t i = 0; i < pending; ++i) {
    const sim::EventId id = next_id++;
    live.insert(id);
    queue->push(now + rng() % horizon, id, sim::EventFn([] {}));
  }
  sim::QueueEntry out;
  for (auto _ : state) {
    queue->pop_next(~sim::Time{0}, out);
    live.erase(out.id);
    now = out.when;
    const sim::EventId id = next_id++;
    live.insert(id);
    queue->push(now + rng() % horizon, id, sim::EventFn([] {}));
    benchmark::DoNotOptimize(out.id);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(use_wheel ? "wheel" : "heap");
}
BENCHMARK(BM_EventQueue)
    ->ArgsProduct({{1'000, 100'000, 1'000'000}, {0, 1}});

// Steady-state cancel churn: schedule far-future events and cancel them,
// the monitoring-timeout pattern (arm a watchdog, cancel it when the reply
// arrives). Exercises FlatIdSet membership and lazy-compaction.
void BM_EventQueueCancel(benchmark::State& state) {
  const bool use_wheel = state.range(0) != 0;
  sim::FlatIdSet live;
  std::unique_ptr<sim::EventQueue> queue;
  if (use_wheel) {
    queue = std::make_unique<sim::TimerWheelQueue>(live);
  } else {
    queue = std::make_unique<sim::BinaryHeapQueue>(live);
  }
  sim::EventId next_id = 1;
  for (auto _ : state) {
    const sim::EventId id = next_id++;
    live.insert(id);
    queue->push(sim::Time{next_id} + 1'000'000, id, sim::EventFn([] {}));
    live.erase(id);
    queue->note_cancelled();
    benchmark::DoNotOptimize(queue->stored());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(use_wheel ? "wheel" : "heap");
}
BENCHMARK(BM_EventQueueCancel)->Arg(0)->Arg(1);

// End-to-end dispatch through the Simulator: a thousand self-rescheduling
// chains (the periodic-work shape chaos_soak runs at scale), measured as
// executed events per wall second. arg: 0 = binary heap, 1 = timer wheel.

void arm_bench_chain(sim::Simulator& simulator, sim::Duration period) {
  simulator.schedule(period, [&simulator, period] {
    arm_bench_chain(simulator, period);
  });
}

void BM_Dispatch(benchmark::State& state) {
  sim::Simulator simulator(state.range(0) != 0 ? sim::Simulator::QueueImpl::timer_wheel
                                               : sim::Simulator::QueueImpl::binary_heap);
  std::mt19937_64 rng(777);
  for (int i = 0; i < 1'000; ++i) {
    arm_bench_chain(simulator, 500 + rng() % 50'000);
  }
  simulator.run_for(sim::seconds(1.0));  // warm slot vectors / heap capacity
  std::uint64_t executed = simulator.events_executed();
  for (auto _ : state) {
    simulator.run_for(sim::milliseconds(100));
    benchmark::DoNotOptimize(simulator.now());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(simulator.events_executed() - executed));
  state.SetLabel(state.range(0) != 0 ? "wheel" : "heap");
}
BENCHMARK(BM_Dispatch)->Arg(0)->Arg(1);

void BM_SimulatorCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::vector<sim::EventId> ids;
    ids.reserve(10'000);
    for (int i = 0; i < 10'000; ++i) {
      ids.push_back(simulator.schedule(sim::seconds(1), [] {}));
    }
    for (sim::EventId id : ids) simulator.cancel(id);
    benchmark::DoNotOptimize(simulator.queue_size());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorCancel);

// --- radio-world proximity queries -----------------------------------------
// A random-waypoint crowd at constant density (the overlay-scale regime):
// arg 0 = N devices, arg 1 = 1 for the spatial-index path, 0 for the
// brute-force reference. Every iteration advances virtual time so the
// position cache and grid are invalidated and rebuilt exactly as they are
// in a live discovery round — this measures the steady-state query cost,
// not a warm-cache fiction.

struct RadioWorld {
  sim::Simulator simulator;
  std::unique_ptr<net::Medium> medium;
  net::TechProfile bt = net::bluetooth_2_0();
  int devices = 0;

  RadioWorld(int n, bool fast_path) : devices(n) {
    net::MediumConfig config;
    config.use_spatial_index = fast_path;
    config.use_position_cache = fast_path;
    config.use_signal_cache = fast_path;
    medium = std::make_unique<net::Medium>(simulator, sim::Rng(99), config);
    sim::Rng walkers(7);
    // Field area ∝ N: the 40-devices-on-60×60-m crowd density.
    const double field = 60.0 * std::sqrt(static_cast<double>(n) / 40.0);
    for (int i = 0; i < n; ++i) {
      sim::RandomWaypoint::Config walk;
      walk.area_min = {0, 0};
      walk.area_max = {field, field};
      const net::NodeId id = medium->add_node(
          "n" + std::to_string(i),
          std::make_unique<sim::RandomWaypoint>(walk, walkers.fork()));
      medium->add_adapter(id, bt);
    }
  }
};

void BM_NodesInRange(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  RadioWorld world(n, state.range(1) != 0);
  net::NodeId probe = 1;
  for (auto _ : state) {
    world.simulator.run_for(sim::milliseconds(100));  // new timestamp
    auto peers = world.medium->nodes_in_range(probe, world.bt);
    benchmark::DoNotOptimize(peers);
    probe = probe % static_cast<net::NodeId>(n) + 1;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(1) != 0 ? "grid" : "brute");
}
BENCHMARK(BM_NodesInRange)->ArgsProduct({{32, 256, 1024}, {0, 1}});

void BM_Signal(benchmark::State& state) {
  // 32 distinct pair samples per timestamp — the shape of a monitoring
  // round (ping sweep), where the position cache collapses repeated
  // mobility sampling (the per-pair signal memo cannot help: every pair
  // is fresh, so this measures the memoization layer's overhead too).
  const int n = static_cast<int>(state.range(0));
  RadioWorld world(n, state.range(1) != 0);
  net::NodeId a = 1;
  for (auto _ : state) {
    world.simulator.run_for(sim::milliseconds(100));
    double sum = 0.0;
    for (int i = 0; i < 32; ++i) {
      const net::NodeId b =
          static_cast<net::NodeId>((a + i) % static_cast<net::NodeId>(n)) + 1;
      sum += world.medium->signal(a, b, world.bt);
    }
    benchmark::DoNotOptimize(sum);
    a = a % static_cast<net::NodeId>(n) + 1;
  }
  state.SetItemsProcessed(state.iterations() * 32);
  state.SetLabel(state.range(1) != 0 ? "cached" : "uncached");
}
BENCHMARK(BM_Signal)->ArgsProduct({{32, 256, 1024}, {0, 1}});

proto::Response heavy_response() {
  proto::Response response;
  response.op = proto::Opcode::ps_get_profile;
  response.profile.member_id = "member";
  response.profile.display_name = "A Display Name";
  response.profile.about = "about text of realistic length for a profile";
  for (int i = 0; i < 10; ++i) {
    response.profile.interests.push_back("interest" + std::to_string(i));
    response.profile.trusted_friends.push_back("friend" + std::to_string(i));
    response.profile.comments.push_back(
        {"author" + std::to_string(i), "a comment of plausible length", 123});
    response.profile.visitors.push_back("visitor" + std::to_string(i));
  }
  return response;
}

void BM_EncodeResponse(benchmark::State& state) {
  const proto::Response response = heavy_response();
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes encoded = proto::encode(response);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_EncodeResponse);

void BM_DecodeResponse(benchmark::State& state) {
  const Bytes encoded = proto::encode(heavy_response());
  for (auto _ : state) {
    auto decoded = proto::decode_response(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(encoded.size()));
}
BENCHMARK(BM_DecodeResponse);

void BM_DecodeDaemonMessage(benchmark::State& state) {
  proto::DaemonMessage message;
  message.op = proto::DaemonOp::service_reply;
  message.device_name = "device";
  message.services = {{"PeerHoodCommunity", 1000,
                       {{"member", "alice"},
                        {"interests", "a;b;c;d"},
                        {"type", "social"}}}};
  const Bytes encoded = proto::encode(message);
  for (auto _ : state) {
    auto decoded = proto::decode_daemon_message(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(encoded.size()));
}
BENCHMARK(BM_DecodeDaemonMessage);

// Records one deterministic pass of the kernel workloads into `metrics`.
// The binary-heap queue's throughput shows up as `events_per_sec` (the
// old std::map queue managed roughly a third of it on the same workload);
// the cancel workload documents lazy cancellation: O(1) erase, stale
// entries compacted away once they outnumber live ones 4:1.
void record_kernel_metrics(obs::Registry& metrics) {
  // The schedule/run workload runs once per queue implementation. The
  // event counts are deterministic and identical (the wheel's ordering
  // contract); only the wall-clock throughput differs, recorded under
  // `events_per_sec` (timer wheel, the default) and `heap_events_per_sec`.
  for (const bool use_wheel : {true, false}) {
    constexpr int kEvents = 100'000;
    const auto wall_start = std::chrono::steady_clock::now();
    sim::Simulator simulator(use_wheel ? sim::Simulator::QueueImpl::timer_wheel
                                       : sim::Simulator::QueueImpl::binary_heap);
    for (int i = 0; i < kEvents; ++i) {
      simulator.schedule(sim::milliseconds(i % 1000), [] {});
    }
    simulator.run_all();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (use_wheel) {
      metrics.counter("sim.kernel.schedule_run_events")
          .inc(simulator.events_executed());
      metrics.gauge("sim.kernel.schedule_run_wall_s").set(wall_s);
      if (wall_s > 0) {
        metrics.gauge("sim.kernel.events_per_sec").set(kEvents / wall_s);
      }
    } else if (wall_s > 0) {
      metrics.gauge("sim.kernel.heap_events_per_sec").set(kEvents / wall_s);
    }
  }
  {
    constexpr int kEvents = 10'000;
    sim::Simulator simulator;
    std::vector<sim::EventId> ids;
    ids.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      ids.push_back(simulator.schedule(sim::seconds(1), [] {}));
    }
    std::uint64_t cancelled = 0;
    for (std::size_t i = 0; i < ids.size(); i += 2) {
      if (simulator.cancel(ids[i])) ++cancelled;
    }
    metrics.counter("sim.kernel.cancelled_events").inc(cancelled);
    metrics.gauge("sim.kernel.live_after_cancel")
        .set(static_cast<double>(simulator.queue_size()));
    simulator.run_all();
    metrics.counter("sim.kernel.cancel_run_events")
        .inc(simulator.events_executed());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  obs::Registry metrics;
  record_kernel_metrics(metrics);

  // Kernel-workload report: event counts are exact (headline); wall-clock
  // throughput depends on the machine running the gate (info only).
  obs::BenchReport report;
  report.bench = "microbench";
  report.headline["schedule_run_events"] = static_cast<double>(
      metrics.counter("sim.kernel.schedule_run_events").value());
  report.headline["cancelled_events"] = static_cast<double>(
      metrics.counter("sim.kernel.cancelled_events").value());
  report.headline["live_after_cancel"] =
      metrics.gauge("sim.kernel.live_after_cancel").value();
  report.headline["cancel_run_events"] = static_cast<double>(
      metrics.counter("sim.kernel.cancel_run_events").value());
  report.info["schedule_run_wall_s"] =
      metrics.gauge("sim.kernel.schedule_run_wall_s").value();
  report.info["events_per_sec"] =
      metrics.gauge("sim.kernel.events_per_sec").value();
  report.info["heap_events_per_sec"] =
      metrics.gauge("sim.kernel.heap_events_per_sec").value();
  obs::dump_bench_report_if_requested(report, &metrics);

  obs::dump_if_requested(metrics);
  return 0;
}
