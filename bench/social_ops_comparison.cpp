// Architecture comparison beyond Table 8: the same social operations —
// view a profile, comment it, send a message, read the inbox — on both
// architectures the thesis contrasts:
//
//   * PeerHood Community over Bluetooth (decentralized, radio-local)
//   * a centralized SNS through a mobile browser over GPRS
//
// Table 8 compared the group-discovery task set; this bench extends the
// same methodology to the everyday operations of Figures 13/14/17.
// Think time is excluded on both sides here — this is pure system time —
// which makes the architectural gap starker than Table 8's stopwatch view.
#include <cstdio>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "eval/scenarios.hpp"
#include "sns/browser.hpp"
#include "sns/server.hpp"
#include "util/check.hpp"

using namespace ph;

namespace {

struct OperationTimes {
  double view_profile_s = 0;
  double post_comment_s = 0;
  double send_message_s = 0;
  double read_inbox_s = 0;
};

OperationTimes run_peerhood(std::uint64_t seed) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  auto devices = eval::comlab_room(medium, /*autostart=*/true);
  auto& self = devices[0];
  // Converge.
  const sim::Time setup_deadline = simulator.now() + sim::minutes(2);
  while (self.stack->library().find_service(community::kServiceName).size() <
         2) {
    simulator.run_for(sim::milliseconds(100));
    PH_CHECK(simulator.now() < setup_deadline);
  }

  auto timed = [&](auto&& operation) {
    bool done = false;
    const sim::Time start = simulator.now();
    operation([&] { done = true; });
    while (!done) simulator.run_for(sim::milliseconds(10));
    return sim::to_seconds(simulator.now() - start);
  };

  OperationTimes times;
  times.view_profile_s = timed([&](auto finish) {
    self.app->client().view_profile("dave", [finish](auto result) {
      PH_CHECK(result.ok());
      finish();
    });
  });
  times.post_comment_s = timed([&](auto finish) {
    self.app->client().put_profile_comment("dave", "nice profile!",
                                           [finish](auto result) {
                                             PH_CHECK(result.ok());
                                             finish();
                                           });
  });
  times.send_message_s = timed([&](auto finish) {
    self.app->send_message("dave", "hi", "are you at the lab?",
                           [finish](auto result) {
                             PH_CHECK(result.ok());
                             finish();
                           });
  });
  // Reading the inbox is a local operation in the decentralized design:
  // mail already lives on the device.
  times.read_inbox_s = timed([&](auto finish) {
    (void)self.app->active()->inbox();
    finish();
  });
  return times;
}

OperationTimes run_sns(std::uint64_t seed) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  sns::SnsServer server(medium, sns::facebook());
  server.add_profile("dave", "Football fan");
  server.add_profile("tester", "measuring");
  // Exclude the human: a zero-think device class isolates system time.
  sns::DeviceClass device = sns::nokia_n810();
  device.click_think = 0;
  device.typing = 0;
  sns::BrowserClient browser(medium, device, server.node(), "tester");

  auto timed = [&](auto&& operation) {
    bool done = false;
    const sim::Time start = simulator.now();
    operation([&](Result<sns::BrowserClient::TaskResult> result) {
      PH_CHECK(result.ok());
      done = true;
    });
    while (!done) simulator.run_for(sim::milliseconds(10));
    return sim::to_seconds(simulator.now() - start);
  };

  OperationTimes times;
  times.view_profile_s =
      timed([&](auto cb) { browser.view_profile("dave", std::move(cb)); });
  times.post_comment_s = timed([&](auto cb) {
    browser.post_comment("dave", "nice profile!", std::move(cb));
  });
  times.send_message_s = timed([&](auto cb) {
    browser.send_message("dave", "are you at the lab?", std::move(cb));
  });
  times.read_inbox_s = timed([&](auto cb) { browser.read_inbox(std::move(cb)); });
  return times;
}

}  // namespace

int main() {
  const OperationTimes peerhood = run_peerhood(500);
  const OperationTimes sns = run_sns(501);

  std::printf("Per-operation system time (s), think time excluded:\n\n");
  std::printf("%-16s %16s %22s %10s\n", "operation", "PeerHood (BT)",
              "SNS (GPRS browser)", "ratio");
  auto row = [](const char* name, double ph_s, double sns_s) {
    if (ph_s > 0) {
      std::printf("%-16s %16.3f %22.3f %9.0fx\n", name, ph_s, sns_s,
                  sns_s / ph_s);
    } else {
      std::printf("%-16s %16.3f %22.3f %10s\n", name, ph_s, sns_s, "free");
    }
  };
  row("view profile", peerhood.view_profile_s, sns.view_profile_s);
  row("post comment", peerhood.post_comment_s, sns.post_comment_s);
  row("send message", peerhood.send_message_s, sns.send_message_s);
  row("read inbox", peerhood.read_inbox_s, sns.read_inbox_s);
  std::printf("\nExpected shape: every operation is an order of magnitude\n"
              "faster on the radio-local architecture; reading the inbox is\n"
              "free (mail lives on the device), while the SNS pays a full\n"
              "GPRS page load even to read.\n");
  return 0;
}
