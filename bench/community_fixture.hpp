// Shared bench fixture: a small PeerHood Community neighbourhood on a
// chosen radio technology, fully discovered and logged in.
#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "community/app.hpp"
#include "util/check.hpp"

namespace ph::bench {

struct CommunityWorld {
  struct Device {
    std::unique_ptr<peerhood::Stack> stack;
    std::unique_ptr<community::CommunityApp> app;
  };

  sim::Simulator simulator;
  net::Medium medium;
  std::vector<std::unique_ptr<Device>> devices;

  /// Builds `peer_names.size() + 1` devices ("self" + peers) within radio
  /// range on `radio`, waits until self has discovered every peer.
  CommunityWorld(net::TechProfile radio,
                 const std::vector<std::string>& peer_names,
                 const std::vector<std::string>& shared_interests,
                 std::uint64_t seed = 7)
      : medium(simulator, sim::Rng(seed)) {
    radio.inquiry_detect_prob = 1.0;  // deterministic setup
    add_device("self", {0, 0}, radio, shared_interests);
    double angle = 0.0;
    for (const std::string& name : peer_names) {
      angle += 1.0;
      add_device(name, {3.0 * std::cos(angle), 3.0 * std::sin(angle)}, radio,
                 shared_interests);
    }
    const sim::Time start = simulator.now();
    while (self().app->stack().library()
               .find_service(community::kServiceName)
               .size() != peer_names.size()) {
      simulator.run_for(sim::milliseconds(100));
      PH_CHECK_MSG(simulator.now() - start < sim::minutes(5),
                   "neighbourhood never converged");
    }
  }

  Device& self() { return *devices.front(); }

  void add_device(const std::string& member, sim::Vec2 pos,
                  const net::TechProfile& radio,
                  const std::vector<std::string>& interests) {
    auto device = std::make_unique<Device>();
    peerhood::StackConfig config;
    config.device_name = member + "-ptd";
    config.radios = {radio};
    device->stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(pos), config);
    device->app = std::make_unique<community::CommunityApp>(*device->stack);
    auto account = device->app->create_account(member, "pw");
    PH_CHECK(account.ok());
    for (const std::string& interest : interests) {
      (*account)->add_interest(interest);
    }
    PH_CHECK(device->app->login(member, "pw").ok());
    devices.push_back(std::move(device));
  }

  /// Runs virtual time until `pred` holds; returns elapsed duration.
  template <typename Pred>
  sim::Duration time_until(Pred pred, sim::Duration limit = sim::minutes(5)) {
    const sim::Time start = simulator.now();
    while (!pred()) {
      simulator.run_for(sim::milliseconds(10));
      PH_CHECK_MSG(simulator.now() - start < limit, "condition never met");
    }
    return simulator.now() - start;
  }
};

}  // namespace ph::bench
