// Critical-path latency attribution over a closed span tree.
//
// The trace journal tells us *that* a Table-8 operation took 26 s; this
// analyzer tells us *why*: how much of the elapsed window was Bluetooth
// inquiry wait, link handshake, payload transfer, retry/backoff idle or
// radio TX queueing — and how much nobody instrumented (processing).
//
// Spans are classified into phases by name (see classify()); phase spans
// are swept over the attribution window and every elementary interval is
// charged to the highest-priority phase covering it, so overlapping
// spans never double-count and the phase times sum *exactly* to the
// window length — the residual not covered by any phase span is charged
// to Phase::processing. Priority order (most transient/specific wins):
// queueing > backoff > transfer > handshake > inquiry; e.g. a datagram
// flight inside an inquiry-scan window counts as transfer, not inquiry.
//
// Two entry points:
//  - attribute_window(trace, t0, t1): everything the world did in a wall
//    clock window — right for ambient operations (discovery, group
//    re-formation after a fault) that have no single root span.
//  - attribute_tree(trace, root): only the root span's descendants,
//    clipped to the root's own interval — right for a single RPC.
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace ph::obs {

enum class Phase : std::uint8_t {
  inquiry = 0,    ///< device-discovery scan wait (net.inquiry, peerhood.inquiry)
  handshake = 1,  ///< link open / session hello / resume reconnects
  transfer = 2,   ///< frames in flight (net.datagram, net.link.send)
  backoff = 3,    ///< retry/backoff idle (…backoff.wait)
  queueing = 4,   ///< radio TX busy / RPC admission queues (…queue…)
  processing = 5, ///< residual: time no phase span covers
};

inline constexpr std::size_t kPhaseCount = 6;

const char* to_string(Phase phase);

/// Maps a span to its phase by name, or nullopt for container spans
/// (community.rpc, eval.*, fault.*, …) that carry no phase of their own.
std::optional<Phase> classify(const Span& span);

/// Phase attribution of one window; phase_us sums exactly to window_us.
struct Attribution {
  TimePoint window_us = 0;
  std::array<std::uint64_t, kPhaseCount> phase_us{};

  std::uint64_t of(Phase phase) const {
    return phase_us[static_cast<std::size_t>(phase)];
  }
  double fraction(Phase phase) const {
    return window_us == 0 ? 0.0
                          : static_cast<double>(of(phase)) /
                                static_cast<double>(window_us);
  }
  /// Accumulates another attribution (for averaging across runs).
  void add(const Attribution& other);
};

/// Attributes [t0, t1) across every closed phase span in the journal.
Attribution attribute_window(const Trace& trace, TimePoint t0, TimePoint t1);

/// Attributes the root span's own interval using only its descendants.
/// Returns a zero attribution when the root is unknown or not closed.
Attribution attribute_tree(const Trace& trace, SpanId root);

/// Renders rows as a fixed-width attribution table (seconds, three
/// decimals), one line per labelled operation. Deterministic output.
std::string format_attribution_table(
    const std::vector<std::pair<std::string, Attribution>>& rows);

}  // namespace ph::obs
