#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ph::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles; integral values print without exponent.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_field(std::string& out, const char* name, double value,
                  bool trailing_comma = true) {
  append_escaped(out, name);
  out += ':';
  append_number(out, value);
  if (trailing_comma) out += ',';
}

/// The "series" object body: {"name":{"kind":..,"points":[[at,v],...]},..}.
void append_series_object(std::string& out, const Sampler& sampler) {
  out += '{';
  bool first = true;
  for (const auto& [name, series] : sampler.series()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ":{\"kind\":";
    append_escaped(out, to_string(series.kind()));
    out += ',';
    append_field(out, "evicted", static_cast<double>(series.evicted()));
    out += "\"points\":[";
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (i > 0) out += ',';
      const SeriesPoint& point = series.at(i);
      out += '[';
      append_number(out, static_cast<double>(point.at));
      out += ',';
      append_number(out, point.value);
      out += ']';
    }
    out += "]}";
  }
  out += "\n}";
}

/// The "slo" object body: rules with current health plus breach windows.
void append_slo_object(std::string& out, const SloEngine& slo) {
  out += "{";
  append_field(out, "total_breaches",
               static_cast<double>(slo.total_breaches()));
  out += "\"rules\":[";
  bool first = true;
  for (const SloRule& rule : slo.rules()) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    append_escaped(out, rule.name);
    out += ",\"series\":";
    append_escaped(out, rule.series);
    out += ",\"aggregate\":";
    append_escaped(out, to_string(rule.aggregate));
    out += ",\"comparison\":";
    append_escaped(out, to_string(rule.comparison));
    out += ',';
    append_field(out, "threshold", rule.threshold);
    append_field(out, "window_us", static_cast<double>(rule.window_us));
    append_field(out, "min_points", static_cast<double>(rule.min_points));
    out += "\"breached\":";
    out += slo.breached(rule.name) ? "true" : "false";
    out += '}';
  }
  out += "\n],\"windows\":[";
  first = true;
  for (const BreachWindow& window : slo.windows()) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"rule\":";
    append_escaped(out, window.rule);
    out += ',';
    append_field(out, "start_us", static_cast<double>(window.start));
    append_field(out, "end_us", static_cast<double>(window.end));
    out += "\"open\":";
    out += window.open ? "true" : "false";
    out += '}';
  }
  out += "\n]}";
}

}  // namespace

std::uint64_t device_from_metric_name(const std::string& name) {
  for (std::size_t pos = name.find(".d"); pos != std::string::npos;
       pos = name.find(".d", pos + 1)) {
    std::size_t i = pos + 2;
    std::uint64_t id = 0;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
      id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
      ++i;
    }
    if (i > pos + 2 && i < name.size() && name[i] == '.') return id;
  }
  return 0;
}

std::string to_json(const Registry& registry, const Trace* trace,
                    const Sampler* sampler, const SloEngine* slo) {
  std::string out;
  out.reserve(4096);
  out += "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ':';
    append_number(out, static_cast<double>(counter->value()));
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ':';
    append_number(out, gauge->value());
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ":{";
    append_field(out, "count", static_cast<double>(histogram->count()));
    append_field(out, "sum", histogram->sum());
    append_field(out, "min", histogram->min());
    append_field(out, "max", histogram->max());
    append_field(out, "mean", histogram->mean());
    append_field(out, "p50", histogram->p50());
    append_field(out, "p95", histogram->p95());
    append_field(out, "p99", histogram->p99());
    out += "\"buckets\":[";
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      if (i < bounds.size()) {
        append_number(out, bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":";
      append_number(out, static_cast<double>(counts[i]));
      out += '}';
    }
    out += "]}";
  }
  out += "\n}";
  if (sampler != nullptr) {
    out += ",\n\"series\":";
    append_series_object(out, *sampler);
  }
  if (slo != nullptr) {
    out += ",\n\"slo\":";
    append_slo_object(out, *slo);
  }
  if (trace != nullptr) {
    out += ",\n\"clock_domain\":";
    append_escaped(out, trace->clock_domain());
    out += ",\n\"spans\":[";
    first = true;
    for (const Span& span : trace->spans()) {
      if (!first) out += ',';
      first = false;
      out += "\n{";
      append_field(out, "id", static_cast<double>(span.id));
      append_field(out, "parent", static_cast<double>(span.parent));
      out += "\"name\":";
      append_escaped(out, span.name);
      out += ",\"kind\":";
      append_escaped(out, span.kind);
      out += ',';
      append_field(out, "device", static_cast<double>(span.device));
      append_field(out, "start_us", static_cast<double>(span.start));
      append_field(out, "end_us", static_cast<double>(span.end));
      out += "\"closed\":";
      out += span.closed ? "true" : "false";
      out += '}';
    }
    out += "\n],\n\"events\":[";
    first = true;
    for (const TraceEvent& event : trace->events()) {
      if (!first) out += ',';
      first = false;
      out += "\n{";
      append_field(out, "span", static_cast<double>(event.span));
      out += "\"name\":";
      append_escaped(out, event.name);
      out += ",\"kind\":";
      append_escaped(out, event.kind);
      out += ',';
      append_field(out, "device", static_cast<double>(event.device));
      append_field(out, "at_us", static_cast<double>(event.at), false);
      out += '}';
    }
    out += "\n]";
  }
  out += "\n}\n";
  return out;
}

std::string series_to_json(const Sampler& sampler, const SloEngine* slo) {
  std::string out;
  out.reserve(4096);
  out += "{";
  append_field(out, "interval_us",
               static_cast<double>(sampler.config().interval_us));
  append_field(out, "capacity", static_cast<double>(sampler.config().capacity));
  append_field(out, "samples", static_cast<double>(sampler.samples_taken()));
  append_field(out, "last_sample_us",
               static_cast<double>(sampler.last_sample_at()));
  out += "\"series\":";
  append_series_object(out, sampler);
  if (slo != nullptr) {
    out += ",\n\"slo\":";
    append_slo_object(out, *slo);
  }
  out += "\n}\n";
  return out;
}

std::string to_csv(const Registry& registry) {
  std::string out = "kind,name,field,value\n";
  char buf[64];
  auto row = [&](const char* kind, const std::string& name, const char* field,
                 double value) {
    out += kind;
    out += ',';
    out += name;  // convention forbids commas/quotes in metric names
    out += ',';
    out += field;
    out += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
    out += '\n';
  };
  for (const auto& [name, c] : registry.counters()) {
    row("counter", name, "value", static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : registry.gauges()) {
    row("gauge", name, "value", g->value());
  }
  for (const auto& [name, h] : registry.histograms()) {
    row("histogram", name, "count", static_cast<double>(h->count()));
    row("histogram", name, "sum", h->sum());
    row("histogram", name, "min", h->min());
    row("histogram", name, "max", h->max());
    row("histogram", name, "mean", h->mean());
    row("histogram", name, "p50", h->p50());
    row("histogram", name, "p95", h->p95());
    row("histogram", name, "p99", h->p99());
  }
  return out;
}

std::string to_chrome_trace(
    const Trace& trace,
    const std::map<std::uint64_t, std::string>& device_names,
    const Sampler* sampler, double ts_divisor) {
  if (!(ts_divisor > 0.0)) ts_divisor = 1.0;
  const auto ts = [ts_divisor](TimePoint at) {
    return static_cast<double>(at) / ts_divisor;
  };
  std::string out;
  out.reserve(4096);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&] {
    if (!first) out += ',';
    first = false;
    out += "\n{";
  };
  // Which clock stamped this journal — "virtual" simulated microseconds or
  // real "wall" time. Perfetto shows metadata args in the track panel.
  begin_event();
  out += "\"ph\":\"M\",\"name\":\"clock_domain\",";
  append_field(out, "pid", 0.0);
  append_field(out, "tid", 0.0);
  out += "\"args\":{\"name\":";
  append_escaped(out, trace.clock_domain());
  out += "}}";
  // One track per device: pid=tid=device id, labelled via metadata.
  std::map<std::uint64_t, bool> devices;
  for (const Span& span : trace.spans()) devices[span.device] = true;
  for (const TraceEvent& event : trace.events()) devices[event.device] = true;
  if (sampler != nullptr) {
    for (const auto& [name, series] : sampler->series()) {
      if (!series.empty()) devices[device_from_metric_name(name)] = true;
    }
  }
  for (const auto& [device, seen] : devices) {
    (void)seen;
    begin_event();
    out += "\"ph\":\"M\",\"name\":\"process_name\",";
    append_field(out, "pid", static_cast<double>(device));
    append_field(out, "tid", static_cast<double>(device));
    out += "\"args\":{\"name\":";
    auto it = device_names.find(device);
    append_escaped(out, it != device_names.end()
                            ? it->second
                            : "device " + std::to_string(device));
    out += "}}";
  }
  for (const Span& span : trace.spans()) {
    begin_event();
    // Closed spans are complete ("X") events; still-open ones emit a
    // begin ("B") so truncated operations remain visible in the viewer.
    out += span.closed ? "\"ph\":\"X\"," : "\"ph\":\"B\",";
    out += "\"name\":";
    append_escaped(out, span.name);
    out += ",\"cat\":";
    append_escaped(out, span.kind.empty() ? "span" : span.kind);
    out += ',';
    append_field(out, "pid", static_cast<double>(span.device));
    append_field(out, "tid", static_cast<double>(span.device));
    append_field(out, "ts", ts(span.start));
    if (span.closed) {
      append_field(out, "dur", ts(span.end - span.start));
    }
    out += "\"args\":{";
    append_field(out, "id", static_cast<double>(span.id));
    append_field(out, "parent", static_cast<double>(span.parent), false);
    out += "}}";
    // A parent on another device is a causal hop across the radio: draw
    // it as a flow arrow from the parent's start to this span's start.
    const Span* parent = trace.find_span(span.parent);
    if (parent != nullptr && parent->device != span.device) {
      begin_event();
      out += "\"ph\":\"s\",\"name\":\"causal\",\"cat\":\"flow\",";
      append_field(out, "id", static_cast<double>(span.id));
      append_field(out, "pid", static_cast<double>(parent->device));
      append_field(out, "tid", static_cast<double>(parent->device));
      append_field(out, "ts", ts(parent->start), false);
      out += '}';
      begin_event();
      out += "\"ph\":\"f\",\"bp\":\"e\",\"name\":\"causal\",\"cat\":\"flow\",";
      append_field(out, "id", static_cast<double>(span.id));
      append_field(out, "pid", static_cast<double>(span.device));
      append_field(out, "tid", static_cast<double>(span.device));
      append_field(out, "ts", ts(span.start), false);
      out += '}';
    }
  }
  for (const TraceEvent& event : trace.events()) {
    begin_event();
    out += "\"ph\":\"i\",\"s\":\"t\",\"name\":";
    append_escaped(out, event.name);
    out += ",\"cat\":";
    append_escaped(out, event.kind.empty() ? "event" : event.kind);
    out += ',';
    append_field(out, "pid", static_cast<double>(event.device));
    append_field(out, "tid", static_cast<double>(event.device));
    append_field(out, "ts", ts(event.at), false);
    out += '}';
  }
  // Sampled series replay as "C" counter events on their device's track:
  // Perfetto draws each as a little area chart under the device's spans,
  // so a latency spike lines up visually with the outage that caused it.
  if (sampler != nullptr) {
    for (const auto& [name, series] : sampler->series()) {
      const std::uint64_t device = device_from_metric_name(name);
      for (std::size_t i = 0; i < series.size(); ++i) {
        const SeriesPoint& point = series.at(i);
        begin_event();
        out += "\"ph\":\"C\",\"name\":";
        append_escaped(out, name);
        out += ",\"cat\":\"series\",";
        append_field(out, "pid", static_cast<double>(device));
        append_field(out, "tid", static_cast<double>(device));
        append_field(out, "ts", ts(point.at));
        out += "\"args\":{\"value\":";
        append_number(out, point.value);
        out += "}}";
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: short write to '%s'\n", path.c_str());
    return false;
  }
  return true;
}

bool dump_if_requested(const Registry& registry, const Trace* trace,
                       const std::map<std::uint64_t, std::string>&
                           device_names,
                       const Sampler* sampler, const SloEngine* slo) {
  bool ok = true;
  if (trace != nullptr && trace->dropped() > 0) {
    std::fprintf(stderr,
                 "obs: warning: trace journal dropped %llu records at "
                 "capacity; the dump is incomplete (raise "
                 "Trace::set_capacity or use ring mode)\n",
                 static_cast<unsigned long long>(trace->dropped()));
  }
  if (const char* path = std::getenv("PH_METRICS_JSON");
      path != nullptr && *path != '\0') {
    if (write_file(path, to_json(registry, trace, sampler, slo))) {
      std::fprintf(stderr, "obs: metrics JSON written to %s\n", path);
    } else {
      ok = false;
    }
  }
  if (const char* path = std::getenv("PH_SERIES_JSON");
      path != nullptr && *path != '\0') {
    if (sampler == nullptr) {
      std::fprintf(stderr,
                   "obs: PH_SERIES_JSON set but this tool records no series\n");
    } else if (write_file(path, series_to_json(*sampler, slo))) {
      std::fprintf(stderr, "obs: series JSON written to %s\n", path);
    } else {
      ok = false;
    }
  }
  if (const char* path = std::getenv("PH_METRICS_CSV");
      path != nullptr && *path != '\0') {
    if (write_file(path, to_csv(registry))) {
      std::fprintf(stderr, "obs: metrics CSV written to %s\n", path);
    } else {
      ok = false;
    }
  }
  if (const char* path = std::getenv("PH_TRACE_JSON");
      path != nullptr && *path != '\0') {
    if (trace == nullptr) {
      std::fprintf(stderr,
                   "obs: PH_TRACE_JSON set but this tool records no trace\n");
    } else if (write_file(path,
                          to_chrome_trace(*trace, device_names, sampler))) {
      std::fprintf(stderr, "obs: Chrome trace JSON written to %s\n", path);
    } else {
      ok = false;
    }
  }
  return ok;
}

bool dump_trace_if_requested(const Trace& trace,
                             const std::map<std::uint64_t, std::string>&
                                 device_names) {
  const char* path = std::getenv("PH_TRACE_JSON");
  if (path == nullptr || *path == '\0') return false;
  if (!write_file(path, to_chrome_trace(trace, device_names))) return false;
  std::fprintf(stderr, "obs: Chrome trace JSON written to %s\n", path);
  return true;
}

bool dump_flight_recording(const Trace& trace, const std::string& reason,
                           const std::string& fallback_path) {
  const char* env = std::getenv("PH_FLIGHT_JSON");
  const std::string path =
      env != nullptr && *env != '\0' ? std::string(env) : fallback_path;
  if (path.empty()) return false;
  std::string body = to_chrome_trace(trace);
  // Tag the dump with why it fired; Perfetto surfaces otherData verbatim.
  const std::string prefix = "{\"displayTimeUnit\":\"ms\",";
  if (body.compare(0, prefix.size(), prefix) == 0) {
    std::string tagged = prefix + "\"otherData\":{\"reason\":";
    append_escaped(tagged, reason);
    tagged += "},";
    body = tagged + body.substr(prefix.size());
  }
  if (!write_file(path, body)) return false;
  std::fprintf(stderr, "obs: flight recording (%s) written to %s\n",
               reason.c_str(), path.c_str());
  return true;
}

}  // namespace ph::obs
