#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ph::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles; integral values print without exponent.
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_field(std::string& out, const char* name, double value,
                  bool trailing_comma = true) {
  append_escaped(out, name);
  out += ':';
  append_number(out, value);
  if (trailing_comma) out += ',';
}

}  // namespace

std::string to_json(const Registry& registry, const Trace* trace) {
  std::string out;
  out.reserve(4096);
  out += "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ':';
    append_number(out, static_cast<double>(counter->value()));
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ':';
    append_number(out, gauge->value());
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ":{";
    append_field(out, "count", static_cast<double>(histogram->count()));
    append_field(out, "sum", histogram->sum());
    append_field(out, "min", histogram->min());
    append_field(out, "max", histogram->max());
    append_field(out, "mean", histogram->mean());
    append_field(out, "p50", histogram->p50());
    append_field(out, "p95", histogram->p95());
    append_field(out, "p99", histogram->p99());
    out += "\"buckets\":[";
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      if (i < bounds.size()) {
        append_number(out, bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":";
      append_number(out, static_cast<double>(counts[i]));
      out += '}';
    }
    out += "]}";
  }
  out += "\n}";
  if (trace != nullptr) {
    out += ",\n\"spans\":[";
    first = true;
    for (const Span& span : trace->spans()) {
      if (!first) out += ',';
      first = false;
      out += "\n{";
      append_field(out, "id", static_cast<double>(span.id));
      append_field(out, "parent", static_cast<double>(span.parent));
      out += "\"name\":";
      append_escaped(out, span.name);
      out += ",\"kind\":";
      append_escaped(out, span.kind);
      out += ',';
      append_field(out, "device", static_cast<double>(span.device));
      append_field(out, "start_us", static_cast<double>(span.start));
      append_field(out, "end_us", static_cast<double>(span.end));
      out += "\"closed\":";
      out += span.closed ? "true" : "false";
      out += '}';
    }
    out += "\n],\n\"events\":[";
    first = true;
    for (const TraceEvent& event : trace->events()) {
      if (!first) out += ',';
      first = false;
      out += "\n{";
      append_field(out, "span", static_cast<double>(event.span));
      out += "\"name\":";
      append_escaped(out, event.name);
      out += ",\"kind\":";
      append_escaped(out, event.kind);
      out += ',';
      append_field(out, "device", static_cast<double>(event.device));
      append_field(out, "at_us", static_cast<double>(event.at), false);
      out += '}';
    }
    out += "\n]";
  }
  out += "\n}\n";
  return out;
}

std::string to_csv(const Registry& registry) {
  std::string out = "kind,name,field,value\n";
  char buf[64];
  auto row = [&](const char* kind, const std::string& name, const char* field,
                 double value) {
    out += kind;
    out += ',';
    out += name;  // convention forbids commas/quotes in metric names
    out += ',';
    out += field;
    out += ',';
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
    out += '\n';
  };
  for (const auto& [name, c] : registry.counters()) {
    row("counter", name, "value", static_cast<double>(c->value()));
  }
  for (const auto& [name, g] : registry.gauges()) {
    row("gauge", name, "value", g->value());
  }
  for (const auto& [name, h] : registry.histograms()) {
    row("histogram", name, "count", static_cast<double>(h->count()));
    row("histogram", name, "sum", h->sum());
    row("histogram", name, "min", h->min());
    row("histogram", name, "max", h->max());
    row("histogram", name, "mean", h->mean());
    row("histogram", name, "p50", h->p50());
    row("histogram", name, "p95", h->p95());
    row("histogram", name, "p99", h->p99());
  }
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "obs: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "obs: short write to '%s'\n", path.c_str());
    return false;
  }
  return true;
}

bool dump_if_requested(const Registry& registry, const Trace* trace) {
  bool ok = true;
  if (const char* path = std::getenv("PH_METRICS_JSON");
      path != nullptr && *path != '\0') {
    if (write_file(path, to_json(registry, trace))) {
      std::fprintf(stderr, "obs: metrics JSON written to %s\n", path);
    } else {
      ok = false;
    }
  }
  if (const char* path = std::getenv("PH_METRICS_CSV");
      path != nullptr && *path != '\0') {
    if (write_file(path, to_csv(registry))) {
      std::fprintf(stderr, "obs: metrics CSV written to %s\n", path);
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace ph::obs
