// obs::Clock — the time seam between virtual and wall-clock telemetry.
//
// The observability spine (Sampler, SloEngine, Trace) takes explicit
// TimePoint stamps so it never depends on the simulator; that kept every
// virtual-time gate byte-deterministic, but it also meant nothing could
// sample itself: some caller had to own the schedule AND the clock. The
// real transport has neither — its epoll loop lives on the wall clock and
// its telemetry must be scraped from inside that loop. The Clock interface
// closes the gap: a Sampler constructed over a Clock can sample() with no
// argument, and the same code path serves both time domains —
//
//   WallClock  — monotonic microseconds since construction
//                (std::chrono::steady_clock; never goes backwards)
//   FnClock    — wraps any microsecond source, e.g. the simulator's
//                now(); the virtual-time benches route through this so
//                the clockful path is exercised by the determinism gates
//                with byte-identical output.
//
// domain() tags which world the stamps live in ("virtual" / "wall"); the
// exporters carry the tag so a dashboard never mistakes compressed
// simulated seconds for real ones.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "obs/trace.hpp"  // TimePoint

namespace ph::obs {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Monotonically non-decreasing microseconds since an arbitrary epoch.
  virtual TimePoint now() const = 0;
  /// "virtual" or "wall" — which world the stamps live in.
  virtual const char* domain() const noexcept = 0;
};

/// Monotonic wall clock: microseconds since this clock's construction.
/// Anchoring at construction keeps stamps small and per-world, matching
/// the virtual convention of "microseconds since the run started".
class WallClock final : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  TimePoint now() const override {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    return static_cast<TimePoint>(elapsed.count());
  }
  const char* domain() const noexcept override { return "wall"; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Adapts any microsecond source (typically [&]{ return simulator.now(); })
/// into a Clock. The default domain is "virtual" because that is what every
/// existing time source in this codebase is.
class FnClock final : public Clock {
 public:
  explicit FnClock(std::function<TimePoint()> fn,
                   const char* domain = "virtual")
      : fn_(std::move(fn)), domain_(domain) {}

  TimePoint now() const override { return fn_(); }
  const char* domain() const noexcept override { return domain_; }

 private:
  std::function<TimePoint()> fn_;
  const char* domain_;
};

}  // namespace ph::obs
