#include "obs/ops_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/expo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ph::obs {

namespace {

constexpr std::size_t kMaxRequestLine = 4096;

void set_io_timeout(int fd) {
  // A stuck or malicious client must not wedge the daemon's event loop:
  // every read/write on an accepted connection gives up after 1 s.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool write_all(int fd, const std::string& body) {
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads up to the first newline (or EOF / size cap) and extracts the
/// route: the last whitespace-separated token, so both "/metrics" and
/// "GET /metrics" (and a trailing \r) resolve the same way.
std::string read_route(int fd) {
  std::string line;
  char buf[256];
  while (line.size() < kMaxRequestLine) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    line.append(buf, static_cast<std::size_t>(n));
    if (line.find('\n') != std::string::npos) break;
  }
  const std::size_t eol = line.find_first_of("\r\n");
  if (eol != std::string::npos) line.resize(eol);
  const std::size_t space = line.find_last_of(" \t");
  if (space != std::string::npos) line.erase(0, space + 1);
  return line;
}

}  // namespace

OpsServer::OpsServer(OpsServerConfig config, OpsSources sources)
    : config_(std::move(config)), sources_(std::move(sources)) {}

OpsServer::~OpsServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

Result<void> OpsServer::start() {
  if (listen_fd_ >= 0) return ok();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Error{Errc::invalid_argument,
                 "ops socket path too long: " + config_.socket_path};
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Error{Errc::transport_error,
                 std::string("ops socket(): ") + std::strerror(errno)};
  }
  ::unlink(config_.socket_path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    const int saved = errno;
    ::close(fd);
    return Error{Errc::transport_error, "ops bind/listen " +
                                            config_.socket_path + ": " +
                                            std::strerror(saved)};
  }
  listen_fd_ = fd;
  PH_LOG(info, "obs") << "ops server listening on " << config_.socket_path;
  return ok();
}

void OpsServer::handle_readable() {
  if (listen_fd_ < 0) return;
  for (;;) {
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained every pending connection
    }
    set_io_timeout(conn);
    const std::string route = read_route(conn);
    const std::string body = respond(route);
    if (!write_all(conn, body)) {
      PH_LOG(warn, "obs") << "ops response write failed for " << route << ": "
                          << std::strerror(errno);
    }
    ::close(conn);
    ++requests_;
  }
}

std::string OpsServer::respond(const std::string& route) const {
  if (route == "/metrics") {
    if (sources_.registry == nullptr) return "err unavailable /metrics\n";
    return to_exposition(*sources_.registry);
  }
  if (route == "/series") {
    if (sources_.registry == nullptr) return "err unavailable /series\n";
    return to_json(*sources_.registry, nullptr, sources_.sampler,
                   sources_.slo);
  }
  if (route == "/slo") {
    if (sources_.sampler == nullptr) return "err unavailable /slo\n";
    return series_to_json(*sources_.sampler, sources_.slo);
  }
  if (route == "/flight") {
    if (sources_.trace == nullptr) return "err unavailable /flight\n";
    std::map<std::uint64_t, std::string> names;
    if (sources_.device_names) names = sources_.device_names();
    return to_chrome_trace(*sources_.trace, names, sources_.sampler,
                           config_.trace_ts_divisor);
  }
  if (route == "/profile") {
    if (sources_.profiler == nullptr) return "err unavailable /profile\n";
    return sources_.profiler->to_folded();
  }
  return "err unknown-route " + route + "\n";
}

}  // namespace ph::obs
