// Virtual-time metric sampling — the time-series half of ph::obs.
//
// A Registry snapshot is a single end-of-run number per instrument; a run
// that degrades half-way through (a fault-plane outage, a congested radio)
// looks identical to a healthy one. The Sampler closes that gap: scraped at
// a fixed *virtual* interval (schedule it with sim::Simulator::
// schedule_periodic), it diffs successive instrument states into
// ring-buffered per-metric TimeSeries —
//
//   counters   -> `<name>.rate`  events/second over the interval
//   gauges     -> `<name>`       last value at the sample instant
//   histograms -> `<name>.rate`  observations/second over the interval
//                 `<name>.p50/.p95/.p99`
//                                per-interval quantiles from the bucket
//                                diff (only when the interval saw samples)
//
// The design borrows Monarch's windowed in-memory series and Dapper's
// always-on/low-overhead discipline: every ring is allocated once when its
// metric first appears (O(series) allocation for a whole run, never
// O(samples x metrics) — tests assert this via allocations()), a sample
// does no allocation at steady state, and a Sampler that is disabled or
// simply never constructed costs the instrumented code nothing (sampling
// is pull-based; layers never see the sampler).
//
// Like the Trace, the Sampler takes explicit TimePoint stamps so obs does
// not depend on the simulator. All state is deterministic: same seed, same
// scrape schedule => byte-identical series dumps. A Sampler may instead be
// constructed over an obs::Clock (virtual FnClock or monotonic WallClock)
// and scraped with the argless sample() — the stamps then come from the
// clock, and nothing else about the diffing changes, so a FnClock over the
// simulator reproduces the explicit-stamp path byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"  // TimePoint
#include "util/arena.hpp"

namespace ph::obs {

class Clock;

/// One sample of one series, stamped with virtual time.
struct SeriesPoint {
  TimePoint at = 0;
  double value = 0.0;
};

/// What a series' values mean (serialized into the JSON dump).
enum class SeriesKind {
  counter_rate,  ///< counter delta / interval, per second
  gauge,         ///< gauge value at the sample instant
  hist_rate,     ///< histogram count delta / interval, per second
  hist_p50,      ///< per-interval quantiles of the bucket diff
  hist_p95,
  hist_p99,
};

const char* to_string(SeriesKind kind);

/// Fixed-capacity ring of SeriesPoints, oldest evicted first. The backing
/// store is fixed at construction and never grows — either a vector the
/// series owns (standalone use, tests) or a caller-provided slab (the
/// Sampler carves all its rings out of one epoch arena, so a whole run's
/// series storage is a handful of chunk allocations instead of one heap
/// block per metric).
class TimeSeries {
 public:
  /// Self-owning ring (allocates its own storage).
  TimeSeries(SeriesKind kind, std::size_t capacity);
  /// External storage: `storage[0..capacity)` must outlive the series.
  TimeSeries(SeriesKind kind, SeriesPoint* storage, std::size_t capacity);

  TimeSeries(TimeSeries&& other) noexcept;
  TimeSeries& operator=(TimeSeries&& other) noexcept;

  SeriesKind kind() const noexcept { return kind_; }
  std::size_t capacity() const noexcept { return cap_; }
  /// Points currently retained (<= capacity).
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  /// Oldest-first access; i must be < size().
  const SeriesPoint& at(std::size_t i) const;
  const SeriesPoint& back() const { return at(size_ - 1); }
  /// Points ever pushed (evicted ones included).
  std::uint64_t total_points() const noexcept { return total_; }
  std::uint64_t evicted() const noexcept { return total_ - size_; }

  void push(TimePoint at, double value);

 private:
  SeriesKind kind_;
  std::vector<SeriesPoint> own_;  // empty when the storage is external
  SeriesPoint* data_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;  // index of the oldest point
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// Per-interval quantile over a bucket-count *delta*: linear interpolation
/// inside the bucket containing the requested rank. The first bucket spans
/// (0, bounds[0]]; the overflow bucket clamps to the last bound (its true
/// extent is unknown from a diff). Returns 0 when `total` is 0.
double quantile_from_bucket_delta(const std::vector<double>& bounds,
                                  const std::vector<std::uint64_t>& delta,
                                  std::uint64_t total, double q);

struct SamplerConfig {
  /// Nominal scrape interval in virtual microseconds. Informational (the
  /// caller owns the actual schedule); serialized into dumps and used as
  /// the fallback elapsed time for the very first sample.
  std::uint64_t interval_us = 100'000;
  /// Ring capacity per series, in points.
  std::size_t capacity = 1024;
};

/// Scrapes a Registry into per-metric TimeSeries. Call sample(now) at a
/// fixed virtual interval; metrics registered after sampling started are
/// picked up on their first scrape (their series simply start later).
class Sampler {
 public:
  explicit Sampler(const Registry& registry, SamplerConfig config = {});
  /// Clockful form: sample() with no argument stamps from `clock`, which
  /// must outlive the sampler. The explicit sample(now) overload remains
  /// available and behaves identically.
  Sampler(const Registry& registry, const Clock& clock,
          SamplerConfig config = {});
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// A disabled sampler's sample() is a no-op (cheap soak-mode switch).
  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  const SamplerConfig& config() const noexcept { return config_; }

  /// Scrapes every instrument once. `now` must be monotonically
  /// non-decreasing across calls; a repeated timestamp is ignored (the
  /// interval would be empty).
  void sample(TimePoint now);

  /// Clockful scrape: stamps from the attached Clock. Aborts when the
  /// sampler was constructed without one.
  void sample();

  /// The attached clock, or nullptr for an explicit-stamp sampler.
  const Clock* clock() const noexcept { return clock_; }

  /// All series, sorted by name.
  const std::map<std::string, TimeSeries>& series() const noexcept {
    return series_;
  }
  const TimeSeries* find(const std::string& name) const;

  std::uint64_t samples_taken() const noexcept { return samples_; }
  /// Ring buffers ever allocated == series ever created. The O(series)
  /// allocation guarantee is `allocations() == series().size()` no matter
  /// how many samples were taken.
  std::uint64_t allocations() const noexcept { return allocations_; }
  TimePoint last_sample_at() const noexcept { return last_at_; }

 private:
  /// Diff state for one counter/histogram between scrapes. Gauges need no
  /// state (last-value semantics).
  struct CounterCursor {
    const Counter* counter = nullptr;
    std::uint64_t last = 0;
    TimeSeries* rate = nullptr;
  };
  struct HistCursor {
    const Histogram* hist = nullptr;
    std::uint64_t last_count = 0;
    std::vector<std::uint64_t> last_buckets;  // sized once, overwritten
    std::vector<std::uint64_t> delta;         // scratch, sized once
    TimeSeries* rate = nullptr;
    TimeSeries* p50 = nullptr;
    TimeSeries* p95 = nullptr;
    TimeSeries* p99 = nullptr;
  };

  TimeSeries* make_series(const std::string& name, SeriesKind kind);

  const Registry& registry_;
  const Clock* clock_ = nullptr;
  SamplerConfig config_;
  /// Backing store for every series ring; must be declared before series_
  /// so the rings' storage outlives them on destruction.
  util::Arena arena_;
  bool enabled_ = true;
  std::uint64_t samples_ = 0;
  std::uint64_t allocations_ = 0;
  TimePoint last_at_ = 0;
  bool sampled_once_ = false;
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, CounterCursor> counter_cursors_;
  std::map<std::string, HistCursor> hist_cursors_;
};

}  // namespace ph::obs
