#include "obs/sampler.hpp"

#include <algorithm>

#include "obs/clock.hpp"
#include "util/check.hpp"

namespace ph::obs {

const char* to_string(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::counter_rate: return "counter_rate";
    case SeriesKind::gauge: return "gauge";
    case SeriesKind::hist_rate: return "hist_rate";
    case SeriesKind::hist_p50: return "hist_p50";
    case SeriesKind::hist_p95: return "hist_p95";
    case SeriesKind::hist_p99: return "hist_p99";
  }
  return "unknown";
}

TimeSeries::TimeSeries(SeriesKind kind, std::size_t capacity) : kind_(kind) {
  PH_CHECK_MSG(capacity > 0, "time series needs a non-zero ring capacity");
  own_.resize(capacity);  // the one allocation this series ever makes
  data_ = own_.data();
  cap_ = capacity;
}

TimeSeries::TimeSeries(SeriesKind kind, SeriesPoint* storage,
                       std::size_t capacity)
    : kind_(kind), data_(storage), cap_(capacity) {
  PH_CHECK_MSG(capacity > 0, "time series needs a non-zero ring capacity");
  PH_CHECK_MSG(storage != nullptr, "external time-series storage is null");
}

TimeSeries::TimeSeries(TimeSeries&& other) noexcept
    : kind_(other.kind_),
      own_(std::move(other.own_)),
      // A moved vector keeps its buffer address, but data_ must re-anchor
      // to *this* object's vector in the self-owning case.
      data_(own_.empty() ? other.data_ : own_.data()),
      cap_(other.cap_),
      head_(other.head_),
      size_(other.size_),
      total_(other.total_) {}

TimeSeries& TimeSeries::operator=(TimeSeries&& other) noexcept {
  if (this != &other) {
    kind_ = other.kind_;
    own_ = std::move(other.own_);
    data_ = own_.empty() ? other.data_ : own_.data();
    cap_ = other.cap_;
    head_ = other.head_;
    size_ = other.size_;
    total_ = other.total_;
  }
  return *this;
}

const SeriesPoint& TimeSeries::at(std::size_t i) const {
  PH_CHECK_MSG(i < size_, "time series index out of range");
  return data_[(head_ + i) % cap_];
}

void TimeSeries::push(TimePoint at, double value) {
  const std::size_t slot = (head_ + size_) % cap_;
  data_[slot] = SeriesPoint{at, value};
  if (size_ < cap_) {
    ++size_;
  } else {
    head_ = (head_ + 1) % cap_;  // overwrite the oldest
  }
  ++total_;
}

double quantile_from_bucket_delta(const std::vector<double>& bounds,
                                  const std::vector<std::uint64_t>& delta,
                                  std::uint64_t total, double q) {
  if (total == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += delta[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = i < bounds.size() ? bounds[i] : bounds.back();
    const double fraction = (rank - below) / static_cast<double>(delta[i]);
    return lo + fraction * (hi - lo);
  }
  // Every occupied bucket was below the rank (can't happen when the delta
  // sums to `total`, but stay defensive): the distribution's upper edge.
  return bounds.back();
}

Sampler::Sampler(const Registry& registry, SamplerConfig config)
    : registry_(registry), config_(config) {
  PH_CHECK_MSG(config_.interval_us > 0, "sampler interval must be positive");
  PH_CHECK_MSG(config_.capacity > 0, "sampler ring capacity must be positive");
}

Sampler::Sampler(const Registry& registry, const Clock& clock,
                 SamplerConfig config)
    : Sampler(registry, config) {
  clock_ = &clock;
}

void Sampler::sample() {
  PH_CHECK_MSG(clock_ != nullptr,
               "argless sample() needs a clockful Sampler (Clock ctor)");
  sample(clock_->now());
}

TimeSeries* Sampler::make_series(const std::string& name, SeriesKind kind) {
  // Look up before constructing: building a TimeSeries claims its ring,
  // and steady-state sampling must not allocate at all.
  auto it = series_.find(name);
  if (it == series_.end()) {
    // Rings live in the sampler's arena: one bump per series, a handful of
    // chunk mallocs per run, and the points sit contiguously — dump code
    // walks them cache-linearly.
    SeriesPoint* storage = arena_.allocate_array<SeriesPoint>(config_.capacity);
    it = series_.emplace(name, TimeSeries(kind, storage, config_.capacity))
             .first;
    ++allocations_;
  }
  return &it->second;
}

const TimeSeries* Sampler::find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

void Sampler::sample(TimePoint now) {
  if (!enabled_) return;
  if (sampled_once_ && now <= last_at_) return;  // empty or reversed interval
  // Elapsed virtual time the deltas cover. Registry counters start at zero
  // when created, so the first scrape's delta-from-zero is the metric's
  // true activity since it appeared — late-registered metrics need no
  // special case beyond the elapsed fallback.
  std::uint64_t elapsed = sampled_once_ ? now - last_at_ : now;
  if (elapsed == 0) elapsed = config_.interval_us;
  const double per_second = 1e6 / static_cast<double>(elapsed);

  for (const auto& [name, counter] : registry_.counters()) {
    auto it = counter_cursors_.find(name);
    if (it == counter_cursors_.end()) {
      it = counter_cursors_.emplace(name, CounterCursor{}).first;
      it->second.counter = counter.get();
      it->second.rate = make_series(name + ".rate", SeriesKind::counter_rate);
    }
    CounterCursor& cursor = it->second;
    const std::uint64_t value = cursor.counter->value();
    // Counters are monotonic by contract; clamp defensively so a wrapped
    // or externally reset counter yields a zero rate, not a huge one.
    const std::uint64_t delta = value >= cursor.last ? value - cursor.last : 0;
    cursor.last = value;
    cursor.rate->push(now, static_cast<double>(delta) * per_second);
  }

  for (const auto& [name, gauge] : registry_.gauges()) {
    make_series(name, SeriesKind::gauge)->push(now, gauge->value());
  }

  for (const auto& [name, hist] : registry_.histograms()) {
    auto it = hist_cursors_.find(name);
    if (it == hist_cursors_.end()) {
      it = hist_cursors_.emplace(name, HistCursor{}).first;
      HistCursor& fresh = it->second;
      fresh.hist = hist.get();
      fresh.last_buckets.assign(hist->bucket_counts().size(), 0);
      fresh.delta.assign(hist->bucket_counts().size(), 0);
      fresh.rate = make_series(name + ".rate", SeriesKind::hist_rate);
      fresh.p50 = make_series(name + ".p50", SeriesKind::hist_p50);
      fresh.p95 = make_series(name + ".p95", SeriesKind::hist_p95);
      fresh.p99 = make_series(name + ".p99", SeriesKind::hist_p99);
    }
    HistCursor& cursor = it->second;
    const std::vector<std::uint64_t>& buckets = cursor.hist->bucket_counts();
    std::uint64_t delta_count = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::uint64_t d = buckets[i] >= cursor.last_buckets[i]
                                  ? buckets[i] - cursor.last_buckets[i]
                                  : 0;
      cursor.delta[i] = d;
      cursor.last_buckets[i] = buckets[i];
      delta_count += d;
    }
    cursor.rate->push(now, static_cast<double>(delta_count) * per_second);
    // Quantile points only for intervals that saw observations: an empty
    // interval has no distribution, and a synthetic zero would poison
    // windowed SLO aggregates.
    if (delta_count > 0) {
      const std::vector<double>& bounds = cursor.hist->bounds();
      cursor.p50->push(now, quantile_from_bucket_delta(bounds, cursor.delta,
                                                       delta_count, 0.50));
      cursor.p95->push(now, quantile_from_bucket_delta(bounds, cursor.delta,
                                                       delta_count, 0.95));
      cursor.p99->push(now, quantile_from_bucket_delta(bounds, cursor.delta,
                                                       delta_count, 0.99));
    }
  }

  last_at_ = now;
  sampled_once_ = true;
  ++samples_;
}

}  // namespace ph::obs
