// ph_bench_compare — the perf-trajectory regression gate. Diffs a
// candidate BENCH_<name>.json (see obs/bench_report.hpp) against a
// checked-in baseline, metric by metric, with per-metric tolerances.
//
// Usage:
//   ph_bench_compare BASELINE.json CANDIDATE.json [TOLERANCES.json]
//   ph_bench_compare --perturb KEY FACTOR IN.json OUT.json
//
// Compare mode:
//   * both files must be schema-1 reports for the same bench;
//   * the env maps must be identical — a seed/horizon drift is a setup
//     error, not a performance change, and must not pass as one;
//   * every metric in the baseline's "headline" must exist in the
//     candidate and satisfy |cand - base| <= abs + rel * |base|.
//   Tolerances come from the optional TOLERANCES.json:
//     { "default": {"rel": 0.10, "abs": 1e-9},
//       "metrics": { "<headline key>": {"rel": 0.25, "abs": 2.0}, ... } }
//   Candidate-only headline metrics are reported but never fail the gate
//   (new metrics need a baseline refresh, not a red build).
//
// Perturb mode multiplies headline[KEY] by FACTOR and rewrites the report
// — the self-test that proves the gate trips on a synthetic regression.
//
// Exits 0 when every gated metric is within tolerance; 1 otherwise.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace {

using ph::obs::json::Value;

bool read_json(const char* path, Value& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open '%s'\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!ph::obs::json::parse(buffer.str(), out, &error)) {
    std::fprintf(stderr, "bench_compare: %s: parse error: %s\n", path,
                 error.c_str());
    return false;
  }
  return true;
}

/// Validates the report shape and returns its required sections.
bool open_report(const char* path, const Value& root, const Value** env,
                 const Value** headline, std::string* bench) {
  if (!root.is_object()) {
    std::fprintf(stderr, "bench_compare: %s: not a JSON object\n", path);
    return false;
  }
  const Value* schema = root.get("schema");
  if (schema == nullptr || !schema->is_number() || schema->number != 1.0) {
    std::fprintf(stderr, "bench_compare: %s: missing or unknown 'schema'\n",
                 path);
    return false;
  }
  const Value* name = root.get("bench");
  if (name == nullptr || !name->is_string()) {
    std::fprintf(stderr, "bench_compare: %s: missing 'bench'\n", path);
    return false;
  }
  *bench = name->string;
  *env = root.get("env");
  *headline = root.get("headline");
  if (*env == nullptr || !(*env)->is_object() || *headline == nullptr ||
      !(*headline)->is_object()) {
    std::fprintf(stderr, "bench_compare: %s: missing 'env'/'headline'\n", path);
    return false;
  }
  return true;
}

struct Tolerance {
  double rel = 0.10;
  double abs = 1e-9;
};

/// Per-metric tolerance with fallback to the file's (or built-in) default.
Tolerance tolerance_for(const Value* tolerances, const std::string& metric) {
  Tolerance out;
  auto apply = [&out](const Value* entry) {
    if (entry == nullptr || !entry->is_object()) return;
    if (const Value* rel = entry->get("rel"); rel && rel->is_number()) {
      out.rel = rel->number;
    }
    if (const Value* abs = entry->get("abs"); abs && abs->is_number()) {
      out.abs = abs->number;
    }
  };
  if (tolerances != nullptr) {
    apply(tolerances->get("default"));
    if (const Value* metrics = tolerances->get("metrics");
        metrics != nullptr && metrics->is_object()) {
      apply(metrics->get(metric));
    }
  }
  return out;
}

int perturb(int argc, char** argv) {
  if (argc != 6) {
    std::fprintf(stderr,
                 "usage: %s --perturb KEY FACTOR IN.json OUT.json\n", argv[0]);
    return 1;
  }
  const std::string key = argv[2];
  const double factor = std::atof(argv[3]);
  Value root;
  if (!read_json(argv[4], root)) return 1;
  const Value* env = nullptr;
  const Value* headline = nullptr;
  std::string bench;
  if (!open_report(argv[4], root, &env, &headline, &bench)) return 1;
  auto it = headline->object->find(key);
  if (it == headline->object->end() || !it->second.is_number()) {
    std::fprintf(stderr, "bench_compare: no headline metric '%s' in %s\n",
                 key.c_str(), argv[4]);
    return 1;
  }
  it->second.number *= factor;  // headline shares the root's object node
  if (!ph::obs::write_file(argv[5], ph::obs::json::serialize(root) + "\n")) {
    return 1;
  }
  std::fprintf(stderr, "bench_compare: %s *= %g written to %s\n", key.c_str(),
               factor, argv[5]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--perturb") {
    return perturb(argc, argv);
  }
  if (argc != 3 && argc != 4) {
    std::fprintf(stderr,
                 "usage: %s BASELINE.json CANDIDATE.json [TOLERANCES.json]\n"
                 "       %s --perturb KEY FACTOR IN.json OUT.json\n",
                 argv[0], argv[0]);
    return 1;
  }
  Value base_root, cand_root, tol_root;
  if (!read_json(argv[1], base_root) || !read_json(argv[2], cand_root)) {
    return 1;
  }
  const Value* tolerances = nullptr;
  if (argc == 4) {
    if (!read_json(argv[3], tol_root)) return 1;
    tolerances = &tol_root;
  }
  const Value *base_env, *base_headline, *cand_env, *cand_headline;
  std::string base_bench, cand_bench;
  if (!open_report(argv[1], base_root, &base_env, &base_headline,
                   &base_bench) ||
      !open_report(argv[2], cand_root, &cand_env, &cand_headline,
                   &cand_bench)) {
    return 1;
  }
  if (base_bench != cand_bench) {
    std::fprintf(stderr,
                 "bench_compare: bench mismatch: baseline '%s' vs "
                 "candidate '%s'\n",
                 base_bench.c_str(), cand_bench.c_str());
    return 1;
  }
  bool ok = true;
  // Env must match both ways: a knob changed, added, or dropped means the
  // runs are not comparable.
  for (const auto& pair :
       {std::pair{base_env, cand_env}, std::pair{cand_env, base_env}}) {
    for (const auto& [key, value] : *pair.first->object) {
      const Value* other = pair.second->get(key);
      if (other == nullptr || !other->is_string() || !value.is_string() ||
          other->string != value.string) {
        std::fprintf(stderr,
                     "bench_compare: env mismatch on '%s': '%s' vs '%s'\n",
                     key.c_str(),
                     value.is_string() ? value.string.c_str() : "<absent>",
                     other != nullptr && other->is_string()
                         ? other->string.c_str()
                         : "<absent>");
        ok = false;
      }
    }
    if (!ok) break;  // both directions report the same pairs
  }
  if (!ok) return 1;

  std::printf("bench_compare: %s (%zu gated metrics)\n", base_bench.c_str(),
              base_headline->object->size());
  std::printf("%-44s %14s %14s %9s %8s  %s\n", "metric", "baseline",
              "candidate", "delta", "allowed", "verdict");
  for (const auto& [metric, base_value] : *base_headline->object) {
    if (!base_value.is_number()) {
      std::printf("%-44s baseline value is not a number  FAIL\n",
                  metric.c_str());
      ok = false;
      continue;
    }
    const Value* cand_value = cand_headline->get(metric);
    if (cand_value == nullptr || !cand_value->is_number()) {
      std::printf("%-44s %14.6g %14s %9s %8s  FAIL (missing)\n", metric.c_str(),
                  base_value.number, "-", "-", "-");
      ok = false;
      continue;
    }
    const Tolerance tolerance = tolerance_for(tolerances, metric);
    const double delta = std::fabs(cand_value->number - base_value.number);
    const double allowed =
        tolerance.abs + tolerance.rel * std::fabs(base_value.number);
    const bool pass = delta <= allowed;
    std::printf("%-44s %14.6g %14.6g %9.3g %8.3g  %s\n", metric.c_str(),
                base_value.number, cand_value->number, delta, allowed,
                pass ? "ok" : "FAIL");
    if (!pass) ok = false;
  }
  for (const auto& [metric, value] : *cand_headline->object) {
    (void)value;
    if (base_headline->get(metric) == nullptr) {
      std::printf("%-44s (candidate-only; refresh the baseline to gate it)\n",
                  metric.c_str());
    }
  }

  // Advisory wall-clock comparison over the reports' "info" sections:
  // throughput keys (*_per_sec, higher is better) and duration keys
  // (*_wall_s, lower is better) shared by both reports are summarized as
  // `wall_clock_improvement` percentages. Machine-dependent by nature, so
  // this NEVER gates — it exists so a perf PR's report diff shows the
  // speedup next to the determinism-checked headline.
  const Value* base_info = base_root.get("info");
  const Value* cand_info = cand_root.get("info");
  if (base_info != nullptr && base_info->is_object() && cand_info != nullptr &&
      cand_info->is_object()) {
    bool printed_header = false;
    for (const auto& [metric, base_value] : *base_info->object) {
      if (!base_value.is_number() || base_value.number == 0.0) continue;
      const bool higher_better =
          metric.size() > 8 &&
          metric.compare(metric.size() - 8, 8, "_per_sec") == 0;
      const bool lower_better =
          metric.size() > 7 &&
          metric.compare(metric.size() - 7, 7, "_wall_s") == 0;
      if (!higher_better && !lower_better) continue;
      const Value* cand_value = cand_info->get(metric);
      if (cand_value == nullptr || !cand_value->is_number()) continue;
      if (!printed_header) {
        std::printf("wall_clock_improvement (advisory, never gated):\n");
        printed_header = true;
      }
      const double ratio = cand_value->number / base_value.number;
      const double improvement =
          (higher_better ? ratio - 1.0 : 1.0 / ratio - 1.0) * 100.0;
      std::printf("  %-42s %14.6g -> %14.6g  %+.1f%%\n", metric.c_str(),
                  base_value.number, cand_value->number, improvement);
    }

    // Thread-scaling advisory: `*_speedup` and `*.threads` info keys from
    // parallel-kernel sweeps (bench_overlay_scale --threads). Wall-clock
    // derived, so — like wall_clock_improvement above — NEVER gated; the
    // candidate column is what the report's machine measured.
    printed_header = false;
    for (const auto& [metric, cand_value] : *cand_info->object) {
      const bool is_speedup =
          metric.size() > 8 &&
          metric.compare(metric.size() - 8, 8, ".speedup") == 0;
      const bool is_threads =
          metric.size() > 8 &&
          metric.compare(metric.size() - 8, 8, ".threads") == 0;
      if ((!is_speedup && !is_threads) || !cand_value.is_number()) continue;
      if (!printed_header) {
        std::printf("threads/speedup (advisory, never gated):\n");
        printed_header = true;
      }
      const Value* base_value = base_info->get(metric);
      if (base_value != nullptr && base_value->is_number()) {
        std::printf("  %-42s %14.6g -> %14.6g\n", metric.c_str(),
                    base_value->number, cand_value.number);
      } else {
        std::printf("  %-42s %31.6g\n", metric.c_str(), cand_value.number);
      }
    }
  }

  std::printf("bench_compare: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
