// Prometheus-style text exposition for a Registry — the wire format of
// the ops plane (obs::OpsServer `/metrics`, the ph_ops_dump scraper).
//
// Format, one instrument per stanza:
//
//   # TYPE transport.datagrams_sent counter
//   transport.datagrams_sent 42
//   # TYPE transport.handshake_us histogram
//   transport.handshake_us.count 3
//   transport.handshake_us.sum 1234
//   transport.handshake_us.p50 400
//   transport.handshake_us.p95 610
//   transport.handshake_us.p99 622
//   transport.handshake_us.bucket{le="10"} 0
//   ...
//   transport.handshake_us.bucket{le="+Inf"} 3
//
// Deliberate simplifications against full Prometheus exposition: metric
// names keep the repo's dotted `layer.component.metric` convention
// (lint: [a-z0-9._]+), there are no HELP lines, and quantiles are
// exported as plain `.p50/.p95/.p99` suffixed samples (they are readouts
// of the fixed-bucket histogram, not summaries). Every consumer in-repo
// is ph_ops_dump / ph_obs_json_check --expo; the format stays trivially
// greppable from a shell.
//
// ExpoDoc is the parsed form, built for fleet aggregation: scrape N
// daemons, merge_expositions() them (counters and histogram buckets add,
// gauges sum — a fleet's queue depth is the sum of its members'), and
// render the combined document. Histogram quantiles are recomputed from
// the merged buckets, so the aggregate p95 is the fleet-wide p95, not an
// average of per-daemon quantiles.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace ph::obs {

/// True iff `name` is a legal exposition metric name: non-empty, only
/// [a-z0-9._] characters.
bool valid_metric_name(const std::string& name);

/// Renders every instrument of `registry` in exposition text format,
/// sorted by name within each kind (counters, then gauges, then
/// histograms — the registry maps are already sorted).
std::string to_exposition(const Registry& registry);

/// A parsed exposition document — the merge/aggregation primitive.
struct ExpoDoc {
  struct Hist {
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    /// Bucket upper bounds as written (the "+Inf" bucket is implicit:
    /// bucket_counts.size() == bounds.size() + 1).
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
};

/// Parses exposition text back into a document. Fails (Errc::protocol_error)
/// on malformed lines, illegal names, duplicate TYPE declarations, or a
/// sample whose metric was never TYPE-declared.
Result<ExpoDoc> parse_exposition(const std::string& text);

/// Folds `from` into `into`: counters add, gauges sum, histograms add
/// bucket-wise (bounds must match; mismatched bounds fail). Metrics
/// present in only one document are kept as-is. Gauges SUM (unlike
/// Registry::merge_from's last-wins) because the fleet reading of a
/// depth/backlog gauge is the total across daemons.
Result<void> merge_expositions(ExpoDoc& into, const ExpoDoc& from);

/// Renders a document back to exposition text; histogram p50/p95/p99 are
/// recomputed from the (merged) buckets, not copied from the inputs.
std::string render_exposition(const ExpoDoc& doc);

}  // namespace ph::obs
