// Exporters for the observability core: registry (+ optional trace) to
// JSON or CSV, plus the env-var hook every bench main calls at exit.
//
// JSON shape:
//   {
//     "counters":   { "net.medium.datagrams_sent": 123, ... },
//     "gauges":     { ... },
//     "histograms": { "community.client.d2.rpc_us": {
//                       "count": 9, "sum": ..., "min": ..., "max": ...,
//                       "p50": ..., "p95": ..., "p99": ...,
//                       "buckets": [ {"le": 10.0, "count": 0}, ...,
//                                    {"le": "inf", "count": 1} ] }, ... },
//     "spans":  [ {"id":1,"parent":0,"name":..,"kind":..,"device":..,
//                  "start_us":..,"end_us":..,"closed":true}, ... ],
//     "events": [ {"span":1,"name":..,"kind":..,"device":..,"at_us":..}, ... ]
//   }
// ("spans"/"events" appear only when a trace is supplied.)
//
// CSV shape (one instrument field per row):
//   kind,name,field,value
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ph::obs {

std::string to_json(const Registry& registry, const Trace* trace = nullptr);
std::string to_csv(const Registry& registry);

/// Writes `content` to `path`; returns false (and logs to stderr) on error.
bool write_file(const std::string& path, const std::string& content);

/// The bench-exit hook: when the environment sets PH_METRICS_JSON (or
/// PH_METRICS_CSV) to a path, dumps a snapshot there. Returns true when
/// every requested dump succeeded (vacuously true when none requested).
bool dump_if_requested(const Registry& registry, const Trace* trace = nullptr);

}  // namespace ph::obs
