// Exporters for the observability core: registry (+ optional trace) to
// JSON or CSV, the trace journal to Chrome trace-event JSON (openable in
// Perfetto / chrome://tracing), plus the env-var hooks every bench main
// calls at exit.
//
// JSON shape:
//   {
//     "counters":   { "net.medium.datagrams_sent": 123, ... },
//     "gauges":     { ... },
//     "histograms": { "community.client.d2.rpc_us": {
//                       "count": 9, "sum": ..., "min": ..., "max": ...,
//                       "p50": ..., "p95": ..., "p99": ...,
//                       "buckets": [ {"le": 10.0, "count": 0}, ...,
//                                    {"le": "inf", "count": 1} ] }, ... },
//     "series": { "net.medium.datagrams_sent.rate": {
//                   "kind": "counter_rate", "points": [[at_us, value], ...]
//                 }, ... },
//     "slo":    { "total_breaches": 2,
//                 "rules": [ {"name":..,"series":..,"aggregate":..,
//                             "comparison":..,"threshold":..,"window_us":..,
//                             "min_points":..,"breached":false}, ... ],
//                 "windows": [ {"rule":..,"start_us":..,"end_us":..,
//                               "open":false}, ... ] },
//     "spans":  [ {"id":1,"parent":0,"name":..,"kind":..,"device":..,
//                  "start_us":..,"end_us":..,"closed":true}, ... ],
//     "events": [ {"span":1,"name":..,"kind":..,"device":..,"at_us":..}, ... ]
//   }
// ("series"/"slo" appear only when a sampler / SLO engine is supplied,
// "spans"/"events" only when a trace is.)
//
// CSV shape (one instrument field per row):
//   kind,name,field,value
//
// Chrome trace shape: {"traceEvents":[...]} with one track (pid=tid=
// device id) per device, "X" complete events for closed spans, "B" for
// still-open ones, "i" instants for point events, "s"/"f" flow arrows
// for parent links that cross devices — the causal hops — and, when a
// sampler is supplied, "C" counter events replaying each sampled series
// on the track of the device its `.d<id>.` name segment points at
// (device-less series land on track 0).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace ph::obs {

std::string to_json(const Registry& registry, const Trace* trace = nullptr,
                    const Sampler* sampler = nullptr,
                    const SloEngine* slo = nullptr);
std::string to_csv(const Registry& registry);

/// Standalone dump of the sampler's rings (+ SLO breach windows): the
/// "series"/"slo" sections of to_json as a self-contained document, with
/// the scrape interval and sample count at top level. This is what
/// $PH_SERIES_JSON receives, and what the determinism gate byte-compares.
std::string series_to_json(const Sampler& sampler,
                           const SloEngine* slo = nullptr);

/// Device id encoded in a metric name's `.d<id>.` segment (the repo-wide
/// naming convention, e.g. "peerhood.daemon.d3.pings_sent" -> 3).
/// Returns 0 when no such segment exists.
std::uint64_t device_from_metric_name(const std::string& name);

/// Renders the journal as Chrome trace-event JSON. `device_names` labels
/// the per-device tracks (unnamed devices show as "device <id>"). With a
/// sampler, every series becomes a "C" counter track on its device.
/// `ts_divisor` divides every timestamp/duration on the way out: the
/// socket backend's journal is stamped in virtual microseconds that are
/// wall microseconds × time_scale, so exporting with ts_divisor ==
/// time_scale yields a Perfetto timeline in true wall-clock time. The
/// trace's clock_domain() tag rides along as a metadata event.
std::string to_chrome_trace(
    const Trace& trace,
    const std::map<std::uint64_t, std::string>& device_names = {},
    const Sampler* sampler = nullptr, double ts_divisor = 1.0);

/// Writes `content` to `path`; returns false (and logs to stderr) on error.
bool write_file(const std::string& path, const std::string& content);

/// The bench-exit hook: when the environment sets PH_METRICS_JSON (or
/// PH_METRICS_CSV) to a path, dumps a snapshot there; PH_TRACE_JSON
/// dumps the trace as Chrome trace-event JSON (needs a trace);
/// PH_SERIES_JSON dumps the sampler's rings via series_to_json (needs a
/// sampler). Series/SLO sections ride along inside the metrics JSON and
/// the Chrome trace too when those objects are supplied. Warns on
/// stderr when the journal silently dropped records. Returns true when
/// every requested dump succeeded (vacuously true when none requested).
bool dump_if_requested(const Registry& registry, const Trace* trace = nullptr,
                       const std::map<std::uint64_t, std::string>&
                           device_names = {},
                       const Sampler* sampler = nullptr,
                       const SloEngine* slo = nullptr);

/// Trace-only variant of dump_if_requested: writes the Chrome trace JSON
/// to $PH_TRACE_JSON when set. For call sites (per-run eval worlds) whose
/// registry aggregate is dumped elsewhere. Returns true if a file was
/// written.
bool dump_trace_if_requested(const Trace& trace,
                             const std::map<std::uint64_t, std::string>&
                                 device_names = {});

/// Flight-recorder dump: writes the (ring) trace as Chrome trace JSON to
/// $PH_FLIGHT_JSON, or to `fallback_path` when the env var is unset.
/// With neither set this is a no-op (so fault-plane dumps stay opt-in).
/// `reason` ("blackout", "outage", "test_failure") is logged and embedded
/// in the file. Returns true when a dump was written.
bool dump_flight_recording(const Trace& trace, const std::string& reason,
                           const std::string& fallback_path = {});

}  // namespace ph::obs
