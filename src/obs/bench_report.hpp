// Benchmark trajectory reports — the stable-schema BENCH_<name>.json every
// bench main emits so runs are comparable across commits.
//
// Schema (version 1):
//   {
//     "schema": 1,
//     "bench": "chaos_soak",
//     "env":      { "seed": "42", "minutes": "3", ... },   strings
//     "headline": { "rediscovery_p95_s": 21.4, ... },      gated numbers
//     "info":     { "wall_s": 0.8, ... },                  context, not gated
//     "metrics":  { full to_json(registry) snapshot },     optional
//     "series":   { sampler rings, see export.hpp }        optional
//   }
//
// The contract with ph_bench_compare: `headline` holds only virtual-time /
// deterministic quantities (a same-seed rerun reproduces them bit-exactly),
// so the regression gate can use tight tolerances; wall-clock throughput
// and anything machine-dependent goes in `info`, which the gate ignores.
// `env` captures the knobs that define the run — the gate refuses to
// compare reports whose env differs, so a seed or horizon drift can never
// masquerade as a performance change.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace ph::obs {

struct BenchReport {
  std::string bench;
  std::map<std::string, std::string> env;
  std::map<std::string, double> headline;
  std::map<std::string, double> info;
};

/// Renders the report (schema 1). `registry` / `sampler` embed the full
/// metrics snapshot / series rings when supplied.
std::string to_json(const BenchReport& report,
                    const Registry* registry = nullptr,
                    const Sampler* sampler = nullptr);

/// Writes the report to $PH_BENCH_JSON when that is set to a path.
/// Returns true when no dump was requested or the write succeeded.
bool dump_bench_report_if_requested(const BenchReport& report,
                                    const Registry* registry = nullptr,
                                    const Sampler* sampler = nullptr);

}  // namespace ph::obs
