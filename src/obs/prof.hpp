// ph::obs::prof — continuous profiling & per-event cost attribution.
//
// Metrics count *what* happened and traces show *when*; this plane answers
// "where does the CPU go". Two modes with very different determinism
// stories share one cost-center taxonomy:
//
//   Mode 1 — deterministic event-cost attribution. Every scheduled event
//   carries a one-byte cost-center tag (layer × event kind). The kernel's
//   dispatch loop bumps a per-center dispatch counter in an attached
//   EventProfiler — a pure function of the event stream, so the resulting
//   `prof.<center>.events` counters live INSIDE the byte-identity gate
//   (ph_chaos_determinism compares them across seeds and thread counts).
//   With the wall plane enabled the same hook also times each event into
//   fixed-bucket wall-cost histograms (`prof.<center>.wall_us`) and runs a
//   slow-event watchdog; wall data is never deterministic and must stay
//   out of byte-compared dumps — the publisher keeps it behind an opt-in
//   flag, exactly like ParallelWorld's `publish_wall_stats` stall gauges.
//
//   Mode 2 — wall-clock sampling profiler for code that runs on real
//   threads (the socket transport's epoll loop, ShardedKernel workers).
//   RAII `Scope` guards push cost centers onto a shallow thread-local
//   span stack (plain atomics, no libunwind); a WallProfiler's sampler
//   thread periodically snapshots every registered thread's stack into a
//   fixed-size ring. The rings render as collapsed-stack ("folded") lines
//   — `thread;center;center count` — the input format of every flamegraph
//   tool, served live on the ops plane's /profile route and merged across
//   a fleet by `ph_ops_dump --profile`.
//
// Tags travel with no scheduler-interface changes: `TagScope` sets a
// thread-local "pending schedule tag" that the kernel reads when an event
// is pushed; events scheduled without a TagScope inherit the tag of the
// event currently executing, so a tagged root (a ping round, an inquiry,
// a fault window) attributes its whole causal chain until a more specific
// scope overrides it.
//
// The attribution hot path — count(), observe_wall(), Scope push/pop and
// WallProfiler ring writes — performs zero heap allocations; the sim
// alloc interposer test pins that.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/result.hpp"

namespace ph::obs {

class Registry;

namespace prof {

/// The static cost-center taxonomy: layer × event kind. A center is one
/// byte so it rides in every queue entry for free; keep the list short
/// and stable — dashboards and EXPERIMENTS tables key on the names.
enum class Center : std::uint8_t {
  unattributed = 0,     // scheduled outside any TagScope / event context
  sim_kernel,           // kernel housekeeping (test drivers, misc timers)
  obs_sample,           // telemetry scrapes (obs::Sampler cadence)
  parallel_window,      // shard phase A: running a window's events
  parallel_merge,       // shard phase B: draining cross-shard mailboxes
  parallel_barrier,     // serial barrier hook (world maintenance)
  net_delivery,         // medium frame/datagram flight + delivery
  net_inquiry,          // inquiry scan completion
  net_link,             // link open / close flush
  net_fault,            // fault plane windows (ISSUE 2 schedules)
  peerhood_discovery,   // daemon inquiry rounds
  peerhood_query,       // remote queries + retry ladder
  peerhood_ping,        // ping rounds and reply timeouts
  peerhood_session,     // session transfer / resume timers
  community_rpc,        // community server/client operations
  sns_task,             // SNS background tasks
  world_scan,           // ParallelWorld scan timers
  world_frame,          // ParallelWorld frame deliveries
  transport_io,         // socket transport: epoll handler dispatch
  transport_idle,       // socket transport: blocked in epoll_wait
  transport_telemetry,  // socket transport: stats scrape
  kCount
};

constexpr std::size_t kCenterCount = static_cast<std::size_t>(Center::kCount);

/// Dotted lowercase name ("net.delivery"); stable across PRs.
const char* center_name(Center c) noexcept;
inline const char* center_name(std::uint8_t tag) noexcept {
  return center_name(tag < kCenterCount ? static_cast<Center>(tag)
                                        : Center::unattributed);
}

namespace detail {
/// Pending schedule tag for the current thread (see TagScope).
inline thread_local std::uint8_t t_pending_tag = 0;
}  // namespace detail

/// Sets the pending schedule tag for the current thread: events scheduled
/// while a TagScope is alive carry its center. Nest freely; the innermost
/// scope wins and the previous tag is restored on destruction.
class TagScope {
 public:
  explicit TagScope(Center c) noexcept : prev_(detail::t_pending_tag) {
    detail::t_pending_tag = static_cast<std::uint8_t>(c);
  }
  ~TagScope() { detail::t_pending_tag = prev_; }
  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;

 private:
  std::uint8_t prev_;
};

/// The tag a schedule call should carry: the pending TagScope tag if one
/// is active, otherwise `inherited` (the tag of the event currently
/// executing — kernels pass their current dispatch tag).
inline std::uint8_t effective_tag(std::uint8_t inherited) noexcept {
  const std::uint8_t pending = detail::t_pending_tag;
  return pending != 0 ? pending : inherited;
}

// ---------------------------------------------------------------------------
// Mode 2 span stack: what the sampler sees.

/// Shallow per-thread stack of active cost centers. Writers (the owning
/// thread, via Scope) store with release order; the sampler thread reads
/// with acquire and tolerates benign races — a sample taken mid-push may
/// see the old depth, which is fine for a statistical profiler.
struct SpanStack {
  static constexpr std::size_t kMaxDepth = 16;
  std::atomic<std::uint32_t> depth{0};
  std::array<std::atomic<std::uint8_t>, kMaxDepth> frames{};
};

namespace detail {
inline thread_local SpanStack t_span_stack;
}  // namespace detail

inline SpanStack& thread_span_stack() noexcept { return detail::t_span_stack; }

/// RAII frame on the current thread's span stack. Pushes beyond kMaxDepth
/// are dropped (the sample just loses leaf detail). Allocation-free.
class Scope {
 public:
  explicit Scope(Center c) noexcept : Scope(static_cast<std::uint8_t>(c)) {}
  explicit Scope(std::uint8_t tag) noexcept {
    SpanStack& s = detail::t_span_stack;
    const std::uint32_t d = s.depth.load(std::memory_order_relaxed);
    if (d < SpanStack::kMaxDepth) {
      s.frames[d].store(tag, std::memory_order_relaxed);
      s.depth.store(d + 1, std::memory_order_release);
      pushed_ = true;
    }
  }
  ~Scope() {
    if (pushed_) {
      SpanStack& s = detail::t_span_stack;
      s.depth.store(s.depth.load(std::memory_order_relaxed) - 1,
                    std::memory_order_release);
    }
  }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  bool pushed_ = false;
};

// ---------------------------------------------------------------------------
// Mode 1: per-event attribution.

/// Wall-cost bucket upper bounds in MICROSECONDS (event dispatch scale:
/// sub-µs protocol callbacks up to 100 ms stragglers, overflow beyond).
constexpr std::array<std::uint64_t, 15> kWallBoundsUs = {
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10'000, 50'000,
    100'000};

/// kWallBoundsUs as doubles, for Registry::histogram construction.
const std::vector<double>& wall_cost_bounds_us();

/// Per-dispatch cost attribution for one sequential kernel (a Simulator /
/// one kernel shard). Not thread-safe — one profiler per shard, drained
/// single-threaded at barriers, mirroring the Registry ownership rules.
///
/// The deterministic part (per-center dispatch counts) is always on; wall
/// costing and the slow-event watchdog arm via enable_wall(). The hot
/// methods are inline, branch-light and allocation-free.
class EventProfiler {
 public:
  static constexpr std::size_t kBuckets = kWallBoundsUs.size() + 1;

  struct CenterCost {
    std::uint64_t events = 0;      // dispatches (deterministic)
    std::uint64_t wall_count = 0;  // dispatches timed while wall was on
    std::uint64_t wall_us = 0;     // summed wall cost
    std::uint64_t min_us = ~0ull;
    std::uint64_t max_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  EventProfiler();

  // -- hot path (kernel dispatch) --------------------------------------

  void count(std::uint8_t tag) noexcept { ++cost_at(tag).events; }

  bool wall_enabled() const noexcept { return wall_enabled_; }

  /// Monotonic µs since construction (steady clock).
  std::uint64_t now_us() const noexcept;

  void observe_wall(std::uint8_t tag, std::uint64_t us) noexcept {
    CenterCost& c = cost_at(tag);
    ++c.wall_count;
    c.wall_us += us;
    if (us < c.min_us) c.min_us = us;
    if (us > c.max_us) c.max_us = us;
    ++c.buckets[bucket_of(us)];
    if (us >= budget_us_) {
      ++slow_events_;
      if (on_slow_) {
        on_slow_(tag < kCenterCount ? static_cast<Center>(tag)
                                    : Center::unattributed,
                 us);
      }
    }
  }

  // -- configuration ----------------------------------------------------

  void enable_wall(bool on = true) noexcept { wall_enabled_ = on; }
  /// Slow-event watchdog budget; events at or beyond it bump
  /// `slow_events` and invoke the handler (wall plane only).
  void set_slow_budget_us(std::uint64_t us) noexcept { budget_us_ = us; }
  std::uint64_t slow_budget_us() const noexcept { return budget_us_; }
  /// Called inline from the dispatching thread for every slow event —
  /// keep it cheap and shard-safe (in sharded worlds it runs on worker
  /// threads; only attach one where the profiled kernel is single-
  /// threaded, e.g. chaos_soak's trace-event + flight-recorder hook).
  void set_on_slow(std::function<void(Center, std::uint64_t)> fn) {
    on_slow_ = std::move(fn);
  }

  // -- readout ----------------------------------------------------------

  const CenterCost& cost(Center c) const noexcept {
    return cost_[static_cast<std::size_t>(c)];
  }
  std::uint64_t events_total() const noexcept;
  std::uint64_t slow_events() const noexcept { return slow_events_; }

  /// Adds another profiler's attribution (associative + commutative —
  /// cross-shard merges are order-independent). Published cursors are
  /// untouched; merge into a fresh profiler for reports.
  void merge_from(const EventProfiler& other) noexcept;

  /// Publishes per-center dispatch counts as `prof.<center>.events`
  /// counters, as deltas since the last publish (so several shards'
  /// profilers publish into one registry and the counters sum). Only
  /// centers that have seen events register — deterministic, since the
  /// counts themselves are. Safe inside byte-compared dumps.
  void publish_events(Registry& registry);

  /// Publishes wall-cost histograms `prof.<center>.wall_us` and the
  /// `prof.slow_events` counter, as deltas. Wall-clock data: callers own
  /// keeping this OUT of byte-compared dumps (opt-in wall plane only).
  void publish_wall(Registry& registry);

 private:
  CenterCost& cost_at(std::uint8_t tag) noexcept {
    return cost_[tag < kCenterCount ? tag : 0];
  }
  static std::size_t bucket_of(std::uint64_t us) noexcept {
    std::size_t b = 0;
    while (b < kWallBoundsUs.size() && us > kWallBoundsUs[b]) ++b;
    return b;
  }

  struct Published {
    std::uint64_t events = 0;
    std::uint64_t wall_count = 0;
    std::uint64_t wall_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
  };

  std::array<CenterCost, kCenterCount> cost_{};
  std::array<Published, kCenterCount> published_{};
  std::uint64_t slow_events_ = 0;
  std::uint64_t published_slow_ = 0;
  std::uint64_t budget_us_ = 50'000;
  bool wall_enabled_ = false;
  std::function<void(Center, std::uint64_t)> on_slow_;
  std::chrono::steady_clock::time_point epoch_;
};

// ---------------------------------------------------------------------------
// Folded (collapsed-stack) profiles.

/// stack -> sample count; stack is "thread;center;center". A std::map so
/// rendering is canonically ordered — equal profiles render byte-equal.
using FoldedProfile = std::map<std::string, std::uint64_t>;

/// Parses folded text (one "stack count" line each; blank lines ignored).
/// Duplicate stacks accumulate. Malformed lines are an error.
Result<FoldedProfile> parse_folded(const std::string& text);

/// Adds `more`'s counts into `into` — the fleet/cross-shard merge.
/// Associative and commutative, so scrape order never matters.
void merge_folded(FoldedProfile& into, const FoldedProfile& more);

/// Renders one "stack count\n" line per entry, in map (stack) order.
std::string render_folded(const FoldedProfile& profile);

// ---------------------------------------------------------------------------
// Mode 2: the sampling profiler.

struct WallProfilerConfig {
  /// Sampling period. 10 ms ≈ 100 Hz — cheap enough to leave on.
  std::uint64_t interval_us = 10'000;
  /// Samples retained per thread (ring; oldest overwritten). 8192 at
  /// 100 Hz ≈ the last 82 s per thread.
  std::size_t ring_capacity = 8192;
};

/// Samples registered threads' span stacks into per-thread rings.
///
/// Threads register themselves (register_thread binds the CALLING
/// thread's span stack) and must either outlive the profiler or
/// unregister before exiting — unregister folds the thread's ring into a
/// retired aggregate so its samples survive (ShardedKernel workers do
/// this on shutdown). sample_once() is the deterministic test hook; in
/// production start() runs it from a background thread every interval.
class WallProfiler {
 public:
  explicit WallProfiler(WallProfilerConfig config = {});
  ~WallProfiler();
  WallProfiler(const WallProfiler&) = delete;
  WallProfiler& operator=(const WallProfiler&) = delete;

  /// Registers the calling thread under `name` (the folded stack root).
  void register_thread(std::string name);
  /// Unregisters the calling thread, folding its samples into the
  /// retired aggregate. No-op if it never registered.
  void unregister_thread();

  /// Starts/stops the sampler thread. Idempotent.
  void start();
  void stop();
  bool running() const noexcept { return sampler_.joinable(); }

  /// Takes one sample of every registered thread now. Allocation-free.
  void sample_once();

  std::uint64_t samples_taken() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }
  std::size_t threads_registered() const;

  /// Collapses every ring (plus retired threads) into a folded profile.
  FoldedProfile folded() const;
  std::string to_folded() const { return render_folded(folded()); }

 private:
  struct Sample {
    std::uint8_t depth = 0;
    std::array<std::uint8_t, SpanStack::kMaxDepth> frames{};
  };
  struct ThreadRec {
    std::string name;
    std::thread::id tid;
    SpanStack* stack = nullptr;
    std::vector<Sample> ring;  // capacity fixed at registration
    std::size_t pos = 0;
    std::uint64_t taken = 0;
  };

  void fold_ring(const ThreadRec& rec, FoldedProfile& into) const;
  void sampler_loop();
  void sample_locked();

  WallProfilerConfig config_;
  mutable std::mutex mu_;  // guards threads_, retired_ and the rings
  std::vector<std::unique_ptr<ThreadRec>> threads_;
  FoldedProfile retired_;
  std::atomic<std::uint64_t> samples_{0};
  std::thread sampler_;
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
};

/// Appends `profiler`'s folded profile to the file named by the
/// PH_PROF_FOLDED environment variable, if set (append: several daemons
/// or runs may share one output; flamegraph tools sum duplicate stacks).
void dump_folded_if_requested(const WallProfiler& profiler);

}  // namespace prof
}  // namespace ph::obs
