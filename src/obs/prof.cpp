#include "obs/prof.hpp"

#include <cstdlib>
#include <fstream>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace ph::obs::prof {

const char* center_name(Center c) noexcept {
  switch (c) {
    case Center::unattributed: return "unattributed";
    case Center::sim_kernel: return "sim.kernel";
    case Center::obs_sample: return "obs.sample";
    case Center::parallel_window: return "parallel.window";
    case Center::parallel_merge: return "parallel.merge";
    case Center::parallel_barrier: return "parallel.barrier";
    case Center::net_delivery: return "net.delivery";
    case Center::net_inquiry: return "net.inquiry";
    case Center::net_link: return "net.link";
    case Center::net_fault: return "net.fault";
    case Center::peerhood_discovery: return "peerhood.discovery";
    case Center::peerhood_query: return "peerhood.query";
    case Center::peerhood_ping: return "peerhood.ping";
    case Center::peerhood_session: return "peerhood.session";
    case Center::community_rpc: return "community.rpc";
    case Center::sns_task: return "sns.task";
    case Center::world_scan: return "world.scan";
    case Center::world_frame: return "world.frame";
    case Center::transport_io: return "transport.io";
    case Center::transport_idle: return "transport.idle";
    case Center::transport_telemetry: return "transport.telemetry";
    case Center::kCount: break;
  }
  return "unattributed";
}

const std::vector<double>& wall_cost_bounds_us() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(kWallBoundsUs.size());
    for (const std::uint64_t u : kWallBoundsUs) {
      b.push_back(static_cast<double>(u));
    }
    return b;
  }();
  return bounds;
}

// ---------------------------------------------------------------------------
// EventProfiler

EventProfiler::EventProfiler() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t EventProfiler::now_us() const noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint64_t EventProfiler::events_total() const noexcept {
  std::uint64_t total = 0;
  for (const CenterCost& c : cost_) total += c.events;
  return total;
}

void EventProfiler::merge_from(const EventProfiler& other) noexcept {
  for (std::size_t i = 0; i < kCenterCount; ++i) {
    CenterCost& into = cost_[i];
    const CenterCost& from = other.cost_[i];
    into.events += from.events;
    into.wall_count += from.wall_count;
    into.wall_us += from.wall_us;
    if (from.wall_count > 0) {
      if (from.min_us < into.min_us) into.min_us = from.min_us;
      if (from.max_us > into.max_us) into.max_us = from.max_us;
    }
    for (std::size_t b = 0; b < kBuckets; ++b) {
      into.buckets[b] += from.buckets[b];
    }
  }
  slow_events_ += other.slow_events_;
}

void EventProfiler::publish_events(Registry& registry) {
  for (std::size_t i = 0; i < kCenterCount; ++i) {
    const std::uint64_t events = cost_[i].events;
    if (events == 0) continue;  // never dispatched: stay unregistered
    registry
        .counter(std::string("prof.") +
                 center_name(static_cast<Center>(i)) + ".events")
        .inc(events - published_[i].events);
    published_[i].events = events;
  }
}

void EventProfiler::publish_wall(Registry& registry) {
  for (std::size_t i = 0; i < kCenterCount; ++i) {
    const CenterCost& c = cost_[i];
    Published& pub = published_[i];
    if (c.wall_count == pub.wall_count) continue;
    Histogram& hist = registry.histogram(
        std::string("prof.") + center_name(static_cast<Center>(i)) +
            ".wall_us",
        wall_cost_bounds_us());
    std::array<std::uint64_t, kBuckets> delta{};
    for (std::size_t b = 0; b < kBuckets; ++b) {
      delta[b] = c.buckets[b] - pub.buckets[b];
    }
    hist.merge_buckets(delta.data(), kBuckets, c.wall_count - pub.wall_count,
                       static_cast<double>(c.wall_us - pub.wall_us),
                       static_cast<double>(c.min_us),
                       static_cast<double>(c.max_us));
    pub.wall_count = c.wall_count;
    pub.wall_us = c.wall_us;
    pub.buckets = c.buckets;
  }
  registry.counter("prof.slow_events").inc(slow_events_ - published_slow_);
  published_slow_ = slow_events_;
}

// ---------------------------------------------------------------------------
// Folded profiles

Result<FoldedProfile> parse_folded(const std::string& text) {
  FoldedProfile profile;
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++lineno;
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 == line.size()) {
      return Error{Errc::invalid_argument,
                   "folded line " + std::to_string(lineno) +
                       ": expected 'stack count', got '" + line + "'"};
    }
    const std::string stack = line.substr(0, space);
    const std::string digits = line.substr(space + 1);
    std::uint64_t count = 0;
    for (const char ch : digits) {
      if (ch < '0' || ch > '9') {
        return Error{Errc::invalid_argument,
                     "folded line " + std::to_string(lineno) +
                         ": count is not a number: '" + digits + "'"};
      }
      count = count * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (count == 0) {
      return Error{Errc::invalid_argument,
                   "folded line " + std::to_string(lineno) +
                       ": zero sample count"};
    }
    if (stack.front() == ';' || stack.back() == ';' ||
        stack.find(";;") != std::string::npos ||
        stack.find(' ') != std::string::npos) {
      return Error{Errc::invalid_argument,
                   "folded line " + std::to_string(lineno) +
                       ": malformed stack '" + stack + "'"};
    }
    profile[stack] += count;
  }
  return profile;
}

void merge_folded(FoldedProfile& into, const FoldedProfile& more) {
  for (const auto& [stack, count] : more) into[stack] += count;
}

std::string render_folded(const FoldedProfile& profile) {
  std::string out;
  for (const auto& [stack, count] : profile) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// WallProfiler

WallProfiler::WallProfiler(WallProfilerConfig config) : config_(config) {
  PH_CHECK(config_.ring_capacity > 0);
  if (config_.interval_us == 0) config_.interval_us = 1;
}

WallProfiler::~WallProfiler() { stop(); }

void WallProfiler::register_thread(std::string name) {
  auto rec = std::make_unique<ThreadRec>();
  rec->name = std::move(name);
  rec->tid = std::this_thread::get_id();
  rec->stack = &thread_span_stack();
  rec->ring.resize(config_.ring_capacity);
  std::lock_guard<std::mutex> lock(mu_);
  threads_.push_back(std::move(rec));
}

void WallProfiler::unregister_thread() {
  const std::thread::id tid = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if ((*it)->tid == tid) {
      fold_ring(**it, retired_);
      threads_.erase(it);
      return;
    }
  }
}

void WallProfiler::start() {
  if (sampler_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  sampler_ = std::thread([this] { sampler_loop(); });
}

void WallProfiler::stop() {
  if (!sampler_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  sampler_.join();
}

void WallProfiler::sampler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, std::chrono::microseconds(config_.interval_us),
                     [this] { return stop_; })) {
      return;
    }
    // Holding mu_ here is by design: registration and folded() are rare
    // and cheap, and the sample itself is a bounded memcpy per thread.
    sample_locked();
  }
}

void WallProfiler::sample_locked() {
  for (const auto& rec : threads_) {
    Sample& sample = rec->ring[rec->pos];
    std::uint32_t depth = rec->stack->depth.load(std::memory_order_acquire);
    if (depth > SpanStack::kMaxDepth) depth = SpanStack::kMaxDepth;
    sample.depth = static_cast<std::uint8_t>(depth);
    for (std::uint32_t d = 0; d < depth; ++d) {
      sample.frames[d] = rec->stack->frames[d].load(std::memory_order_relaxed);
    }
    rec->pos = (rec->pos + 1) % rec->ring.size();
    ++rec->taken;
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void WallProfiler::sample_once() {
  std::lock_guard<std::mutex> lock(mu_);
  sample_locked();
}

std::size_t WallProfiler::threads_registered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void WallProfiler::fold_ring(const ThreadRec& rec, FoldedProfile& into) const {
  const std::size_t n =
      rec.taken < rec.ring.size() ? static_cast<std::size_t>(rec.taken)
                                  : rec.ring.size();
  std::string key;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& sample = rec.ring[i];
    key = rec.name;
    for (std::uint8_t d = 0; d < sample.depth; ++d) {
      key += ';';
      key += center_name(sample.frames[d]);
    }
    ++into[key];
  }
}

FoldedProfile WallProfiler::folded() const {
  std::lock_guard<std::mutex> lock(mu_);
  FoldedProfile profile = retired_;
  for (const auto& rec : threads_) fold_ring(*rec, profile);
  return profile;
}

void dump_folded_if_requested(const WallProfiler& profiler) {
  const char* path = std::getenv("PH_PROF_FOLDED");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << profiler.to_folded();
}

}  // namespace ph::obs::prof
