#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ph::obs {

namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Higher wins when phase spans overlap; processing never competes (it
/// is the residual, not a span class).
int priority(Phase phase) {
  switch (phase) {
    case Phase::queueing: return 5;
    case Phase::backoff: return 4;
    case Phase::transfer: return 3;
    case Phase::handshake: return 2;
    case Phase::inquiry: return 1;
    case Phase::processing: return 0;
  }
  return 0;
}

struct Interval {
  TimePoint a = 0;
  TimePoint b = 0;
  Phase phase = Phase::processing;
};

/// Sweep-line over [t0, t1): every elementary segment between interval
/// boundaries is charged to the highest-priority covering phase, the
/// rest to processing. Exact by construction: the charges sum to t1-t0.
Attribution sweep(const std::vector<Interval>& intervals, TimePoint t0,
                  TimePoint t1) {
  Attribution result;
  if (t1 <= t0) return result;
  result.window_us = t1 - t0;
  std::vector<TimePoint> bounds;
  bounds.reserve(intervals.size() * 2 + 2);
  bounds.push_back(t0);
  bounds.push_back(t1);
  for (const Interval& iv : intervals) {
    bounds.push_back(iv.a);
    bounds.push_back(iv.b);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const TimePoint x = bounds[i];
    const TimePoint y = bounds[i + 1];
    // Boundaries include every interval endpoint, so an interval covers
    // the whole segment iff it covers its start.
    const Interval* best = nullptr;
    for (const Interval& iv : intervals) {
      if (iv.a <= x && iv.b >= y &&
          (best == nullptr || priority(iv.phase) > priority(best->phase))) {
        best = &iv;
      }
    }
    const Phase phase = best != nullptr ? best->phase : Phase::processing;
    result.phase_us[static_cast<std::size_t>(phase)] += y - x;
  }
  return result;
}

/// Clips a closed phase span to [t0, t1); false when outside or empty.
bool clip(const Span& span, TimePoint t0, TimePoint t1, Interval& out) {
  if (!span.closed) return false;
  const auto phase = classify(span);
  if (!phase) return false;
  const TimePoint a = std::max(span.start, t0);
  const TimePoint b = std::min(span.end, t1);
  if (b <= a) return false;
  out = Interval{a, b, *phase};
  return true;
}

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::inquiry: return "inquiry";
    case Phase::handshake: return "handshake";
    case Phase::transfer: return "transfer";
    case Phase::backoff: return "backoff";
    case Phase::queueing: return "queueing";
    case Phase::processing: return "processing";
  }
  return "?";
}

std::optional<Phase> classify(const Span& span) {
  const std::string& name = span.name;
  if (contains(name, "queue")) return Phase::queueing;
  if (contains(name, "backoff")) return Phase::backoff;
  if (name == "net.datagram" || name == "net.link.send") {
    return Phase::transfer;
  }
  if (name == "net.link.open" || contains(name, "session.accept") ||
      contains(name, "session.resume")) {
    return Phase::handshake;
  }
  if (contains(name, "inquiry")) return Phase::inquiry;
  return std::nullopt;
}

void Attribution::add(const Attribution& other) {
  window_us += other.window_us;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phase_us[i] += other.phase_us[i];
  }
}

Attribution attribute_window(const Trace& trace, TimePoint t0, TimePoint t1) {
  std::vector<Interval> intervals;
  Interval iv;
  for (const Span& span : trace.spans()) {
    if (clip(span, t0, t1, iv)) intervals.push_back(iv);
  }
  return sweep(intervals, t0, t1);
}

Attribution attribute_tree(const Trace& trace, SpanId root) {
  const Span* root_span = trace.find_span(root);
  if (root_span == nullptr || !root_span->closed) return {};
  // Parent links only go upward; build the downward index once.
  std::map<SpanId, std::vector<const Span*>> children;
  for (const Span& span : trace.spans()) {
    if (span.parent != 0) children[span.parent].push_back(&span);
  }
  std::vector<Interval> intervals;
  std::vector<SpanId> frontier{root};
  Interval iv;
  while (!frontier.empty()) {
    const SpanId id = frontier.back();
    frontier.pop_back();
    auto it = children.find(id);
    if (it == children.end()) continue;
    for (const Span* child : it->second) {
      frontier.push_back(child->id);
      if (clip(*child, root_span->start, root_span->end, iv)) {
        intervals.push_back(iv);
      }
    }
  }
  return sweep(intervals, root_span->start, root_span->end);
}

std::string format_attribution_table(
    const std::vector<std::pair<std::string, Attribution>>& rows) {
  std::string out;
  char buf[64];
  std::size_t label_width = 24;
  for (const auto& [label, attribution] : rows) {
    (void)attribution;
    label_width = std::max(label_width, label.size());
  }
  std::snprintf(buf, sizeof(buf), "%-*s %10s", static_cast<int>(label_width),
                "operation", "total_s");
  out += buf;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    std::snprintf(buf, sizeof(buf), " %10s",
                  to_string(static_cast<Phase>(i)));
    out += buf;
  }
  out += '\n';
  for (const auto& [label, attribution] : rows) {
    std::snprintf(buf, sizeof(buf), "%-*s %10.3f",
                  static_cast<int>(label_width), label.c_str(),
                  static_cast<double>(attribution.window_us) / 1e6);
    out += buf;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      std::snprintf(buf, sizeof(buf), " %10.3f",
                    static_cast<double>(attribution.phase_us[i]) / 1e6);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace ph::obs
