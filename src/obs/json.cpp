#include "obs/json.hpp"

#include <cctype>
#include <cstdlib>

namespace ph::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Value& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error != nullptr) {
        *error = message_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = Value::Kind::string;
        return parse_string(out.string);
      }
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out.kind = Value::Kind::boolean;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out.kind = Value::Kind::boolean;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out.kind = Value::Kind::null;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    out.kind = Value::Kind::object;
    out.object = std::make_shared<Object>();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value value;
      if (!parse_value(value)) return false;
      (*out.object)[std::move(key)] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    out.kind = Value::Kind::array;
    out.array = std::make_shared<Array>();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value value;
      if (!parse_value(value)) return false;
      out.array->push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // Pass the escape through verbatim; good enough for metric names.
            out += "\\u";
            out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.kind = Value::Kind::number;
    out.number = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  return Parser(text).parse(out, error);
}

}  // namespace ph::obs::json
