#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ph::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(Value& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error != nullptr) {
        *error = message_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing data at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        out.kind = Value::Kind::string;
        return parse_string(out.string);
      }
      case 't':
        if (!consume_word("true")) return fail("bad literal");
        out.kind = Value::Kind::boolean;
        out.boolean = true;
        return true;
      case 'f':
        if (!consume_word("false")) return fail("bad literal");
        out.kind = Value::Kind::boolean;
        out.boolean = false;
        return true;
      case 'n':
        if (!consume_word("null")) return fail("bad literal");
        out.kind = Value::Kind::null;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++pos_;  // '{'
    out.kind = Value::Kind::object;
    out.object = std::make_shared<Object>();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value value;
      if (!parse_value(value)) return false;
      (*out.object)[std::move(key)] = std::move(value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Value& out) {
    ++pos_;  // '['
    out.kind = Value::Kind::array;
    out.array = std::make_shared<Array>();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value value;
      if (!parse_value(value)) return false;
      out.array->push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            // Pass the escape through verbatim; good enough for metric names.
            out += "\\u";
            out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.kind = Value::Kind::number;
    out.number = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* error) {
  return Parser(text).parse(out, error);
}

namespace {

void serialize_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void serialize_into(std::string& out, const Value& value) {
  switch (value.kind) {
    case Value::Kind::null: out += "null"; break;
    case Value::Kind::boolean: out += value.boolean ? "true" : "false"; break;
    case Value::Kind::number: {
      if (!std::isfinite(value.number)) {
        out += "null";
        break;
      }
      char buf[32];
      if (value.number == std::floor(value.number) &&
          std::fabs(value.number) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value.number);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value.number);
      }
      out += buf;
      break;
    }
    case Value::Kind::string: serialize_string(out, value.string); break;
    case Value::Kind::array: {
      out += '[';
      bool first = true;
      for (const Value& item : *value.array) {
        if (!first) out += ',';
        first = false;
        serialize_into(out, item);
      }
      out += ']';
      break;
    }
    case Value::Kind::object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : *value.object) {
        if (!first) out += ',';
        first = false;
        serialize_string(out, key);
        out += ':';
        serialize_into(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string serialize(const Value& value) {
  std::string out;
  out.reserve(1024);
  serialize_into(out, value);
  return out;
}

}  // namespace ph::obs::json
