// ph::obs — the unified observability core.
//
// Every layer of the stack (net, peerhood, sns, community, eval) publishes
// its telemetry through one Registry of named instruments instead of a
// private `struct Stats`. The paper's whole evaluation is a measurement
// story (Table 8 operation times, discovery latency, the §5.1 cost-per-byte
// argument); a single instrumentation spine is what makes those numbers —
// and every later performance claim — comparable across layers and PRs.
//
// Three instrument kinds:
//   Counter   — monotonically increasing uint64 (datagrams sent, joins).
//   Gauge     — a settable double (queue depth, neighbour count).
//   Histogram — fixed-bucket latency distribution with p50/p95/p99 readout.
//
// Naming convention: `layer.component.metric`, lower_snake metric names,
// with an optional `d<id>` instance segment for per-device components —
// e.g. `net.medium.datagrams_sent`, `peerhood.daemon.d3.pings_sent`,
// `community.client.d2.rpc_us`. The exporter (obs/export.hpp) dumps a
// whole registry as JSON or CSV.
//
// A Registry is deliberately NOT a process-wide singleton: tests and
// benches run many independent simulated worlds in one process, and their
// counters must not bleed into each other. The convention is one Registry
// per world, owned by net::Medium (the root every layer already reaches);
// standalone components fall back to a private registry so their counters
// are always registry-backed. Registries from several runs can be combined
// with merge_from() for cross-run reports.
//
// Everything here is single-threaded, like the simulator it instruments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ph::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are defined by strictly increasing
/// upper bounds; an implicit overflow bucket catches everything beyond the
/// last bound. Percentile readout interpolates linearly inside the bucket
/// containing the requested rank (clamped to the observed min/max), which
/// is deterministic and accurate to one bucket width.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Upper bounds (without the implicit overflow bucket).
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

  /// Adds another histogram's observations. Bucket bounds must match.
  void merge_from(const Histogram& other);

  /// Adds raw bucket deltas — profiling publishers drain per-shard fixed
  /// arrays at barriers (obs::prof). `counts` must have
  /// bounds().size() + 1 entries (last = overflow); `min`/`max` are the
  /// source's observed extremes and are ignored when `count` is 0.
  void merge_buckets(const std::uint64_t* counts, std::size_t n,
                     std::uint64_t count, double sum, double min, double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default bucket bounds for virtual-time latencies in MICROSECONDS:
/// 10 µs up to 300 s in roughly 1-3-10 steps. Covers everything from a
/// WLAN frame flight to a full Bluetooth inquiry scan.
const std::vector<double>& default_latency_bounds_us();

/// Bucket bounds for user-visible operation times in SECONDS (Table 8
/// scale): 0.5 s up to 600 s.
const std::vector<double>& operation_bounds_s();

/// A prefix-scoped, materialized view of a Registry — the one generic
/// replacement for the per-layer `struct Stats` each component used to
/// hand-mirror. Instrument names are stored relative to the prefix
/// (`snapshot("peerhood.daemon.d3.").counter("pings_sent")`), lookups of
/// absent names return zero/empty, and snapshots compare with == — two
/// runs of the same seeded scenario are deterministic exactly when their
/// snapshots are equal.
class Snapshot {
 public:
  Snapshot() = default;

  const std::string& prefix() const noexcept { return prefix_; }
  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Counter value relative to the prefix; 0 when absent.
  std::uint64_t counter(const std::string& name) const;
  /// Gauge value relative to the prefix; 0.0 when absent.
  double gauge(const std::string& name) const;
  /// Histogram copy relative to the prefix; nullptr when absent.
  const Histogram* histogram(const std::string& name) const;

  const std::map<std::string, std::uint64_t>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Value equality over every instrument (prefix excluded so views of
  /// different devices/worlds can be compared metric-for-metric).
  friend bool operator==(const Snapshot& a, const Snapshot& b);
  friend bool operator!=(const Snapshot& a, const Snapshot& b) {
    return !(a == b);
  }

 private:
  friend class Registry;
  std::string prefix_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// A named collection of instruments. Handles returned by counter() /
/// gauge() / histogram() are stable for the registry's lifetime; asking
/// for an existing name returns the same instrument (so independent code
/// paths may share a metric). Registering one name as two different kinds
/// is a programming error and aborts (PH_CHECK).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only when the histogram does not exist yet.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           default_latency_bounds_us());

  /// Materializes every instrument whose name starts with `prefix` into a
  /// typed view, names stripped of the prefix. An empty prefix snapshots
  /// the whole registry.
  Snapshot snapshot(const std::string& prefix = {}) const;

  /// Read-only lookups; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Folds another registry into this one: counters add, gauges take the
  /// other's value, histograms merge bucket-wise (creating missing ones
  /// with the other's bounds). Used by benches that run several simulated
  /// worlds and want one combined snapshot.
  void merge_from(const Registry& other);

  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  /// Aborts when `name` already exists as a different instrument kind.
  void check_kind(const std::string& name, const char* wanted) const;

  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ph::obs
