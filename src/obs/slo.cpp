#include "obs/slo.hpp"

#include <algorithm>

#include "obs/clock.hpp"
#include "util/check.hpp"

namespace ph::obs {

const char* to_string(SloAggregate agg) {
  switch (agg) {
    case SloAggregate::last: return "last";
    case SloAggregate::mean: return "mean";
    case SloAggregate::max: return "max";
    case SloAggregate::min: return "min";
    case SloAggregate::sum: return "sum";
  }
  return "unknown";
}

const char* to_string(SloComparison cmp) {
  return cmp == SloComparison::above ? "above" : "below";
}

SloEngine::SloEngine(const Sampler& sampler, Registry& registry, Trace* trace)
    : sampler_(sampler), registry_(registry), trace_(trace) {}

void SloEngine::add_rule(SloRule rule) {
  PH_CHECK_MSG(!rule.name.empty(), "SLO rule needs a name");
  PH_CHECK_MSG(!rule.series.empty(), "SLO rule needs a series");
  RuleState state;
  state.breaches = &registry_.counter("obs.slo." + rule.name + ".breaches");
  state.breached = &registry_.gauge("obs.slo." + rule.name + ".breached");
  state.breached->set(0.0);
  rules_.push_back(std::move(rule));
  states_.push_back(state);
}

bool SloEngine::breached(const std::string& rule) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == rule) return states_[i].unhealthy;
  }
  return false;
}

void SloEngine::evaluate() {
  PH_CHECK_MSG(sampler_.clock() != nullptr,
               "argless evaluate() needs a clockful Sampler");
  evaluate(sampler_.clock()->now());
}

void SloEngine::evaluate(TimePoint now) {
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const SloRule& rule = rules_[r];
    RuleState& state = states_[r];
    const TimeSeries* series = sampler_.find(rule.series);
    if (series == nullptr || series->empty()) continue;  // not born yet

    // Fold the in-window points, newest last. Rings are time-ordered, so
    // walk backwards and stop at the window edge.
    const TimePoint cutoff = now >= rule.window_us ? now - rule.window_us : 0;
    double folded = 0.0;
    std::size_t points = 0;
    for (std::size_t i = series->size(); i-- > 0;) {
      const SeriesPoint& point = series->at(i);
      if (point.at < cutoff) break;
      if (points == 0) {
        folded = point.value;
      } else {
        switch (rule.aggregate) {
          case SloAggregate::last: break;  // first visited point is newest
          case SloAggregate::mean:
          case SloAggregate::sum: folded += point.value; break;
          case SloAggregate::max: folded = std::max(folded, point.value); break;
          case SloAggregate::min: folded = std::min(folded, point.value); break;
        }
      }
      ++points;
      if (rule.aggregate == SloAggregate::last) break;
    }
    if (points < rule.min_points) continue;  // abstain, keep current health
    if (rule.aggregate == SloAggregate::mean) {
      folded /= static_cast<double>(points);
    }

    const bool unhealthy = rule.comparison == SloComparison::above
                               ? folded > rule.threshold
                               : folded < rule.threshold;
    if (unhealthy && !state.unhealthy) {
      state.unhealthy = true;
      state.breaches->inc();
      state.breached->set(1.0);
      ++total_breaches_;
      state.open_window = windows_.size();
      windows_.push_back(BreachWindow{rule.name, now, now, true});
      if (trace_ != nullptr) {
        trace_->add_event("obs.slo.breach", now, 0, rule.name);
      }
      if (on_breach_) on_breach_(rule, now, folded);
    } else if (!unhealthy && state.unhealthy) {
      state.unhealthy = false;
      state.breached->set(0.0);
      BreachWindow& window = windows_[state.open_window];
      window.end = now;
      window.open = false;
      if (trace_ != nullptr) {
        trace_->add_event("obs.slo.recovered", now, 0, rule.name);
      }
    } else if (unhealthy) {
      windows_[state.open_window].end = now;  // extend the open window
    }
  }
}

}  // namespace ph::obs
