// Virtual-time trace journal — the causality half of ph::obs.
//
// A Trace records Spans (an operation with a start and end in virtual
// time: an RPC, an inquiry scan, a frame flight) and point Events, both
// tagged with the device id that performed them and a free-form message
// kind. Spans form a tree: begin_span() parents the new span under the
// innermost span currently on the *context stack*, which instrumented
// code maintains with Trace::Scope around the synchronous part of an
// operation. Asynchronous completions simply keep the SpanId and call
// end_span() later — the parent link was fixed at begin time, which is
// exactly the causal order ("the RPC caused this frame"), not the
// completion order.
//
// Cross-device causality: a span id travels inside simulated wire
// headers (proto message trace_parent fields) and inside the medium's
// scheduled delivery closures, so the receive side can parent its spans
// under the *remote* sender's span — begin_span_under() takes that
// explicit parent. The result is one connected tree per end-to-end
// operation even though it hops devices.
//
// Timestamps are sim::Time microseconds, passed in by the caller so this
// library does not depend on the simulator. Tracing is OFF by default
// (long soak runs would otherwise accumulate millions of records); tests
// and benches that want a journal call set_enabled(true). When disabled,
// begin_span returns 0 and every other entry point is a cheap no-op.
//
// Flight recorder: set_ring_capacity(N) turns the journal into a bounded
// ring that keeps roughly the last N spans (and N events) and evicts the
// oldest instead of dropping the newest. Ids stay monotonic across
// eviction — find_span()/end_span() on an evicted id are safe no-ops —
// so a ring trace can stay on for a whole soak and be dumped when a
// fault fires (see obs::dump_flight_recording).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ph::obs {

class Counter;

/// Identifies a recorded span; 0 means "none" (tracing disabled, dropped,
/// or no parent).
using SpanId = std::uint64_t;

/// Virtual-time stamp (sim::Time — microseconds since simulation start).
using TimePoint = std::uint64_t;

struct Span {
  SpanId id = 0;
  SpanId parent = 0;      ///< 0 = root
  std::string name;       ///< e.g. "community.rpc", "net.link.send"
  std::string kind;       ///< message kind: "datagram", "link", "inquiry", opcode…
  std::uint64_t device = 0;  ///< NodeId/DeviceId of the actor; 0 = none
  TimePoint start = 0;
  TimePoint end = 0;      ///< meaningful only when closed
  bool closed = false;
};

struct TraceEvent {
  SpanId span = 0;        ///< innermost open context at record time
  std::string name;
  std::string kind;
  std::uint64_t device = 0;
  TimePoint at = 0;
};

class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool on) noexcept { enabled_ = on; }

  /// Which time domain the journal's stamps live in — "virtual" (default)
  /// or "wall". Purely a metadata tag: the exporters embed it so a
  /// Perfetto timeline of a real-transport run is never mistaken for
  /// compressed simulated seconds. Owners of wall-clock journals
  /// (SocketTransport) set it once at construction.
  const char* clock_domain() const noexcept { return clock_domain_; }
  void set_clock_domain(const char* domain) noexcept {
    clock_domain_ = domain;
  }

  /// Starts a span parented under the current context. Returns 0 when
  /// tracing is disabled or the journal is full. Takes views: the text is
  /// copied into a recycled string (no allocation in steady-state ring
  /// mode once the journal is warm).
  SpanId begin_span(std::string_view name, TimePoint now,
                    std::uint64_t device = 0, std::string_view kind = {});

  /// Starts a span under an explicit parent — the cross-device entry
  /// point: the parent id arrived in a wire header or a delivery closure
  /// from another device. A zero parent falls back to the current
  /// context, so instrumentation can pass a header field through
  /// unconditionally.
  SpanId begin_span_under(SpanId parent, std::string_view name, TimePoint now,
                          std::uint64_t device = 0, std::string_view kind = {});

  /// Closes a span; end_span(0, …) is a no-op, so callers can hold ids
  /// from a disabled trace without checking.
  void end_span(SpanId id, TimePoint now);

  /// Records a point event under the current context.
  void add_event(std::string_view name, TimePoint now, std::uint64_t device = 0,
                 std::string_view kind = {});

  /// Context stack for causal parenting; prefer Scope.
  void push_context(SpanId id);
  void pop_context();
  SpanId current_context() const noexcept {
    return context_.empty() ? 0 : context_.back();
  }

  /// RAII context frame. A zero id (disabled trace) pushes nothing, so
  /// instrumentation can use Scope unconditionally.
  class Scope {
   public:
    Scope(Trace& trace, SpanId id) : trace_(trace), active_(id != 0) {
      if (active_) trace_.push_context(id);
    }
    ~Scope() {
      if (active_) trace_.pop_context();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Trace& trace_;
    bool active_;
  };

  /// Retained spans, oldest first. In ring mode this is a suffix of the
  /// full journal; Span::id remains globally monotonic.
  const std::vector<Span>& spans() const noexcept { return spans_; }
  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  /// O(1). nullptr for 0, unknown, or evicted ids.
  const Span* find_span(SpanId id) const;

  /// Records dropped because the journal hit its capacity (full mode
  /// only — a ring evicts instead of dropping).
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Old spans discarded by the flight-recorder ring.
  std::uint64_t evicted() const noexcept { return evicted_spans_; }
  /// Caps spans+events each; existing records are kept.
  void set_capacity(std::size_t max_records) noexcept { capacity_ = max_records; }

  /// Flight-recorder mode: keep roughly the last `spans` spans (and as
  /// many events), evicting the oldest. 0 restores the default
  /// record-until-full behaviour. Reserves the 2× working set up front so
  /// steady-state recording never reallocates the journal vectors.
  void set_ring_capacity(std::size_t spans) {
    ring_capacity_ = spans;
    if (spans > 0) {
      spans_.reserve(2 * spans);
      events_.reserve(2 * spans);
    }
  }
  std::size_t ring_capacity() const noexcept { return ring_capacity_; }

  /// Mirrors every drop into a registry counter (obs.trace.dropped) so
  /// capacity overflow is visible in metric dumps. The counter must
  /// outlive the trace or be reset with nullptr.
  void set_dropped_counter(Counter* counter) noexcept {
    dropped_counter_ = counter;
  }

  void clear();

 private:
  void evict_if_ring();
  /// Copies `text` into a string recycled from evicted records (ring
  /// mode), reusing its heap capacity; allocates only on a cold pool.
  std::string take_string(std::string_view text);

  bool enabled_ = false;
  const char* clock_domain_ = "virtual";
  std::size_t capacity_ = 1 << 20;
  std::size_t ring_capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t evicted_spans_ = 0;
  /// Count of spans ever evicted from the front; spans_[i] has id
  /// span_base_ + i + 1.
  std::uint64_t span_base_ = 0;
  Counter* dropped_counter_ = nullptr;
  std::vector<Span> spans_;
  std::vector<TraceEvent> events_;
  std::vector<SpanId> context_;
  /// Strings harvested from evicted ring records, ready for reuse.
  std::vector<std::string> string_pool_;
};

}  // namespace ph::obs
