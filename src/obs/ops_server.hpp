// Live introspection endpoint — the ops plane's front door.
//
// An OpsServer listens on a per-process UNIX stream socket and serves the
// process's observability objects over a one-line text protocol: the
// client sends a request line ("/metrics\n", optionally prefixed with
// "GET "), the server writes the full response body and closes. No HTTP,
// no framing — `nc -U <path> <<< /metrics` works from a shell, and the
// in-repo scraper is ph_ops_dump.
//
// Routes:
//   /metrics  Prometheus-style text exposition of the Registry (expo.hpp)
//   /series   full JSON snapshot: registry + sampler rings + SLO state
//   /slo      standalone series/SLO document (series_to_json)
//   /flight   the trace journal as Chrome trace-event JSON, timestamps
//             divided by `trace_ts_divisor` (wall-clock Perfetto timeline
//             for a socket-backend journal stamped in scaled virtual µs)
//   /profile  the sampling profiler's collapsed-stack ("folded") output —
//             pipe through flamegraph.pl / speedscope for a flame graph
//
// Error responses are single lines with a machine-stable `err ` prefix:
// `err unknown-route <name>` for a route the server does not serve, and
// `err unavailable <route>` for a known route whose source is absent.
//
// The server owns no event loop: it exposes its listening fd() and a
// handle_readable() callback, and the embedding transport watches the fd
// in its own epoll loop (SocketTransport::enable_ops_server). Connections
// are handled synchronously inside handle_readable — one short-lived
// request at a time, matching the single-threaded design of everything
// else in ph::obs. Reads and writes on accepted connections carry a short
// socket timeout so a stuck client cannot wedge the daemon loop forever.
//
// Rendezvous layout: by convention a transport's ops socket lives in the
// transport's socket_dir as `d<first_device_id>.ops`, so `ph_ops_dump
// <dir>` can scrape every daemon sharing the directory.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/result.hpp"

namespace ph::obs {

class Registry;
class Sampler;
class SloEngine;
class Trace;
namespace prof {
class WallProfiler;
}

struct OpsServerConfig {
  /// Filesystem path of the listening UNIX socket. Created on start(),
  /// unlinked on destruction. A stale file at the path is replaced.
  std::string socket_path;
  /// Divisor applied to trace timestamps in /flight exports (the socket
  /// backend passes its time_scale so the timeline is true wall time).
  double trace_ts_divisor = 1.0;
};

/// What the server exposes. Everything but `registry` is optional; routes
/// whose source is absent return an `err unavailable <route>` line
/// instead of a body, and unknown routes get `err unknown-route <name>`.
struct OpsSources {
  const Registry* registry = nullptr;
  const Trace* trace = nullptr;
  const Sampler* sampler = nullptr;
  const SloEngine* slo = nullptr;
  /// Sampling profiler behind /profile (collapsed-stack output).
  const prof::WallProfiler* profiler = nullptr;
  /// Called per /flight request to label Perfetto tracks.
  std::function<std::map<std::uint64_t, std::string>()> device_names;
};

class OpsServer {
 public:
  OpsServer(OpsServerConfig config, OpsSources sources);
  ~OpsServer();
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Binds and listens. Idempotent once successful.
  Result<void> start();

  /// The listening socket, -1 before start(). Register this with the
  /// owning event loop and call handle_readable() when it polls readable.
  int fd() const noexcept { return listen_fd_; }

  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }

  /// Accepts and serves every connection currently pending on fd().
  void handle_readable();

  /// Requests served since start (any route, including unknown ones).
  std::uint64_t requests_served() const noexcept { return requests_; }

 private:
  std::string respond(const std::string& route) const;

  OpsServerConfig config_;
  OpsSources sources_;
  int listen_fd_ = -1;
  std::uint64_t requests_ = 0;
};

}  // namespace ph::obs
