#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ph::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PH_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  PH_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                   std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                       bounds_.end(),
               "histogram bounds must be strictly increasing");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested observation (1-based, fractional).
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double below = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The rank falls inside bucket i spanning (lo, hi]; interpolate.
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    lo = std::clamp(lo, min_, max_);
    hi = std::clamp(hi, min_, max_);
    const double fraction =
        (rank - below) / static_cast<double>(counts_[i]);
    return lo + fraction * (hi - lo);
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  PH_CHECK_MSG(bounds_ == other.bounds_,
               "histogram merge requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::merge_buckets(const std::uint64_t* counts, std::size_t n,
                              std::uint64_t count, double sum, double min,
                              double max) {
  PH_CHECK_MSG(n == counts_.size(),
               "bucket merge requires identical bucket layout");
  for (std::size_t i = 0; i < n; ++i) counts_[i] += counts[i];
  if (count > 0) {
    min_ = count_ == 0 ? min : std::min(min_, min);
    max_ = count_ == 0 ? max : std::max(max_, max);
  }
  count_ += count;
  sum_ += sum;
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = {
      10,    30,    100,    300,    1e3,   3e3,   1e4,   3e4,
      1e5,   3e5,   1e6,    3e6,    1e7,   3e7,   1e8,   3e8};
  return bounds;
}

const std::vector<double>& operation_bounds_s() {
  static const std::vector<double> bounds = {0.5, 1,  2,  5,   10,  15, 20,
                                             30,  45, 60, 120, 300, 600};
  return bounds;
}

std::uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Snapshot::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* Snapshot::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

namespace {
bool same_histogram(const Histogram& a, const Histogram& b) {
  return a.bounds() == b.bounds() && a.bucket_counts() == b.bucket_counts() &&
         a.count() == b.count() && a.sum() == b.sum() && a.min() == b.min() &&
         a.max() == b.max();
}
}  // namespace

bool operator==(const Snapshot& a, const Snapshot& b) {
  if (a.counters_ != b.counters_ || a.gauges_ != b.gauges_) return false;
  if (a.histograms_.size() != b.histograms_.size()) return false;
  auto ia = a.histograms_.begin();
  auto ib = b.histograms_.begin();
  for (; ia != a.histograms_.end(); ++ia, ++ib) {
    if (ia->first != ib->first || !same_histogram(ia->second, ib->second)) {
      return false;
    }
  }
  return true;
}

Snapshot Registry::snapshot(const std::string& prefix) const {
  Snapshot out;
  out.prefix_ = prefix;
  // The maps are name-ordered, so every prefix match lives in the
  // contiguous range [lower_bound(prefix), first name not starting with
  // prefix) — scan just that range instead of the whole registry. A
  // per-device snapshot in an N-device world is O(own metrics), not
  // O(N * metrics); per-round stats() calls in big crowds stay cheap.
  const auto scan = [&prefix](const auto& instruments, auto emit) {
    for (auto it = instruments.lower_bound(prefix);
         it != instruments.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
      emit(it->first.substr(prefix.size()), *it->second);
    }
  };
  scan(counters_, [&out](std::string name, const Counter& c) {
    out.counters_.emplace(std::move(name), c.value());
  });
  scan(gauges_, [&out](std::string name, const Gauge& g) {
    out.gauges_.emplace(std::move(name), g.value());
  });
  scan(histograms_, [&out](std::string name, const Histogram& h) {
    out.histograms_.emplace(std::move(name), h);
  });
  return out;
}

Counter& Registry::counter(const std::string& name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_kind(name, "counter");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_kind(name, "gauge");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_kind(name, "histogram");
    it = histograms_.emplace(name, std::make_unique<Histogram>(bounds)).first;
  }
  return *it->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c->value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set(g->value());
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h->bounds()).merge_from(*h);
  }
}

void Registry::check_kind(const std::string& name, const char* wanted) const {
  (void)wanted;
  PH_CHECK_MSG(!counters_.contains(name) && !gauges_.contains(name) &&
                   !histograms_.contains(name),
               name.c_str());
}

}  // namespace ph::obs
