// ph_ops_dump — scrape one or many live daemons' ops sockets.
//
//   ph_ops_dump [--path /metrics|/series|/slo|/flight|/profile] TARGET...
//   ph_ops_dump --profile TARGET...
//
// Each TARGET is either an ops UNIX-socket path or a directory, which is
// scanned for `*.ops` sockets (the rendezvous layout SocketTransport uses:
// one `d<id>.ops` per daemon beside the frame sockets). With the default
// /metrics route the expositions of every target are parsed and merged —
// counters and histogram buckets add, gauges sum, quantiles recomputed
// from the merged buckets — into one fleet-wide exposition on stdout.
// `--profile` scrapes each daemon's /profile route and merges the folded
// (collapsed-stack) profiles by summing per-stack sample counts, yielding
// one fleet-wide flame-graph input. Any other route prints each daemon's
// raw response under a `# --- <target>` header (JSON documents cannot be
// merged generically).
//
// Exit status: 0 when every target was scraped, 1 otherwise.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/expo.hpp"
#include "obs/prof.hpp"

namespace {

bool scrape(const std::string& socket_path, const std::string& route,
            std::string& out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "ph_ops_dump: path too long: %s\n",
                 socket_path.c_str());
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::perror("ph_ops_dump: socket");
    return false;
  }
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "ph_ops_dump: connect %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  const std::string request = route + "\n";
  if (::write(fd, request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    std::fprintf(stderr, "ph_ops_dump: write %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  ::shutdown(fd, SHUT_WR);
  out.clear();
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "ph_ops_dump: read %s: %s\n", socket_path.c_str(),
                   std::strerror(errno));
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (out.rfind("err ", 0) == 0) {
    std::fprintf(stderr, "ph_ops_dump: %s: %s", socket_path.c_str(),
                 out.c_str());
    return false;
  }
  return true;
}

/// Expands TARGET arguments into concrete socket paths: a directory
/// contributes every `*.ops` file inside it (sorted), anything else is
/// taken verbatim.
std::vector<std::string> expand_targets(const std::vector<std::string>& args) {
  std::vector<std::string> sockets;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (entry.path().extension() == ".ops") {
          found.push_back(entry.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::fprintf(stderr, "ph_ops_dump: no *.ops sockets in %s\n",
                     arg.c_str());
      }
      sockets.insert(sockets.end(), found.begin(), found.end());
    } else {
      sockets.push_back(arg);
    }
  }
  return sockets;
}

int usage() {
  std::fprintf(stderr,
               "usage: ph_ops_dump [--path "
               "/metrics|/series|/slo|/flight|/profile] TARGET...\n"
               "       ph_ops_dump --profile TARGET...\n"
               "  TARGET: an ops socket path, or a directory scanned for "
               "*.ops\n"
               "  --profile merges every target's folded profile into one\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string route = "/metrics";
  bool merge_profile = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--path") {
      if (i + 1 >= argc) return usage();
      route = argv[++i];
    } else if (arg == "--profile") {
      merge_profile = true;
      route = "/profile";
    } else if (arg == "-h" || arg == "--help") {
      return usage();
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty()) return usage();

  const std::vector<std::string> sockets = expand_targets(args);
  if (sockets.empty()) return 1;

  bool all_ok = true;
  if (route == "/metrics") {
    ph::obs::ExpoDoc merged;
    std::size_t scraped = 0;
    for (const std::string& path : sockets) {
      std::string body;
      if (!scrape(path, route, body)) {
        all_ok = false;
        continue;
      }
      auto doc = ph::obs::parse_exposition(body);
      if (!doc.ok()) {
        std::fprintf(stderr, "ph_ops_dump: %s: %s\n", path.c_str(),
                     doc.error().to_string().c_str());
        all_ok = false;
        continue;
      }
      auto m = ph::obs::merge_expositions(merged, doc.value());
      if (!m.ok()) {
        std::fprintf(stderr, "ph_ops_dump: %s: %s\n", path.c_str(),
                     m.error().to_string().c_str());
        all_ok = false;
        continue;
      }
      ++scraped;
    }
    if (scraped > 0) {
      const std::string out = ph::obs::render_exposition(merged);
      std::fwrite(out.data(), 1, out.size(), stdout);
    }
    return all_ok && scraped > 0 ? 0 : 1;
  }

  if (merge_profile) {
    // Folded merge is associative and order-independent: per-stack counts
    // just add, so a fleet of daemons collapses into one flame graph.
    ph::obs::prof::FoldedProfile merged;
    std::size_t scraped = 0;
    for (const std::string& path : sockets) {
      std::string body;
      if (!scrape(path, route, body)) {
        all_ok = false;
        continue;
      }
      auto parsed = ph::obs::prof::parse_folded(body);
      if (!parsed.ok()) {
        std::fprintf(stderr, "ph_ops_dump: %s: %s\n", path.c_str(),
                     parsed.error().to_string().c_str());
        all_ok = false;
        continue;
      }
      ph::obs::prof::merge_folded(merged, parsed.value());
      ++scraped;
    }
    if (scraped > 0) {
      const std::string out = ph::obs::prof::render_folded(merged);
      std::fwrite(out.data(), 1, out.size(), stdout);
    }
    return all_ok && scraped > 0 ? 0 : 1;
  }

  for (const std::string& path : sockets) {
    std::string body;
    if (!scrape(path, route, body)) {
      all_ok = false;
      continue;
    }
    if (sockets.size() > 1) std::printf("# --- %s\n", path.c_str());
    std::fwrite(body.data(), 1, body.size(), stdout);
    if (!body.empty() && body.back() != '\n') std::printf("\n");
  }
  return all_ok ? 0 : 1;
}
