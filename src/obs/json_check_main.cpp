// ph_obs_json_check — validates a metrics JSON dump produced by
// obs::to_json(), (with --chrome) a Chrome trace-event dump produced
// by obs::to_chrome_trace(), (with --expo) a Prometheus-style text
// exposition produced by obs::to_exposition() / the OpsServer /metrics
// route, or (with --folded) a collapsed-stack profile produced by the
// OpsServer /profile route / PH_PROF_FOLDED. Used by the ph_bench_smoke,
// ph_trace_check, ph_ops_scrape_smoke and ph_prof_smoke CTest targets to
// fail the build when a bench or daemon emits malformed or incomplete
// dumps.
//
// Usage:
//   ph_obs_json_check FILE [requirement...]
//   ph_obs_json_check --chrome FILE [requirement...]
//   ph_obs_json_check --expo FILE [requirement...]
//   ph_obs_json_check --folded FILE [requirement...]
//
// Expo-mode lint (always applied): every line is a TYPE comment or a
// `name value` sample, metric names match [a-z0-9._]+, no metric is
// TYPE-declared twice, no sample lacks a declaration, and every
// histogram exports .count/.sum/.p50/.p95/.p99 plus a le="+Inf" bucket.
// Expo-mode requirements reuse the metrics grammar subset that makes
// sense for an exposition: counter:, counter_nonzero:, gauge:,
// histogram:.
//
// Metrics-mode requirements:
//   counter:PREFIX     at least one counter whose name starts with PREFIX
//   counter_nonzero:PREFIX
//                      same, and at least one matching counter must be > 0
//                      (a present-but-zero instrument means the code path
//                      it observes never ran)
//   gauge:PREFIX       at least one gauge whose name starts with PREFIX
//   histogram:PREFIX   at least one histogram whose name starts with PREFIX
//                      (must carry numeric count/sum/p50/p95/p99 fields)
//   span:PREFIX        at least one span whose name starts with PREFIX
//                      (needs the optional "spans" section)
//   event:PREFIX       same for the "events" section
//   series:PREFIX      at least one sampled time-series whose name starts
//                      with PREFIX and holds >= 1 point (needs the optional
//                      "series" section written when a Sampler is attached)
//   slo_breach:PREFIX  at least one SLO breach window whose rule name
//                      starts with PREFIX (needs the optional "slo"
//                      section; an empty PREFIX means "any breach")
// When present, the "spans"/"events" sections are structurally validated
// even without explicit requirements.
//
// Chrome-mode requirements are NAME prefixes: at least one trace event
// whose "name" starts with the prefix must exist. Structure (object with
// a "traceEvents" array, every element carrying a string "ph" and the
// fields its phase implies) is always validated.
//
// Folded-mode lint (always applied): every line is `stack count` where
// the stack is one or more non-empty `;`-separated frames and the count
// is a positive integer — the exact grammar flamegraph.pl and speedscope
// consume (prof::parse_folded). Folded-mode requirements:
//   frame:PREFIX       at least one stack containing a frame that starts
//                      with PREFIX; an empty PREFIX means "any sample at
//                      all", i.e. the profile must be non-empty
//
// Exits 0 when the file parses and every requirement is met; 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/expo.hpp"
#include "obs/json.hpp"
#include "obs/prof.hpp"

namespace {

using ph::obs::json::Value;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool histogram_well_formed(const std::string& name, const Value& h) {
  if (!h.is_object()) {
    std::fprintf(stderr, "json_check: histogram '%s' is not an object\n",
                 name.c_str());
    return false;
  }
  for (const char* field : {"count", "sum", "p50", "p95", "p99"}) {
    const Value* v = h.get(field);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr,
                   "json_check: histogram '%s' missing numeric field '%s'\n",
                   name.c_str(), field);
      return false;
    }
  }
  const Value* buckets = h.get("buckets");
  if (buckets == nullptr || !buckets->is_array() || buckets->array->empty()) {
    std::fprintf(stderr, "json_check: histogram '%s' has no buckets\n",
                 name.c_str());
    return false;
  }
  return true;
}

/// Every element of the optional "spans"/"events" arrays must be an object
/// with the fields to_json() writes, correctly typed.
bool record_well_formed(const char* section, std::size_t index,
                        const Value& record,
                        const std::vector<const char*>& number_fields,
                        const std::vector<const char*>& string_fields,
                        const std::vector<const char*>& bool_fields) {
  auto fail = [&](const char* what, const char* field) {
    std::fprintf(stderr, "json_check: %s[%zu] %s '%s'\n", section, index, what,
                 field);
    return false;
  };
  if (!record.is_object()) {
    std::fprintf(stderr, "json_check: %s[%zu] is not an object\n", section,
                 index);
    return false;
  }
  for (const char* field : number_fields) {
    const Value* v = record.get(field);
    if (v == nullptr || !v->is_number()) return fail("missing numeric", field);
  }
  for (const char* field : string_fields) {
    const Value* v = record.get(field);
    if (v == nullptr || !v->is_string()) return fail("missing string", field);
  }
  for (const char* field : bool_fields) {
    const Value* v = record.get(field);
    if (v == nullptr || v->kind != Value::Kind::boolean) {
      return fail("missing boolean", field);
    }
  }
  return true;
}

bool trace_sections_well_formed(const Value& root) {
  if (const Value* spans = root.get("spans")) {
    if (!spans->is_array()) {
      std::fprintf(stderr, "json_check: 'spans' is not an array\n");
      return false;
    }
    for (std::size_t i = 0; i < spans->array->size(); ++i) {
      if (!record_well_formed("spans", i, (*spans->array)[i],
                              {"id", "parent", "device", "start_us", "end_us"},
                              {"name", "kind"}, {"closed"})) {
        return false;
      }
    }
  }
  if (const Value* events = root.get("events")) {
    if (!events->is_array()) {
      std::fprintf(stderr, "json_check: 'events' is not an array\n");
      return false;
    }
    for (std::size_t i = 0; i < events->array->size(); ++i) {
      if (!record_well_formed("events", i, (*events->array)[i],
                              {"span", "device", "at_us"}, {"name", "kind"},
                              {})) {
        return false;
      }
    }
  }
  return true;
}

/// span:PREFIX / event:PREFIX — at least one record in the section whose
/// "name" starts with PREFIX.
bool check_trace_requirement(const Value& root, const std::string& kind,
                             const std::string& prefix) {
  const char* section = kind == "span" ? "spans" : "events";
  const Value* records = root.get(section);
  if (records == nullptr || !records->is_array()) {
    std::fprintf(stderr, "json_check: missing '%s' array (requirement %s:%s)\n",
                 section, kind.c_str(), prefix.c_str());
    return false;
  }
  for (const Value& record : *records->array) {
    const Value* name = record.is_object() ? record.get("name") : nullptr;
    if (name != nullptr && name->is_string() &&
        starts_with(name->string, prefix)) {
      return true;
    }
  }
  std::fprintf(stderr, "json_check: no %s matching prefix '%s'\n", kind.c_str(),
               prefix.c_str());
  return false;
}

/// series:PREFIX — a matching entry in the "series" object carrying a
/// string "kind" and a non-empty "points" array of [at_us, value] pairs.
bool check_series_requirement(const Value& root, const std::string& prefix) {
  const Value* series = root.get("series");
  if (series == nullptr || !series->is_object()) {
    std::fprintf(stderr,
                 "json_check: missing 'series' object (requirement series:%s)\n",
                 prefix.c_str());
    return false;
  }
  for (const auto& [name, record] : *series->object) {
    if (!starts_with(name, prefix)) continue;
    const Value* kind = record.is_object() ? record.get("kind") : nullptr;
    const Value* points = record.is_object() ? record.get("points") : nullptr;
    if (kind == nullptr || !kind->is_string() || points == nullptr ||
        !points->is_array()) {
      std::fprintf(stderr, "json_check: series '%s' is malformed\n",
                   name.c_str());
      return false;
    }
    if (points->array->empty()) continue;  // registered but never sampled
    for (const Value& point : *points->array) {
      if (!point.is_array() || point.array->size() != 2 ||
          !(*point.array)[0].is_number() || !(*point.array)[1].is_number()) {
        std::fprintf(stderr,
                     "json_check: series '%s' has a non-[at,value] point\n",
                     name.c_str());
        return false;
      }
    }
    return true;
  }
  std::fprintf(stderr, "json_check: no non-empty series matching prefix '%s'\n",
               prefix.c_str());
  return false;
}

/// slo_breach:PREFIX — the "slo" section records at least one breach window
/// for a rule whose name starts with PREFIX.
bool check_slo_breach_requirement(const Value& root, const std::string& prefix) {
  const Value* slo = root.get("slo");
  if (slo == nullptr || !slo->is_object()) {
    std::fprintf(
        stderr,
        "json_check: missing 'slo' object (requirement slo_breach:%s)\n",
        prefix.c_str());
    return false;
  }
  const Value* windows = slo->get("windows");
  if (windows == nullptr || !windows->is_array()) {
    std::fprintf(stderr, "json_check: 'slo' has no 'windows' array\n");
    return false;
  }
  for (std::size_t i = 0; i < windows->array->size(); ++i) {
    const Value& window = (*windows->array)[i];
    if (!record_well_formed("slo.windows", i, window, {"start_us", "end_us"},
                            {"rule"}, {"open"})) {
      return false;
    }
    if (starts_with(window.get("rule")->string, prefix)) return true;
  }
  std::fprintf(stderr, "json_check: no SLO breach window for rule '%s...'\n",
               prefix.c_str());
  return false;
}

bool check_requirement(const Value& root, const std::string& requirement) {
  const std::string::size_type colon = requirement.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "json_check: bad requirement '%s'\n",
                 requirement.c_str());
    return false;
  }
  const std::string kind = requirement.substr(0, colon);
  const std::string prefix = requirement.substr(colon + 1);
  if (kind == "span" || kind == "event") {
    return check_trace_requirement(root, kind, prefix);
  }
  if (kind == "series") return check_series_requirement(root, prefix);
  if (kind == "slo_breach") return check_slo_breach_requirement(root, prefix);
  const char* section = nullptr;
  if (kind == "counter" || kind == "counter_nonzero") {
    section = "counters";
  } else if (kind == "gauge") {
    section = "gauges";
  } else if (kind == "histogram") {
    section = "histograms";
  } else {
    std::fprintf(stderr, "json_check: unknown requirement kind '%s'\n",
                 kind.c_str());
    return false;
  }
  const Value* table = root.get(section);
  if (table == nullptr || !table->is_object()) {
    std::fprintf(stderr, "json_check: missing '%s' object\n", section);
    return false;
  }
  bool found_zero_only = false;
  for (const auto& [name, value] : *table->object) {
    if (!starts_with(name, prefix)) continue;
    if (kind == "histogram") {
      return histogram_well_formed(name, value);
    }
    if (!value.is_number()) {
      std::fprintf(stderr, "json_check: %s '%s' is not a number\n",
                   kind == "gauge" ? "gauge" : "counter", name.c_str());
      return false;
    }
    if (kind == "counter_nonzero" && value.number == 0.0) {
      found_zero_only = true;  // keep looking for a nonzero match
      continue;
    }
    return true;
  }
  if (found_zero_only) {
    std::fprintf(stderr,
                 "json_check: every counter matching prefix '%s' is zero\n",
                 prefix.c_str());
  } else {
    std::fprintf(stderr, "json_check: no %s matching prefix '%s'\n",
                 kind.c_str(), prefix.c_str());
  }
  return false;
}

/// --chrome: the dump must be {"traceEvents":[...]} where every element
/// carries a string "ph" plus the fields its phase implies; requirements
/// are name prefixes.
int check_chrome(const char* path, const Value& root, int argc, char** argv,
                 int first_requirement) {
  const Value* events = root.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "json_check: %s: missing 'traceEvents' array\n", path);
    return 1;
  }
  for (std::size_t i = 0; i < events->array->size(); ++i) {
    const Value& event = (*events->array)[i];
    if (!event.is_object()) {
      std::fprintf(stderr, "json_check: traceEvents[%zu] is not an object\n", i);
      return 1;
    }
    const Value* ph = event.get("ph");
    if (ph == nullptr || !ph->is_string() || ph->string.empty()) {
      std::fprintf(stderr, "json_check: traceEvents[%zu] has no 'ph'\n", i);
      return 1;
    }
    std::vector<const char*> number_fields = {"pid", "tid"};
    std::vector<const char*> string_fields;
    if (ph->string != "M") number_fields.push_back("ts");
    if (ph->string == "X") number_fields.push_back("dur");
    if (ph->string == "X" || ph->string == "B" || ph->string == "i" ||
        ph->string == "C") {
      string_fields.push_back("name");
    }
    if (!record_well_formed("traceEvents", i, event, number_fields,
                            string_fields, {})) {
      return 1;
    }
    if (ph->string == "C") {
      // Counter samples carry their value in args — that is what the
      // trace viewer plots on the per-device counter track.
      const Value* args = event.get("args");
      const Value* value =
          args != nullptr && args->is_object() ? args->get("value") : nullptr;
      if (value == nullptr || !value->is_number()) {
        std::fprintf(stderr,
                     "json_check: traceEvents[%zu] 'C' event has no numeric "
                     "args.value\n",
                     i);
        return 1;
      }
    }
  }
  bool ok = true;
  for (int i = first_requirement; i < argc; ++i) {
    const std::string prefix = argv[i];
    bool found = false;
    for (const Value& event : *events->array) {
      const Value* name = event.get("name");
      if (name != nullptr && name->is_string() &&
          starts_with(name->string, prefix)) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "json_check: no trace event named '%s...'\n",
                   prefix.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::fprintf(stderr, "json_check: %s OK (chrome, %zu events)\n", path,
                 events->array->size());
  }
  return ok ? 0 : 1;
}

/// --expo: lint a text exposition. parse_exposition() already rejects
/// malformed lines, illegal names, duplicate TYPEs and undeclared
/// samples; on top of that every declared histogram must actually export
/// its scalar readouts and an explicit overflow bucket. Requirements are
/// the metric-prefix subset (counter:/counter_nonzero:/gauge:/histogram:)
/// evaluated against the parsed document.
int check_expo(const char* path, const std::string& text, int argc,
               char** argv, int first_requirement) {
  auto parsed = ph::obs::parse_exposition(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "json_check: %s: %s\n", path,
                 parsed.error().to_string().c_str());
    return 1;
  }
  const ph::obs::ExpoDoc& doc = parsed.value();
  auto has_line_prefix = [&text](const std::string& prefix) {
    std::size_t pos = 0;
    while ((pos = text.find(prefix, pos)) != std::string::npos) {
      if (pos == 0 || text[pos - 1] == '\n') return true;
      pos += prefix.size();
    }
    return false;
  };
  for (const auto& [name, hist] : doc.histograms) {
    for (const char* field : {".count ", ".sum ", ".p50 ", ".p95 ", ".p99 "}) {
      if (!has_line_prefix(name + field)) {
        std::fprintf(stderr, "json_check: %s: histogram '%s' missing '%s%s'\n",
                     path, name.c_str(), name.c_str(), field);
        return 1;
      }
    }
    if (!has_line_prefix(name + ".bucket{le=\"+Inf\"} ")) {
      std::fprintf(stderr,
                   "json_check: %s: histogram '%s' has no +Inf bucket\n", path,
                   name.c_str());
      return 1;
    }
    if (hist.bucket_counts.size() != hist.bounds.size() + 1) {
      std::fprintf(stderr,
                   "json_check: %s: histogram '%s' bucket/bound mismatch "
                   "(%zu buckets, %zu bounds)\n",
                   path, name.c_str(), hist.bucket_counts.size(),
                   hist.bounds.size());
      return 1;
    }
  }
  bool ok = true;
  for (int i = first_requirement; i < argc; ++i) {
    const std::string requirement = argv[i];
    const std::string::size_type colon = requirement.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "json_check: bad requirement '%s'\n",
                   requirement.c_str());
      ok = false;
      continue;
    }
    const std::string kind = requirement.substr(0, colon);
    const std::string prefix = requirement.substr(colon + 1);
    bool found = false;
    if (kind == "counter" || kind == "counter_nonzero") {
      for (const auto& [name, value] : doc.counters) {
        if (!starts_with(name, prefix)) continue;
        if (kind == "counter_nonzero" && value == 0) continue;
        found = true;
        break;
      }
    } else if (kind == "gauge") {
      for (const auto& [name, value] : doc.gauges) {
        (void)value;
        if (starts_with(name, prefix)) {
          found = true;
          break;
        }
      }
    } else if (kind == "histogram") {
      for (const auto& [name, hist] : doc.histograms) {
        (void)hist;
        if (starts_with(name, prefix)) {
          found = true;
          break;
        }
      }
    } else {
      std::fprintf(stderr,
                   "json_check: unknown expo requirement kind '%s'\n",
                   kind.c_str());
      ok = false;
      continue;
    }
    if (!found) {
      std::fprintf(stderr, "json_check: no %s matching prefix '%s'\n",
                   kind.c_str(), prefix.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::fprintf(stderr,
                 "json_check: %s OK (expo, %zu counters, %zu gauges, "
                 "%zu histograms)\n",
                 path, doc.counters.size(), doc.gauges.size(),
                 doc.histograms.size());
  }
  return ok ? 0 : 1;
}

/// --folded: the file must parse as a collapsed-stack profile (strict
/// line grammar, positive counts); requirements are frame:PREFIX — some
/// stack must contain a frame starting with PREFIX (empty = any sample).
int check_folded(const char* path, const std::string& text, int argc,
                 char** argv, int first_requirement) {
  auto parsed = ph::obs::prof::parse_folded(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "json_check: %s: %s\n", path,
                 parsed.error().to_string().c_str());
    return 1;
  }
  const ph::obs::prof::FoldedProfile& profile = parsed.value();
  bool ok = true;
  for (int i = first_requirement; i < argc; ++i) {
    const std::string requirement = argv[i];
    if (requirement.rfind("frame:", 0) != 0) {
      std::fprintf(stderr, "json_check: unknown folded requirement '%s'\n",
                   requirement.c_str());
      ok = false;
      continue;
    }
    const std::string prefix = requirement.substr(6);
    bool found = false;
    for (const auto& [stack, count] : profile) {
      (void)count;
      std::size_t begin = 0;
      while (!found && begin <= stack.size()) {
        const std::size_t end = stack.find(';', begin);
        const std::string frame =
            stack.substr(begin, end == std::string::npos ? end : end - begin);
        if (starts_with(frame, prefix)) found = true;
        if (end == std::string::npos) break;
        begin = end + 1;
      }
      if (found) break;
    }
    if (!found) {
      std::fprintf(stderr,
                   prefix.empty()
                       ? "json_check: profile has no samples at all%s\n"
                       : "json_check: no stack with a frame matching '%s'\n",
                   prefix.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::fprintf(stderr, "json_check: %s OK (folded, %zu distinct stacks)\n",
                 path, profile.size());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome = false;
  bool expo = false;
  bool folded = false;
  int file_arg = 1;
  if (argc >= 2 && std::string(argv[1]) == "--chrome") {
    chrome = true;
    file_arg = 2;
  } else if (argc >= 2 && std::string(argv[1]) == "--expo") {
    expo = true;
    file_arg = 2;
  } else if (argc >= 2 && std::string(argv[1]) == "--folded") {
    folded = true;
    file_arg = 2;
  }
  if (argc < file_arg + 1) {
    std::fprintf(stderr,
                 "usage: %s [--chrome|--expo|--folded] FILE "
                 "[counter:PREFIX|counter_nonzero:PREFIX|gauge:PREFIX"
                 "|histogram:PREFIX|span:PREFIX|event:PREFIX"
                 "|series:PREFIX|slo_breach:PREFIX|frame:PREFIX"
                 "|NAME-PREFIX]...\n",
                 argv[0]);
    return 1;
  }
  const char* path = argv[file_arg];
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  if (expo) return check_expo(path, text, argc, argv, file_arg + 1);
  if (folded) return check_folded(path, text, argc, argv, file_arg + 1);

  Value root;
  std::string error;
  if (!ph::obs::json::parse(text, root, &error)) {
    std::fprintf(stderr, "json_check: %s: parse error: %s\n", path,
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "json_check: %s: top level is not an object\n", path);
    return 1;
  }
  if (chrome) return check_chrome(path, root, argc, argv, file_arg + 1);
  // Structural sanity independent of explicit requirements: the three metric
  // sections must exist and every counter/gauge value must be a number; the
  // optional spans/events sections must be well-typed when present.
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* table = root.get(section);
    if (table == nullptr || !table->is_object()) {
      std::fprintf(stderr, "json_check: %s: missing '%s' object\n", path,
                   section);
      return 1;
    }
  }
  for (const char* section : {"counters", "gauges"}) {
    for (const auto& [name, value] : *root.get(section)->object) {
      if (!value.is_number()) {
        std::fprintf(stderr, "json_check: %s: %s '%s' is not a number\n", path,
                     section, name.c_str());
        return 1;
      }
    }
  }
  for (const auto& [name, value] : *root.get("histograms")->object) {
    if (!histogram_well_formed(name, value)) return 1;
  }
  if (!trace_sections_well_formed(root)) return 1;
  // The optional telemetry sections must be well-typed whenever present,
  // matching the spans/events treatment above.
  if (const Value* series = root.get("series");
      series != nullptr && !series->is_object()) {
    std::fprintf(stderr, "json_check: %s: 'series' is not an object\n", path);
    return 1;
  }
  if (const Value* slo = root.get("slo"); slo != nullptr) {
    if (!slo->is_object() || slo->get("windows") == nullptr ||
        !slo->get("windows")->is_array() || slo->get("rules") == nullptr ||
        !slo->get("rules")->is_array()) {
      std::fprintf(stderr,
                   "json_check: %s: 'slo' needs 'rules' and 'windows' arrays\n",
                   path);
      return 1;
    }
  }

  bool ok = true;
  for (int i = file_arg + 1; i < argc; ++i) {
    if (!check_requirement(root, argv[i])) ok = false;
  }
  if (ok) {
    std::fprintf(stderr, "json_check: %s OK (%d requirement%s)\n", path,
                 argc - file_arg - 1, argc - file_arg - 1 == 1 ? "" : "s");
  }
  return ok ? 0 : 1;
}
