// ph_obs_json_check — validates a metrics JSON dump produced by
// obs::to_json(). Used by the ph_bench_smoke CTest target to fail the
// build when a bench emits malformed or incomplete metrics.
//
// Usage:
//   ph_obs_json_check FILE [requirement...]
//
// Requirements:
//   counter:PREFIX     at least one counter whose name starts with PREFIX
//   histogram:PREFIX   at least one histogram whose name starts with PREFIX
//                      (must carry numeric count/sum/p50/p95/p99 fields)
//
// Exits 0 when the file parses and every requirement is met; 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using ph::obs::json::Value;

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool histogram_well_formed(const std::string& name, const Value& h) {
  if (!h.is_object()) {
    std::fprintf(stderr, "json_check: histogram '%s' is not an object\n",
                 name.c_str());
    return false;
  }
  for (const char* field : {"count", "sum", "p50", "p95", "p99"}) {
    const Value* v = h.get(field);
    if (v == nullptr || !v->is_number()) {
      std::fprintf(stderr,
                   "json_check: histogram '%s' missing numeric field '%s'\n",
                   name.c_str(), field);
      return false;
    }
  }
  const Value* buckets = h.get("buckets");
  if (buckets == nullptr || !buckets->is_array() || buckets->array->empty()) {
    std::fprintf(stderr, "json_check: histogram '%s' has no buckets\n",
                 name.c_str());
    return false;
  }
  return true;
}

bool check_requirement(const Value& root, const std::string& requirement) {
  const std::string::size_type colon = requirement.find(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "json_check: bad requirement '%s'\n",
                 requirement.c_str());
    return false;
  }
  const std::string kind = requirement.substr(0, colon);
  const std::string prefix = requirement.substr(colon + 1);
  const char* section = nullptr;
  if (kind == "counter") {
    section = "counters";
  } else if (kind == "histogram") {
    section = "histograms";
  } else {
    std::fprintf(stderr, "json_check: unknown requirement kind '%s'\n",
                 kind.c_str());
    return false;
  }
  const Value* table = root.get(section);
  if (table == nullptr || !table->is_object()) {
    std::fprintf(stderr, "json_check: missing '%s' object\n", section);
    return false;
  }
  for (const auto& [name, value] : *table->object) {
    if (!starts_with(name, prefix)) continue;
    if (kind == "counter") {
      if (!value.is_number()) {
        std::fprintf(stderr, "json_check: counter '%s' is not a number\n",
                     name.c_str());
        return false;
      }
      return true;
    }
    if (histogram_well_formed(name, value)) return true;
    return false;
  }
  std::fprintf(stderr, "json_check: no %s matching prefix '%s'\n", kind.c_str(),
               prefix.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [counter:PREFIX|histogram:PREFIX]...\n",
                 argv[0]);
    return 1;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "json_check: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  Value root;
  std::string error;
  if (!ph::obs::json::parse(text, root, &error)) {
    std::fprintf(stderr, "json_check: %s: parse error: %s\n", argv[1],
                 error.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "json_check: %s: top level is not an object\n",
                 argv[1]);
    return 1;
  }
  // Structural sanity independent of explicit requirements: the three metric
  // sections must exist and every counter/gauge value must be a number.
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Value* table = root.get(section);
    if (table == nullptr || !table->is_object()) {
      std::fprintf(stderr, "json_check: %s: missing '%s' object\n", argv[1],
                   section);
      return 1;
    }
  }
  for (const char* section : {"counters", "gauges"}) {
    for (const auto& [name, value] : *root.get(section)->object) {
      if (!value.is_number()) {
        std::fprintf(stderr, "json_check: %s: %s '%s' is not a number\n",
                     argv[1], section, name.c_str());
        return 1;
      }
    }
  }
  for (const auto& [name, value] : *root.get("histograms")->object) {
    if (!histogram_well_formed(name, value)) return 1;
  }

  bool ok = true;
  for (int i = 2; i < argc; ++i) {
    if (!check_requirement(root, argv[i])) ok = false;
  }
  if (ok) {
    std::fprintf(stderr, "json_check: %s OK (%d requirement%s)\n", argv[1],
                 argc - 2, argc - 2 == 1 ? "" : "s");
  }
  return ok ? 0 : 1;
}
