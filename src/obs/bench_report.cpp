#include "obs/bench_report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/export.hpp"

namespace ph::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_number_map(std::string& out, const char* key,
                       const std::map<std::string, double>& values) {
  append_escaped(out, key);
  out += ":{";
  bool first = true;
  for (const auto& [name, value] : values) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, name);
    out += ':';
    append_number(out, value);
  }
  out += "\n}";
}

/// Embeds an already-rendered JSON document as a nested value.
void append_document(std::string& out, const std::string& document) {
  std::size_t end = document.size();
  while (end > 0 && (document[end - 1] == '\n' || document[end - 1] == ' ')) {
    --end;
  }
  out.append(document, 0, end);
}

}  // namespace

std::string to_json(const BenchReport& report, const Registry* registry,
                    const Sampler* sampler) {
  std::string out;
  out.reserve(4096);
  out += "{\n\"schema\":1,\n\"bench\":";
  append_escaped(out, report.bench);
  out += ",\n\"env\":{";
  bool first = true;
  for (const auto& [key, value] : report.env) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    append_escaped(out, key);
    out += ':';
    append_escaped(out, value);
  }
  out += "\n},\n";
  append_number_map(out, "headline", report.headline);
  out += ",\n";
  append_number_map(out, "info", report.info);
  if (registry != nullptr) {
    out += ",\n\"metrics\":";
    append_document(out, obs::to_json(*registry));
  }
  if (sampler != nullptr) {
    out += ",\n\"series\":";
    append_document(out, series_to_json(*sampler));
  }
  out += "\n}\n";
  return out;
}

bool dump_bench_report_if_requested(const BenchReport& report,
                                    const Registry* registry,
                                    const Sampler* sampler) {
  const char* path = std::getenv("PH_BENCH_JSON");
  if (path == nullptr || *path == '\0') return true;
  if (!write_file(path, to_json(report, registry, sampler))) return false;
  std::fprintf(stderr, "obs: bench report (%s) written to %s\n",
               report.bench.c_str(), path);
  return true;
}

}  // namespace ph::obs
