// SLO health rules over sampled time series.
//
// A Rule is a declarative windowed predicate on one Sampler series:
// "the mean of net.medium.datagrams_lost.rate over the last 30 s is above
// 2/s", "the last value of community.groups.d1.formed_groups is below 1
// for 20 s straight". The engine evaluates every rule after each scrape
// and turns threshold crossings into first-class telemetry:
//
//   obs.slo.<rule>.breaches   counter — healthy -> breached transitions
//   obs.slo.<rule>.breached   gauge   — 1 while the rule is breached
//   obs.slo.breach / obs.slo.recovered
//                             trace events on the world's journal
//
// plus a BreachWindow list ([start, end] in virtual time) that benches
// print and dumps embed, and an on_breach callback with which a soak arms
// the flight recorder — the trace ring around the moment an SLO went
// unhealthy is snapshotted automatically, Dapper-style, with no human in
// the loop.
//
// Determinism: evaluation is pure arithmetic over the sampler's rings at
// virtual timestamps; same seed => identical breach windows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace ph::obs {

/// How the points inside a rule's window are folded into one value.
enum class SloAggregate { last, mean, max, min, sum };

/// Which side of the threshold is unhealthy.
enum class SloComparison { above, below };

const char* to_string(SloAggregate agg);
const char* to_string(SloComparison cmp);

struct SloRule {
  /// Short identifier, used in metric names: lower_snake, no dots.
  std::string name;
  /// Exact Sampler series name to watch (e.g.
  /// "peerhood.daemon.d1.discovery_us.p95").
  std::string series;
  SloAggregate aggregate = SloAggregate::last;
  SloComparison comparison = SloComparison::above;
  double threshold = 0.0;
  /// Window width in virtual microseconds; points with at > now - window
  /// participate. 0 = only the newest point.
  std::uint64_t window_us = 0;
  /// Fewer in-window points than this and the rule abstains (keeps its
  /// previous health) — protects quantile series that skip empty
  /// intervals from flapping.
  std::size_t min_points = 1;
};

/// One contiguous unhealthy window of one rule, in virtual time.
struct BreachWindow {
  std::string rule;
  TimePoint start = 0;
  TimePoint end = 0;  ///< == start while still open
  bool open = false;
};

class SloEngine {
 public:
  /// Breach counters/gauges are published into `registry` (normally the
  /// same per-world registry the sampler scrapes — the breach counters
  /// then show up as series themselves on the next scrape). `trace` may be
  /// null; when set, breaches/recoveries become instant trace events.
  SloEngine(const Sampler& sampler, Registry& registry,
            Trace* trace = nullptr);
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  void add_rule(SloRule rule);
  const std::vector<SloRule>& rules() const noexcept { return rules_; }

  /// Fired on every healthy -> breached transition (after the counters
  /// and trace event). The chaos soak uses this to dump the flight
  /// recorder with reason "slo:<rule>".
  using BreachHandler =
      std::function<void(const SloRule& rule, TimePoint at, double value)>;
  void set_on_breach(BreachHandler handler) { on_breach_ = std::move(handler); }

  /// Evaluates every rule against the sampler's current rings. Call after
  /// each Sampler::sample with the same timestamp.
  void evaluate(TimePoint now);

  /// Clockful form: stamps from the sampler's attached Clock (the engine
  /// and the scrape must share a time domain). Aborts when the sampler was
  /// constructed without one.
  void evaluate();

  /// All breach windows so far, in order of opening; the last may be open.
  const std::vector<BreachWindow>& windows() const noexcept { return windows_; }
  /// Healthy -> breached transitions across all rules.
  std::uint64_t total_breaches() const noexcept { return total_breaches_; }
  /// True if `rule` is currently unhealthy.
  bool breached(const std::string& rule) const;

 private:
  struct RuleState {
    Counter* breaches = nullptr;
    Gauge* breached = nullptr;
    bool unhealthy = false;
    std::size_t open_window = 0;  // index into windows_ while unhealthy
  };

  const Sampler& sampler_;
  Registry& registry_;
  Trace* trace_ = nullptr;
  BreachHandler on_breach_;
  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<BreachWindow> windows_;
  std::uint64_t total_breaches_ = 0;
};

}  // namespace ph::obs
