#include "obs/expo.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/sampler.hpp"  // quantile_from_bucket_delta
#include "util/error.hpp"

namespace ph::obs {

namespace {

void append_value(std::string& out, double value) {
  char buf[32];
  if (!std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%s", value > 0 ? "+Inf" : "-Inf");
  } else if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_sample(std::string& out, const std::string& name, double value) {
  out += name;
  out += ' ';
  append_value(out, value);
  out += '\n';
}

void append_histogram(std::string& out, const std::string& name,
                      std::uint64_t count, double sum, double p50, double p95,
                      double p99, const std::vector<double>& bounds,
                      const std::vector<std::uint64_t>& buckets) {
  append_sample(out, name + ".count", static_cast<double>(count));
  append_sample(out, name + ".sum", sum);
  append_sample(out, name + ".p50", p50);
  append_sample(out, name + ".p95", p95);
  append_sample(out, name + ".p99", p99);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    out += name;
    out += ".bucket{le=\"";
    if (i < bounds.size()) {
      append_value(out, bounds[i]);
    } else {
      out += "+Inf";
    }
    out += "\"} ";
    append_value(out, static_cast<double>(buckets[i]));
    out += '\n';
  }
}

Error parse_fail(std::size_t line_no, const std::string& what) {
  return Error{Errc::protocol_error,
               "exposition line " + std::to_string(line_no) + ": " + what};
}

bool parse_number(const std::string& text, double& out) {
  if (text == "+Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

}  // namespace

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string to_exposition(const Registry& registry) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, counter] : registry.counters()) {
    out += "# TYPE " + name + " counter\n";
    append_sample(out, name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    out += "# TYPE " + name + " gauge\n";
    append_sample(out, name, gauge->value());
  }
  for (const auto& [name, hist] : registry.histograms()) {
    out += "# TYPE " + name + " histogram\n";
    append_histogram(out, name, hist->count(), hist->sum(), hist->p50(),
                     hist->p95(), hist->p99(), hist->bounds(),
                     hist->bucket_counts());
  }
  return out;
}

Result<ExpoDoc> parse_exposition(const std::string& text) {
  ExpoDoc doc;
  // TYPE declarations seen so far: name -> "counter"|"gauge"|"histogram".
  std::map<std::string, std::string> types;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE <name> <kind>" comments are meaningful.
      static const std::string kType = "# TYPE ";
      if (line.compare(0, kType.size(), kType) != 0) continue;
      const std::size_t space = line.find(' ', kType.size());
      if (space == std::string::npos) {
        return parse_fail(line_no, "malformed TYPE comment");
      }
      const std::string name = line.substr(kType.size(), space - kType.size());
      const std::string kind = line.substr(space + 1);
      if (!valid_metric_name(name)) {
        return parse_fail(line_no, "illegal metric name '" + name + "'");
      }
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        return parse_fail(line_no, "unknown TYPE kind '" + kind + "'");
      }
      if (!types.emplace(name, kind).second) {
        return parse_fail(line_no, "duplicate TYPE for '" + name + "'");
      }
      if (kind == "histogram") doc.histograms[name];  // declare
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      return parse_fail(line_no, "sample line without a value");
    }
    std::string name = line.substr(0, space);
    double value = 0.0;
    if (!parse_number(line.substr(space + 1), value)) {
      return parse_fail(line_no, "unparseable value");
    }
    // Histogram bucket sample: <base>.bucket{le="<bound>"} <count>
    const std::size_t brace = name.find(".bucket{le=\"");
    if (brace != std::string::npos) {
      if (name.size() < 2 || name.compare(name.size() - 2, 2, "\"}") != 0) {
        return parse_fail(line_no, "malformed bucket label");
      }
      const std::string base = name.substr(0, brace);
      const std::string bound_text =
          name.substr(brace + 12, name.size() - brace - 12 - 2);
      auto it = doc.histograms.find(base);
      if (it == doc.histograms.end() || types[base] != "histogram") {
        return parse_fail(line_no, "bucket for undeclared histogram '" + base +
                                       "'");
      }
      double bound = 0.0;
      if (!parse_number(bound_text, bound)) {
        return parse_fail(line_no, "unparseable bucket bound");
      }
      if (std::isfinite(bound)) {
        it->second.bounds.push_back(bound);
      }
      it->second.bucket_counts.push_back(
          static_cast<std::uint64_t>(value < 0 ? 0 : value));
      continue;
    }
    // Histogram scalar readouts: <base>.count/.sum/.p50/.p95/.p99.
    const std::size_t dot = name.rfind('.');
    if (dot != std::string::npos) {
      const std::string base = name.substr(0, dot);
      const std::string field = name.substr(dot + 1);
      auto it = doc.histograms.find(base);
      if (it != doc.histograms.end()) {
        if (field == "count") {
          it->second.count = static_cast<std::uint64_t>(value < 0 ? 0 : value);
        } else if (field == "sum") {
          it->second.sum = value;
        } else if (field == "p50") {
          it->second.p50 = value;
        } else if (field == "p95") {
          it->second.p95 = value;
        } else if (field == "p99") {
          it->second.p99 = value;
        } else {
          return parse_fail(line_no, "unknown histogram field '" + field + "'");
        }
        continue;
      }
    }
    if (!valid_metric_name(name)) {
      return parse_fail(line_no, "illegal metric name '" + name + "'");
    }
    auto type = types.find(name);
    if (type == types.end()) {
      return parse_fail(line_no, "sample for undeclared metric '" + name + "'");
    }
    if (type->second == "counter") {
      doc.counters[name] = static_cast<std::uint64_t>(value < 0 ? 0 : value);
    } else if (type->second == "gauge") {
      doc.gauges[name] = value;
    } else {
      return parse_fail(line_no, "bare sample for histogram '" + name + "'");
    }
  }
  return doc;
}

Result<void> merge_expositions(ExpoDoc& into, const ExpoDoc& from) {
  for (const auto& [name, value] : from.counters) {
    into.counters[name] += value;
  }
  for (const auto& [name, value] : from.gauges) {
    into.gauges[name] += value;
  }
  for (const auto& [name, hist] : from.histograms) {
    auto it = into.histograms.find(name);
    if (it == into.histograms.end()) {
      into.histograms.emplace(name, hist);
      continue;
    }
    ExpoDoc::Hist& dst = it->second;
    if (dst.bounds != hist.bounds ||
        dst.bucket_counts.size() != hist.bucket_counts.size()) {
      return Error{Errc::protocol_error,
                   "histogram '" + name + "' has mismatched buckets"};
    }
    dst.count += hist.count;
    dst.sum += hist.sum;
    for (std::size_t i = 0; i < dst.bucket_counts.size(); ++i) {
      dst.bucket_counts[i] += hist.bucket_counts[i];
    }
  }
  return ok();
}

std::string render_exposition(const ExpoDoc& doc) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : doc.counters) {
    out += "# TYPE " + name + " counter\n";
    append_sample(out, name, static_cast<double>(value));
  }
  for (const auto& [name, value] : doc.gauges) {
    out += "# TYPE " + name + " gauge\n";
    append_sample(out, name, value);
  }
  for (const auto& [name, hist] : doc.histograms) {
    out += "# TYPE " + name + " histogram\n";
    // Quantiles from the merged buckets: the whole-population distribution,
    // not an average of the inputs' readouts.
    const double p50 = quantile_from_bucket_delta(hist.bounds,
                                                  hist.bucket_counts,
                                                  hist.count, 0.50);
    const double p95 = quantile_from_bucket_delta(hist.bounds,
                                                  hist.bucket_counts,
                                                  hist.count, 0.95);
    const double p99 = quantile_from_bucket_delta(hist.bounds,
                                                  hist.bucket_counts,
                                                  hist.count, 0.99);
    append_histogram(out, name, hist.count, hist.sum, p50, p95, p99,
                     hist.bounds, hist.bucket_counts);
  }
  return out;
}

}  // namespace ph::obs
