// A minimal recursive-descent JSON reader — just enough to validate and
// inspect the exporter's own output (tests round-trip through it; the
// `ph_obs_json_check` tool uses it to fail CI on a malformed metrics
// dump). Not a general-purpose JSON library: no \uXXXX decoding beyond
// pass-through, numbers parsed as double.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ph::obs::json {

class Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;    // shared_ptr keeps Value copyable+cheap
  std::shared_ptr<Object> object;

  bool is_object() const { return kind == Kind::object; }
  bool is_array() const { return kind == Kind::array; }
  bool is_number() const { return kind == Kind::number; }
  bool is_string() const { return kind == Kind::string; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const {
    if (kind != Kind::object) return nullptr;
    auto it = object->find(key);
    return it == object->end() ? nullptr : &it->second;
  }
};

/// Parses `text` into `out`. On failure returns false and, when `error` is
/// non-null, describes what went wrong (with byte offset).
bool parse(std::string_view text, Value& out, std::string* error = nullptr);

/// Serializes a Value back to JSON text (keys in map order, numbers via
/// %.17g so doubles round-trip). `ph_bench_compare --perturb` uses this to
/// rewrite a report with one metric nudged.
std::string serialize(const Value& value);

}  // namespace ph::obs::json
