#include "obs/trace.hpp"

namespace ph::obs {

SpanId Trace::begin_span(std::string name, TimePoint now, std::uint64_t device,
                         std::string kind) {
  if (!enabled_) return 0;
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = current_context();
  span.name = std::move(name);
  span.kind = std::move(kind);
  span.device = device;
  span.start = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::end_span(SpanId id, TimePoint now) {
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.closed) return;
  span.end = now;
  span.closed = true;
}

void Trace::add_event(std::string name, TimePoint now, std::uint64_t device,
                      std::string kind) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceEvent event;
  event.span = current_context();
  event.name = std::move(name);
  event.kind = std::move(kind);
  event.device = device;
  event.at = now;
  events_.push_back(std::move(event));
}

void Trace::push_context(SpanId id) { context_.push_back(id); }

void Trace::pop_context() {
  if (!context_.empty()) context_.pop_back();
}

const Span* Trace::find_span(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

void Trace::clear() {
  spans_.clear();
  events_.clear();
  context_.clear();
  dropped_ = 0;
}

}  // namespace ph::obs
