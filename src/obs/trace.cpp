#include "obs/trace.hpp"

#include "obs/metrics.hpp"

namespace ph::obs {

SpanId Trace::begin_span(std::string_view name, TimePoint now,
                         std::uint64_t device, std::string_view kind) {
  return begin_span_under(0, name, now, device, kind);
}

SpanId Trace::begin_span_under(SpanId parent, std::string_view name,
                               TimePoint now, std::uint64_t device,
                               std::string_view kind) {
  if (!enabled_) return 0;
  if (ring_capacity_ == 0 && spans_.size() >= capacity_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    return 0;
  }
  Span span;
  span.id = span_base_ + static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent != 0 ? parent : current_context();
  span.name = take_string(name);
  span.kind = take_string(kind);
  span.device = device;
  span.start = now;
  spans_.push_back(std::move(span));
  const SpanId id = spans_.back().id;
  evict_if_ring();
  return id;
}

void Trace::end_span(SpanId id, TimePoint now) {
  if (id <= span_base_ || id > span_base_ + spans_.size()) return;
  Span& span = spans_[id - span_base_ - 1];
  if (span.closed) return;
  span.end = now;
  span.closed = true;
}

void Trace::add_event(std::string_view name, TimePoint now,
                      std::uint64_t device, std::string_view kind) {
  if (!enabled_) return;
  if (ring_capacity_ == 0 && events_.size() >= capacity_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->inc();
    return;
  }
  TraceEvent event;
  event.span = current_context();
  event.name = take_string(name);
  event.kind = take_string(kind);
  event.device = device;
  event.at = now;
  events_.push_back(std::move(event));
  evict_if_ring();
}

std::string Trace::take_string(std::string_view text) {
  if (string_pool_.empty()) return std::string(text);
  std::string out = std::move(string_pool_.back());
  string_pool_.pop_back();
  out.assign(text.data(), text.size());
  return out;
}

void Trace::evict_if_ring() {
  if (ring_capacity_ == 0) return;
  // Amortised: let the journal grow to twice the ring size, then shed the
  // older half in one erase. Keeps spans() a plain contiguous vector (one
  // move per record on average) while bounding memory to 2× the ring.
  // Evicted records donate their heap-allocated strings to the recycling
  // pool — a warm steady-state ring stops touching the allocator.
  if (spans_.size() >= 2 * ring_capacity_) {
    const std::size_t shed = spans_.size() - ring_capacity_;
    for (std::size_t i = 0; i < shed; ++i) {
      string_pool_.push_back(std::move(spans_[i].name));
      string_pool_.push_back(std::move(spans_[i].kind));
    }
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(shed));
    span_base_ += shed;
    evicted_spans_ += shed;
  }
  if (events_.size() >= 2 * ring_capacity_) {
    const std::size_t shed = events_.size() - ring_capacity_;
    for (std::size_t i = 0; i < shed; ++i) {
      string_pool_.push_back(std::move(events_[i].name));
      string_pool_.push_back(std::move(events_[i].kind));
    }
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(shed));
  }
}

void Trace::push_context(SpanId id) { context_.push_back(id); }

void Trace::pop_context() {
  if (!context_.empty()) context_.pop_back();
}

const Span* Trace::find_span(SpanId id) const {
  if (id <= span_base_ || id > span_base_ + spans_.size()) return nullptr;
  return &spans_[id - span_base_ - 1];
}

void Trace::clear() {
  spans_.clear();
  events_.clear();
  context_.clear();
  dropped_ = 0;
  evicted_spans_ = 0;
  span_base_ = 0;
}

}  // namespace ph::obs
