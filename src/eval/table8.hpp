// The Table 8 experiment runner — the thesis' headline evaluation.
//
// "Various tests were performed for searching an interest group through SNS
// and reference application and joining the searched group and viewing a
// members profile from the joined members list. The time for all the tasks
// was recorded and average time was calculated."
//
// Five columns: Facebook×{N810,N95}, HI5×{N810,N95}, and PeerHood Community
// on the ComLab testbed. Each column runs the same four tasks:
//
//   1. search for an interest group ("England Football" / "Football")
//   2. join that group
//   3. view the group's member list
//   4. view one member's profile
//
// SNS columns go through the browser model over simulated GPRS; the
// PeerHood column runs the real middleware over simulated Bluetooth. The
// thesis timed humans with a stopwatch, so both sides include the same
// explicit user-interaction model (typing, menu navigation); the network
// and middleware parts are produced mechanistically by the respective
// stacks. The structural claims this reproduces: group search on PeerHood
// costs one Bluetooth inquiry (~11 s) instead of multiple GPRS page loads;
// dynamic group discovery makes join time exactly zero; totals favour
// PeerHood by 2-4x.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "sns/types.hpp"

namespace ph::eval {

/// One column of Table 8 (seconds, like the thesis reports), plus the data
/// volumes behind the thesis' cost argument (§5.1/§5.2.6: "The cost of
/// data transfer ... is very less than using SNS in mobile devices, as our
/// approach uses Bluetooth, which enables cost free ... data transmission").
struct Table8Cell {
  std::string network_type;   ///< "SNS (Facebook)" / "Social Networking on top of PeerHood"
  std::string accessed_through;
  double search_s = 0;
  double join_s = 0;
  double member_list_s = 0;
  double profile_s = 0;
  /// Bytes over the metered cellular link (GPRS) during the whole column.
  std::uint64_t paid_bytes = 0;
  /// Bytes over free short-range radios (Bluetooth/WLAN).
  std::uint64_t free_bytes = 0;

  double total_s() const { return search_s + join_s + member_list_s + profile_s; }
};

/// User-interaction model for the PeerHood terminal UI (the thesis' client
/// is menu-driven; its stopwatch times include the human).
struct PeerHoodUserModel {
  /// Navigating to "View Members of Group" and selecting the group.
  sim::Duration member_list_navigation = sim::seconds(12);
  /// Scrolling the member list and picking one member.
  sim::Duration profile_navigation = sim::seconds(15);
};

/// Runs one SNS column: the four tasks through the browser model.
///
/// When `metrics` is non-null, the run's whole world registry (every
/// layer's counters) is merged into it, and the four task times are
/// recorded into `eval.table8.sns.{search,join,member_list,profile}_s`
/// operation histograms — run several seeds into one registry to get
/// p50/p95/p99 across runs.
Table8Cell run_sns_column(const sns::SiteProfile& site,
                          const sns::DeviceClass& device, std::uint64_t seed,
                          obs::Registry* metrics = nullptr);

/// Runs the PeerHood column: a fresh Bluetooth neighbourhood (the thesis'
/// two-machine ComLab setup plus the measuring device), dynamic group
/// discovery and the fan-out member/profile operations.
///
/// `metrics` aggregates like run_sns_column, under
/// `eval.table8.peerhood.*`.
Table8Cell run_peerhood_column(std::uint64_t seed, PeerHoodUserModel user = {},
                               obs::Registry* metrics = nullptr);

}  // namespace ph::eval
