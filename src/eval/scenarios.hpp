// Named simulation scenarios encoding the thesis' test environments.
//
// Tables 4/5 + Appendix 1 describe the physical testbed: room 6604 at
// ComLab, two desktop PCs (AMD Athlon64 / Pentium III) and an IBM ThinkPad
// T40 with 3COM Bluetooth dongles, all running PeerHood v0.2 and the
// PeerHood Community application. comlab_room() builds the simulated
// equivalent: three PeerHood Community devices within mutual Bluetooth
// range, each with a logged-in member, used by the Table 8 runner and
// available to tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "community/app.hpp"

namespace ph::eval {

/// One assembled testbed device: the radio stack plus its community app.
struct ScenarioDevice {
  std::string member;
  std::unique_ptr<peerhood::Stack> stack;
  std::unique_ptr<community::CommunityApp> app;
};

/// Configuration of one testbed seat.
struct SeatSpec {
  std::string member;
  sim::Vec2 position;
  std::vector<std::string> interests;
};

/// Builds PeerHood Community devices in `medium`, one per seat, each with
/// a created + logged-in account. Daemons are left stopped when
/// `autostart` is false so a measurement can start them together at t=0.
std::vector<ScenarioDevice> build_seats(net::Medium& medium,
                                        const std::vector<SeatSpec>& seats,
                                        const net::TechProfile& radio,
                                        bool autostart);

/// The thesis' ComLab room 6604 testbed (Tables 4/5, Appendix 1): the
/// measuring laptop ("tester") plus Desktop PC1 ("dave") and the second
/// machine ("emma"), a few metres apart, Bluetooth only, all interested in
/// Football — the interest group the thesis' Table 8 tasks exercise.
std::vector<ScenarioDevice> comlab_room(net::Medium& medium,
                                        bool autostart = false);

}  // namespace ph::eval
