#include "net/medium.hpp"
#include "eval/scenarios.hpp"

#include "util/check.hpp"

namespace ph::eval {

std::vector<ScenarioDevice> build_seats(net::Medium& medium,
                                        const std::vector<SeatSpec>& seats,
                                        const net::TechProfile& radio,
                                        bool autostart) {
  std::vector<ScenarioDevice> devices;
  devices.reserve(seats.size());
  for (const SeatSpec& seat : seats) {
    ScenarioDevice device;
    device.member = seat.member;
    peerhood::StackConfig config;
    config.device_name = seat.member + "-ptd";
    config.radios = {radio};
    config.autostart = autostart;
    device.stack = std::make_unique<peerhood::Stack>(
        medium, std::make_unique<sim::StaticMobility>(seat.position), config);
    device.app = std::make_unique<community::CommunityApp>(*device.stack);
    auto account = device.app->create_account(seat.member, "pw");
    PH_CHECK(account.ok());
    for (const std::string& interest : seat.interests) {
      (*account)->add_interest(interest);
    }
    PH_CHECK(device.app->login(seat.member, "pw").ok());
    devices.push_back(std::move(device));
  }
  return devices;
}

std::vector<ScenarioDevice> comlab_room(net::Medium& medium, bool autostart) {
  // The thesis' testbed Bluetooth: 3COM class-2 dongles. Deterministic
  // detection keeps experiment columns reproducible; loss stays enabled on
  // the data path.
  net::TechProfile radio = net::bluetooth_2_0();
  radio.inquiry_detect_prob = 1.0;
  return build_seats(medium,
                     {
                         {"tester", {0.0, 0.0}, {"Football"}},
                         {"dave", {2.5, 0.0}, {"Football"}},
                         {"emma", {0.0, 2.5}, {"Football", "Movies"}},
                     },
                     radio, autostart);
}

}  // namespace ph::eval
