#include "net/medium.hpp"
#include "sim/simulator.hpp"
#include "eval/table8.hpp"

#include <memory>

#include "util/check.hpp"

#include "community/app.hpp"
#include "eval/scenarios.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "sns/browser.hpp"
#include "sns/server.hpp"

namespace ph::eval {

namespace {

/// Records the four task times into `eval.table8.<column>.*_s` operation
/// histograms and folds the run's world registry into the caller's
/// aggregate. Called just before the local Medium dies. Also the
/// PH_TRACE_JSON hook: the run's span tree is exported here, while the
/// world still exists (with several runs the last column written wins —
/// point PH_TRACE_JSON at a single-seed run to inspect one tree).
void publish_cell(obs::Registry* metrics, const std::string& column,
                  const Table8Cell& cell, const net::Medium& medium) {
  obs::dump_trace_if_requested(medium.trace(), medium.trace_device_names());
  if (metrics == nullptr) return;
  const std::string prefix = "eval.table8." + column + ".";
  const std::vector<double> bounds = obs::operation_bounds_s();
  metrics->histogram(prefix + "search_s", bounds).observe(cell.search_s);
  metrics->histogram(prefix + "join_s", bounds).observe(cell.join_s);
  metrics->histogram(prefix + "member_list_s", bounds)
      .observe(cell.member_list_s);
  metrics->histogram(prefix + "profile_s", bounds).observe(cell.profile_s);
  metrics->merge_from(medium.registry());
}

/// Critical-path attribution for one task window, published as
/// `eval.critical_path.<column>.<op>.<phase>_s` histograms — mean phase
/// seconds across seeds fall out of the aggregate (sum/count).
void publish_attribution(obs::Registry* metrics, const std::string& column,
                         const std::string& op,
                         const obs::Attribution& attribution) {
  if (metrics == nullptr) return;
  const std::vector<double> bounds = obs::operation_bounds_s();
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const auto phase = static_cast<obs::Phase>(i);
    metrics
        ->histogram("eval.critical_path." + column + "." + op + "." +
                        obs::to_string(phase) + "_s",
                    bounds)
        .observe(static_cast<double>(attribution.phase_us[i]) / 1e6);
  }
}

}  // namespace

Table8Cell run_sns_column(const sns::SiteProfile& site,
                          const sns::DeviceClass& device, std::uint64_t seed,
                          obs::Registry* metrics) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  // Trace every run: the causal span tree is what the critical-path
  // attribution below (and PH_TRACE_JSON) consumes. Tracing never touches
  // virtual time, so the measured cells are unchanged.
  medium.trace().set_enabled(true);
  sns::SnsServer server(medium, site);
  // The global site already hosts the group and its members (they joined
  // from desktops around the world; our user merely finds them).
  server.add_group("England Football");
  server.add_member("England Football", "dave");
  server.add_member("England Football", "emma");
  server.add_profile("dave", "Football fan");

  sns::BrowserClient browser(medium, device, server.node(), "tester");
  Table8Cell cell;
  cell.network_type = "SNS (" + site.name + ")";
  cell.accessed_through = device.name;

  auto run_task = [&](const std::string& op, auto&& start,
                      double& out_seconds) {
    bool done = false;
    sim::Duration elapsed = 0;
    const sim::Time window_start = simulator.now();
    // The whole task runs under one eval span, so everything the browser
    // and server do — on both tracks — hangs off it as one connected tree.
    const obs::SpanId task_span = medium.trace().begin_span(
        "eval.table8." + op, window_start, browser.node(), "operation");
    obs::Trace::Scope task_scope(medium.trace(), task_span);
    start([&](Result<sns::BrowserClient::TaskResult> result) {
      PH_CHECK(result.ok());
      elapsed = result->elapsed;
      done = true;
    });
    while (!done) simulator.run_for(sim::seconds(1));
    medium.trace().end_span(task_span, simulator.now());
    out_seconds = sim::to_seconds(elapsed);
    publish_attribution(
        metrics, "sns", op,
        obs::attribute_window(medium.trace(), window_start, simulator.now()));
  };

  run_task("search",
           [&](auto cb) { browser.search_group("football", std::move(cb)); },
           cell.search_s);
  run_task("join",
           [&](auto cb) { browser.join_group("England Football", std::move(cb)); },
           cell.join_s);
  run_task(
      "member_list",
      [&](auto cb) { browser.view_member_list("England Football", std::move(cb)); },
      cell.member_list_s);
  run_task("profile",
           [&](auto cb) { browser.view_profile("dave", std::move(cb)); },
           cell.profile_s);
  cell.paid_bytes = medium.traffic(net::Technology::gprs).total_bytes();
  cell.free_bytes = medium.traffic(net::Technology::bluetooth).total_bytes() +
                    medium.traffic(net::Technology::wlan).total_bytes();
  publish_cell(metrics, "sns", cell, medium);
  return cell;
}

Table8Cell run_peerhood_column(std::uint64_t seed, PeerHoodUserModel user,
                               obs::Registry* metrics) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  medium.trace().set_enabled(true);

  // The thesis' test environment: the measuring laptop plus two PCs in
  // room 6604, all within Bluetooth range, all running PeerHood Community
  // (Tables 4/5, Appendix 1).
  std::vector<ScenarioDevice> devices =
      comlab_room(medium, /*autostart=*/false);
  ScenarioDevice& self = devices[0];  // "tester"
  const net::NodeId self_node = self.stack->daemon().self();
  // All daemons start together at t=0 — the cold-start the search task
  // measures.
  for (ScenarioDevice& device : devices) (void)device.stack->daemon().start();

  Table8Cell cell;
  cell.network_type = "Social Networking on top of PeerHood";
  cell.accessed_through = "simulated ComLab testbed";

  // Task 1 — "search an interest group": from a cold start until dynamic
  // group discovery has formed the Football group. Dominated by the
  // Bluetooth inquiry scan (10.24 s) plus service discovery and probing;
  // the thesis measured 11 s.
  const sim::Time started = simulator.now();
  {
    const obs::SpanId task_span = medium.trace().begin_span(
        "eval.table8.search", started, self_node, "operation");
    obs::Trace::Scope task_scope(medium.trace(), task_span);
    while (true) {
      auto group = self.app->groups().group("football");
      if (group.ok() && group->formed()) break;
      simulator.run_for(sim::milliseconds(250));
      PH_CHECK_MSG(simulator.now() < sim::minutes(5),
                   "discovery never completed");
    }
    medium.trace().end_span(task_span, simulator.now());
    publish_attribution(
        metrics, "peerhood", "search",
        obs::attribute_window(medium.trace(), started, simulator.now()));
  }
  cell.search_s = sim::to_seconds(simulator.now() - started);

  // Task 2 — join: dynamic group discovery already placed the user in the
  // group ("0 Seconds (Already in the Group)").
  {
    auto group = self.app->groups().group("football");
    PH_CHECK(group.ok() && group->members.contains("tester"));
    cell.join_s = 0.0;
    // Zero-width window: the all-zero attribution keeps the four-op
    // table rectangular.
    publish_attribution(metrics, "peerhood", "join", obs::Attribution{});
  }

  // Task 3 — view the member list: menu navigation plus the fan-out
  // PS_GETONLINEMEMBERLIST exchange of Figure 11.
  {
    const sim::Time task_start = simulator.now();
    const obs::SpanId task_span = medium.trace().begin_span(
        "eval.table8.member_list", task_start, self_node, "operation");
    obs::Trace::Scope task_scope(medium.trace(), task_span);
    simulator.run_for(user.member_list_navigation);
    bool done = false;
    self.app->client().get_online_members(
        [&](Result<std::vector<std::string>> members) {
          PH_CHECK(members.ok() && members->size() == 2);
          done = true;
        });
    while (!done) simulator.run_for(sim::milliseconds(100));
    medium.trace().end_span(task_span, simulator.now());
    publish_attribution(
        metrics, "peerhood", "member_list",
        obs::attribute_window(medium.trace(), task_start, simulator.now()));
    cell.member_list_s = sim::to_seconds(simulator.now() - task_start);
  }

  // Task 4 — view one member's profile: pick a member, then the Figure 13
  // PS_GETPROFILE fan-out.
  {
    const sim::Time task_start = simulator.now();
    const obs::SpanId task_span = medium.trace().begin_span(
        "eval.table8.profile", task_start, self_node, "operation");
    obs::Trace::Scope task_scope(medium.trace(), task_span);
    simulator.run_for(user.profile_navigation);
    bool done = false;
    self.app->client().view_profile(
        "dave", [&](Result<proto::ProfileData> profile) {
          PH_CHECK(profile.ok() && profile->member_id == "dave");
          done = true;
        });
    while (!done) simulator.run_for(sim::milliseconds(100));
    medium.trace().end_span(task_span, simulator.now());
    publish_attribution(
        metrics, "peerhood", "profile",
        obs::attribute_window(medium.trace(), task_start, simulator.now()));
    cell.profile_s = sim::to_seconds(simulator.now() - task_start);
  }
  cell.paid_bytes = medium.traffic(net::Technology::gprs).total_bytes();
  cell.free_bytes = medium.traffic(net::Technology::bluetooth).total_bytes() +
                    medium.traffic(net::Technology::wlan).total_bytes();
  publish_cell(metrics, "peerhood", cell, medium);
  return cell;
}

}  // namespace ph::eval
