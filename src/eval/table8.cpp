#include "eval/table8.hpp"

#include <memory>

#include "util/check.hpp"

#include "community/app.hpp"
#include "eval/scenarios.hpp"
#include "sns/browser.hpp"
#include "sns/server.hpp"

namespace ph::eval {

namespace {

/// Records the four task times into `eval.table8.<column>.*_s` operation
/// histograms and folds the run's world registry into the caller's
/// aggregate. Called just before the local Medium dies.
void publish_cell(obs::Registry* metrics, const std::string& column,
                  const Table8Cell& cell, const net::Medium& medium) {
  if (metrics == nullptr) return;
  const std::string prefix = "eval.table8." + column + ".";
  const std::vector<double> bounds = obs::operation_bounds_s();
  metrics->histogram(prefix + "search_s", bounds).observe(cell.search_s);
  metrics->histogram(prefix + "join_s", bounds).observe(cell.join_s);
  metrics->histogram(prefix + "member_list_s", bounds)
      .observe(cell.member_list_s);
  metrics->histogram(prefix + "profile_s", bounds).observe(cell.profile_s);
  metrics->merge_from(medium.registry());
}

}  // namespace

Table8Cell run_sns_column(const sns::SiteProfile& site,
                          const sns::DeviceClass& device, std::uint64_t seed,
                          obs::Registry* metrics) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));
  sns::SnsServer server(medium, site);
  // The global site already hosts the group and its members (they joined
  // from desktops around the world; our user merely finds them).
  server.add_group("England Football");
  server.add_member("England Football", "dave");
  server.add_member("England Football", "emma");
  server.add_profile("dave", "Football fan");

  sns::BrowserClient browser(medium, device, server.node(), "tester");
  Table8Cell cell;
  cell.network_type = "SNS (" + site.name + ")";
  cell.accessed_through = device.name;

  auto run_task = [&](auto&& start, double& out_seconds) {
    bool done = false;
    sim::Duration elapsed = 0;
    start([&](Result<sns::BrowserClient::TaskResult> result) {
      PH_CHECK(result.ok());
      elapsed = result->elapsed;
      done = true;
    });
    while (!done) simulator.run_for(sim::seconds(1));
    out_seconds = sim::to_seconds(elapsed);
  };

  run_task([&](auto cb) { browser.search_group("football", std::move(cb)); },
           cell.search_s);
  run_task([&](auto cb) { browser.join_group("England Football", std::move(cb)); },
           cell.join_s);
  run_task(
      [&](auto cb) { browser.view_member_list("England Football", std::move(cb)); },
      cell.member_list_s);
  run_task([&](auto cb) { browser.view_profile("dave", std::move(cb)); },
           cell.profile_s);
  cell.paid_bytes = medium.traffic(net::Technology::gprs).total_bytes();
  cell.free_bytes = medium.traffic(net::Technology::bluetooth).total_bytes() +
                    medium.traffic(net::Technology::wlan).total_bytes();
  publish_cell(metrics, "sns", cell, medium);
  return cell;
}

Table8Cell run_peerhood_column(std::uint64_t seed, PeerHoodUserModel user,
                               obs::Registry* metrics) {
  sim::Simulator simulator;
  net::Medium medium(simulator, sim::Rng(seed));

  // The thesis' test environment: the measuring laptop plus two PCs in
  // room 6604, all within Bluetooth range, all running PeerHood Community
  // (Tables 4/5, Appendix 1).
  std::vector<ScenarioDevice> devices =
      comlab_room(medium, /*autostart=*/false);
  ScenarioDevice& self = devices[0];  // "tester"
  // All daemons start together at t=0 — the cold-start the search task
  // measures.
  for (ScenarioDevice& device : devices) device.stack->daemon().start();

  Table8Cell cell;
  cell.network_type = "Social Networking on top of PeerHood";
  cell.accessed_through = "simulated ComLab testbed";

  // Task 1 — "search an interest group": from a cold start until dynamic
  // group discovery has formed the Football group. Dominated by the
  // Bluetooth inquiry scan (10.24 s) plus service discovery and probing;
  // the thesis measured 11 s.
  const sim::Time started = simulator.now();
  while (true) {
    auto group = self.app->groups().group("football");
    if (group.ok() && group->formed()) break;
    simulator.run_for(sim::milliseconds(250));
    PH_CHECK_MSG(simulator.now() < sim::minutes(5), "discovery never completed");
  }
  cell.search_s = sim::to_seconds(simulator.now() - started);

  // Task 2 — join: dynamic group discovery already placed the user in the
  // group ("0 Seconds (Already in the Group)").
  {
    auto group = self.app->groups().group("football");
    PH_CHECK(group.ok() && group->members.contains("tester"));
    cell.join_s = 0.0;
  }

  // Task 3 — view the member list: menu navigation plus the fan-out
  // PS_GETONLINEMEMBERLIST exchange of Figure 11.
  {
    const sim::Time task_start = simulator.now();
    simulator.run_for(user.member_list_navigation);
    bool done = false;
    self.app->client().get_online_members(
        [&](Result<std::vector<std::string>> members) {
          PH_CHECK(members.ok() && members->size() == 2);
          done = true;
        });
    while (!done) simulator.run_for(sim::milliseconds(100));
    cell.member_list_s = sim::to_seconds(simulator.now() - task_start);
  }

  // Task 4 — view one member's profile: pick a member, then the Figure 13
  // PS_GETPROFILE fan-out.
  {
    const sim::Time task_start = simulator.now();
    simulator.run_for(user.profile_navigation);
    bool done = false;
    self.app->client().view_profile(
        "dave", [&](Result<proto::ProfileData> profile) {
          PH_CHECK(profile.ok() && profile->member_id == "dave");
          done = true;
        });
    while (!done) simulator.run_for(sim::milliseconds(100));
    cell.profile_s = sim::to_seconds(simulator.now() - task_start);
  }
  cell.paid_bytes = medium.traffic(net::Technology::gprs).total_bytes();
  cell.free_bytes = medium.traffic(net::Technology::bluetooth).total_bytes() +
                    medium.traffic(net::Technology::wlan).total_bytes();
  publish_cell(metrics, "peerhood", cell, medium);
  return cell;
}

}  // namespace ph::eval
